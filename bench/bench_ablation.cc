/**
 * @file
 * Ablation bench: sensitivity of the reproduction's headline shapes
 * to the model parameters DESIGN.md calls out.
 *
 *  1. C_b/C_c ratio - sets the per-Frac attenuation toward V_dd/2.
 *  2. Settling alpha - one-Frac vs two-Frac behaviour in Fig. 7.
 *  3. Row-weight asymmetry - baseline MAJ3 error vs F-MAJ gain.
 *  4. SA offset vs thermal noise - PUF intra/inter separation.
 *
 * Each ablation prints the headline metric under parameter sweeps so
 * a reader can see which conclusions depend on which knob.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/frac_op.hh"
#include "core/maj3.hh"
#include "core/verify.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

sim::DramParams
smallParams()
{
    sim::DramParams p;
    p.colsPerRow = 512;
    p.rowsPerSubarray = 64;
    p.subarraysPerBank = 2;
    return p;
}

/** Mean fast-cell voltage of a row after n Fracs from all-ones. */
double
voltageAfterFracs(double cap_ratio, int n)
{
    sim::DramParams params = smallParams();
    params.bitlineCapRatio = cap_ratio;
    sim::DramChip chip(sim::DramGroup::B, 1, params);
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    if (n > 0)
        core::frac(mc, 0, 4, n);
    OnlineStats s;
    for (ColAddr c = 0; c < params.colsPerRow; ++c)
        s.add(chip.bank(0).cellVoltage(4, c));
    return s.mean();
}

/** Proof-combination fraction of the Fig. 7 experiment. */
double
proofFraction(softmc::MemoryController &mc, int num_fracs)
{
    const auto res = core::maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0,
                                         num_fracs, true);
    return res.provenFraction();
}

void
ablateCapRatio()
{
    std::puts("Ablation 1: bit-line/cell capacitance ratio -> mean "
              "row voltage after n Fracs (init all ones)");
    TextTable table({"Cb/Cc", "1 Frac", "2", "3", "5"});
    for (const double ratio : {2.0, 4.0, 6.0, 10.0, 20.0}) {
        std::vector<std::string> row = {TextTable::num(ratio, 0)};
        for (const int n : {1, 2, 3, 5})
            row.push_back(
                TextTable::num(voltageAfterFracs(ratio, n), 3) + " V");
        table.addRow(std::move(row));
    }
    table.print();
    std::puts("(larger ratios collapse to Vdd/2 in one Frac and kill "
              "the Fig. 6/7 gradation)\n");
}

void
ablateProofVsFracs()
{
    std::puts("Ablation 2: Fig. 7 proof fraction vs number of Fracs "
              "(group B)");
    sim::DramChip chip(sim::DramGroup::B, 1, smallParams());
    softmc::MemoryController mc(chip, false);
    TextTable table({"#Frac", "proof (X1=1, X2=0)"});
    for (const int n : {0, 1, 2, 3, 5})
        table.addRow({std::to_string(n),
                      TextTable::pct(proofFraction(mc, n), 1)});
    table.print();
    std::puts("");
}

void
ablateWeightAsymmetry()
{
    std::puts("Ablation 3: MAJ3 six-combo coverage per group (the "
              "asymmetric primary row drives the error story)");
    TextTable table({"group", "primary role weight", "coverage"});
    const bool combos[6][3] = {
        {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
        {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
    };
    for (const auto g : {sim::DramGroup::B}) {
        sim::DramChip chip(g, 1, smallParams());
        softmc::MemoryController mc(chip, false);
        const std::size_t cols = smallParams().colsPerRow;
        std::vector<bool> pass(cols, true);
        for (const auto &combo : combos) {
            std::map<RowAddr, BitVector> ops;
            ops.emplace(0, BitVector(cols, combo[0]));
            ops.emplace(1, BitVector(cols, combo[1]));
            ops.emplace(2, BitVector(cols, combo[2]));
            const bool expected = static_cast<int>(combo[0]) +
                                      combo[1] + combo[2] >=
                                  2;
            const auto res = core::maj3(mc, 0, 1, 2, ops);
            for (std::size_t c = 0; c < cols; ++c)
                if (res.get(c) != expected)
                    pass[c] = false;
        }
        std::size_t ok = 0;
        for (const bool p : pass)
            ok += p;
        table.addRow({
            sim::groupName(g),
            TextTable::num(chip.profile().weightSecondAct, 2),
            TextTable::pct(static_cast<double>(ok) /
                               static_cast<double>(cols),
                           1),
        });
    }
    table.print();
    std::puts("");
}

void
ablatePufNoise()
{
    std::puts("Ablation 4: PUF intra-HD vs repeated evaluations "
              "(noise floor) and inter-HD vs serial (offset map)");
    TextTable table({"pair", "normalized HD"});
    sim::DramParams params = smallParams();
    params.colsPerRow = 2048;

    sim::DramChip chip_a(sim::DramGroup::I, 1, params);
    softmc::MemoryController mc_a(chip_a, false);
    puf::FracPuf puf_a(mc_a, 10);
    const puf::Challenge ch{0, 4};
    const auto r1 = puf_a.evaluate(ch);
    const auto r2 = puf_a.evaluate(ch);
    table.addRow({"same module, same challenge (intra)",
                  TextTable::num(
                      puf::normalizedHammingDistance(r1, r2), 3)});

    const auto r3 = puf_a.evaluate(puf::Challenge{0, 12});
    table.addRow({"same module, different row (CRP space)",
                  TextTable::num(
                      puf::normalizedHammingDistance(r1, r3), 3)});

    sim::DramChip chip_b(sim::DramGroup::I, 2, params);
    softmc::MemoryController mc_b(chip_b, false);
    puf::FracPuf puf_b(mc_b, 10);
    const auto r4 = puf_b.evaluate(ch);
    table.addRow({"different module, same challenge (inter)",
                  TextTable::num(
                      puf::normalizedHammingDistance(r1, r4), 3)});
    table.print();
    std::puts("(intra << CRP ~ inter ~ 0.5 is the property the PUF "
              "needs)\n");
}

void
ablateRestoreTruncation()
{
    std::puts("Ablation 5: restore truncation (refs [17,18]) - mean "
              "row voltage vs tRAS at close");
    TextTable table({"cycles open", "mean voltage after close"});
    sim::DramChip chip(sim::DramGroup::B, 5, smallParams());
    softmc::MemoryController mc(chip, false);
    for (const Cycles open_for : {4u, 6u, 8u, 10u, 12u, 14u}) {
        mc.fillRowVoltage(0, 4, true);
        softmc::CommandSequence seq;
        seq.act(0, 4);
        seq.idle(open_for - 1);
        seq.pre(0);
        seq.idle(5);
        mc.execute(seq, "truncated-close");
        OnlineStats v;
        for (ColAddr c = 0; c < smallParams().colsPerRow; ++c)
            v.add(chip.bank(0).cellVoltage(4, c));
        table.addRow({std::to_string(open_for),
                      TextTable::num(v.mean(), 3) + " V"});
    }
    table.print();
    std::puts("(closing before tRAS=14 cycles leaves partial charge; "
              "the latency/charge tradeoff\nthe paper's related work "
              "exploits, and another voltage knob beside Frac)\n");
}

} // namespace

int
main()
{
    telemetry::RunScope telem("bench_ablation");
    setVerbose(false);
    ablateCapRatio();
    ablateProofVsFracs();
    ablateWeightAsymmetry();
    ablatePufNoise();
    ablateRestoreTruncation();
    return 0;
}
