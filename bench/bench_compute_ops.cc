/**
 * @file
 * Extension bench: cost and accuracy of the bulk bitwise compute
 * engine, op by op, on the three-row substrate (group B) vs the
 * F-MAJ substrate (group C) and DDR4 (group M).
 *
 * This surfaces the paper's Sec. VI-A1 overhead claim (F-MAJ costs
 * ~29% more memory cycles than the original MAJ3 per operation) at
 * the level an application sees, plus the effective bulk throughput
 * (lanes per microsecond of DRAM bus time).
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "compute/adder.hh"
#include "compute/engine.hh"
#include "compute/reliability.hh"
#include "core/maj3.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;
using namespace fracdram::compute;

namespace
{

struct OpCost
{
    Cycles cycles = 0;
    double accuracy = 0.0;
};

BitVector
randomBits(std::size_t n, Rng &rng)
{
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

OpCost
measureMaj(BitwiseEngine &engine, Rng &rng)
{
    const std::size_t lanes = engine.lanes();
    const Value a = engine.alloc(), b = engine.alloc(),
                c = engine.alloc();
    const auto av = randomBits(lanes, rng);
    const auto bv = randomBits(lanes, rng);
    const auto cv = randomBits(lanes, rng);
    engine.write(a, av);
    engine.write(b, bv);
    engine.write(c, cv);
    const Cycles before = engine.cyclesUsed();
    const Value r = engine.opMaj(a, b, c);
    OpCost cost;
    cost.cycles = engine.cyclesUsed() - before;
    const auto result = engine.read(r);
    const auto expect = core::softwareMaj3(av, bv, cv);
    cost.accuracy =
        1.0 - static_cast<double>(result.hammingDistance(expect)) /
                  static_cast<double>(lanes);
    engine.release(a);
    engine.release(b);
    engine.release(c);
    engine.release(r);
    return cost;
}

OpCost
measureXor(BitwiseEngine &engine, Rng &rng)
{
    const std::size_t lanes = engine.lanes();
    const Value a = engine.alloc(), b = engine.alloc();
    const auto av = randomBits(lanes, rng);
    const auto bv = randomBits(lanes, rng);
    engine.write(a, av);
    engine.write(b, bv);
    const Cycles before = engine.cyclesUsed();
    const Value r = engine.opXor(a, b);
    OpCost cost;
    cost.cycles = engine.cyclesUsed() - before;
    const auto result = engine.read(r);
    cost.accuracy =
        1.0 - static_cast<double>(result.hammingDistance(av ^ bv)) /
                  static_cast<double>(lanes);
    engine.release(a);
    engine.release(b);
    engine.release(r);
    return cost;
}

} // namespace

int
main()
{
    telemetry::RunScope telem("bench_compute_ops");
    setVerbose(false);
    std::puts("bulk bitwise compute: per-op cost and accuracy by "
              "substrate\n");

    TextTable table({"group", "substrate", "MAJ cycles", "MAJ acc",
                     "XOR cycles", "XOR acc", "8-bit add us",
                     "add exact", "reliable lanes"});

    Cycles maj_b = 0, maj_c = 0;
    for (const auto group :
         {sim::DramGroup::B, sim::DramGroup::C, sim::DramGroup::M}) {
        sim::DramParams params = sim::isDdr4(group)
                                     ? sim::DramParams::ddr4()
                                     : sim::DramParams{};
        params.rowsPerSubarray = 128;
        params.colsPerRow = 1024;
        sim::DramChip chip(group, 1, params);
        softmc::MemoryController mc(chip, false);
        BitwiseEngine engine(mc);
        Rng rng(static_cast<std::uint64_t>(group) * 7 + 1);

        const auto maj = measureMaj(engine, rng);
        const auto x = measureXor(engine, rng);
        if (group == sim::DramGroup::B)
            maj_b = maj.cycles;
        if (group == sim::DramGroup::C)
            maj_c = maj.cycles;

        // Bulk 8-bit add.
        PlanarVector a(engine, 8), b(engine, 8);
        std::vector<std::uint64_t> av(engine.lanes()),
            bv(engine.lanes());
        for (std::size_t i = 0; i < av.size(); ++i) {
            av[i] = rng.below(256);
            bv[i] = rng.below(256);
        }
        a.store(av);
        b.store(bv);
        const Cycles before = engine.cyclesUsed();
        auto sum = addVectors(engine, a, b);
        const Cycles add_cycles = engine.cyclesUsed() - before;
        const auto result = sum.load();
        std::size_t exact = 0;
        for (std::size_t i = 0; i < av.size(); ++i)
            exact += result[i] == av[i] + bv[i];
        sum.release();
        a.release();
        b.release();

        const auto profile = profileLanes(engine, 6);
        table.addRow({
            sim::groupName(group),
            engine.usesThreeRowMaj() ? "MAJ3" : "F-MAJ",
            std::to_string(maj.cycles),
            TextTable::pct(maj.accuracy, 1),
            std::to_string(x.cycles),
            TextTable::pct(x.accuracy, 1),
            TextTable::num(static_cast<double>(add_cycles) *
                               memCycleNs / 1000.0,
                           1),
            TextTable::pct(static_cast<double>(exact) /
                               static_cast<double>(av.size()),
                           1),
            TextTable::pct(static_cast<double>(
                               profile.reliableCount(1.0)) /
                               static_cast<double>(engine.lanes()),
                           1),
        });
    }
    table.print();

    const double overhead =
        static_cast<double>(maj_c) / static_cast<double>(maj_b) - 1.0;
    std::printf("\nper-op F-MAJ overhead vs MAJ3: %s (paper: +29%% "
                "for the majority step itself)\n",
                TextTable::pct(overhead, 1).c_str());
    const bool ok = overhead > 0.05 && overhead < 1.0;
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
