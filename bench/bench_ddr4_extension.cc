/**
 * @file
 * DDR4 extension bench (paper Secs. VI-A1 and VII): QUAC-TRNG proved
 * four-row activation works on commodity DDR4; the paper argues
 * F-MAJ and Half-m therefore "potentially" extend to DDR4 modules,
 * which cannot open three rows. This bench makes that argument
 * concrete on the DDR4 extension group M: capability probe, F-MAJ
 * coverage, Half-m distinguishable fraction, and Frac-PUF quality.
 */

#include <cstdio>

#include "analysis/capability.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/fmaj.hh"
#include "core/half_m.hh"
#include "core/multi_row.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main()
{
    telemetry::RunScope telem("bench_ddr4_extension");
    setVerbose(false);
    std::puts("DDR4 extension (group M, 16 banks; QUAC-TRNG-style "
              "part)\n");

    const auto params = sim::DramParams::ddr4();
    sim::DramChip chip(sim::DramGroup::M, 1, params);
    softmc::MemoryController mc(chip, false);

    // 1. Capability probe: four rows but not three - like C/D.
    const auto cap = analysis::probeCapability(mc);
    std::printf("probed: frac=%d three-row=%d four-row=%d "
                "(expect 1/0/1)\n",
                cap.frac, cap.threeRow, cap.fourRow);
    bool ok = cap.frac && !cap.threeRow && cap.fourRow;

    // DDR4 checker vendor: nothing works.
    sim::DramChip checker(sim::DramGroup::N, 1, params);
    softmc::MemoryController mc_n(checker, false);
    const auto cap_n = analysis::probeCapability(mc_n);
    std::printf("checker group N: frac=%d four-row=%d (expect 0/0)\n\n",
                cap_n.frac, cap_n.fourRow);
    ok &= !cap_n.frac && !cap_n.fourRow;

    // 2. F-MAJ coverage with the fitted best configuration.
    const auto cfg = core::bestFMajConfig(sim::DramGroup::M);
    const bool combos[6][3] = {
        {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
        {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
    };
    const std::size_t cols = params.colsPerRow;
    std::vector<bool> pass(cols, true);
    for (const auto &combo : combos) {
        const std::array<BitVector, 3> ops = {
            BitVector(cols, combo[0]),
            BitVector(cols, combo[1]),
            BitVector(cols, combo[2]),
        };
        const bool expected =
            static_cast<int>(combo[0]) + combo[1] + combo[2] >= 2;
        const auto result = core::fmaj(mc, 0, cfg, ops);
        for (std::size_t c = 0; c < cols; ++c)
            if (result.get(c) != expected)
                pass[c] = false;
    }
    std::size_t covered = 0;
    for (const bool p : pass)
        covered += p;
    const double coverage = static_cast<double>(covered) /
                            static_cast<double>(cols);
    std::printf("F-MAJ coverage on DDR4 (frac in R%u, %d Fracs): %s\n",
                1u, cfg.numFracs, TextTable::pct(coverage, 1).c_str());
    ok &= coverage > 0.7;

    // 3. Half-m distinguishable fraction (via the direct MAJ3-style
    //    four-row probe: store half, probe with rails in R2).
    const auto opened = core::plannedOpenedRows(chip, 8, 1);
    BitVector mask(cols, true);
    std::size_t distinguishable = 0;
    {
        core::halfM(mc, 0, 8, 1,
                    core::halfMInitPatterns(opened, mask, false));
        // Probe by direct voltage inspection: a distinguishable Half
        // sits between 0.3 and 1.2 V (no three-row MAJ3 on DDR4).
        for (ColAddr c = 0; c < cols; ++c) {
            const double v = chip.bank(0).cellVoltage(0, c);
            distinguishable += v > 0.3 && v < 1.2;
        }
    }
    std::printf("Half-m columns holding a mid-level value: %s\n",
                TextTable::pct(static_cast<double>(distinguishable) /
                                   static_cast<double>(cols),
                               1)
                    .c_str());
    ok &= distinguishable > 0;

    // 4. PUF quality carries over.
    puf::FracPuf device_puf(mc, 10);
    const puf::Challenge ch{1, 5};
    const auto r1 = device_puf.evaluate(ch);
    const auto r2 = device_puf.evaluate(ch);
    sim::DramChip other(sim::DramGroup::M, 2, params);
    softmc::MemoryController mc2(other, false);
    puf::FracPuf puf2(mc2, 10);
    const double intra = puf::normalizedHammingDistance(r1, r2);
    const double inter =
        puf::normalizedHammingDistance(r1, puf2.evaluate(ch));
    std::printf("Frac-PUF on DDR4: intra-HD %.3f, inter-HD %.3f\n",
                intra, inter);
    ok &= intra < 0.1 && inter > 0.3;

    std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
