/**
 * @file
 * Regenerates paper Fig. 10: (a) the per-input-combination breakdown
 * of F-MAJ coverage on group C, and (b)/(c) the stability CDFs of
 * F-MAJ on groups B and C, including the paper's headline: the
 * in-memory majority error rate drops from 9.1% (original MAJ3) to
 * 2.2% (F-MAJ).
 */

#include <cstdio>
#include <cstring>

#include "analysis/fmaj_study.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

void
printCdfSummary(const char *name,
                const analysis::FMajStabilityResult &r)
{
    std::printf("%s\n", name);
    TextTable table({"module", "p10 success", "median", "p90",
                     "always-correct"});
    for (std::size_t m = 0; m < r.columnSuccess.size(); ++m) {
        const auto &cs = r.columnSuccess[m];
        auto q = [&cs](double f) {
            return cs[static_cast<std::size_t>(
                f * static_cast<double>(cs.size() - 1))];
        };
        table.addRow({std::to_string(m), TextTable::pct(q(0.10), 1),
                      TextTable::pct(q(0.50), 1),
                      TextTable::pct(q(0.90), 1),
                      TextTable::pct(r.alwaysCorrect[m], 1)});
    }
    table.print();
    std::printf("mean error rate (columns not always correct): %s\n\n",
                TextTable::pct(r.meanErrorRate, 1).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig10_fmaj_stability");
    setVerbose(false);
    analysis::FMajStudyParams combo_params;
    analysis::FMajStabilityParams stab_params;
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
        combo_params.modules = 1;
        combo_params.subarraysPerModule = 1;
        combo_params.dram.colsPerRow = 128;
        stab_params.modules = 1;
        stab_params.subarrays = 2;
        stab_params.trials = 100;
    }

    // (a) Per-combination breakdown, group C, frac in R1, init ones.
    std::puts("Fig. 10a: F-MAJ success per input combination "
              "(group C, frac in R1, init all ones)\n");
    auto cfg = core::bestFMajConfig(sim::DramGroup::C);
    cfg.fracRow = cfg.actFirst; // R1
    cfg.fracInitOnes = true;
    const auto breakdown = analysis::fmajComboBreakdown(
        sim::DramGroup::C, cfg, combo_params);
    {
        TextTable table({"#Frac", "{1,0,0}", "{0,1,0}", "{0,0,1}",
                         "{0,1,1}", "{1,0,1}", "{1,1,0}", "overall"});
        for (std::size_t n = 0; n < breakdown.success.size(); ++n) {
            std::vector<std::string> row = {std::to_string(n)};
            for (std::size_t k = 0; k < 6; ++k)
                row.push_back(
                    TextTable::pct(breakdown.success[n][k], 1));
            row.push_back(TextTable::pct(breakdown.overall[n], 1));
            table.addRow(std::move(row));
        }
        table.print();
    }
    // Green lines (majority one: {0,1,1},{1,0,1},{1,1,0}) start high
    // and decline; blue lines (majority zero) start low and rise.
    const auto &first = breakdown.success[0];
    const auto &last = breakdown.success.back();
    bool ok = first[5] > 0.9 && first[0] < 0.7;
    ok &= last[0] > first[0]; // zero-majority combos improve
    std::puts("");

    // (b)/(c) Stability CDFs.
    std::puts("Fig. 10b/c: stability of in-memory majority "
              "(random inputs, repeated trials)\n");
    const auto base_b = analysis::fmajStabilityStudy(
        sim::DramGroup::B, /*baseline_maj3=*/true, stab_params);
    printCdfSummary("group B, original MAJ3 (baseline)", base_b);
    const auto fmaj_b = analysis::fmajStabilityStudy(
        sim::DramGroup::B, /*baseline_maj3=*/false, stab_params);
    printCdfSummary("group B, F-MAJ (best config)", fmaj_b);
    const auto fmaj_c = analysis::fmajStabilityStudy(
        sim::DramGroup::C, /*baseline_maj3=*/false, stab_params);
    printCdfSummary("group C, F-MAJ (best config)", fmaj_c);

    std::printf("error rate: original MAJ3 %s -> F-MAJ %s "
                "(paper: 9.1%% -> 2.2%%)\n",
                TextTable::pct(base_b.meanErrorRate, 1).c_str(),
                TextTable::pct(fmaj_b.meanErrorRate, 1).c_str());

    // Headline shape: F-MAJ strictly more stable than the baseline;
    // group C spans a wide always-correct range (paper: 33%-85%).
    ok &= fmaj_b.meanErrorRate < base_b.meanErrorRate;
    for (const double a : fmaj_b.alwaysCorrect)
        ok &= a > 0.90; // paper: at least 95.4% of columns
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
