/**
 * @file
 * Regenerates paper Fig. 11: intra-HD and inter-HD distributions of
 * the Frac-based PUF for groups A-I plus cross-group, and each
 * group's mean response Hamming weight. Paper headlines: intra-HD
 * concentrates near zero (max 0.051, group G), inter-HD clusters are
 * group-dependent through the Hamming weight (group A: 21% ones),
 * and the minimum inter-HD (0.27) stays far above the maximum
 * intra-HD.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/puf_study.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

std::string
describe(const std::vector<double> &xs)
{
    if (xs.empty())
        return "-";
    OnlineStats s;
    for (const double x : xs)
        s.add(x);
    return strprintf("%.3f [%.3f, %.3f]", s.mean(), s.min(), s.max());
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig11_puf");
    setVerbose(false);
    analysis::PufStudyParams params;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            params.challenges = 10;
            params.dram.colsPerRow = 1024;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        }
    }

    std::puts("Fig. 11: Frac-PUF intra-HD / inter-HD per group "
              "(mean [min, max])\n");

    const auto r = analysis::pufStudy(params);
    TextTable table({"Group", "Hamming weight", "Intra-HD",
                     "Inter-HD (within group)"});
    for (const auto &g : r.groups) {
        table.addRow({sim::groupName(g.group),
                      TextTable::pct(g.hammingWeight, 0),
                      describe(g.intraHd), describe(g.interHd)});
    }
    table.addRow({"cross", "-", "-", describe(r.crossGroupInterHd)});
    table.print();
    if (!csv_dir.empty()) {
        CsvWriter csv({"group", "kind", "hd"});
        for (const auto &g : r.groups) {
            for (const double d : g.intraHd)
                csv.addRow({sim::groupName(g.group), "intra",
                            TextTable::num(d, 6)});
            for (const double d : g.interHd)
                csv.addRow({sim::groupName(g.group), "inter",
                            TextTable::num(d, 6)});
        }
        for (const double d : r.crossGroupInterHd)
            csv.addRow({"cross", "inter", TextTable::num(d, 6)});
        csv.writeFile(csv_dir + "/fig11_hd.csv");
    }

    std::printf("\nmax intra-HD: %.3f (paper: 0.051)\n", r.maxIntraHd);
    std::printf("min inter-HD: %.3f (paper: 0.27)\n", r.minInterHd);

    bool ok = true;
    // Reliability: intra-HD near zero.
    ok &= r.maxIntraHd < 0.1;
    // Uniqueness: clear margin between intra and inter.
    ok &= r.minInterHd > 0.2;
    ok &= r.minInterHd > 3.0 * r.maxIntraHd;
    // Group A's biased Hamming weight (paper: 21% ones).
    for (const auto &g : r.groups) {
        if (g.group == sim::DramGroup::A)
            ok &= g.hammingWeight > 0.1 && g.hammingWeight < 0.35;
    }
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
