/**
 * @file
 * Regenerates paper Fig. 12: Frac-PUF robustness to supply-voltage
 * and temperature changes. (a) responses regenerated ten days later
 * at 1.4 V supply: max intra-HD 0.07, min inter-HD 0.30. (b)
 * responses at 20/40/60 C vs the 20 C baseline: intra-HD grows
 * mildly with temperature but stays far below the inter-HD.
 */

#include <cstdio>
#include <cstring>

#include "analysis/puf_study.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig12_puf_env");
    setVerbose(false);
    analysis::PufStudyParams params;
    params.modulesPerGroup = 1; // env study spans all nine groups
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
        params.challenges = 10;
        params.dram.colsPerRow = 1024;
    }

    std::puts("Fig. 12: Frac-PUF under environmental changes\n");
    const auto r = analysis::pufEnvStudy(params);

    std::puts("(a) supply voltage 1.5 V -> 1.4 V, ten days apart:");
    {
        OnlineStats intra, inter;
        for (const double d : r.intraVdd)
            intra.add(d);
        for (const double d : r.interVdd)
            inter.add(d);
        TextTable table({"metric", "mean", "min", "max"});
        table.addRow({"intra-HD", TextTable::num(intra.mean()),
                      TextTable::num(intra.min()),
                      TextTable::num(intra.max())});
        table.addRow({"inter-HD", TextTable::num(inter.mean()),
                      TextTable::num(inter.min()),
                      TextTable::num(inter.max())});
        table.print();
        std::printf("max intra-HD %.3f (paper: 0.07), min inter-HD "
                    "%.3f (paper: 0.30)\n\n",
                    r.maxIntraVdd, r.minInterVdd);
    }

    std::puts("(b) temperature sweep vs 20 C baseline "
              "(three months apart):");
    {
        TextTable table({"temperature", "mean intra-HD",
                         "max intra-HD"});
        for (const auto &p : r.temperatures) {
            table.addRow({strprintf("%.0f C", p.temperatureC),
                          TextTable::num(p.meanIntraHd),
                          TextTable::num(p.maxIntraHd)});
        }
        table.print();
        std::printf("min inter-HD across temperatures: %.3f\n",
                    r.minInterTemp);
    }

    bool ok = true;
    // (a) robust to the voltage change.
    ok &= r.maxIntraVdd < 0.15;
    ok &= r.minInterVdd > 2.0 * r.maxIntraVdd;
    // (b) intra-HD grows (weakly) with temperature yet stays small.
    ok &= r.temperatures.size() == 3;
    ok &= r.temperatures.back().meanIntraHd + 1e-9 >=
          r.temperatures.front().meanIntraHd;
    ok &= r.temperatures.back().maxIntraHd < 0.15;
    ok &= r.minInterTemp > 2.0 * r.temperatures.back().maxIntraHd;
    std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
