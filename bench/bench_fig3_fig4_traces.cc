/**
 * @file
 * Regenerates paper Figs. 3 and 4 as voltage traces: the cell (and
 * implied bit-line) voltage at each step of a Frac operation and of a
 * Half-m operation, sampled from the simulator between commands.
 *
 * Fig. 3 annotates: (1) bit-line precharged to V_dd/2 with the cell
 * at a rail, (2) ACT begins charge sharing, (3) the interrupting PRE
 * freezes a fractional level, (4) the next Frac moves it closer to
 * V_dd/2. Fig. 4 shows the all-ones column ending as a weak one, the
 * all-zeros column as a weak zero, and the two-two column near
 * V_dd/2.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/frac_op.hh"
#include "core/half_m.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

sim::DramParams
traceParams()
{
    sim::DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 64;
    return p;
}

double
meanV(sim::DramChip &chip, RowAddr row)
{
    double sum = 0.0;
    const auto cols = chip.dramParams().colsPerRow;
    for (ColAddr c = 0; c < cols; ++c)
        sum += chip.bank(0).cellVoltage(row, c);
    return sum / cols;
}

} // namespace

int
main()
{
    telemetry::RunScope telem("bench_fig3_fig4_traces");
    setVerbose(false);

    // ---- Fig. 3: cell voltage during consecutive Frac operations ----
    std::puts("Fig. 3: mean cell voltage across a row during "
              "consecutive Frac operations (V_dd = 1.5 V)");
    {
        sim::DramChip chip(sim::DramGroup::B, 1, traceParams());
        softmc::MemoryController mc(chip, false);
        TextTable table({"step", "cell voltage"});
        mc.fillRowVoltage(0, 4, true);
        table.addRow({"(1) initial value (all ones)",
                      TextTable::num(meanV(chip, 4), 3) + " V"});
        for (int n = 1; n <= 4; ++n) {
            core::frac(mc, 0, 4, 1);
            table.addRow({strprintf("(3) after Frac #%d (interrupted "
                                    "ACT)",
                                    n),
                          TextTable::num(meanV(chip, 4), 3) + " V"});
        }
        table.print();
        std::printf("-> monotone approach toward V_dd/2 = 0.75 V "
                    "(Fig. 3's step 4 repeat)\n\n");
    }

    // ---- Fig. 4: the three Half-m column types ----
    std::puts("Fig. 4: cell voltage after an interrupted four-row "
              "activation, by initial column content");
    {
        sim::DramChip chip(sim::DramGroup::B, 1, traceParams());
        softmc::MemoryController mc(chip, false);
        const auto opened = core::plannedOpenedRows(chip, 8, 1);

        struct Case
        {
            const char *name;
            bool half; //!< two-two checker init
            bool background;
        };
        const Case cases[] = {
            {"all ones  -> weak one", false, true},
            {"all zeros -> weak zero", false, false},
            {"two ones, two zeros -> Half value", true, false},
        };
        TextTable table({"column init", "row 0 voltage after Half-m"});
        for (const auto &c : cases) {
            const std::size_t cols = chip.dramParams().colsPerRow;
            BitVector mask(cols, c.half);
            core::halfM(
                mc, 0, 8, 1,
                core::halfMInitPatterns(opened, mask, c.background));
            table.addRow({c.name,
                          TextTable::num(meanV(chip, 0), 3) + " V"});
        }
        table.print();
    }

    // Shape checks: Frac trace monotone toward 0.75; Half between
    // weak zero and weak one.
    sim::DramChip chip(sim::DramGroup::B, 2, traceParams());
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    double prev = meanV(chip, 4);
    bool ok = prev > 1.49;
    for (int n = 0; n < 4; ++n) {
        core::frac(mc, 0, 4, 1);
        const double v = meanV(chip, 4);
        ok &= v < prev && v > 0.70;
        prev = v;
    }
    std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
