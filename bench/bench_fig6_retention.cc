/**
 * @file
 * Regenerates paper Fig. 6: retention-time PDFs as 0-5 Frac
 * operations are issued, per DRAM group, plus the three cell
 * categories [long retention, monotonic decrease, others].
 *
 * The paper's proof-of-concept reading: the monotonic-decrease
 * category (~55% of cells on average) shows Frac lowering the cell
 * voltage incrementally; the long-retention category (~44%) are
 * cells whose leakage is too slow to resolve within the 12 h probe
 * horizon; "others" (<1%) are VRT-like cells.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/retention_study.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/retention.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig6_retention");
    setVerbose(false);
    analysis::RetentionStudyParams params;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            params.modules = 1;
            params.rowsPerModule = 3;
            params.dram.colsPerRow = 256;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        }
    }

    std::puts("Fig. 6: retention-time PDF vs number of Frac "
              "operations\n");

    const auto heatmaps = analysis::retentionStudyAllGroups(params);
    double mean_long = 0.0, mean_mono = 0.0, mean_other = 0.0;

    for (const auto &h : heatmaps) {
        std::printf("Group %s  [long %.0f%%, monotonic %.0f%%, other "
                    "%.1f%%]\n",
                    sim::groupName(h.group).c_str(),
                    h.fracLongRetention * 100.0,
                    h.fracMonotonicDecrease * 100.0,
                    h.fracOther * 100.0);
        std::vector<std::string> headers = {"bucket"};
        for (std::size_t n = 0; n < h.pdf.size(); ++n)
            headers.push_back(std::to_string(n) + " Frac");
        TextTable table(std::move(headers));
        for (std::size_t b = core::RetentionBuckets::numBuckets();
             b-- > 0;) {
            std::vector<std::string> row = {
                core::RetentionBuckets::label(b)};
            for (std::size_t n = 0; n < h.pdf.size(); ++n)
                row.push_back(TextTable::pct(h.pdf[n][b], 1));
            table.addRow(std::move(row));
        }
        table.print();
        std::puts("");
        if (!csv_dir.empty()) {
            CsvWriter csv({"num_fracs", "bucket", "fraction"});
            for (std::size_t n = 0; n < h.pdf.size(); ++n) {
                for (std::size_t b = 0; b < h.pdf[n].size(); ++b) {
                    csv.addRow({std::to_string(n),
                                core::RetentionBuckets::label(b),
                                TextTable::num(h.pdf[n][b], 6)});
                }
            }
            csv.writeFile(csv_dir + "/fig6_group" +
                          sim::groupName(h.group) + ".csv");
        }
        mean_long += h.fracLongRetention;
        mean_mono += h.fracMonotonicDecrease;
        mean_other += h.fracOther;
    }
    const double n = static_cast<double>(heatmaps.size());
    std::printf("average categories: long %.1f%% (paper ~44%%), "
                "monotonic %.1f%% (paper ~55%%), other %.1f%% "
                "(paper <1%%)\n",
                mean_long / n * 100.0, mean_mono / n * 100.0,
                mean_other / n * 100.0);

    // Shape check: on average the monotonic category dominates the
    // "other" category, and more Fracs shift mass out of ">12h".
    bool ok = mean_mono / n > 0.3 && mean_other / n < 0.1;
    for (const auto &h : heatmaps) {
        const std::size_t top = core::RetentionBuckets::numBuckets() - 1;
        ok &= h.pdf[h.pdf.size() - 1][top] <= h.pdf[0][top] + 1e-9;
    }
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
