/**
 * @file
 * Regenerates paper Fig. 7: MAJ3-based verification of Frac on
 * group B. Four subplots; each prints the proportion of the four
 * (X1, X2) result combinations as the number of Frac operations
 * grows. The proof of fractional storage is the (X1=1, X2=0)
 * combination dominating after two or more Fracs.
 */

#include <cstdio>
#include <cstring>

#include "analysis/maj3_study.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig7_maj3");
    setVerbose(false);
    analysis::Maj3StudyParams params;
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
        params.modules = 1;
        params.subarraysPerModule = 2;
        params.dram.colsPerRow = 256;
    }

    std::puts("Fig. 7: MAJ3 results vs number of Frac operations "
              "(group B)\n");

    const auto series = analysis::maj3Study(params);
    const char *subplot = "abcd";
    for (std::size_t i = 0; i < series.size(); ++i) {
        std::printf("(%c) %s\n", subplot[i], series[i].label.c_str());
        TextTable table({"#Frac", "X1=1,X2=1", "X1=1,X2=0 (proof)",
                         "X1=0,X2=1", "X1=0,X2=0"});
        for (std::size_t n = 0; n < series[i].combos.size(); ++n) {
            const auto &c = series[i].combos[n];
            table.addRow({std::to_string(n), TextTable::pct(c[0]),
                          TextTable::pct(c[1]), TextTable::pct(c[2]),
                          TextTable::pct(c[3])});
        }
        table.print();
        std::puts("");
    }

    // Shape checks mirrored from the paper's reading of the figure.
    bool ok = true;
    for (const auto &s : series) {
        const auto &no_frac = s.combos[0];
        const auto &two = s.combos[2];
        // Baseline: X1 == X2 == the stored rail value.
        ok &= (s.initOnes ? no_frac[0] : no_frac[3]) > 0.9;
        // With >= 2 Fracs the proof combination dominates.
        ok &= two[analysis::maj3ProofComboIndex] > 0.9;
    }
    std::printf("shape check (baseline rail + proof dominance): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
