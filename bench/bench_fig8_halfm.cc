/**
 * @file
 * Regenerates paper Fig. 8: retention profiles and MAJ3 results of
 * the values Half-m generates on group B - the Half value, the
 * "weak" ones/zeros, with the 5-Frac fractional value and a normal
 * one as references. The paper's headline: ~16% of bits generate a
 * distinguishable Half value; weak ones/zeros behave like normal
 * ones/zeros.
 */

#include <cstdio>
#include <cstring>

#include "analysis/halfm_study.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/retention.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig8_halfm");
    setVerbose(false);
    analysis::HalfMStudyParams params;
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
        params.modules = 1;
        params.subarraysPerModule = 2;
        params.dram.colsPerRow = 256;
    }

    std::puts("Fig. 8: Half-m evaluation on group B "
              "(rows {0,1,8,9}, ACT(8)-PRE-ACT(1))\n");

    const auto r = analysis::halfMStudy(params);

    std::puts("retention-time PDFs:");
    {
        TextTable table({"bucket", "Half value", "weak one",
                         "normal one", "5-Frac reference"});
        for (std::size_t b = core::RetentionBuckets::numBuckets();
             b-- > 0;) {
            table.addRow({core::RetentionBuckets::label(b),
                          TextTable::pct(r.retentionHalf[b], 1),
                          TextTable::pct(r.retentionWeakOne[b], 1),
                          TextTable::pct(r.retentionNormalOne[b], 1),
                          TextTable::pct(r.retentionFrac5[b], 1)});
        }
        table.print();
    }

    std::puts("\nMAJ3 results (X1: probe=1, X2: probe=0):");
    {
        TextTable table({"value under test", "X1=1,X2=1",
                         "X1=1,X2=0 (Half)", "X1=0,X2=1",
                         "X1=0,X2=0"});
        auto add = [&table](const char *name,
                            const std::array<double, 4> &c) {
            table.addRow({name, TextTable::pct(c[0], 1),
                          TextTable::pct(c[1], 1),
                          TextTable::pct(c[2], 1),
                          TextTable::pct(c[3], 1)});
        };
        add("Half value", r.maj3Half);
        add("weak ones", r.maj3WeakOnes);
        add("weak zeros", r.maj3WeakZeros);
        table.print();
    }

    std::printf("\ndistinguishable Half value: %s of bits "
                "(paper: 16%%)\n",
                TextTable::pct(r.distinguishableHalf, 1).c_str());

    // Shape checks:
    bool ok = true;
    // A minority (but nonzero) fraction of distinguishable bits.
    ok &= r.distinguishableHalf > 0.05 && r.distinguishableHalf < 0.4;
    // Weak ones behave like ones in MAJ3 (X1 = 1 dominates).
    ok &= r.maj3WeakOnes[0] > 0.6;
    // Weak zeros behave like zeros (X2 = 0; combo (0,0) dominates).
    ok &= r.maj3WeakZeros[3] > 0.6;
    // Normal ones hold their retention; Half values die fast.
    const std::size_t top = core::RetentionBuckets::numBuckets() - 1;
    ok &= r.retentionNormalOne[top] > 0.8;
    ok &= r.retentionHalf[0] > r.retentionNormalOne[0];
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
