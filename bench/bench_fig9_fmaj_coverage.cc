/**
 * @file
 * Regenerates paper Fig. 9: coverage of the F-MAJ operation as a
 * function of the number of Frac operations, for every choice of
 * fractional row (R1..R4) and initial value, on groups B, C, and D.
 * Group B also prints the original three-row MAJ3 baseline (the
 * dashed line of Fig. 9a/d).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/fmaj_study.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_fig9_fmaj_coverage");
    setVerbose(false);
    analysis::FMajStudyParams params;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            params.modules = 1;
            params.subarraysPerModule = 2;
            params.dram.colsPerRow = 128;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            parallel::setThreads(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
        }
    }

    std::puts("Fig. 9: F-MAJ coverage vs number of Frac operations\n");

    const char *panels = "abc";
    int panel = 0;
    bool ok = true;
    double best_b = 0.0, baseline_b = 0.0;

    for (const auto group : sim::fourRowCapableGroups()) {
        const auto result = analysis::fmajCoverageStudy(group, params);
        std::printf("(%c) group %s\n", panels[panel++],
                    sim::groupName(group).c_str());

        TextTable table({"frac row", "init", "0 Frac", "1", "2", "3",
                         "4", "5"});
        double best_any = 0.0;
        for (const auto &s : result.series) {
            std::vector<std::string> row = {
                "R" + std::to_string(s.fracRowIndex) + " (row " +
                    std::to_string(s.fracRow) + ")",
                s.initOnes ? "ones" : "zeros",
            };
            for (const auto &p : s.byNumFracs) {
                row.push_back(TextTable::pct(p.mean, 1) + "+-" +
                              TextTable::pct(p.ciHalf, 1));
                best_any = std::max(best_any, p.mean);
            }
            table.addRow(std::move(row));
        }
        table.print();
        if (!csv_dir.empty()) {
            CsvWriter csv({"frac_row", "init", "num_fracs",
                           "coverage", "ci_half"});
            for (const auto &s2 : result.series) {
                for (std::size_t n = 0; n < s2.byNumFracs.size();
                     ++n) {
                    csv.addRow({"R" + std::to_string(s2.fracRowIndex),
                                s2.initOnes ? "ones" : "zeros",
                                std::to_string(n),
                                TextTable::num(
                                    s2.byNumFracs[n].mean, 6),
                                TextTable::num(
                                    s2.byNumFracs[n].ciHalf, 6)});
                }
            }
            csv.writeFile(csv_dir + "/fig9_group" +
                          sim::groupName(group) + ".csv");
        }
        if (result.hasBaseline) {
            std::printf("baseline three-row MAJ3 coverage: %s\n",
                        TextTable::pct(result.baselineMaj3, 1).c_str());
            baseline_b = result.baselineMaj3;
            best_b = best_any;
        }
        std::printf("best F-MAJ coverage: %s\n\n",
                    TextTable::pct(best_any, 1).c_str());

        // Paper: F-MAJ works (non-zero) on ALL chips that open four
        // rows, and coverage grows once fractional values are in play.
        ok &= best_any > 0.5;
    }

    // (d) The paper's zoomed panel: group B's best configuration on
    // a finer Frac sweep against the MAJ3 baseline.
    {
        std::puts("(d) group B, frac in R2 (init ones), fine sweep");
        analysis::FMajStudyParams fine = params;
        fine.maxFracs = 8;
        const auto r = analysis::fmajCoverageStudy(sim::DramGroup::B,
                                                   fine);
        const analysis::FMajCoverageSeries *best = nullptr;
        for (const auto &s : r.series) {
            if (s.fracRowIndex == 2 && s.initOnes)
                best = &s;
        }
        TextTable table({"#Frac", "F-MAJ coverage",
                         "baseline MAJ3"});
        for (std::size_t n = 0; n < best->byNumFracs.size(); ++n) {
            table.addRow({std::to_string(n),
                          TextTable::pct(best->byNumFracs[n].mean, 1),
                          TextTable::pct(r.baselineMaj3, 1)});
        }
        table.print();
        std::puts("");
    }

    // Paper headline: best F-MAJ beats the original MAJ3 coverage
    // (99.8% vs 98.0% on group B).
    std::printf("group B: F-MAJ %s vs baseline MAJ3 %s (paper: 99.8%% "
                "vs 98.0%%)\n",
                TextTable::pct(best_b, 1).c_str(),
                TextTable::pct(baseline_b, 1).c_str());
    ok &= best_b > baseline_b;
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
