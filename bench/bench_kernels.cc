/**
 * @file
 * Micro-benchmarks of the columnar kernel layer (sim/kernels) and the
 * batched RNG primitives feeding it: per-kernel nanosecond timings at
 * the row widths the simulator actually runs (one 16 K-column row, as
 * in the NIST/PUF benches, plus a small 1 K row for cache-resident
 * numbers). These are the building blocks whose sum bounds every
 * Bank hot path; when a full-bench number moves, this is where to
 * look first.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/rng_buffer.hh"
#include "common/sha256.hh"
#include "common/simd/aligned.hh"
#include "common/simd/simd.hh"
#include "sim/kernels.hh"
#include "sim/variation.hh"
#include "sim/vendor.hh"
#include "telemetry/report.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

constexpr double kVdd = 1.0;
constexpr double kHalf = kVdd / 2.0;
constexpr double kCb = 4.0;

/** Deterministically filled working set for one row width. */
struct RowFixture
{
    explicit RowFixture(std::size_t n)
        : volts(n), alpha(n), coupling(n), fracOff(n), sa(n), dec(n),
          num(n), den(n), eq(n), noise(n), mul(n),
          words((n + 63) / 64)
    {
        Rng rng(0x5eedULL + n);
        for (std::size_t i = 0; i < n; ++i) {
            volts[i] = static_cast<float>(rng.uniform(0.0, kVdd));
            alpha[i] = static_cast<float>(rng.uniform(0.05, 0.95));
            coupling[i] = static_cast<float>(rng.uniform(0.8, 1.2));
            fracOff[i] = static_cast<float>(rng.uniform(-0.01, 0.01));
            sa[i] = static_cast<float>(rng.uniform(-0.005, 0.005));
            noise[i] = rng.uniform(-0.01, 0.01);
            mul[i] = rng.uniform(0.99, 1.0);
            num[i] = kCb * kHalf;
            den[i] = kCb;
        }
        for (auto &w : words)
            w = rng.next();
    }

    // Aligned like the Bank scratch the kernels really run on.
    simd::AlignedVector<float> volts, alpha, coupling, fracOff, sa;
    simd::AlignedVector<std::uint8_t> dec;
    simd::AlignedVector<double> num, den, eq, noise, mul;
    simd::AlignedVector<std::uint64_t> words;
};

void
rowArgs(benchmark::internal::Benchmark *b)
{
    b->Arg(1024)->Arg(16384);
}

void
BM_decayMultiply(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::decayMultiply(f.volts.data(), f.mul.data(),
                               f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_chargeAccumulate(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::chargeAccumulate(f.num.data(), f.den.data(),
                                  f.volts.data(), f.coupling.data(),
                                  1.0, f.volts.size());
        benchmark::DoNotOptimize(f.num.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_equilibrium(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::equilibrium(f.eq.data(), f.num.data(), f.den.data(),
                             f.eq.size());
        benchmark::DoNotOptimize(f.eq.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_senseDecide(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::senseDecide(f.dec.data(), f.eq.data(), f.sa.data(),
                             f.noise.data(), kHalf, f.dec.size());
        benchmark::DoNotOptimize(f.dec.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_driveRails(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::driveRails(f.volts.data(), f.dec.data(),
                            static_cast<float>(kVdd), f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_settleToward(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::settleToward(f.volts.data(), f.alpha.data(),
                              f.eq.data(), f.fracOff.data(),
                              f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_fracSettle(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::fracSettle(f.volts.data(), f.alpha.data(),
                            f.coupling.data(), f.fracOff.data(),
                            f.noise.data(), 1.0, kCb * kHalf, kCb,
                            f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_restoreTruncate(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::restoreTruncate(f.volts.data(), kHalf, 0.8,
                                 f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_fillFromBits(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::fillFromBits(f.volts.data(), f.words.data(), false,
                              static_cast<float>(kVdd),
                              f.volts.size());
        benchmark::DoNotOptimize(f.volts.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_packDecisions(benchmark::State &state)
{
    RowFixture f(state.range(0));
    for (auto _ : state) {
        kernels::packDecisions(f.words.data(), f.dec.data(), false,
                               f.dec.size());
        benchmark::DoNotOptimize(f.words.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_rngFillGaussian(benchmark::State &state)
{
    Rng rng(0x5eedULL);
    RngBuffer buf;
    const std::size_t n = state.range(0);
    for (auto _ : state) {
        const auto span = buf.gaussian(rng, n, 0.0, 1.0);
        benchmark::DoNotOptimize(span.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_rngSkipGaussians(benchmark::State &state)
{
    Rng rng(0x5eedULL);
    const std::size_t n = state.range(0);
    for (auto _ : state) {
        rng.skipGaussians(n);
        benchmark::DoNotOptimize(&rng);
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_rngFillChance(benchmark::State &state)
{
    Rng rng(0x5eedULL);
    std::vector<std::uint8_t> dst(state.range(0));
    for (auto _ : state) {
        rng.fillChance({dst.data(), dst.size()}, 0.5);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_materializeRow(benchmark::State &state)
{
    const VendorProfile &profile =
        vendorProfile(sim::DramGroup::A);
    VariationMap variation(profile, 1);
    const std::size_t n = state.range(0);
    std::vector<std::uint8_t> startup(n), vrt(n);
    std::vector<double> alpha(n), tau(n), coupling(n), fracOff(n);
    RowAddr row = 0;
    for (auto _ : state) {
        variation.materializeRow(0, row++, n, startup.data(),
                                 alpha.data(), tau.data(),
                                 coupling.data(), fracOff.data(),
                                 vrt.data());
        benchmark::DoNotOptimize(alpha.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_decayMultiply)->Apply(rowArgs);
BENCHMARK(BM_chargeAccumulate)->Apply(rowArgs);
BENCHMARK(BM_equilibrium)->Apply(rowArgs);
BENCHMARK(BM_senseDecide)->Apply(rowArgs);
BENCHMARK(BM_driveRails)->Apply(rowArgs);
BENCHMARK(BM_settleToward)->Apply(rowArgs);
BENCHMARK(BM_fracSettle)->Apply(rowArgs);
BENCHMARK(BM_restoreTruncate)->Apply(rowArgs);
BENCHMARK(BM_fillFromBits)->Apply(rowArgs);
BENCHMARK(BM_packDecisions)->Apply(rowArgs);
BENCHMARK(BM_rngFillGaussian)->Apply(rowArgs);
BENCHMARK(BM_rngSkipGaussians)->Apply(rowArgs);
BENCHMARK(BM_rngFillChance)->Apply(rowArgs);
BENCHMARK(BM_materializeRow)->Apply(rowArgs);

/** The DRBG refill primitive: n independent pre-padded blocks. */
void
BM_sha256SingleBlocks(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> blocks(n * 64, 0);
    Rng rng(0x5eedULL);
    for (auto &b : blocks)
        b = static_cast<std::uint8_t>(rng.next());
    for (std::size_t b = 0; b < n; ++b) {
        // Shape of the DRBG's blocks: 40-byte message, padded.
        std::uint8_t *blk = blocks.data() + 64 * b;
        blk[40] = 0x80;
        std::memset(blk + 41, 0, 21);
        blk[62] = 0x01;
        blk[63] = 0x40;
    }
    std::vector<Sha256::Digest> out(n);
    for (auto _ : state) {
        Sha256::hashSingleBlocks(blocks.data(), n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetBytesProcessed(state.iterations() * n * 32);
}

BENCHMARK(BM_sha256SingleBlocks)->Arg(8)->Arg(32);

} // namespace

// Expanded BENCHMARK_MAIN() with a telemetry run scope around the
// benchmark loop (reports land wherever FRACDRAM_TELEMETRY points).
int
main(int argc, char **argv)
{
    // Machine-readable dispatch probe for scripts/run_benches.sh:
    // what this process would resolve to, and what the CPU offers.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--print-isa") == 0) {
            const auto &f = simd::cpuFeatures();
            std::printf(
                "{\"resolved\": \"%s\", \"sha_ni_active\": %s, "
                "\"hw_avx2\": %s, \"hw_avx512\": %s, "
                "\"hw_sha_ni\": %s}\n",
                simd::isaName(simd::activeIsa()),
                simd::shaNiActive() ? "true" : "false",
                f.avx2 ? "true" : "false",
                f.avx512 ? "true" : "false",
                f.shaNi ? "true" : "false");
            return 0;
        }
    }
    fracdram::telemetry::RunScope telem("bench_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
