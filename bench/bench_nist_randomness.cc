/**
 * @file
 * Regenerates the paper's randomness row (Sec. VI-B2): concatenated
 * Frac-PUF responses, whitened with a Von Neumann extractor, pass all
 * 15 NIST SP 800-22 tests at one million bits per module.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "common/table.hh"
#include "puf/extractor.hh"
#include "puf/nist.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

/** Collect at least @p target whitened bits from one module's PUF. */
BitVector
collectWhitened(sim::DramGroup group, std::uint64_t serial,
                std::size_t target)
{
    sim::DramParams dram;
    dram.colsPerRow = 16384;
    dram.rowsPerSubarray = 64;
    dram.subarraysPerBank = 2;
    sim::DramChip chip(group, serial, dram);
    softmc::MemoryController mc(chip, false);
    puf::FracPuf frac_puf(mc, 10);
    frac_puf.setDiscardAfterEvaluate(true);

    const auto challenges = frac_puf.makeChallenges(
        std::size_t{dram.numBanks} * (dram.rowsPerBank() - 1));
    BitVector whitened;
    for (const auto &c : challenges) {
        const BitVector raw = frac_puf.evaluate(c);
        whitened.append(puf::VonNeumannExtractor::extract(raw));
        if (whitened.size() >= target)
            break;
    }
    fatal_if(whitened.size() < target,
             "module exhausted at %zu bits (wanted %zu)",
             whitened.size(), target);
    // Truncate to exactly the target length.
    BitVector out(target);
    for (std::size_t i = 0; i < target; ++i)
        out.set(i, whitened.get(i));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_nist_randomness");
    setVerbose(false);
    std::size_t bits = 1000000; // paper: one million bits per module
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0)
        bits = 450000;

    // One biased-weight module (group A, HW ~ 0.21) and one balanced
    // module (group I, HW ~ 0.5): whitening must fix both.
    const sim::DramGroup groups[] = {sim::DramGroup::A,
                                     sim::DramGroup::I};
    bool all_ok = true;
    for (const auto group : groups) {
        std::printf("NIST SP 800-22 on %zu whitened PUF bits, "
                    "group %s module:\n",
                    bits, sim::groupName(group).c_str());
        const BitVector stream = collectWhitened(group, 1, bits);
        auto results = puf::nist::runAll(stream);

        // SP 800-22 practice: a single sub-alpha p-value at
        // alpha=0.01 is expected occasionally even for an ideal
        // source; a failed test is repeated on a fresh, independent
        // stream and only a repeated failure rejects the source.
        std::vector<puf::nist::TestResult> retest_results;
        TextTable table({"test", "p-values", "min p", "result"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            auto &r = results[i];
            std::string verdict = !r.applicable
                                      ? "n/a"
                                      : (r.passed() ? "PASS" : "FAIL");
            if (r.applicable && !r.passed()) {
                if (retest_results.empty()) {
                    // One fresh stream, analysed once, covers every
                    // failing test's retest.
                    retest_results = puf::nist::runAll(
                        collectWhitened(group, 1000, bits));
                }
                const auto &again = retest_results[i];
                if (again.passed()) {
                    verdict = "PASS (retest)";
                    r = again;
                }
            }
            table.addRow({
                r.name,
                std::to_string(r.pValues.size()),
                r.applicable ? TextTable::num(r.minP(), 4) : "-",
                verdict,
            });
            all_ok &= r.passed();
        }
        table.print();
        std::printf("all 15 tests: %s (paper: all passed)\n\n",
                    puf::nist::allPassed(results) ? "PASS" : "FAIL");
    }
    return all_ok ? 0 : 1;
}
