/**
 * @file
 * Frac-PUF vs retention-failure PUF - the paper's prior-work
 * comparison made quantitative (Sec. VI-B1: earlier DRAM PUFs suffer
 * "long evaluation time [and] sensitivity to environmental changes";
 * the CODIC/Frac approach fixes both while needing no hardware
 * change).
 *
 * Both PUFs run on the same simulated modules; the bench compares
 * evaluation latency, same-temperature reliability, cross-temperature
 * reliability, and uniqueness.
 */

#include <cstdio>
#include <functional>

#include "common/logging.hh"
#include "common/table.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "puf/retention_puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

struct Metrics
{
    double evalSeconds;
    double intraSameTemp;
    double intraCrossTemp; // 20 C enrollment vs 45 C evaluation
    double inter;
};

template <typename Puf>
Metrics
measure(sim::DramGroup group, double eval_seconds,
        const std::function<BitVector(Puf &, const puf::Challenge &)>
            &eval_fn)
{
    sim::DramParams params;
    params.colsPerRow = 8192;
    sim::DramChip chip(group, 1, params);
    softmc::MemoryController mc(chip, false);
    Puf device_puf(mc);
    const puf::Challenge ch{0, 4};

    Metrics m{};
    m.evalSeconds = eval_seconds;
    const auto enrolled = eval_fn(device_puf, ch);
    m.intraSameTemp = puf::normalizedHammingDistance(
        enrolled, eval_fn(device_puf, ch));
    chip.env().temperatureC = 45.0;
    m.intraCrossTemp = puf::normalizedHammingDistance(
        enrolled, eval_fn(device_puf, ch));
    chip.env().temperatureC = 20.0;

    sim::DramChip other(group, 2, params);
    softmc::MemoryController mc2(other, false);
    Puf puf2(mc2);
    m.inter = puf::normalizedHammingDistance(enrolled,
                                             eval_fn(puf2, ch));
    return m;
}

} // namespace

int
main()
{
    telemetry::RunScope telem("bench_puf_comparison");
    setVerbose(false);
    std::puts("Frac-PUF vs retention-failure PUF (prior-work "
              "baseline), group B modules, 8 Kbit segment\n");

    // Frac-PUF (1.5 us bus time per evaluation).
    sim::DramParams probe_params;
    probe_params.colsPerRow = 8192;
    sim::DramChip probe(sim::DramGroup::B, 1, probe_params);
    softmc::MemoryController probe_mc(probe, false);
    puf::FracPuf probe_puf(probe_mc, 10);
    const double frac_eval_s =
        static_cast<double>(probe_puf.evaluationCycles()) *
        memCycleNs * 1e-9;

    const auto frac = measure<puf::FracPuf>(
        sim::DramGroup::B, frac_eval_s,
        [](puf::FracPuf &p, const puf::Challenge &c) {
            return p.evaluate(c);
        });

    // Retention PUF: the decay window *is* the evaluation time.
    const double window_s = 120.0;
    const auto ret = measure<puf::RetentionPuf>(
        sim::DramGroup::B, window_s,
        [](puf::RetentionPuf &p, const puf::Challenge &c) {
            return p.evaluate(c);
        });

    TextTable table({"metric", "Frac-PUF", "retention PUF"});
    table.addRow({"evaluation time",
                  strprintf("%.2g s", frac.evalSeconds),
                  strprintf("%.0f s", ret.evalSeconds)});
    table.addRow({"intra-HD (same temp)",
                  TextTable::num(frac.intraSameTemp, 5),
                  TextTable::num(ret.intraSameTemp, 5)});
    table.addRow({"intra-HD (20 C -> 45 C)",
                  TextTable::num(frac.intraCrossTemp, 5),
                  TextTable::num(ret.intraCrossTemp, 5)});
    table.addRow({"inter-HD", TextTable::num(frac.inter, 5),
                  TextTable::num(ret.inter, 5)});
    table.print();

    const double speedup = ret.evalSeconds / frac.evalSeconds;
    std::printf("\nevaluation speedup: %.1e x (the paper's "
                "state-of-the-art-throughput claim)\n",
                speedup);

    // Shape checks. The retention PUF's signature is sparse (only
    // the pathological leaky cells flip within the window), so its
    // raw inter-HD is tiny; the meaningful comparison is the
    // *relative* temperature blow-up: heating multiplies leakage ~6x,
    // so a large share of its signature shifts, while the Frac-PUF's
    // comparator-based response barely moves.
    bool ok = speedup > 1e6;
    ok &= frac.intraCrossTemp < 3.0 * (frac.intraSameTemp + 1e-3);
    const double ret_blowup =
        ret.intraCrossTemp / (ret.intraSameTemp + 1e-6);
    const double frac_blowup =
        frac.intraCrossTemp / (frac.intraSameTemp + 1e-6);
    std::printf("temperature sensitivity (cross/same intra-HD): "
                "Frac-PUF %.1fx, retention PUF %.1fx\n",
                frac_blowup, ret_blowup);
    ok &= ret_blowup > frac_blowup;
    ok &= frac.inter > 0.3;
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
