/**
 * @file
 * Regenerates paper Table I: evaluated DRAM groups and their
 * capability to perform Frac, three-row activation, and four-row
 * activation - probed behaviourally through the command interface.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/capability.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "sim/vendor.hh"
#include "telemetry/report.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_table1_capability");
    setVerbose(false);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            parallel::setThreads(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
    }
    std::puts("Table I: evaluated DRAM chips and their capability of "
              "performing");
    std::puts("Frac, three-row-activation, and four-row-activation "
              "(probed)\n");

    TextTable table({"Group", "Vendor", "Freq(MHz)", "#Chips", "Frac",
                     "Three-row", "Four-row"});
    const auto rows = analysis::scanAllGroups();
    for (const auto &row : rows) {
        auto mark = [](bool b) { return b ? std::string("yes") : ""; };
        table.addRow({
            sim::groupName(row.group),
            row.vendor,
            std::to_string(row.freqMhz),
            std::to_string(row.numChips),
            mark(row.probed.frac),
            mark(row.probed.threeRow),
            mark(row.probed.fourRow),
        });
    }
    table.print();

    // Cross-check against the paper's flags.
    int mismatches = 0;
    for (const auto &row : rows) {
        const auto &p = sim::vendorProfile(row.group);
        mismatches += row.probed.frac != p.supportsFrac;
        mismatches += row.probed.threeRow != p.supportsThreeRow;
        mismatches += row.probed.fourRow != p.supportsFourRow;
    }
    std::printf("\npaper-vs-probed mismatches: %d (expect 0)\n",
                mismatches);
    return mismatches == 0 ? 0 : 1;
}
