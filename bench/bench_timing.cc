/**
 * @file
 * Regenerates the paper's latency and overhead numbers:
 *  - Frac: 7 memory cycles (Sec. III-A)
 *  - in-DRAM row copy: 18 cycles (Sec. VI-A1)
 *  - F-MAJ vs original MAJ3: ~29% more cycles (Sec. VI-A1)
 *  - Frac-PUF evaluation: 88 preparation cycles, ~1.5 us total,
 *    ~0.7 us with an optimized (2-cycle-burst) controller
 *    (Sec. VI-B2)
 * plus a google-benchmark microbenchmark suite of the simulator's
 * primitive operations.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/fmaj.hh"
#include "core/frac_op.hh"
#include "core/maj3.hh"
#include "core/multi_row.hh"
#include "core/rowclone.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

sim::DramParams
pufParams()
{
    sim::DramParams p;
    p.colsPerRow = 65536; // the paper's full 8 KB row
    p.rowsPerSubarray = 64;
    p.subarraysPerBank = 1;
    return p;
}

/**
 * Cycle cost of a full MAJ3 with ComputeDRAM's reserved-row strategy:
 * copy the three operands in, run the charge-sharing op, copy the
 * result back.
 */
Cycles
maj3FlowCycles()
{
    return 3 * core::rowCopyCycles +
           core::buildMultiRowSequence(0, 1, 2, false).lengthCycles() +
           core::rowCopyCycles;
}

/**
 * F-MAJ adds the fractional-row preparation: one copy from a reserved
 * all-ones row plus the Frac operations (the paper quotes the
 * two-Frac configuration for the 29% figure).
 */
Cycles
fmajFlowCycles(int num_fracs)
{
    return maj3FlowCycles() + core::rowCopyCycles +
           static_cast<Cycles>(num_fracs) * core::fracOpCycles;
}

void
printPaperRows()
{
    std::puts("Latency / overhead rows (2.5 ns per memory cycle):\n");
    TextTable table({"quantity", "measured", "paper"});

    const auto frac_seq = core::buildFracSequence(0, 1, 2);
    const Cycles per_frac =
        frac_seq.lengthCycles() -
        core::buildFracSequence(0, 1, 1).lengthCycles();
    table.addRow({"Frac operation", std::to_string(per_frac) +
                                        " cycles",
                  "7 cycles"});

    table.addRow({"in-DRAM row copy",
                  std::to_string(core::buildRowCopySequence(0, 1, 33)
                                     .lengthCycles()) +
                      " cycles",
                  "18 cycles"});

    const double overhead =
        static_cast<double>(fmajFlowCycles(2)) /
            static_cast<double>(maj3FlowCycles()) -
        1.0;
    table.addRow({"F-MAJ vs MAJ3 overhead",
                  TextTable::pct(overhead, 1), "+29%"});

    // PUF evaluation timing on the full 8 KB row.
    sim::DramChip chip(sim::DramGroup::B, 1, pufParams());
    softmc::MemoryController mc(chip, false);
    puf::FracPuf frac_puf(mc, 10);
    table.addRow({"PUF preparation",
                  std::to_string(frac_puf.preparationCycles()) +
                      " cycles",
                  "88 cycles"});
    const double eval_us =
        static_cast<double>(frac_puf.evaluationCycles()) * memCycleNs /
        1000.0;
    table.addRow({"PUF evaluation (8 KB)",
                  TextTable::num(eval_us, 2) + " us", "1.5 us"});
    mc.setCyclesPerBurst(2);
    const double eval_fast_us =
        static_cast<double>(frac_puf.evaluationCycles()) * memCycleNs /
        1000.0;
    table.addRow({"PUF evaluation (optimized MC)",
                  TextTable::num(eval_fast_us, 2) + " us", "0.7 us"});
    table.print();
    std::puts("");
}

// --- google-benchmark microbenchmarks of the simulator itself ---

sim::DramParams
microParams()
{
    sim::DramParams p;
    p.colsPerRow = 1024;
    p.rowsPerSubarray = 64;
    p.subarraysPerBank = 2;
    return p;
}

void
BM_WriteRow(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    BitVector bits(1024, true);
    for (auto _ : state)
        mc.writeRow(0, 4, bits);
}
BENCHMARK(BM_WriteRow);

void
BM_ReadRow(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.readRow(0, 4));
}
BENCHMARK(BM_ReadRow);

void
BM_FracOp(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    for (auto _ : state)
        core::frac(mc, 0, 4, 1);
}
BENCHMARK(BM_FracOp);

void
BM_Maj3(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    for (const RowAddr r : {0u, 1u, 2u})
        mc.fillRowVoltage(0, r, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::maj3InPlace(mc, 0, 1, 2));
}
BENCHMARK(BM_Maj3);

void
BM_FMaj(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    const auto cfg = core::bestFMajConfig(sim::DramGroup::B);
    const std::array<BitVector, 3> ops = {BitVector(1024, true),
                                          BitVector(1024, false),
                                          BitVector(1024, true)};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::fmaj(mc, 0, cfg, ops));
}
BENCHMARK(BM_FMaj);

void
BM_RowCopy(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 20, true);
    for (auto _ : state)
        core::rowCopy(mc, 0, 20, 52);
}
BENCHMARK(BM_RowCopy);

void
BM_PufEvaluate(benchmark::State &state)
{
    sim::DramChip chip(sim::DramGroup::B, 1, microParams());
    softmc::MemoryController mc(chip, false);
    puf::FracPuf frac_puf(mc, 10);
    const puf::Challenge c{0, 4};
    for (auto _ : state)
        benchmark::DoNotOptimize(frac_puf.evaluate(c));
}
BENCHMARK(BM_PufEvaluate);

} // namespace

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_timing");
    setVerbose(false);
    printPaperRows();
    // Swallow the suite-wide --quick flag (unknown to
    // google-benchmark) by shortening the microbenchmark run.
    std::vector<char *> args;
    bool quick = false;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            args.push_back(argv[i]);
    }
    static char min_time[] = "--benchmark_min_time=0.05s";
    if (quick)
        args.push_back(min_time);
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
