/**
 * @file
 * QUAC-TRNG-style true random number generation on the four-row
 * activation (the related-work direction the paper's DDR4 argument
 * rests on). Reports extraction yield, model throughput, and a NIST
 * SP 800-22 subset on the generated stream, for a DDR3 (group B) and
 * a DDR4 (group M) module.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "puf/nist.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"
#include "trng/quac_trng.hh"

using namespace fracdram;

int
main(int argc, char **argv)
{
    telemetry::RunScope telem("bench_trng");
    setVerbose(false);
    std::size_t bits = 200000;
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0)
        bits = 40000;

    std::puts("True random number generation from four-row "
              "activation\n");

    bool ok = true;
    TextTable table({"group", "standard", "bits", "raw samples",
                     "bits/sample", "model throughput"});

    for (const auto group : {sim::DramGroup::B, sim::DramGroup::M}) {
        sim::DramParams params = sim::isDdr4(group)
                                     ? sim::DramParams::ddr4()
                                     : sim::DramParams{};
        params.colsPerRow = 2048;
        sim::DramChip chip(group, 1, params);
        softmc::MemoryController mc(chip, false);
        trng::QuacTrng gen(mc);

        const BitVector stream = gen.generate(bits);
        const double per_sample =
            static_cast<double>(stream.size()) /
            static_cast<double>(gen.rawSamplesUsed());
        table.addRow({
            sim::groupName(group),
            sim::isDdr4(group) ? "DDR4" : "DDR3",
            std::to_string(stream.size()),
            std::to_string(gen.rawSamplesUsed()),
            TextTable::num(per_sample, 1),
            TextTable::num(gen.throughputMbps(), 1) + " Mb/s",
        });

        // Randomness checks on the extracted stream. A single
        // sub-alpha p-value is expected occasionally; retest on a
        // fresh stream before declaring failure (SP 800-22 practice).
        using namespace fracdram::puf::nist;
        auto run_checks = [](const BitVector &s) {
            return std::vector<TestResult>{
                frequency(s),      blockFrequency(s),
                runs(s),           longestRunOfOnes(s),
                cumulativeSums(s), approximateEntropy(s),
                serial(s, 12),
            };
        };
        auto checks = run_checks(stream);
        BitVector retest_stream;
        for (std::size_t i = 0; i < checks.size(); ++i) {
            if (checks[i].passed())
                continue;
            if (retest_stream.empty())
                retest_stream = gen.generate(bits);
            const auto again = run_checks(retest_stream)[i];
            if (!again.passed()) {
                std::printf("group %s FAILED %s twice (p=%.4f)\n",
                            sim::groupName(group).c_str(),
                            again.name.c_str(), again.minP());
                ok = false;
            }
        }
    }
    table.print();
    std::printf("\nNIST subset on extracted bits: %s\n",
                ok ? "all PASS" : "FAIL");
    return ok ? 0 : 1;
}
