file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_ops.dir/bench_compute_ops.cc.o"
  "CMakeFiles/bench_compute_ops.dir/bench_compute_ops.cc.o.d"
  "bench_compute_ops"
  "bench_compute_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
