# Empty compiler generated dependencies file for bench_compute_ops.
# This may be replaced when dependencies are built.
