file(REMOVE_RECURSE
  "CMakeFiles/bench_ddr4_extension.dir/bench_ddr4_extension.cc.o"
  "CMakeFiles/bench_ddr4_extension.dir/bench_ddr4_extension.cc.o.d"
  "bench_ddr4_extension"
  "bench_ddr4_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddr4_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
