# Empty compiler generated dependencies file for bench_fig10_fmaj_stability.
# This may be replaced when dependencies are built.
