file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_puf.dir/bench_fig11_puf.cc.o"
  "CMakeFiles/bench_fig11_puf.dir/bench_fig11_puf.cc.o.d"
  "bench_fig11_puf"
  "bench_fig11_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
