# Empty dependencies file for bench_fig11_puf.
# This may be replaced when dependencies are built.
