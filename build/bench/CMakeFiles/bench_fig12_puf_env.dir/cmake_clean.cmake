file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_puf_env.dir/bench_fig12_puf_env.cc.o"
  "CMakeFiles/bench_fig12_puf_env.dir/bench_fig12_puf_env.cc.o.d"
  "bench_fig12_puf_env"
  "bench_fig12_puf_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_puf_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
