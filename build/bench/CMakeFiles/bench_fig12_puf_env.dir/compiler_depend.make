# Empty compiler generated dependencies file for bench_fig12_puf_env.
# This may be replaced when dependencies are built.
