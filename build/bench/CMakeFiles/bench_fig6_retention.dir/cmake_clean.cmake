file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_retention.dir/bench_fig6_retention.cc.o"
  "CMakeFiles/bench_fig6_retention.dir/bench_fig6_retention.cc.o.d"
  "bench_fig6_retention"
  "bench_fig6_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
