# Empty dependencies file for bench_fig6_retention.
# This may be replaced when dependencies are built.
