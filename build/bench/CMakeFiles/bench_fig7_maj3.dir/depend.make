# Empty dependencies file for bench_fig7_maj3.
# This may be replaced when dependencies are built.
