file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_halfm.dir/bench_fig8_halfm.cc.o"
  "CMakeFiles/bench_fig8_halfm.dir/bench_fig8_halfm.cc.o.d"
  "bench_fig8_halfm"
  "bench_fig8_halfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_halfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
