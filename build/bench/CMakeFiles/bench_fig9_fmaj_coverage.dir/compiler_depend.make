# Empty compiler generated dependencies file for bench_fig9_fmaj_coverage.
# This may be replaced when dependencies are built.
