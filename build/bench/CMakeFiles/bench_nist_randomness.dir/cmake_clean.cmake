file(REMOVE_RECURSE
  "CMakeFiles/bench_nist_randomness.dir/bench_nist_randomness.cc.o"
  "CMakeFiles/bench_nist_randomness.dir/bench_nist_randomness.cc.o.d"
  "bench_nist_randomness"
  "bench_nist_randomness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nist_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
