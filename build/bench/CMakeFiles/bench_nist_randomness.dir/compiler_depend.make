# Empty compiler generated dependencies file for bench_nist_randomness.
# This may be replaced when dependencies are built.
