file(REMOVE_RECURSE
  "CMakeFiles/bench_puf_comparison.dir/bench_puf_comparison.cc.o"
  "CMakeFiles/bench_puf_comparison.dir/bench_puf_comparison.cc.o.d"
  "bench_puf_comparison"
  "bench_puf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_puf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
