# Empty dependencies file for bench_puf_comparison.
# This may be replaced when dependencies are built.
