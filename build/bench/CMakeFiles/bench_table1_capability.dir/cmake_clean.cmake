file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_capability.dir/bench_table1_capability.cc.o"
  "CMakeFiles/bench_table1_capability.dir/bench_table1_capability.cc.o.d"
  "bench_table1_capability"
  "bench_table1_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
