file(REMOVE_RECURSE
  "CMakeFiles/bench_trng.dir/bench_trng.cc.o"
  "CMakeFiles/bench_trng.dir/bench_trng.cc.o.d"
  "bench_trng"
  "bench_trng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
