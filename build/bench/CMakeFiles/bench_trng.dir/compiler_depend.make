# Empty compiler generated dependencies file for bench_trng.
# This may be replaced when dependencies are built.
