file(REMOVE_RECURSE
  "CMakeFiles/bitmap_filter.dir/bitmap_filter.cpp.o"
  "CMakeFiles/bitmap_filter.dir/bitmap_filter.cpp.o.d"
  "bitmap_filter"
  "bitmap_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
