# Empty compiler generated dependencies file for bitmap_filter.
# This may be replaced when dependencies are built.
