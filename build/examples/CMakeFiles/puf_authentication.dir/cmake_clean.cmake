file(REMOVE_RECURSE
  "CMakeFiles/puf_authentication.dir/puf_authentication.cpp.o"
  "CMakeFiles/puf_authentication.dir/puf_authentication.cpp.o.d"
  "puf_authentication"
  "puf_authentication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/puf_authentication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
