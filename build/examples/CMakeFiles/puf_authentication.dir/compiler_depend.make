# Empty compiler generated dependencies file for puf_authentication.
# This may be replaced when dependencies are built.
