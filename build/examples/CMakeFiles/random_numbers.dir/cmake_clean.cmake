file(REMOVE_RECURSE
  "CMakeFiles/random_numbers.dir/random_numbers.cpp.o"
  "CMakeFiles/random_numbers.dir/random_numbers.cpp.o.d"
  "random_numbers"
  "random_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
