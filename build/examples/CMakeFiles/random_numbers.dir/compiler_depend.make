# Empty compiler generated dependencies file for random_numbers.
# This may be replaced when dependencies are built.
