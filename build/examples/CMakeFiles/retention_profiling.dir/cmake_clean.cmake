file(REMOVE_RECURSE
  "CMakeFiles/retention_profiling.dir/retention_profiling.cpp.o"
  "CMakeFiles/retention_profiling.dir/retention_profiling.cpp.o.d"
  "retention_profiling"
  "retention_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
