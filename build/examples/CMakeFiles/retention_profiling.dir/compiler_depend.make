# Empty compiler generated dependencies file for retention_profiling.
# This may be replaced when dependencies are built.
