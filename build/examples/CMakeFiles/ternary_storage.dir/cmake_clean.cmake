file(REMOVE_RECURSE
  "CMakeFiles/ternary_storage.dir/ternary_storage.cpp.o"
  "CMakeFiles/ternary_storage.dir/ternary_storage.cpp.o.d"
  "ternary_storage"
  "ternary_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ternary_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
