# Empty compiler generated dependencies file for ternary_storage.
# This may be replaced when dependencies are built.
