file(REMOVE_RECURSE
  "CMakeFiles/vector_add.dir/vector_add.cpp.o"
  "CMakeFiles/vector_add.dir/vector_add.cpp.o.d"
  "vector_add"
  "vector_add.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
