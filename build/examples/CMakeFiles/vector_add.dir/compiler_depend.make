# Empty compiler generated dependencies file for vector_add.
# This may be replaced when dependencies are built.
