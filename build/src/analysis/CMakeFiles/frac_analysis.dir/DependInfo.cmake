
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/capability.cc" "src/analysis/CMakeFiles/frac_analysis.dir/capability.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/capability.cc.o.d"
  "/root/repo/src/analysis/fmaj_study.cc" "src/analysis/CMakeFiles/frac_analysis.dir/fmaj_study.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/fmaj_study.cc.o.d"
  "/root/repo/src/analysis/halfm_study.cc" "src/analysis/CMakeFiles/frac_analysis.dir/halfm_study.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/halfm_study.cc.o.d"
  "/root/repo/src/analysis/maj3_study.cc" "src/analysis/CMakeFiles/frac_analysis.dir/maj3_study.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/maj3_study.cc.o.d"
  "/root/repo/src/analysis/puf_study.cc" "src/analysis/CMakeFiles/frac_analysis.dir/puf_study.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/puf_study.cc.o.d"
  "/root/repo/src/analysis/retention_study.cc" "src/analysis/CMakeFiles/frac_analysis.dir/retention_study.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/retention_study.cc.o.d"
  "/root/repo/src/analysis/reverse.cc" "src/analysis/CMakeFiles/frac_analysis.dir/reverse.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/reverse.cc.o.d"
  "/root/repo/src/analysis/tau_estimate.cc" "src/analysis/CMakeFiles/frac_analysis.dir/tau_estimate.cc.o" "gcc" "src/analysis/CMakeFiles/frac_analysis.dir/tau_estimate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/frac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/frac_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/softmc/CMakeFiles/frac_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
