file(REMOVE_RECURSE
  "CMakeFiles/frac_analysis.dir/capability.cc.o"
  "CMakeFiles/frac_analysis.dir/capability.cc.o.d"
  "CMakeFiles/frac_analysis.dir/fmaj_study.cc.o"
  "CMakeFiles/frac_analysis.dir/fmaj_study.cc.o.d"
  "CMakeFiles/frac_analysis.dir/halfm_study.cc.o"
  "CMakeFiles/frac_analysis.dir/halfm_study.cc.o.d"
  "CMakeFiles/frac_analysis.dir/maj3_study.cc.o"
  "CMakeFiles/frac_analysis.dir/maj3_study.cc.o.d"
  "CMakeFiles/frac_analysis.dir/puf_study.cc.o"
  "CMakeFiles/frac_analysis.dir/puf_study.cc.o.d"
  "CMakeFiles/frac_analysis.dir/retention_study.cc.o"
  "CMakeFiles/frac_analysis.dir/retention_study.cc.o.d"
  "CMakeFiles/frac_analysis.dir/reverse.cc.o"
  "CMakeFiles/frac_analysis.dir/reverse.cc.o.d"
  "CMakeFiles/frac_analysis.dir/tau_estimate.cc.o"
  "CMakeFiles/frac_analysis.dir/tau_estimate.cc.o.d"
  "libfrac_analysis.a"
  "libfrac_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
