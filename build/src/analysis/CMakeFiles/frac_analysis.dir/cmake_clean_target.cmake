file(REMOVE_RECURSE
  "libfrac_analysis.a"
)
