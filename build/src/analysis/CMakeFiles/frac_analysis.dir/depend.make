# Empty dependencies file for frac_analysis.
# This may be replaced when dependencies are built.
