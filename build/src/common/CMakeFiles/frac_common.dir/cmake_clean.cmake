file(REMOVE_RECURSE
  "CMakeFiles/frac_common.dir/bitvec.cc.o"
  "CMakeFiles/frac_common.dir/bitvec.cc.o.d"
  "CMakeFiles/frac_common.dir/csv.cc.o"
  "CMakeFiles/frac_common.dir/csv.cc.o.d"
  "CMakeFiles/frac_common.dir/logging.cc.o"
  "CMakeFiles/frac_common.dir/logging.cc.o.d"
  "CMakeFiles/frac_common.dir/rng.cc.o"
  "CMakeFiles/frac_common.dir/rng.cc.o.d"
  "CMakeFiles/frac_common.dir/sha256.cc.o"
  "CMakeFiles/frac_common.dir/sha256.cc.o.d"
  "CMakeFiles/frac_common.dir/stats.cc.o"
  "CMakeFiles/frac_common.dir/stats.cc.o.d"
  "CMakeFiles/frac_common.dir/table.cc.o"
  "CMakeFiles/frac_common.dir/table.cc.o.d"
  "libfrac_common.a"
  "libfrac_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
