file(REMOVE_RECURSE
  "libfrac_common.a"
)
