# Empty dependencies file for frac_common.
# This may be replaced when dependencies are built.
