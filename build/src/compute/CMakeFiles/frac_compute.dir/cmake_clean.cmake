file(REMOVE_RECURSE
  "CMakeFiles/frac_compute.dir/adder.cc.o"
  "CMakeFiles/frac_compute.dir/adder.cc.o.d"
  "CMakeFiles/frac_compute.dir/engine.cc.o"
  "CMakeFiles/frac_compute.dir/engine.cc.o.d"
  "CMakeFiles/frac_compute.dir/reliability.cc.o"
  "CMakeFiles/frac_compute.dir/reliability.cc.o.d"
  "libfrac_compute.a"
  "libfrac_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
