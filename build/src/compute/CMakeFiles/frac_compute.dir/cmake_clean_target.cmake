file(REMOVE_RECURSE
  "libfrac_compute.a"
)
