# Empty compiler generated dependencies file for frac_compute.
# This may be replaced when dependencies are built.
