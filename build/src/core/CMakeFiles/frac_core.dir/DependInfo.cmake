
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fmaj.cc" "src/core/CMakeFiles/frac_core.dir/fmaj.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/fmaj.cc.o.d"
  "/root/repo/src/core/frac_op.cc" "src/core/CMakeFiles/frac_core.dir/frac_op.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/frac_op.cc.o.d"
  "/root/repo/src/core/fracdram.cc" "src/core/CMakeFiles/frac_core.dir/fracdram.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/fracdram.cc.o.d"
  "/root/repo/src/core/half_m.cc" "src/core/CMakeFiles/frac_core.dir/half_m.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/half_m.cc.o.d"
  "/root/repo/src/core/maj3.cc" "src/core/CMakeFiles/frac_core.dir/maj3.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/maj3.cc.o.d"
  "/root/repo/src/core/multi_row.cc" "src/core/CMakeFiles/frac_core.dir/multi_row.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/multi_row.cc.o.d"
  "/root/repo/src/core/refresh.cc" "src/core/CMakeFiles/frac_core.dir/refresh.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/refresh.cc.o.d"
  "/root/repo/src/core/retention.cc" "src/core/CMakeFiles/frac_core.dir/retention.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/retention.cc.o.d"
  "/root/repo/src/core/rowclone.cc" "src/core/CMakeFiles/frac_core.dir/rowclone.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/rowclone.cc.o.d"
  "/root/repo/src/core/ternary.cc" "src/core/CMakeFiles/frac_core.dir/ternary.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/ternary.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/core/CMakeFiles/frac_core.dir/verify.cc.o" "gcc" "src/core/CMakeFiles/frac_core.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/softmc/CMakeFiles/frac_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
