file(REMOVE_RECURSE
  "CMakeFiles/frac_core.dir/fmaj.cc.o"
  "CMakeFiles/frac_core.dir/fmaj.cc.o.d"
  "CMakeFiles/frac_core.dir/frac_op.cc.o"
  "CMakeFiles/frac_core.dir/frac_op.cc.o.d"
  "CMakeFiles/frac_core.dir/fracdram.cc.o"
  "CMakeFiles/frac_core.dir/fracdram.cc.o.d"
  "CMakeFiles/frac_core.dir/half_m.cc.o"
  "CMakeFiles/frac_core.dir/half_m.cc.o.d"
  "CMakeFiles/frac_core.dir/maj3.cc.o"
  "CMakeFiles/frac_core.dir/maj3.cc.o.d"
  "CMakeFiles/frac_core.dir/multi_row.cc.o"
  "CMakeFiles/frac_core.dir/multi_row.cc.o.d"
  "CMakeFiles/frac_core.dir/refresh.cc.o"
  "CMakeFiles/frac_core.dir/refresh.cc.o.d"
  "CMakeFiles/frac_core.dir/retention.cc.o"
  "CMakeFiles/frac_core.dir/retention.cc.o.d"
  "CMakeFiles/frac_core.dir/rowclone.cc.o"
  "CMakeFiles/frac_core.dir/rowclone.cc.o.d"
  "CMakeFiles/frac_core.dir/ternary.cc.o"
  "CMakeFiles/frac_core.dir/ternary.cc.o.d"
  "CMakeFiles/frac_core.dir/verify.cc.o"
  "CMakeFiles/frac_core.dir/verify.cc.o.d"
  "libfrac_core.a"
  "libfrac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
