file(REMOVE_RECURSE
  "libfrac_core.a"
)
