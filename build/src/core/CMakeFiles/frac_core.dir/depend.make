# Empty dependencies file for frac_core.
# This may be replaced when dependencies are built.
