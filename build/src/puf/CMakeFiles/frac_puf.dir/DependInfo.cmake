
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/extractor.cc" "src/puf/CMakeFiles/frac_puf.dir/extractor.cc.o" "gcc" "src/puf/CMakeFiles/frac_puf.dir/extractor.cc.o.d"
  "/root/repo/src/puf/hamming.cc" "src/puf/CMakeFiles/frac_puf.dir/hamming.cc.o" "gcc" "src/puf/CMakeFiles/frac_puf.dir/hamming.cc.o.d"
  "/root/repo/src/puf/nist.cc" "src/puf/CMakeFiles/frac_puf.dir/nist.cc.o" "gcc" "src/puf/CMakeFiles/frac_puf.dir/nist.cc.o.d"
  "/root/repo/src/puf/puf.cc" "src/puf/CMakeFiles/frac_puf.dir/puf.cc.o" "gcc" "src/puf/CMakeFiles/frac_puf.dir/puf.cc.o.d"
  "/root/repo/src/puf/retention_puf.cc" "src/puf/CMakeFiles/frac_puf.dir/retention_puf.cc.o" "gcc" "src/puf/CMakeFiles/frac_puf.dir/retention_puf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/frac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/softmc/CMakeFiles/frac_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
