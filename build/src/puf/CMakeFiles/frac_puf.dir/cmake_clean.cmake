file(REMOVE_RECURSE
  "CMakeFiles/frac_puf.dir/extractor.cc.o"
  "CMakeFiles/frac_puf.dir/extractor.cc.o.d"
  "CMakeFiles/frac_puf.dir/hamming.cc.o"
  "CMakeFiles/frac_puf.dir/hamming.cc.o.d"
  "CMakeFiles/frac_puf.dir/nist.cc.o"
  "CMakeFiles/frac_puf.dir/nist.cc.o.d"
  "CMakeFiles/frac_puf.dir/puf.cc.o"
  "CMakeFiles/frac_puf.dir/puf.cc.o.d"
  "CMakeFiles/frac_puf.dir/retention_puf.cc.o"
  "CMakeFiles/frac_puf.dir/retention_puf.cc.o.d"
  "libfrac_puf.a"
  "libfrac_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
