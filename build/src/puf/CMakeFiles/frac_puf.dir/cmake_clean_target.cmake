file(REMOVE_RECURSE
  "libfrac_puf.a"
)
