# Empty compiler generated dependencies file for frac_puf.
# This may be replaced when dependencies are built.
