
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bank.cc" "src/sim/CMakeFiles/frac_sim.dir/bank.cc.o" "gcc" "src/sim/CMakeFiles/frac_sim.dir/bank.cc.o.d"
  "/root/repo/src/sim/chip.cc" "src/sim/CMakeFiles/frac_sim.dir/chip.cc.o" "gcc" "src/sim/CMakeFiles/frac_sim.dir/chip.cc.o.d"
  "/root/repo/src/sim/row_decoder.cc" "src/sim/CMakeFiles/frac_sim.dir/row_decoder.cc.o" "gcc" "src/sim/CMakeFiles/frac_sim.dir/row_decoder.cc.o.d"
  "/root/repo/src/sim/variation.cc" "src/sim/CMakeFiles/frac_sim.dir/variation.cc.o" "gcc" "src/sim/CMakeFiles/frac_sim.dir/variation.cc.o.d"
  "/root/repo/src/sim/vendor.cc" "src/sim/CMakeFiles/frac_sim.dir/vendor.cc.o" "gcc" "src/sim/CMakeFiles/frac_sim.dir/vendor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
