file(REMOVE_RECURSE
  "CMakeFiles/frac_sim.dir/bank.cc.o"
  "CMakeFiles/frac_sim.dir/bank.cc.o.d"
  "CMakeFiles/frac_sim.dir/chip.cc.o"
  "CMakeFiles/frac_sim.dir/chip.cc.o.d"
  "CMakeFiles/frac_sim.dir/row_decoder.cc.o"
  "CMakeFiles/frac_sim.dir/row_decoder.cc.o.d"
  "CMakeFiles/frac_sim.dir/variation.cc.o"
  "CMakeFiles/frac_sim.dir/variation.cc.o.d"
  "CMakeFiles/frac_sim.dir/vendor.cc.o"
  "CMakeFiles/frac_sim.dir/vendor.cc.o.d"
  "libfrac_sim.a"
  "libfrac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
