file(REMOVE_RECURSE
  "libfrac_sim.a"
)
