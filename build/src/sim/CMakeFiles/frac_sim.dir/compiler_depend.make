# Empty compiler generated dependencies file for frac_sim.
# This may be replaced when dependencies are built.
