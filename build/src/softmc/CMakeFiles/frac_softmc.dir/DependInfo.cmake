
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softmc/command.cc" "src/softmc/CMakeFiles/frac_softmc.dir/command.cc.o" "gcc" "src/softmc/CMakeFiles/frac_softmc.dir/command.cc.o.d"
  "/root/repo/src/softmc/controller.cc" "src/softmc/CMakeFiles/frac_softmc.dir/controller.cc.o" "gcc" "src/softmc/CMakeFiles/frac_softmc.dir/controller.cc.o.d"
  "/root/repo/src/softmc/timing.cc" "src/softmc/CMakeFiles/frac_softmc.dir/timing.cc.o" "gcc" "src/softmc/CMakeFiles/frac_softmc.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/frac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
