file(REMOVE_RECURSE
  "CMakeFiles/frac_softmc.dir/command.cc.o"
  "CMakeFiles/frac_softmc.dir/command.cc.o.d"
  "CMakeFiles/frac_softmc.dir/controller.cc.o"
  "CMakeFiles/frac_softmc.dir/controller.cc.o.d"
  "CMakeFiles/frac_softmc.dir/timing.cc.o"
  "CMakeFiles/frac_softmc.dir/timing.cc.o.d"
  "libfrac_softmc.a"
  "libfrac_softmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_softmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
