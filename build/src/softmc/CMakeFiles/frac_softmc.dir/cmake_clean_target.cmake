file(REMOVE_RECURSE
  "libfrac_softmc.a"
)
