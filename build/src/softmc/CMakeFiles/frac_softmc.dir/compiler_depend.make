# Empty compiler generated dependencies file for frac_softmc.
# This may be replaced when dependencies are built.
