file(REMOVE_RECURSE
  "CMakeFiles/frac_trng.dir/quac_trng.cc.o"
  "CMakeFiles/frac_trng.dir/quac_trng.cc.o.d"
  "libfrac_trng.a"
  "libfrac_trng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frac_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
