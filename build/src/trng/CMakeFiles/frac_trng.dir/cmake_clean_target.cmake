file(REMOVE_RECURSE
  "libfrac_trng.a"
)
