# Empty compiler generated dependencies file for frac_trng.
# This may be replaced when dependencies are built.
