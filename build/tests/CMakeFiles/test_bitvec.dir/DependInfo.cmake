
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitvec.cc" "tests/CMakeFiles/test_bitvec.dir/test_bitvec.cc.o" "gcc" "tests/CMakeFiles/test_bitvec.dir/test_bitvec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/frac_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/frac_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/trng/CMakeFiles/frac_trng.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/frac_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/frac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/softmc/CMakeFiles/frac_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
