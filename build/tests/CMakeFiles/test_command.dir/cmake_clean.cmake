file(REMOVE_RECURSE
  "CMakeFiles/test_command.dir/test_command.cc.o"
  "CMakeFiles/test_command.dir/test_command.cc.o.d"
  "test_command"
  "test_command.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_command.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
