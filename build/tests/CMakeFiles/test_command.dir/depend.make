# Empty dependencies file for test_command.
# This may be replaced when dependencies are built.
