file(REMOVE_RECURSE
  "CMakeFiles/test_ddr4.dir/test_ddr4.cc.o"
  "CMakeFiles/test_ddr4.dir/test_ddr4.cc.o.d"
  "test_ddr4"
  "test_ddr4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddr4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
