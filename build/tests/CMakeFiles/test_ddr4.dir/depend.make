# Empty dependencies file for test_ddr4.
# This may be replaced when dependencies are built.
