file(REMOVE_RECURSE
  "CMakeFiles/test_fmaj.dir/test_fmaj.cc.o"
  "CMakeFiles/test_fmaj.dir/test_fmaj.cc.o.d"
  "test_fmaj"
  "test_fmaj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmaj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
