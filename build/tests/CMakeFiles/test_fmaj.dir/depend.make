# Empty dependencies file for test_fmaj.
# This may be replaced when dependencies are built.
