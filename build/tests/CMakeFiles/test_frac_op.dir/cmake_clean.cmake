file(REMOVE_RECURSE
  "CMakeFiles/test_frac_op.dir/test_frac_op.cc.o"
  "CMakeFiles/test_frac_op.dir/test_frac_op.cc.o.d"
  "test_frac_op"
  "test_frac_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frac_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
