# Empty compiler generated dependencies file for test_frac_op.
# This may be replaced when dependencies are built.
