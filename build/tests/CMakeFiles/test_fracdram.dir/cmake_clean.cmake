file(REMOVE_RECURSE
  "CMakeFiles/test_fracdram.dir/test_fracdram.cc.o"
  "CMakeFiles/test_fracdram.dir/test_fracdram.cc.o.d"
  "test_fracdram"
  "test_fracdram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fracdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
