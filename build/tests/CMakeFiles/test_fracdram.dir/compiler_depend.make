# Empty compiler generated dependencies file for test_fracdram.
# This may be replaced when dependencies are built.
