file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_fsm.dir/test_fuzz_fsm.cc.o"
  "CMakeFiles/test_fuzz_fsm.dir/test_fuzz_fsm.cc.o.d"
  "test_fuzz_fsm"
  "test_fuzz_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
