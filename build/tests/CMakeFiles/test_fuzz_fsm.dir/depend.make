# Empty dependencies file for test_fuzz_fsm.
# This may be replaced when dependencies are built.
