file(REMOVE_RECURSE
  "CMakeFiles/test_half_m.dir/test_half_m.cc.o"
  "CMakeFiles/test_half_m.dir/test_half_m.cc.o.d"
  "test_half_m"
  "test_half_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_half_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
