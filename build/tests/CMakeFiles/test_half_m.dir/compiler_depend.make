# Empty compiler generated dependencies file for test_half_m.
# This may be replaced when dependencies are built.
