file(REMOVE_RECURSE
  "CMakeFiles/test_maj3.dir/test_maj3.cc.o"
  "CMakeFiles/test_maj3.dir/test_maj3.cc.o.d"
  "test_maj3"
  "test_maj3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maj3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
