# Empty dependencies file for test_maj3.
# This may be replaced when dependencies are built.
