file(REMOVE_RECURSE
  "CMakeFiles/test_multi_row.dir/test_multi_row.cc.o"
  "CMakeFiles/test_multi_row.dir/test_multi_row.cc.o.d"
  "test_multi_row"
  "test_multi_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
