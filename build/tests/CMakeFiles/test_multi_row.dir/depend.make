# Empty dependencies file for test_multi_row.
# This may be replaced when dependencies are built.
