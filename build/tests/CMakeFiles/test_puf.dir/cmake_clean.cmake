file(REMOVE_RECURSE
  "CMakeFiles/test_puf.dir/test_puf.cc.o"
  "CMakeFiles/test_puf.dir/test_puf.cc.o.d"
  "test_puf"
  "test_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
