# Empty dependencies file for test_puf.
# This may be replaced when dependencies are built.
