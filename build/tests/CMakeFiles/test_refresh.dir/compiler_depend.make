# Empty compiler generated dependencies file for test_refresh.
# This may be replaced when dependencies are built.
