file(REMOVE_RECURSE
  "CMakeFiles/test_retention_puf.dir/test_retention_puf.cc.o"
  "CMakeFiles/test_retention_puf.dir/test_retention_puf.cc.o.d"
  "test_retention_puf"
  "test_retention_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
