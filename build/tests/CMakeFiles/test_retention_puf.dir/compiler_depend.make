# Empty compiler generated dependencies file for test_retention_puf.
# This may be replaced when dependencies are built.
