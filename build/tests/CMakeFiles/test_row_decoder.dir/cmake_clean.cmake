file(REMOVE_RECURSE
  "CMakeFiles/test_row_decoder.dir/test_row_decoder.cc.o"
  "CMakeFiles/test_row_decoder.dir/test_row_decoder.cc.o.d"
  "test_row_decoder"
  "test_row_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
