# Empty dependencies file for test_row_decoder.
# This may be replaced when dependencies are built.
