file(REMOVE_RECURSE
  "CMakeFiles/test_rowclone.dir/test_rowclone.cc.o"
  "CMakeFiles/test_rowclone.dir/test_rowclone.cc.o.d"
  "test_rowclone"
  "test_rowclone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rowclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
