# Empty compiler generated dependencies file for test_rowclone.
# This may be replaced when dependencies are built.
