file(REMOVE_RECURSE
  "CMakeFiles/test_tau_estimate.dir/test_tau_estimate.cc.o"
  "CMakeFiles/test_tau_estimate.dir/test_tau_estimate.cc.o.d"
  "test_tau_estimate"
  "test_tau_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tau_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
