# Empty dependencies file for test_tau_estimate.
# This may be replaced when dependencies are built.
