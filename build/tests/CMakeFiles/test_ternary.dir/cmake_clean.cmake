file(REMOVE_RECURSE
  "CMakeFiles/test_ternary.dir/test_ternary.cc.o"
  "CMakeFiles/test_ternary.dir/test_ternary.cc.o.d"
  "test_ternary"
  "test_ternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
