file(REMOVE_RECURSE
  "CMakeFiles/test_trng.dir/test_trng.cc.o"
  "CMakeFiles/test_trng.dir/test_trng.cc.o.d"
  "test_trng"
  "test_trng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
