file(REMOVE_RECURSE
  "CMakeFiles/test_vendor.dir/test_vendor.cc.o"
  "CMakeFiles/test_vendor.dir/test_vendor.cc.o.d"
  "test_vendor"
  "test_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
