# Empty compiler generated dependencies file for test_vendor.
# This may be replaced when dependencies are built.
