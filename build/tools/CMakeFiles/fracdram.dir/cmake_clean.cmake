file(REMOVE_RECURSE
  "CMakeFiles/fracdram.dir/fracdram_cli.cc.o"
  "CMakeFiles/fracdram.dir/fracdram_cli.cc.o.d"
  "fracdram"
  "fracdram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fracdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
