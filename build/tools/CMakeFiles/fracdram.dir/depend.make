# Empty dependencies file for fracdram.
# This may be replaced when dependencies are built.
