/**
 * @file
 * In-memory bulk bitwise filtering - the workload class that
 * motivates processing-with-memory (paper Sec. I).
 *
 * A tiny analytics engine keeps three bitmap indexes over a user
 * table (one bit per user):
 *   P: bought product
 *   N: opened the newsletter
 *   R: lives in the target region
 * Campaign query: users with (P AND N) OR R.
 *
 * AND and OR are built from the in-memory majority operation the way
 * Ambit/ComputeDRAM do:  AND(a,b) = MAJ3(a,b,0),  OR(a,b) =
 * MAJ3(a,b,1). On modules that cannot open exactly three rows the
 * library transparently uses F-MAJ (a four-row activation with a
 * fractional value) - the paper's headline extension.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/fracdram.hh"

using namespace fracdram;

namespace
{

BitVector
randomBitmap(std::size_t n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(density));
    return v;
}

/** In-memory AND via majority with an all-zeros operand. */
BitVector
inMemAnd(core::FracDram &dram, const BitVector &a, const BitVector &b)
{
    return dram.majority(0, {a, b, BitVector(a.size(), false)});
}

/** In-memory OR via majority with an all-ones operand. */
BitVector
inMemOr(core::FracDram &dram, const BitVector &a, const BitVector &b)
{
    return dram.majority(0, {a, b, BitVector(a.size(), true)});
}

} // namespace

int
main()
{
    setVerbose(false);

    // Group C cannot open three rows - the original ComputeDRAM MAJ3
    // is unavailable - but F-MAJ makes the same queries work.
    for (const auto group : {sim::DramGroup::B, sim::DramGroup::C}) {
        core::FracDram dram(group, /*serial=*/7);
        const std::size_t users = dram.chip().dramParams().colsPerRow;

        const BitVector bought = randomBitmap(users, 0.3, 1);
        const BitVector opened = randomBitmap(users, 0.5, 2);
        const BitVector region = randomBitmap(users, 0.1, 3);

        // (bought AND opened) OR region - two in-memory ops.
        const BitVector and_bits = inMemAnd(dram, bought, opened);
        const BitVector result = inMemOr(dram, and_bits, region);

        // Software reference for accuracy accounting.
        std::size_t correct = 0, selected = 0;
        for (std::size_t i = 0; i < users; ++i) {
            const bool expect = (bought.get(i) && opened.get(i)) ||
                                region.get(i);
            correct += result.get(i) == expect;
            selected += result.get(i);
        }
        std::printf(
            "group %s (%s): selected %zu/%zu users, accuracy %.1f%%\n",
            sim::groupName(group).c_str(),
            dram.canThreeRowActivate() ? "three-row MAJ3"
                                       : "F-MAJ on four rows",
            selected, users,
            100.0 * static_cast<double>(correct) /
                static_cast<double>(users));
    }

    std::puts("\nbitmap filter done (in-DRAM bulk bitwise ops, no "
              "data movement to the CPU).");
    return 0;
}
