/**
 * @file
 * Device authentication with the Frac-based PUF (paper Sec. VI-B).
 *
 * Enrollment: a verifier collects challenge-response pairs from the
 * genuine device and stores them. Authentication: the verifier
 * replays a challenge and accepts the device when the response's
 * Hamming distance to the enrolled one is below a threshold placed
 * between the intra-HD (near 0) and inter-HD (near 0.5) clusters.
 *
 * The demo enrolls one module, authenticates it (including under a
 * lowered supply voltage and at 60 C - the paper's robustness
 * story), and shows that a cloned/impostor module of the same vendor
 * group is rejected.
 */

#include <cstdio>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;

namespace
{

/** A verifier holding enrolled challenge-response pairs. */
class Verifier
{
  public:
    explicit Verifier(double threshold) : threshold_(threshold) {}

    void
    enroll(const puf::Challenge &challenge, const BitVector &response)
    {
        enrolled_.emplace(key(challenge), response);
    }

    bool
    authenticate(const puf::Challenge &challenge,
                 const BitVector &response, double *hd_out) const
    {
        const auto it = enrolled_.find(key(challenge));
        if (it == enrolled_.end())
            return false;
        const double hd =
            puf::normalizedHammingDistance(it->second, response);
        if (hd_out)
            *hd_out = hd;
        return hd < threshold_;
    }

  private:
    static std::uint64_t
    key(const puf::Challenge &c)
    {
        return (static_cast<std::uint64_t>(c.bank) << 32) | c.row;
    }

    double threshold_;
    std::map<std::uint64_t, BitVector> enrolled_;
};

struct Device
{
    std::unique_ptr<sim::DramChip> chip;
    std::unique_ptr<softmc::MemoryController> mc;
    std::unique_ptr<puf::FracPuf> puf;

    Device(sim::DramGroup group, std::uint64_t serial)
        : chip(std::make_unique<sim::DramChip>(group, serial)),
          mc(std::make_unique<softmc::MemoryController>(*chip, false)),
          puf(std::make_unique<puf::FracPuf>(*mc, 10))
    {
    }
};

} // namespace

int
main()
{
    setVerbose(false);

    // The paper's margin: max intra-HD 0.07, min inter-HD 0.27.
    // Anything in between works; pick the midpoint.
    Verifier verifier(/*threshold=*/0.17);

    Device genuine(sim::DramGroup::E, /*serial=*/1001);
    Device impostor(sim::DramGroup::E, /*serial=*/2002);

    // --- Enrollment (trusted environment) ---
    const auto challenges = genuine.puf->makeChallenges(8);
    for (const auto &c : challenges)
        verifier.enroll(c, genuine.puf->evaluate(c));
    std::printf("enrolled %zu challenge-response pairs (8 KB "
                "segments, 10 Fracs each)\n\n",
                challenges.size());

    auto check = [&](const char *label, Device &dev) {
        int accepted = 0;
        double worst_hd = 0.0;
        for (const auto &c : challenges) {
            double hd = 1.0;
            accepted +=
                verifier.authenticate(c, dev.puf->evaluate(c), &hd);
            worst_hd = std::max(worst_hd, hd);
        }
        std::printf("%-34s accepted %d/%zu (worst HD %.3f)\n", label,
                    accepted, challenges.size(), worst_hd);
        return accepted;
    };

    // --- Authentication in the field ---
    const int ok_room = check("genuine device, nominal:", genuine);

    genuine.chip->env().vdd = 1.4;
    const int ok_vdd = check("genuine device, 1.4 V supply:", genuine);
    genuine.chip->env().vdd = 1.5;

    genuine.chip->env().temperatureC = 60.0;
    const int ok_hot = check("genuine device, 60 C:", genuine);
    genuine.chip->env().temperatureC = 20.0;

    const int ok_imp = check("impostor (same vendor group):", impostor);

    const bool pass = ok_room == 8 && ok_vdd == 8 && ok_hot == 8 &&
                      ok_imp == 0;
    std::printf("\nauthentication demo: %s\n",
                pass ? "PASS" : "FAIL");
    std::printf("PUF evaluation latency: %.2f us per challenge\n",
                static_cast<double>(
                    genuine.puf->evaluationCycles()) *
                    memCycleNs / 1000.0);
    return pass ? 0 : 1;
}
