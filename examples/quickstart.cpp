/**
 * @file
 * Quickstart: the FracDRAM library in five minutes.
 *
 * Creates a simulated DDR3 module (vendor group B, the SK Hynix parts
 * the paper characterizes most deeply), stores data through the
 * JEDEC-compliant path, then demonstrates the paper's out-of-spec
 * primitives: Frac (fractional storage + destructive readout) and
 * the in-memory majority operation.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/fracdram.hh"

using namespace fracdram;

int
main()
{
    setVerbose(false);

    // A module of vendor group B with default geometry. Distinct
    // serial numbers give distinct silicon (process variation).
    core::FracDram dram(sim::DramGroup::B, /*serial=*/42);
    const std::size_t cols = dram.chip().dramParams().colsPerRow;

    std::printf("module: group %s, %u banks x %u rows x %zu bits\n",
                sim::groupName(dram.profile().group).c_str(),
                dram.chip().dramParams().numBanks,
                dram.chip().dramParams().rowsPerBank(), cols);
    std::printf("capabilities: frac=%d three-row=%d four-row=%d\n\n",
                dram.canFrac(), dram.canThreeRowActivate(),
                dram.canFourRowActivate());

    // --- 1. Normal storage (JEDEC-compliant read/write) ---
    BitVector data(cols);
    for (std::size_t i = 0; i < cols; ++i)
        data.set(i, (i / 3) % 2);
    dram.writeRow(/*bank=*/0, /*row=*/20, data);
    const bool intact = dram.readRow(0, 20) == data;
    std::printf("1. write/read round trip: %s\n",
                intact ? "data intact" : "MISMATCH");

    // --- 2. Frac: store a fractional value in a whole row ---
    // Ten Fracs walk the cells to ~Vdd/2; a subsequent (destructive)
    // read resolves each column by its sense-amp offset - a device
    // fingerprint rather than the stored data.
    const BitVector fingerprint1 = dram.fracReadout(0, 21, 10);
    const BitVector fingerprint2 = dram.fracReadout(0, 21, 10);
    const double intra =
        static_cast<double>(
            fingerprint1.hammingDistance(fingerprint2)) /
        static_cast<double>(cols);
    std::printf("2. Frac readout: weight=%.2f, repeat distance=%.3f "
                "(stable fingerprint)\n",
                fingerprint1.hammingWeight(), intra);

    // --- 3. In-memory majority of three rows ---
    BitVector a(cols), b(cols), c(cols);
    for (std::size_t i = 0; i < cols; ++i) {
        a.set(i, i % 2);
        b.set(i, (i / 2) % 2);
        c.set(i, (i / 4) % 2);
    }
    const BitVector maj = dram.majority(0, {a, b, c});
    std::size_t correct = 0;
    for (std::size_t i = 0; i < cols; ++i) {
        const int ones = a.get(i) + b.get(i) + c.get(i);
        correct += maj.get(i) == (ones >= 2);
    }
    std::printf("3. in-memory MAJ3: %.1f%% of %zu columns correct\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(cols),
                cols);

    // --- 4. Refresh discipline ---
    // Fractional values are destroyed by any activation, including
    // refresh; the manager tracks the due time.
    auto &refresh = dram.refreshManager();
    refresh.suspend(); // fractional values live
    std::printf("4. refresh suspended=%d, due in <= %.0f ms\n",
                refresh.suspended(), refresh.interval() * 1e3);
    refresh.resume();

    std::puts("\nquickstart done.");
    return intact ? 0 : 1;
}
