/**
 * @file
 * True random number generation from commodity DRAM (QUAC-TRNG
 * style, on the four-row activation the paper characterizes).
 *
 * The generator needs no dedicated hardware: it repeatedly interrupts
 * the row decoder into opening four rows loaded with two ones and two
 * zeros, samples the metastable sense-amplifier decisions, and
 * conditions blocks of samples with SHA-256. Works on DDR3 groups
 * B/C/D and on the DDR4 extension group M.
 */

#include <cstdio>

#include "common/logging.hh"
#include "puf/nist.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "trng/quac_trng.hh"

using namespace fracdram;

int
main()
{
    setVerbose(false);

    sim::DramParams params;
    params.colsPerRow = 2048;
    sim::DramChip chip(sim::DramGroup::B, /*serial=*/31337, params);
    softmc::MemoryController mc(chip, false);
    trng::QuacTrng generator(mc);

    std::puts("DRAM true random number generator "
              "(four-row activation + SHA-256 conditioning)\n");

    // Draw a few dice rolls and a key.
    const auto bits = generator.generate(256 + 64);
    std::printf("256-bit key: ");
    for (int i = 0; i < 32; ++i) {
        unsigned byte = 0;
        for (int b = 0; b < 8; ++b)
            byte |= static_cast<unsigned>(bits.get(i * 8 + b)) << b;
        std::printf("%02x", byte);
    }
    std::printf("\ndice rolls:  ");
    for (int i = 0; i < 10; ++i) {
        unsigned v = 0;
        for (int b = 0; b < 6; ++b)
            v |= static_cast<unsigned>(bits.get(256 + i * 6 + b)) << b;
        std::printf("%u ", v % 6 + 1);
    }
    std::puts("");

    // Quality check on a longer stream.
    const auto stream = generator.generate(50000);
    const bool ok =
        puf::nist::frequency(stream).passed() &&
        puf::nist::runs(stream).passed() &&
        puf::nist::approximateEntropy(stream).passed();
    std::printf("\nstream weight %.3f, NIST spot-check: %s\n",
                stream.hammingWeight(), ok ? "PASS" : "FAIL");
    std::printf("model throughput: %.1f Mb/s (%zu raw samples per "
                "256-bit block)\n",
                generator.throughputMbps(),
                generator.samplesPerBlock());
    return ok ? 0 : 1;
}
