/**
 * @file
 * DRAM retention characterization with fractional values (paper
 * Sec. VI-C): by storing different voltage levels (different Frac
 * counts) in the same cell and measuring the retention time of each,
 * the leakage trajectory of individual cells can be traced without
 * an oscilloscope - something binary writes cannot do.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/frac_op.hh"
#include "core/fracdram.hh"
#include "core/retention.hh"

using namespace fracdram;

int
main()
{
    setVerbose(false);
    core::FracDram dram(sim::DramGroup::B, /*serial=*/11);
    auto &mc = dram.controller();
    const BankAddr bank = 0;
    const RowAddr row = 4;

    std::puts("cell leakage tracing via fractional voltage levels");
    std::puts("(store progressively lower levels with more Fracs; "
              "the retention\n bucket of each level brackets the "
              "voltage-vs-time curve)\n");

    core::RetentionProfiler profiler(mc, bank, row);
    TextTable table({"#Frac (level)", "median bucket",
                     "cells dead at t=0", "cells >12h"});

    for (const int n : {0, 1, 2, 3, 5, 10}) {
        const auto buckets = profiler.profile([&] {
            mc.fillRowVoltage(bank, row, true);
            if (n > 0)
                core::frac(mc, bank, row, n);
        });
        EmpiricalCdf cdf;
        std::size_t dead = 0, top = 0;
        for (const auto b : buckets) {
            cdf.add(static_cast<double>(b));
            dead += b == 0;
            top += b == core::RetentionBuckets::numBuckets() - 1;
        }
        const auto median_bucket =
            static_cast<std::size_t>(cdf.quantile(0.5));
        table.addRow({
            std::to_string(n),
            core::RetentionBuckets::label(median_bucket),
            TextTable::pct(static_cast<double>(dead) /
                               static_cast<double>(buckets.size()),
                           1),
            TextTable::pct(static_cast<double>(top) /
                               static_cast<double>(buckets.size()),
                           1),
        });
    }
    table.print();

    std::puts("\neach row of the table is one point on every cell's "
              "V(t) curve -\nthe profile a refresh-optimization or "
              "retention-aware allocator needs.");
    return 0;
}
