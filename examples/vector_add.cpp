/**
 * @file
 * Bulk vector addition inside DRAM.
 *
 * Adds two vectors of 8-bit integers - one addition per DRAM column,
 * a thousand lanes at once - without the values ever crossing the
 * memory bus. The full-adder carry is a single in-memory MAJ3
 * (the operation FracDRAM's F-MAJ extends to modules that cannot
 * open three rows); sums come from in-DRAM XOR on dual-rail values.
 *
 * Shown on group B (three-row MAJ3) and group C (F-MAJ): same code,
 * different substrate capability - the paper's portability story.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "compute/adder.hh"
#include "compute/engine.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::compute;

int
main()
{
    setVerbose(false);
    std::puts("bulk vector add in DRAM (8-bit lanes, carry = "
              "in-memory MAJ3)\n");

    for (const auto group : {sim::DramGroup::B, sim::DramGroup::C}) {
        sim::DramParams params;
        params.rowsPerSubarray = 128;
        params.colsPerRow = 1024;
        sim::DramChip chip(group, 1, params);
        softmc::MemoryController mc(chip, false);
        BitwiseEngine engine(mc);

        PlanarVector a(engine, 8), b(engine, 8);
        std::vector<std::uint64_t> av(engine.lanes()),
            bv(engine.lanes());
        Rng rng(static_cast<std::uint64_t>(group) + 1);
        for (std::size_t i = 0; i < av.size(); ++i) {
            av[i] = rng.below(256);
            bv[i] = rng.below(256);
        }
        a.store(av);
        b.store(bv);

        const Cycles before = engine.cyclesUsed();
        auto sum = addVectors(engine, a, b);
        const Cycles cycles = engine.cyclesUsed() - before;

        const auto result = sum.load();
        std::size_t exact = 0;
        for (std::size_t i = 0; i < av.size(); ++i)
            exact += result[i] == av[i] + bv[i];

        std::printf("group %s (%s): %zu lanes, %zu/%zu sums exact "
                    "(%.1f%%)\n",
                    sim::groupName(group).c_str(),
                    engine.usesThreeRowMaj() ? "three-row MAJ3"
                                             : "F-MAJ",
                    engine.lanes(), exact, av.size(),
                    100.0 * static_cast<double>(exact) /
                        static_cast<double>(av.size()));
        std::printf("   %zu in-DRAM majority ops, %llu memory cycles "
                    "(%.2f us) for %zu additions\n",
                    engine.majOpsIssued(),
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(cycles) * memCycleNs / 1000.0,
                    engine.lanes());
        std::printf("   first lanes: %llu+%llu=%llu, %llu+%llu=%llu\n",
                    static_cast<unsigned long long>(av[0]),
                    static_cast<unsigned long long>(bv[0]),
                    static_cast<unsigned long long>(result[0]),
                    static_cast<unsigned long long>(av[1]),
                    static_cast<unsigned long long>(bv[1]),
                    static_cast<unsigned long long>(result[1]));
    }
    std::puts("\nnote: out-of-spec analog compute is probabilistic; "
              "real deployments\nprofile reliable columns or add "
              "redundancy (see the paper's Fig. 10).");
    return 0;
}
