#!/usr/bin/env python3
"""Plot the paper figures from the bench binaries' CSV exports.

Usage:
    mkdir -p out
    ./build/bench/bench_fig6_retention       --csv out
    ./build/bench/bench_fig9_fmaj_coverage   --csv out
    ./build/bench/bench_fig11_puf            --csv out
    python3 scripts/plot_figures.py out

Writes fig6_<group>.png, fig9_<group>.png and fig11.png next to the
CSV files. Requires matplotlib.
"""

import csv
import glob
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def plot_fig6(plt, path):
    """Retention heatmap: buckets x number of Fracs."""
    rows = read_csv(path)
    buckets = []
    for r in rows:
        if r["bucket"] not in buckets:
            buckets.append(r["bucket"])
    num_fracs = sorted({int(r["num_fracs"]) for r in rows})
    grid = [[0.0] * len(num_fracs) for _ in buckets]
    for r in rows:
        grid[buckets.index(r["bucket"])][int(r["num_fracs"])] = float(
            r["fraction"])

    fig, ax = plt.subplots(figsize=(4, 3))
    im = ax.imshow(grid, aspect="auto", cmap="Blues", origin="lower")
    ax.set_xticks(range(len(num_fracs)), [str(n) for n in num_fracs])
    ax.set_yticks(range(len(buckets)), buckets)
    ax.set_xlabel("# Frac operations")
    ax.set_ylabel("retention bucket")
    group = os.path.basename(path)[len("fig6_"):-len(".csv")]
    ax.set_title(f"Fig. 6 - {group}")
    fig.colorbar(im, ax=ax, label="fraction of cells")
    out = path[:-len(".csv")] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig9(plt, path):
    """F-MAJ coverage lines per (frac row, init)."""
    rows = read_csv(path)
    series = defaultdict(list)
    for r in rows:
        key = f'{r["frac_row"]} init {r["init"]}'
        series[key].append((int(r["num_fracs"]), float(r["coverage"]),
                            float(r["ci_half"])))

    fig, ax = plt.subplots(figsize=(5, 3.5))
    for key, pts in sorted(series.items()):
        pts.sort()
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        es = [p[2] for p in pts]
        style = "-" if "ones" in key else "--"
        ax.errorbar(xs, ys, yerr=es, label=key, linestyle=style,
                    marker="o", markersize=3, capsize=2)
    ax.set_xlabel("# Frac operations")
    ax.set_ylabel("F-MAJ coverage")
    ax.set_ylim(0, 1.02)
    group = os.path.basename(path)[len("fig9_"):-len(".csv")]
    ax.set_title(f"Fig. 9 - {group}")
    ax.legend(fontsize=6, ncol=2)
    out = path[:-len(".csv")] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig11(plt, path):
    """Intra/inter HD distributions per group."""
    rows = read_csv(path)
    groups = []
    for r in rows:
        if r["group"] not in groups:
            groups.append(r["group"])
    fig, ax = plt.subplots(figsize=(6, 3.5))
    for i, g in enumerate(groups):
        intra = [float(r["hd"]) for r in rows
                 if r["group"] == g and r["kind"] == "intra"]
        inter = [float(r["hd"]) for r in rows
                 if r["group"] == g and r["kind"] == "inter"]
        if intra:
            ax.scatter([i] * len(intra), intra, s=6, c="tab:green",
                       label="intra-HD" if i == 0 else None)
        if inter:
            ax.scatter([i] * len(inter), inter, s=6, c="tab:red",
                       label="inter-HD" if i == 0 else None)
    ax.set_xticks(range(len(groups)), groups)
    ax.set_ylabel("normalized Hamming distance")
    ax.set_ylim(-0.02, 0.62)
    ax.set_title("Fig. 11 - Frac-PUF intra/inter HD")
    ax.legend()
    out = os.path.join(os.path.dirname(path), "fig11.png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1

    out_dir = sys.argv[1]
    found = False
    for path in sorted(glob.glob(os.path.join(out_dir, "fig6_*.csv"))):
        plot_fig6(plt, path)
        found = True
    for path in sorted(glob.glob(os.path.join(out_dir, "fig9_*.csv"))):
        plot_fig9(plt, path)
        found = True
    fig11 = os.path.join(out_dir, "fig11_hd.csv")
    if os.path.exists(fig11):
        plot_fig11(plt, fig11)
        found = True
    if not found:
        print(f"no fig*.csv files in {out_dir}; run the benches with "
              "--csv first")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
