#!/usr/bin/env bash
# Times every bench_* driver in the build tree and writes the results
# to a JSON array of {bench, seconds, threads} records.
#
# Usage: scripts/run_benches.sh [options] [build_dir] [output.json]
#
# Options:
#   --filter <regex>  only run benches whose name matches the (grep -E)
#                     regex, e.g. --filter 'trng|nist'
#   --out <file>      output JSON path (same as the second positional
#                     argument; the flag wins if both are given)
#
# The thread count recorded is what the parallel engine resolves:
# FRACDRAM_THREADS if set, otherwise the machine's hardware
# concurrency. Set FRACDRAM_THREADS=1 to time the serial baseline.
#
# bench_timing and bench_kernels are skipped: they are
# google-benchmark microbenchmark harnesses with their own timing
# loops, not fixed-work drivers.

set -euo pipefail

filter=""
out_flag=""
positional=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --filter)
            [[ $# -ge 2 ]] || { echo "error: --filter needs a regex" >&2; exit 1; }
            filter="$2"
            shift 2
            ;;
        --out)
            [[ $# -ge 2 ]] || { echo "error: --out needs a path" >&2; exit 1; }
            out_flag="$2"
            shift 2
            ;;
        --help|-h)
            sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        --*)
            echo "error: unknown option $1" >&2
            exit 1
            ;;
        *)
            positional+=("$1")
            shift
            ;;
    esac
done

build_dir="${positional[0]:-build}"
out="${out_flag:-${positional[1]:-BENCH_PR1.json}}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: ${bench_dir} not found (build the project first)" >&2
    exit 1
fi

threads="${FRACDRAM_THREADS:-$(nproc 2>/dev/null || echo 1)}"

# Quick-mode flags keep total wall time reasonable; the relative
# serial-vs-parallel ratio is what matters, not absolute run length.
declare -A extra_args=(
    [bench_fig9_fmaj_coverage]="--quick"
)

records=()
for bin in "${bench_dir}"/bench_*; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    [[ "${name}" == "bench_timing" || "${name}" == "bench_kernels" ]] \
        && continue
    if [[ -n "${filter}" ]] && ! grep -qE "${filter}" <<< "${name}"; then
        continue
    fi

    args="${extra_args[${name}]:-}"
    echo "timing ${name} ${args} (threads=${threads})" >&2

    start=$(date +%s.%N)
    # shellcheck disable=SC2086
    "${bin}" ${args} > /dev/null || {
        echo "warning: ${name} exited non-zero; recording anyway" >&2
    }
    end=$(date +%s.%N)
    seconds=$(awk -v a="${start}" -v b="${end}" \
        'BEGIN { printf "%.3f", b - a }')

    records+=("  {\"bench\": \"${name}\", \"seconds\": ${seconds}, \"threads\": ${threads}}")
done

if [[ ${#records[@]} -eq 0 ]]; then
    echo "error: no benches matched (filter: '${filter:-<none>}')" >&2
    exit 1
fi

{
    echo "["
    for i in "${!records[@]}"; do
        sep=","
        [[ "${i}" -eq $((${#records[@]} - 1)) ]] && sep=""
        echo "${records[${i}]}${sep}"
    done
    echo "]"
} > "${out}"

echo "wrote ${out} (${#records[@]} benches, threads=${threads})" >&2
