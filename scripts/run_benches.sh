#!/usr/bin/env bash
# Times every bench_* driver in the build tree and writes the results
# to a JSON array of {bench, seconds, peak_rss_kib, threads} records.
# Wall time and peak RSS come from a python3 getrusage wrapper (the
# container has no /usr/bin/time); without python3 the RSS is
# recorded as 0 and timing falls back to date +%s.%N.
#
# Usage: scripts/run_benches.sh [options] [build_dir] [output.json]
#
# Options:
#   --filter <regex>  only run benches whose name matches the (grep -E)
#                     regex, e.g. --filter 'trng|nist'
#   --out <file>      output JSON path (same as the second positional
#                     argument; the flag wins if both are given)
#   --isa-ab <N>      run N interleaved scalar-vs-dispatched pairs of
#                     the serving A/B (default 3; 0 disables). Each
#                     pair starts a fresh daemon with FRACDRAM_ISA=
#                     scalar and one with the runtime-dispatched
#                     default, alternating so drift hits both arms,
#                     and records the loadgen req/s of each arm plus
#                     the mean speedup as the "bench_simd_ab" entry.
#   --forensics-ab <N> run N interleaved forensics-off/-on pairs of
#                     the serving A/B (default 3; 0 disables). The
#                     "on" arm runs with a postmortem dir, which arms
#                     the full forensics stack (metrics history,
#                     flight recorder fatal-buffer refresh, watchdog
#                     stall detector); the "off" arm runs bare. The
#                     "bench_forensics_ab" entry records per-arm
#                     req/s, medians, and the median overhead delta
#                     in percent - the instrumentation budget.
#   --router-ab <N>   run N interleaved direct-vs-router pairs of the
#                     serving A/B per payload point (default 5; 0
#                     disables). The routed arm puts a one-backend
#                     fracdram_router between loadgen and the daemon;
#                     the direct arm talks to the daemon itself. Both
#                     arms use window 16 and are measured at two
#                     payload points: 1 KiB entropy reads (the
#                     headline "median_overhead_pct" - the serving
#                     workload) and 32 B frames (recorded as
#                     "small_frame_overhead_pct" - the frame-stress /
#                     CPU-share point; see the A/B block comment).
#
# The thread count recorded is what the parallel engine resolves:
# FRACDRAM_THREADS if set, otherwise the machine's hardware
# concurrency. Set FRACDRAM_THREADS=1 to time the serial baseline.
#
# bench_timing and bench_kernels are skipped in the fixed-work loop:
# they are google-benchmark microbenchmark harnesses with their own
# timing loops, not fixed-work drivers. bench_kernels is instead
# driven explicitly for the "bench_simd" record: the resolved SIMD
# dispatch tier plus per-kernel ns/elem at every tier this machine
# can force (FRACDRAM_ISA=scalar/avx2/avx512), so a BENCH file shows
# what the vector paths actually buy on the machine that produced it.
#
# The serving pair (fracdram_serve + fracdram_loadgen) is recorded as
# the "bench_service" entry: the daemon is started on an ephemeral
# port with its metrics endpoint up, a traced loadgen burst is timed,
# and the loadgen summary (req/s, p50/p95/p99 latency, plus the
# server-side histograms) is embedded in the record's "loadgen"
# field. The record also carries the machine's core count, the
# daemon's reactor count and the derived req/s-per-core so BENCH
# files from different machines stay comparable. The daemon's final
# /metrics scrape is archived next to the output JSON as
# <output>.metrics.prom. FRACDRAM_BENCH_REACTORS overrides the
# daemon's reactor count (default: auto).
#
# Any bench that exits non-zero (or a daemon that fails to shut down
# cleanly) makes this script exit non-zero after writing the JSON, so
# CI cannot mistake a partial BENCH file for a healthy run.

set -euo pipefail

filter=""
out_flag=""
isa_ab=3
forensics_ab=3
router_ab=5
positional=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --filter)
            [[ $# -ge 2 ]] || { echo "error: --filter needs a regex" >&2; exit 1; }
            filter="$2"
            shift 2
            ;;
        --out)
            [[ $# -ge 2 ]] || { echo "error: --out needs a path" >&2; exit 1; }
            out_flag="$2"
            shift 2
            ;;
        --isa-ab)
            [[ $# -ge 2 ]] || { echo "error: --isa-ab needs a count" >&2; exit 1; }
            isa_ab="$2"
            shift 2
            ;;
        --forensics-ab)
            [[ $# -ge 2 ]] || { echo "error: --forensics-ab needs a count" >&2; exit 1; }
            forensics_ab="$2"
            shift 2
            ;;
        --router-ab)
            [[ $# -ge 2 ]] || { echo "error: --router-ab needs a count" >&2; exit 1; }
            router_ab="$2"
            shift 2
            ;;
        --help|-h)
            sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        --*)
            echo "error: unknown option $1" >&2
            exit 1
            ;;
        *)
            positional+=("$1")
            shift
            ;;
    esac
done

build_dir="${positional[0]:-build}"
out="${out_flag:-${positional[1]:-BENCH_PR1.json}}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: ${bench_dir} not found (build the project first)" >&2
    exit 1
fi

threads="${FRACDRAM_THREADS:-$(nproc 2>/dev/null || echo 1)}"

have_python=0
command -v python3 > /dev/null 2>&1 && have_python=1

# Runs "$@" with stdout discarded and prints "<wall_s> <peak_rss_kib>
# <exit_code>". RUSAGE_CHILDREN's ru_maxrss is the max over all
# children, so each bench runs in its own wrapper process.
measure() {
    python3 - "$@" <<'PY'
import resource, subprocess, sys, time
start = time.monotonic()
rc = subprocess.call(sys.argv[1:], stdout=subprocess.DEVNULL)
wall = time.monotonic() - start
rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.3f} {rss} {rc}")
PY
}

# Quick-mode flags keep total wall time reasonable; the relative
# serial-vs-parallel ratio is what matters, not absolute run length.
declare -A extra_args=(
    [bench_fig9_fmaj_coverage]="--quick"
)

records=()
failures=0
for bin in "${bench_dir}"/bench_*; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    [[ "${name}" == "bench_timing" || "${name}" == "bench_kernels" ]] \
        && continue
    if [[ -n "${filter}" ]] && ! grep -qE "${filter}" <<< "${name}"; then
        continue
    fi

    args="${extra_args[${name}]:-}"
    echo "timing ${name} ${args} (threads=${threads})" >&2

    rc=0
    if [[ "${have_python}" -eq 1 ]]; then
        # shellcheck disable=SC2086
        read -r seconds rss_kib rc < <(measure "${bin}" ${args})
    else
        start=$(date +%s.%N)
        # shellcheck disable=SC2086
        "${bin}" ${args} > /dev/null || rc=$?
        end=$(date +%s.%N)
        seconds=$(awk -v a="${start}" -v b="${end}" \
            'BEGIN { printf "%.3f", b - a }')
        rss_kib=0
    fi
    if [[ "${rc}" -ne 0 ]]; then
        echo "error: ${name} exited with ${rc}" >&2
        failures=$((failures + 1))
    fi

    records+=("  {\"bench\": \"${name}\", \"seconds\": ${seconds}, \"peak_rss_kib\": ${rss_kib}, \"threads\": ${threads}, \"exit_code\": ${rc}}")
done

# The serving pair: daemon on an ephemeral port + a timed loadgen
# burst, recorded as one first-class bench entry.
serve_bin="${build_dir}/tools/fracdram_serve"
loadgen_bin="${build_dir}/tools/fracdram_loadgen"
router_bin="${build_dir}/tools/fracdram_router"
if [[ -x "${serve_bin}" && -x "${loadgen_bin}" ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_service"; }; then
    bench_reactors="${FRACDRAM_BENCH_REACTORS:-0}"
    echo "timing bench_service (serve + loadgen, reactors=${bench_reactors})" >&2
    port_file="$(mktemp)" mport_file="$(mktemp)" loadgen_json="$(mktemp)"
    serve_log="$(mktemp)"
    rm -f "${port_file}" "${mport_file}"
    "${serve_bin}" --port 0 --shards 4 --port-file "${port_file}" \
        --reactors "${bench_reactors}" \
        --metrics-port 0 --metrics-port-file "${mport_file}" \
        > "${serve_log}" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "${port_file}" ]] && break
        sleep 0.1
    done
    if [[ ! -s "${port_file}" ]]; then
        echo "error: fracdram_serve never published its port" >&2
        kill "${serve_pid}" 2> /dev/null || true
        failures=$((failures + 1))
    else
        port="$(cat "${port_file}")"
        rc=0
        if [[ "${have_python}" -eq 1 ]]; then
            read -r seconds rss_kib rc < <(measure "${loadgen_bin}" \
                --port "${port}" --conns 4 --window 16 --duration 4 \
                --bytes 32 --warmup-ms 500 --trace \
                --json-out "${loadgen_json}")
        else
            start=$(date +%s.%N)
            "${loadgen_bin}" --port "${port}" --conns 4 --window 16 \
                --duration 4 --bytes 32 --warmup-ms 500 --trace \
                --json-out "${loadgen_json}" > /dev/null || rc=$?
            end=$(date +%s.%N)
            seconds=$(awk -v a="${start}" -v b="${end}" \
                'BEGIN { printf "%.3f", b - a }')
            rss_kib=0
        fi
        # Archive the post-burst /metrics scrape alongside the JSON:
        # the full Prometheus state of the daemon that produced these
        # numbers (no curl in the container; plain /dev/tcp works).
        if [[ -s "${mport_file}" ]]; then
            mport="$(cat "${mport_file}")"
            if exec 9<> "/dev/tcp/127.0.0.1/${mport}" 2> /dev/null; then
                printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
                sed -e '1,/^\r\{0,1\}$/d' <&9 > "${out%.json}.metrics.prom" || true
                exec 9>&- 9<&-
                echo "archived $(wc -l < "${out%.json}.metrics.prom") metric lines to ${out%.json}.metrics.prom" >&2
            else
                echo "warning: could not scrape /metrics on port ${mport}" >&2
            fi
        fi
        # Archive the full loadgen summary (including the per-second
        # req/s + p99 timeline) next to the output JSON - the shape
        # of the burst, not just its aggregates.
        if [[ -s "${loadgen_json}" ]]; then
            cp "${loadgen_json}" "${out%.json}.loadgen.json"
            echo "archived loadgen timeline to ${out%.json}.loadgen.json" >&2
        fi
        kill -TERM "${serve_pid}" 2> /dev/null || true
        serve_rc=0
        wait "${serve_pid}" || serve_rc=$?
        if [[ "${rc}" -ne 0 || "${serve_rc}" -ne 0 ]]; then
            echo "error: bench_service failed (loadgen=${rc}, serve=${serve_rc})" >&2
            failures=$((failures + 1))
        fi
        loadgen_summary="null"
        [[ -s "${loadgen_json}" ]] && loadgen_summary="$(cat "${loadgen_json}")"
        # Machine/shape context: cores, the daemon's resolved reactor
        # count (parsed from its "listening ... (N reactors" line) and
        # req/s normalised per core, so BENCH files are comparable
        # across machines.
        cores="$(nproc 2> /dev/null || echo 1)"
        reactors="$(sed -n 's/.*(\([0-9]\{1,\}\) reactors.*/\1/p' "${serve_log}" | head -1)"
        [[ -n "${reactors}" ]] || reactors=0
        rps="$(sed -n 's/.*"requests_per_sec": \([0-9.]\{1,\}\).*/\1/p' "${loadgen_json}" 2> /dev/null | head -1)"
        [[ -n "${rps}" ]] || rps=0
        rps_per_core="$(awk -v r="${rps}" -v c="${cores}" \
            'BEGIN { printf "%.1f", (c > 0 ? r / c : 0) }')"
        records+=("  {\"bench\": \"bench_service\", \"seconds\": ${seconds}, \"peak_rss_kib\": ${rss_kib}, \"threads\": ${threads}, \"exit_code\": ${rc}, \"nproc\": ${cores}, \"reactors\": ${reactors}, \"requests_per_sec_per_core\": ${rps_per_core}, \"loadgen\": ${loadgen_summary}}")
    fi
    rm -f "${port_file}" "${mport_file}" "${loadgen_json}" "${serve_log}"
fi

# SIMD dispatch record: what the dispatcher resolves on this machine
# (plus the raw cpuid feature bits) and per-kernel ns/elem at every
# tier the machine can actually force. A forced tier that the CPU or
# build cannot honour resolves to something lower; those are skipped,
# so the record only ever contains genuinely-run tiers.
kern_bin="${bench_dir}/bench_kernels"
if [[ -x "${kern_bin}" && "${have_python}" -eq 1 ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_simd"; }; then
    echo "timing bench_simd (per-ISA kernel sweep)" >&2
    isa_info="$("${kern_bin}" --print-isa)"
    tier_entries=()
    simd_rc=0
    for tier in scalar avx2 avx512; do
        resolved="$(FRACDRAM_ISA=${tier} "${kern_bin}" --print-isa |
            sed -n 's/.*"resolved": "\([a-z0-9]\{1,\}\)".*/\1/p')"
        if [[ "${resolved}" != "${tier}" ]]; then
            echo "  skipping ${tier} (resolves to ${resolved:-?})" >&2
            continue
        fi
        echo "  sweeping ${tier}" >&2
        kern_json="$(mktemp)"
        rc=0
        FRACDRAM_ISA=${tier} "${kern_bin}" \
            --benchmark_filter='(/16384|sha256SingleBlocks/32)$' \
            --benchmark_min_time=0.2 \
            --benchmark_format=json > "${kern_json}" 2> /dev/null || rc=$?
        if [[ "${rc}" -ne 0 ]]; then
            echo "error: bench_kernels (${tier}) exited with ${rc}" >&2
            simd_rc="${rc}"
            failures=$((failures + 1))
            rm -f "${kern_json}"
            continue
        fi
        # real_time is ns for the whole call; divide by the arg to get
        # ns per element (per block for the SHA bench).
        per_kernel="$(python3 - "${kern_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
out = {}
for b in doc.get("benchmarks", []):
    name, _, arg = b["name"].partition("/")
    out[name.removeprefix("BM_")] = round(
        b["real_time"] / float(arg), 3)
print(json.dumps(out))
PY
)"
        tier_entries+=("\"${tier}\": ${per_kernel}")
        rm -f "${kern_json}"
    done
    tiers_json="{$(IFS=', '; echo "${tier_entries[*]}")}"
    records+=("  {\"bench\": \"bench_simd\", \"exit_code\": ${simd_rc}, \"isa\": ${isa_info}, \"ns_per_elem\": ${tiers_json}}")
fi

# One daemon + one timed loadgen burst; honours FRACDRAM_ISA from the
# caller's environment. Any arguments after the duration are passed
# through as extra fracdram_serve flags (the forensics A/B uses this
# to arm one side). Prints the loadgen req/s (0 on failure).
service_rps() {
    local duration="$1" pf lj sl pid port rps rc=0
    shift
    pf="$(mktemp)" lj="$(mktemp)" sl="$(mktemp)"
    rm -f "${pf}"
    "${serve_bin}" --port 0 --shards 4 --port-file "${pf}" \
        --reactors "${FRACDRAM_BENCH_REACTORS:-0}" --quiet "$@" \
        > "${sl}" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        [[ -s "${pf}" ]] && break
        sleep 0.1
    done
    if [[ -s "${pf}" ]]; then
        port="$(cat "${pf}")"
        "${loadgen_bin}" --port "${port}" --conns 4 --window 16 \
            --duration "${duration}" \
            --bytes "${FRACDRAM_BENCH_BYTES:-32}" --warmup-ms 300 \
            --quiet --json-out "${lj}" > /dev/null 2>&1 || rc=$?
    else
        rc=1
    fi
    kill -TERM "${pid}" 2> /dev/null || true
    wait "${pid}" 2> /dev/null || true
    rps="$(sed -n 's/.*"requests_per_sec": \([0-9.]\{1,\}\).*/\1/p' \
        "${lj}" 2> /dev/null | head -1)"
    rm -f "${pf}" "${lj}" "${sl}"
    [[ "${rc}" -eq 0 && -n "${rps}" ]] || rps=0
    echo "${rps}"
}

# Interleaved scalar-vs-dispatched serving A/B. The dispatch tier is
# resolved once per process, so the arm is chosen by the daemon's
# environment at start; arms alternate scalar-first so clock drift and
# cache warmup bias both arms equally.
if [[ "${isa_ab}" -gt 0 && -x "${serve_bin}" && -x "${loadgen_bin}" ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_simd_ab"; }; then
    echo "timing bench_simd_ab (${isa_ab} interleaved scalar/dispatch pairs)" >&2
    scalar_rps=()
    dispatch_rps=()
    ab_rc=0
    for _ in $(seq 1 "${isa_ab}"); do
        s="$(FRACDRAM_ISA=scalar service_rps 2)"
        d="$( (unset FRACDRAM_ISA; service_rps 2) )"
        echo "  scalar ${s} req/s, dispatch ${d} req/s" >&2
        [[ "${s}" == "0" || "${d}" == "0" ]] && ab_rc=1
        scalar_rps+=("${s}")
        dispatch_rps+=("${d}")
    done
    if [[ "${ab_rc}" -ne 0 ]]; then
        echo "error: bench_simd_ab had failed bursts" >&2
        failures=$((failures + 1))
    fi
    scalar_list="$(IFS=,; echo "${scalar_rps[*]}")"
    dispatch_list="$(IFS=,; echo "${dispatch_rps[*]}")"
    read -r scalar_mean dispatch_mean speedup < <(awk \
        -v s="${scalar_list}" -v d="${dispatch_list}" 'BEGIN {
            ns = split(s, sa, ","); nd = split(d, da, ",");
            for (i = 1; i <= ns; i++) sm += sa[i] / ns;
            for (i = 1; i <= nd; i++) dm += da[i] / nd;
            printf "%.1f %.1f %.3f\n", sm, dm, (sm > 0 ? dm / sm : 0);
        }')
    records+=("  {\"bench\": \"bench_simd_ab\", \"exit_code\": ${ab_rc}, \"pairs\": ${isa_ab}, \"scalar_rps\": [${scalar_list}], \"dispatch_rps\": [${dispatch_list}], \"scalar_rps_mean\": ${scalar_mean}, \"dispatch_rps_mean\": ${dispatch_mean}, \"dispatch_speedup\": ${speedup}}")
fi

# Like service_rps, but with a one-backend fracdram_router between
# loadgen and the daemon: same daemon flags, same burst shape, one
# extra hop. Prints the loadgen req/s through the router (0 on
# failure).
router_rps() {
    local duration="$1" pf rpf lj sl rl pid rpid port rport rps rc=0
    pf="$(mktemp)" rpf="$(mktemp)" lj="$(mktemp)"
    sl="$(mktemp)" rl="$(mktemp)"
    rm -f "${pf}" "${rpf}"
    "${serve_bin}" --port 0 --shards 4 --port-file "${pf}" \
        --reactors "${FRACDRAM_BENCH_REACTORS:-0}" --quiet \
        > "${sl}" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        [[ -s "${pf}" ]] && break
        sleep 0.1
    done
    if [[ -s "${pf}" ]]; then
        port="$(cat "${pf}")"
        "${router_bin}" --port 0 --backend "127.0.0.1:${port}" \
            --port-file "${rpf}" --quiet > "${rl}" 2>&1 &
        rpid=$!
        for _ in $(seq 1 100); do
            [[ -s "${rpf}" ]] && break
            sleep 0.1
        done
        if [[ -s "${rpf}" ]]; then
            rport="$(cat "${rpf}")"
            "${loadgen_bin}" --port "${rport}" --conns 4 --window 16 \
                --duration "${duration}" \
                --bytes "${FRACDRAM_BENCH_BYTES:-32}" --warmup-ms 300 \
                --quiet --json-out "${lj}" > /dev/null 2>&1 || rc=$?
        else
            rc=1
        fi
        kill -TERM "${rpid}" 2> /dev/null || true
        wait "${rpid}" 2> /dev/null || true
    else
        rc=1
    fi
    kill -TERM "${pid}" 2> /dev/null || true
    wait "${pid}" 2> /dev/null || true
    rps="$(sed -n 's/.*"requests_per_sec": \([0-9.]\{1,\}\).*/\1/p' \
        "${lj}" 2> /dev/null | head -1)"
    rm -f "${pf}" "${rpf}" "${lj}" "${sl}" "${rl}"
    [[ "${rc}" -eq 0 && -n "${rps}" ]] || rps=0
    echo "${rps}"
}

# Interleaved forensics-off/-on serving A/B: same daemon and burst,
# one arm additionally carrying the full forensics stack (postmortem
# dir -> metrics history ticks, per-tick fatal-buffer re-serialization,
# watchdog stall scanning). The median delta is the headline number:
# the cost of always-on black-box instrumentation.
if [[ "${forensics_ab}" -gt 0 && -x "${serve_bin}" && -x "${loadgen_bin}" ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_forensics_ab"; }; then
    echo "timing bench_forensics_ab (${forensics_ab} interleaved off/on pairs)" >&2
    ab_pm_dir="$(mktemp -d)"
    off_rps=()
    on_rps=()
    fab_rc=0
    for _ in $(seq 1 "${forensics_ab}"); do
        f_off="$(service_rps 2)"
        f_on="$(service_rps 2 --postmortem-dir "${ab_pm_dir}")"
        echo "  forensics off ${f_off} req/s, on ${f_on} req/s" >&2
        [[ "${f_off}" == "0" || "${f_on}" == "0" ]] && fab_rc=1
        off_rps+=("${f_off}")
        on_rps+=("${f_on}")
    done
    rm -rf "${ab_pm_dir}"
    if [[ "${fab_rc}" -ne 0 ]]; then
        echo "error: bench_forensics_ab had failed bursts" >&2
        failures=$((failures + 1))
    fi
    off_list="$(IFS=,; echo "${off_rps[*]}")"
    on_list="$(IFS=,; echo "${on_rps[*]}")"
    read -r off_median on_median delta_pct < <(awk \
        -v o="${off_list}" -v n="${on_list}" 'BEGIN {
            no = split(o, oa, ","); nn = split(n, na, ",");
            # insertion sort: N is single digits
            for (i = 2; i <= no; i++)
                for (j = i; j > 1 && oa[j-1] > oa[j]; j--)
                    { t = oa[j]; oa[j] = oa[j-1]; oa[j-1] = t; }
            for (i = 2; i <= nn; i++)
                for (j = i; j > 1 && na[j-1] > na[j]; j--)
                    { t = na[j]; na[j] = na[j-1]; na[j-1] = t; }
            om = (no % 2) ? oa[(no+1)/2] : (oa[no/2] + oa[no/2+1]) / 2;
            nm = (nn % 2) ? na[(nn+1)/2] : (na[nn/2] + na[nn/2+1]) / 2;
            printf "%.1f %.1f %.2f\n", om, nm,
                (om > 0 ? (om - nm) / om * 100 : 0);
        }')
    echo "  medians: off ${off_median}, on ${on_median}, overhead ${delta_pct}%" >&2
    records+=("  {\"bench\": \"bench_forensics_ab\", \"exit_code\": ${fab_rc}, \"pairs\": ${forensics_ab}, \"forensics_off_rps\": [${off_list}], \"forensics_on_rps\": [${on_list}], \"forensics_off_rps_median\": ${off_median}, \"forensics_on_rps_median\": ${on_median}, \"median_overhead_pct\": ${delta_pct}}")
fi

# Interleaved direct-vs-router serving A/B: the routed arm adds one
# fracdram_router hop (decode, ring lookup, re-frame, second socket
# pair) in front of an otherwise identical daemon and burst, at
# window 16 both ways. Two payload points are measured:
#
#  - 1 KiB entropy reads (the headline `median_overhead_pct`): the
#    fleet's serving workload, where a request costs the daemon a
#    full DRBG block run and the router's fixed per-frame work is
#    amortized the way it is in production,
#  - 32 B frames (`small_frame_overhead_pct`): the frame-stress
#    point, which on a single-core host is really a CPU-share
#    measurement - loadgen, daemon and router all compete for one
#    core, so throughput is 1/sum(per-process cost) and even a
#    free router would lose the third process's share. Reported for
#    transparency, not as the serving number.
if [[ "${router_ab}" -gt 0 && -x "${serve_bin}" && -x "${loadgen_bin}" \
    && -x "${router_bin}" ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_router_ab"; }; then
    echo "timing bench_router_ab (${router_ab} interleaved direct/router pairs per payload point)" >&2
    rab_rc=0
    rab_fields=""
    for rab_bytes in 1024 32; do
        direct_rps=()
        routed_rps=()
        for _ in $(seq 1 "${router_ab}"); do
            r_direct="$(FRACDRAM_BENCH_BYTES=${rab_bytes} service_rps 2)"
            r_routed="$(FRACDRAM_BENCH_BYTES=${rab_bytes} router_rps 2)"
            echo "  [${rab_bytes} B] direct ${r_direct} req/s, routed ${r_routed} req/s" >&2
            [[ "${r_direct}" == "0" || "${r_routed}" == "0" ]] && rab_rc=1
            direct_rps+=("${r_direct}")
            routed_rps+=("${r_routed}")
        done
        direct_list="$(IFS=,; echo "${direct_rps[*]}")"
        routed_list="$(IFS=,; echo "${routed_rps[*]}")"
        read -r direct_median routed_median router_pct < <(awk \
            -v o="${direct_list}" -v n="${routed_list}" 'BEGIN {
                no = split(o, oa, ","); nn = split(n, na, ",");
                for (i = 2; i <= no; i++)
                    for (j = i; j > 1 && oa[j-1] > oa[j]; j--)
                        { t = oa[j]; oa[j] = oa[j-1]; oa[j-1] = t; }
                for (i = 2; i <= nn; i++)
                    for (j = i; j > 1 && na[j-1] > na[j]; j--)
                        { t = na[j]; na[j] = na[j-1]; na[j-1] = t; }
                om = (no % 2) ? oa[(no+1)/2] : (oa[no/2] + oa[no/2+1]) / 2;
                nm = (nn % 2) ? na[(nn+1)/2] : (na[nn/2] + na[nn/2+1]) / 2;
                printf "%.1f %.1f %.2f\n", om, nm,
                    (om > 0 ? (om - nm) / om * 100 : 0);
            }')
        echo "  [${rab_bytes} B] medians: direct ${direct_median}, routed ${routed_median}, overhead ${router_pct}%" >&2
        if [[ "${rab_bytes}" -eq 1024 ]]; then
            rab_fields="\"bytes\": 1024, \"direct_rps\": [${direct_list}], \"routed_rps\": [${routed_list}], \"direct_rps_median\": ${direct_median}, \"routed_rps_median\": ${routed_median}, \"median_overhead_pct\": ${router_pct}"
        else
            rab_fields="${rab_fields}, \"small_frame_bytes\": 32, \"small_frame_direct_rps\": [${direct_list}], \"small_frame_routed_rps\": [${routed_list}], \"small_frame_overhead_pct\": ${router_pct}"
        fi
    done
    if [[ "${rab_rc}" -ne 0 ]]; then
        echo "error: bench_router_ab had failed bursts" >&2
        failures=$((failures + 1))
    fi
    records+=("  {\"bench\": \"bench_router_ab\", \"exit_code\": ${rab_rc}, \"pairs\": ${router_ab}, \"window\": 16, ${rab_fields}}")
fi

if [[ ${#records[@]} -eq 0 ]]; then
    echo "error: no benches matched (filter: '${filter:-<none>}')" >&2
    exit 1
fi

{
    echo "["
    for i in "${!records[@]}"; do
        sep=","
        [[ "${i}" -eq $((${#records[@]} - 1)) ]] && sep=""
        echo "${records[${i}]}${sep}"
    done
    echo "]"
} > "${out}"

echo "wrote ${out} (${#records[@]} benches, threads=${threads})" >&2

if [[ "${failures}" -gt 0 ]]; then
    echo "error: ${failures} bench(es) failed" >&2
    exit 1
fi
