#!/usr/bin/env bash
# Times every bench_* driver in the build tree and writes the results
# to a JSON array of {bench, seconds, peak_rss_kib, threads} records.
# Wall time and peak RSS come from a python3 getrusage wrapper (the
# container has no /usr/bin/time); without python3 the RSS is
# recorded as 0 and timing falls back to date +%s.%N.
#
# Usage: scripts/run_benches.sh [options] [build_dir] [output.json]
#
# Options:
#   --filter <regex>  only run benches whose name matches the (grep -E)
#                     regex, e.g. --filter 'trng|nist'
#   --out <file>      output JSON path (same as the second positional
#                     argument; the flag wins if both are given)
#
# The thread count recorded is what the parallel engine resolves:
# FRACDRAM_THREADS if set, otherwise the machine's hardware
# concurrency. Set FRACDRAM_THREADS=1 to time the serial baseline.
#
# bench_timing and bench_kernels are skipped: they are
# google-benchmark microbenchmark harnesses with their own timing
# loops, not fixed-work drivers.
#
# The serving pair (fracdram_serve + fracdram_loadgen) is recorded as
# the "bench_service" entry: the daemon is started on an ephemeral
# port with its metrics endpoint up, a traced loadgen burst is timed,
# and the loadgen summary (req/s, p50/p95/p99 latency, plus the
# server-side histograms) is embedded in the record's "loadgen"
# field. The record also carries the machine's core count, the
# daemon's reactor count and the derived req/s-per-core so BENCH
# files from different machines stay comparable. The daemon's final
# /metrics scrape is archived next to the output JSON as
# <output>.metrics.prom. FRACDRAM_BENCH_REACTORS overrides the
# daemon's reactor count (default: auto).
#
# Any bench that exits non-zero (or a daemon that fails to shut down
# cleanly) makes this script exit non-zero after writing the JSON, so
# CI cannot mistake a partial BENCH file for a healthy run.

set -euo pipefail

filter=""
out_flag=""
positional=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --filter)
            [[ $# -ge 2 ]] || { echo "error: --filter needs a regex" >&2; exit 1; }
            filter="$2"
            shift 2
            ;;
        --out)
            [[ $# -ge 2 ]] || { echo "error: --out needs a path" >&2; exit 1; }
            out_flag="$2"
            shift 2
            ;;
        --help|-h)
            sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        --*)
            echo "error: unknown option $1" >&2
            exit 1
            ;;
        *)
            positional+=("$1")
            shift
            ;;
    esac
done

build_dir="${positional[0]:-build}"
out="${out_flag:-${positional[1]:-BENCH_PR1.json}}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: ${bench_dir} not found (build the project first)" >&2
    exit 1
fi

threads="${FRACDRAM_THREADS:-$(nproc 2>/dev/null || echo 1)}"

have_python=0
command -v python3 > /dev/null 2>&1 && have_python=1

# Runs "$@" with stdout discarded and prints "<wall_s> <peak_rss_kib>
# <exit_code>". RUSAGE_CHILDREN's ru_maxrss is the max over all
# children, so each bench runs in its own wrapper process.
measure() {
    python3 - "$@" <<'PY'
import resource, subprocess, sys, time
start = time.monotonic()
rc = subprocess.call(sys.argv[1:], stdout=subprocess.DEVNULL)
wall = time.monotonic() - start
rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.3f} {rss} {rc}")
PY
}

# Quick-mode flags keep total wall time reasonable; the relative
# serial-vs-parallel ratio is what matters, not absolute run length.
declare -A extra_args=(
    [bench_fig9_fmaj_coverage]="--quick"
)

records=()
failures=0
for bin in "${bench_dir}"/bench_*; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    [[ "${name}" == "bench_timing" || "${name}" == "bench_kernels" ]] \
        && continue
    if [[ -n "${filter}" ]] && ! grep -qE "${filter}" <<< "${name}"; then
        continue
    fi

    args="${extra_args[${name}]:-}"
    echo "timing ${name} ${args} (threads=${threads})" >&2

    rc=0
    if [[ "${have_python}" -eq 1 ]]; then
        # shellcheck disable=SC2086
        read -r seconds rss_kib rc < <(measure "${bin}" ${args})
    else
        start=$(date +%s.%N)
        # shellcheck disable=SC2086
        "${bin}" ${args} > /dev/null || rc=$?
        end=$(date +%s.%N)
        seconds=$(awk -v a="${start}" -v b="${end}" \
            'BEGIN { printf "%.3f", b - a }')
        rss_kib=0
    fi
    if [[ "${rc}" -ne 0 ]]; then
        echo "error: ${name} exited with ${rc}" >&2
        failures=$((failures + 1))
    fi

    records+=("  {\"bench\": \"${name}\", \"seconds\": ${seconds}, \"peak_rss_kib\": ${rss_kib}, \"threads\": ${threads}, \"exit_code\": ${rc}}")
done

# The serving pair: daemon on an ephemeral port + a timed loadgen
# burst, recorded as one first-class bench entry.
serve_bin="${build_dir}/tools/fracdram_serve"
loadgen_bin="${build_dir}/tools/fracdram_loadgen"
if [[ -x "${serve_bin}" && -x "${loadgen_bin}" ]] &&
    { [[ -z "${filter}" ]] || grep -qE "${filter}" <<< "bench_service"; }; then
    bench_reactors="${FRACDRAM_BENCH_REACTORS:-0}"
    echo "timing bench_service (serve + loadgen, reactors=${bench_reactors})" >&2
    port_file="$(mktemp)" mport_file="$(mktemp)" loadgen_json="$(mktemp)"
    serve_log="$(mktemp)"
    rm -f "${port_file}" "${mport_file}"
    "${serve_bin}" --port 0 --shards 4 --port-file "${port_file}" \
        --reactors "${bench_reactors}" \
        --metrics-port 0 --metrics-port-file "${mport_file}" \
        > "${serve_log}" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "${port_file}" ]] && break
        sleep 0.1
    done
    if [[ ! -s "${port_file}" ]]; then
        echo "error: fracdram_serve never published its port" >&2
        kill "${serve_pid}" 2> /dev/null || true
        failures=$((failures + 1))
    else
        port="$(cat "${port_file}")"
        rc=0
        if [[ "${have_python}" -eq 1 ]]; then
            read -r seconds rss_kib rc < <(measure "${loadgen_bin}" \
                --port "${port}" --conns 4 --window 16 --duration 4 \
                --bytes 32 --warmup-ms 500 --trace \
                --json-out "${loadgen_json}")
        else
            start=$(date +%s.%N)
            "${loadgen_bin}" --port "${port}" --conns 4 --window 16 \
                --duration 4 --bytes 32 --warmup-ms 500 --trace \
                --json-out "${loadgen_json}" > /dev/null || rc=$?
            end=$(date +%s.%N)
            seconds=$(awk -v a="${start}" -v b="${end}" \
                'BEGIN { printf "%.3f", b - a }')
            rss_kib=0
        fi
        # Archive the post-burst /metrics scrape alongside the JSON:
        # the full Prometheus state of the daemon that produced these
        # numbers (no curl in the container; plain /dev/tcp works).
        if [[ -s "${mport_file}" ]]; then
            mport="$(cat "${mport_file}")"
            if exec 9<> "/dev/tcp/127.0.0.1/${mport}" 2> /dev/null; then
                printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
                sed -e '1,/^\r\{0,1\}$/d' <&9 > "${out%.json}.metrics.prom" || true
                exec 9>&- 9<&-
                echo "archived $(wc -l < "${out%.json}.metrics.prom") metric lines to ${out%.json}.metrics.prom" >&2
            else
                echo "warning: could not scrape /metrics on port ${mport}" >&2
            fi
        fi
        kill -TERM "${serve_pid}" 2> /dev/null || true
        serve_rc=0
        wait "${serve_pid}" || serve_rc=$?
        if [[ "${rc}" -ne 0 || "${serve_rc}" -ne 0 ]]; then
            echo "error: bench_service failed (loadgen=${rc}, serve=${serve_rc})" >&2
            failures=$((failures + 1))
        fi
        loadgen_summary="null"
        [[ -s "${loadgen_json}" ]] && loadgen_summary="$(cat "${loadgen_json}")"
        # Machine/shape context: cores, the daemon's resolved reactor
        # count (parsed from its "listening ... (N reactors" line) and
        # req/s normalised per core, so BENCH files are comparable
        # across machines.
        cores="$(nproc 2> /dev/null || echo 1)"
        reactors="$(sed -n 's/.*(\([0-9]\{1,\}\) reactors.*/\1/p' "${serve_log}" | head -1)"
        [[ -n "${reactors}" ]] || reactors=0
        rps="$(sed -n 's/.*"requests_per_sec": \([0-9.]\{1,\}\).*/\1/p' "${loadgen_json}" 2> /dev/null | head -1)"
        [[ -n "${rps}" ]] || rps=0
        rps_per_core="$(awk -v r="${rps}" -v c="${cores}" \
            'BEGIN { printf "%.1f", (c > 0 ? r / c : 0) }')"
        records+=("  {\"bench\": \"bench_service\", \"seconds\": ${seconds}, \"peak_rss_kib\": ${rss_kib}, \"threads\": ${threads}, \"exit_code\": ${rc}, \"nproc\": ${cores}, \"reactors\": ${reactors}, \"requests_per_sec_per_core\": ${rps_per_core}, \"loadgen\": ${loadgen_summary}}")
    fi
    rm -f "${port_file}" "${mport_file}" "${loadgen_json}" "${serve_log}"
fi

if [[ ${#records[@]} -eq 0 ]]; then
    echo "error: no benches matched (filter: '${filter:-<none>}')" >&2
    exit 1
fi

{
    echo "["
    for i in "${!records[@]}"; do
        sep=","
        [[ "${i}" -eq $((${#records[@]} - 1)) ]] && sep=""
        echo "${records[${i}]}${sep}"
    done
    echo "]"
} > "${out}"

echo "wrote ${out} (${#records[@]} benches, threads=${threads})" >&2

if [[ "${failures}" -gt 0 ]]; then
    echo "error: ${failures} bench(es) failed" >&2
    exit 1
fi
