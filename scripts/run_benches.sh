#!/usr/bin/env bash
# Times every bench_* driver in the build tree and writes the results
# to BENCH_PR1.json as an array of {bench, seconds, threads} records.
#
# Usage: scripts/run_benches.sh [build_dir] [output.json]
#
# The thread count recorded is what the parallel engine resolves:
# FRACDRAM_THREADS if set, otherwise the machine's hardware
# concurrency. Set FRACDRAM_THREADS=1 to time the serial baseline.
#
# bench_timing is skipped: it is a google-benchmark microbenchmark
# harness with its own timing loop, not a fixed-work driver.

set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_PR1.json}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: ${bench_dir} not found (build the project first)" >&2
    exit 1
fi

threads="${FRACDRAM_THREADS:-$(nproc 2>/dev/null || echo 1)}"

# Quick-mode flags keep total wall time reasonable; the relative
# serial-vs-parallel ratio is what matters, not absolute run length.
declare -A extra_args=(
    [bench_fig9_fmaj_coverage]="--quick"
)

records=()
for bin in "${bench_dir}"/bench_*; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    [[ "${name}" == "bench_timing" ]] && continue

    args="${extra_args[${name}]:-}"
    echo "timing ${name} ${args} (threads=${threads})" >&2

    start=$(date +%s.%N)
    # shellcheck disable=SC2086
    "${bin}" ${args} > /dev/null || {
        echo "warning: ${name} exited non-zero; recording anyway" >&2
    }
    end=$(date +%s.%N)
    seconds=$(awk -v a="${start}" -v b="${end}" \
        'BEGIN { printf "%.3f", b - a }')

    records+=("  {\"bench\": \"${name}\", \"seconds\": ${seconds}, \"threads\": ${threads}}")
done

{
    echo "["
    for i in "${!records[@]}"; do
        sep=","
        [[ "${i}" -eq $((${#records[@]} - 1)) ]] && sep=""
        echo "${records[${i}]}${sep}"
    done
    echo "]"
} > "${out}"

echo "wrote ${out} (${#records[@]} benches, threads=${threads})" >&2
