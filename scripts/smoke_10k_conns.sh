#!/usr/bin/env bash
# 10k-concurrent-connection smoke test, wired into ctest as
# "smoke_10k_conns":
#
#   1. start fracdram_serve with a 12k connection cap,
#   2. storm it: fracdram_loadgen --storm opens 10 000 concurrent
#      connections, sends ONE request on each and requires an answer
#      on every single one (the reactor core must hold 10k live fds
#      while answering),
#   3. once the ready-file confirms all answers arrived, SIGTERM the
#      daemon while all 10k connections are still open and require a
#      clean (exit 0) drain: every storm connection must see EOF, not
#      a reset, and the daemon log must carry the clean-shutdown
#      marker.
#
# The storm runs in a separate process so the 10k client fds and the
# 10k server fds live under separate RLIMIT_NOFILE budgets.
#
# Usage: smoke_10k_conns.sh <fracdram_serve> <fracdram_loadgen> [n_conns]

set -euo pipefail

serve_bin="${1:?usage: smoke_10k_conns.sh <serve_bin> <loadgen_bin> [n]}"
loadgen_bin="${2:?usage: smoke_10k_conns.sh <serve_bin> <loadgen_bin> [n]}"
n_conns="${3:-10000}"

# The storm needs n_conns fds plus slack on each side.
need=$((n_conns + 100))
limit="$(ulimit -n -H)"
if [[ "${limit}" != "unlimited" && "${limit}" -lt "${need}" ]]; then
    echo "SKIP: fd hard limit ${limit} < ${need}" >&2
    exit 0
fi
ulimit -n "${need}" 2> /dev/null || true

workdir="$(mktemp -d)"
serve_pid=""
storm_pid=""
cleanup() {
    [[ -n "${storm_pid}" ]] && kill "${storm_pid}" 2> /dev/null || true
    [[ -n "${serve_pid}" ]] && kill "${serve_pid}" 2> /dev/null || true
    rm -rf "${workdir}"
}
trap cleanup EXIT

port_file="${workdir}/port"
serve_log="${workdir}/serve.log"
storm_log="${workdir}/storm.log"
ready_file="${workdir}/ready"

"${serve_bin}" --port 0 --shards 2 --cols 512 \
    --max-conns $((n_conns + 64)) --rate-limit 0 \
    --port-file "${port_file}" > "${serve_log}" 2>&1 &
serve_pid=$!

for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && break
    kill -0 "${serve_pid}" 2> /dev/null || {
        echo "FAIL: daemon died during startup" >&2
        cat "${serve_log}" >&2
        exit 1
    }
    sleep 0.1
done
[[ -s "${port_file}" ]] || {
    echo "FAIL: daemon never published its port" >&2
    exit 1
}
port="$(cat "${port_file}")"
echo "daemon up on port ${port} (pid ${serve_pid})" >&2

"${loadgen_bin}" --port "${port}" --storm "${n_conns}" \
    --ready-file "${ready_file}" --hold-secs 60 \
    > "${storm_log}" 2>&1 &
storm_pid=$!

# Wait for every storm connection to be opened AND answered.
for _ in $(seq 1 600); do
    [[ -s "${ready_file}" ]] && break
    kill -0 "${storm_pid}" 2> /dev/null || break
    sleep 0.1
done
[[ -s "${ready_file}" ]] || {
    echo "FAIL: storm never reported ready:" >&2
    cat "${storm_log}" >&2
    exit 1
}
grep -q "answered ${n_conns}" "${ready_file}" || {
    echo "FAIL: not all connections answered: $(cat "${ready_file}")" >&2
    cat "${storm_log}" >&2
    exit 1
}
echo "storm ready: $(cat "${ready_file}")" >&2

# Drain with all n_conns connections still open. The storm holds its
# sockets and requires EOF (not ECONNRESET) on every one.
kill -TERM "${serve_pid}"
rc=0
wait "${serve_pid}" || rc=$?
serve_pid=""
if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: daemon exited ${rc} on SIGTERM" >&2
    tail -50 "${serve_log}" >&2
    exit 1
fi
grep -q "clean shutdown" "${serve_log}" || {
    echo "FAIL: no clean-shutdown marker in daemon log" >&2
    tail -50 "${serve_log}" >&2
    exit 1
}

storm_rc=0
wait "${storm_pid}" || storm_rc=$?
storm_pid=""
if [[ "${storm_rc}" -ne 0 ]]; then
    echo "FAIL: storm exited ${storm_rc}:" >&2
    cat "${storm_log}" >&2
    exit 1
fi
echo "storm summary: $(tail -3 "${storm_log}")" >&2
echo "PASS: smoke_10k_conns (${n_conns} connections)" >&2
