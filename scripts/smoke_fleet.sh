#!/usr/bin/env bash
# Fleet-mode smoke test, wired into ctest as "smoke_fleet" and run as
# the fleet-smoke CI job:
#
#   1. start 3 fracdram_serve daemons (same serial base, so any two
#      materialize bit-identical devices) and a fracdram_router over
#      them with fast probe/eject/readmit settings,
#   2. enroll PUF keys through the router (replicated to each key's
#      ring successor),
#   3. run a vendor-mix load through the router and kill -9 one
#      daemon mid-load: the run must finish with ZERO client errors
#      (in-flight requests re-route, capability refusals are typed),
#   4. require the ejection WARN in the router log,
#   5. restart the dead daemon on its old ports and await the
#      hysteresis re-admission line,
#   6. verify every enrolled key still answers OK through the router
#      (failover to the replica while daemon 2 was down; primary
#      again after),
#   7. check the fleet /metrics aggregate: the router's summed
#      fracdram_service_jobs_total must equal the sum of the three
#      daemons' own series,
#   8. SIGTERM everything and require clean-shutdown markers.
#
# Usage: smoke_fleet.sh <fracdram_serve> <fracdram_loadgen> <fracdram_router>

set -euo pipefail

serve_bin="${1:?usage: smoke_fleet.sh <serve> <loadgen> <router>}"
loadgen_bin="${2:?usage: smoke_fleet.sh <serve> <loadgen> <router>}"
router_bin="${3:?usage: smoke_fleet.sh <serve> <loadgen> <router>}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
    local p
    for p in "${pids[@]:-}"; do
        kill "${p}" 2> /dev/null || true
    done
    rm -rf "${workdir}"
}
trap cleanup EXIT

# http_get HOST PORT PATH OUTFILE -> exit 0 and body in OUTFILE on 200
http_get() {
    local host="$1" port="$2" path="$3" out="$4"
    local resp
    exec 9<> "/dev/tcp/${host}/${port}" || return 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "${path}" >&9
    resp="$(cat <&9)"
    exec 9>&- 9<&-
    printf '%s' "${resp#*$'\r\n\r\n'}" > "${out}"
    grep -q '^HTTP/1\.0 200' <<< "${resp}"
}

# wait_file FILE PID NAME: await a port file while PID stays alive.
wait_file() {
    local file="$1" pid="$2" name="$3"
    local _
    for _ in $(seq 1 150); do
        [[ -s "${file}" ]] && return 0
        kill -0 "${pid}" 2> /dev/null || {
            echo "FAIL: ${name} died during startup" >&2
            return 1
        }
        sleep 0.1
    done
    echo "FAIL: ${name} never published ${file}" >&2
    return 1
}

# wait_log LOG PATTERN NAME: await a log line (ejection/re-admission).
wait_log() {
    local log="$1" pattern="$2" name="$3"
    local _
    for _ in $(seq 1 200); do
        grep -q "${pattern}" "${log}" && return 0
        sleep 0.1
    done
    echo "FAIL: no '${pattern}' in ${name} log" >&2
    cat "${log}" >&2
    return 1
}

start_daemon() {
    local i="$1" port="${2:-0}" mport="${3:-0}"
    "${serve_bin}" --port "${port}" --metrics-port "${mport}" \
        --shards 1 --reactors 1 --no-pin --cols 256 \
        --port-file "${workdir}/d${i}.port" \
        --metrics-port-file "${workdir}/d${i}.mport" \
        >> "${workdir}/d${i}.log" 2>&1 &
    eval "d${i}_pid=$!"
    pids+=("$!")
}

# --- 1. three daemons + the router ------------------------------------
for i in 1 2 3; do
    rm -f "${workdir}/d${i}.port" "${workdir}/d${i}.mport"
    start_daemon "${i}"
done
for i in 1 2 3; do
    pid_var="d${i}_pid"
    wait_file "${workdir}/d${i}.port" "${!pid_var}" "daemon ${i}"
done
backends=()
for i in 1 2 3; do
    backends+=(--backend
        "127.0.0.1:$(cat "${workdir}/d${i}.port"):$(cat "${workdir}/d${i}.mport")")
done

"${router_bin}" --port 0 --metrics-port 0 "${backends[@]}" \
    --probe-interval-ms 100 --eject-after 2 --readmit-after 3 \
    --port-file "${workdir}/router.port" \
    --metrics-port-file "${workdir}/router.mport" \
    > "${workdir}/router.log" 2>&1 &
router_pid=$!
pids+=("${router_pid}")
wait_file "${workdir}/router.port" "${router_pid}" "router"
rport="$(cat "${workdir}/router.port")"
rmport="$(cat "${workdir}/router.mport")"
echo "fleet up: router ${rport}, daemons" \
    "$(cat "${workdir}"/d{1,2,3}.port | tr '\n' ' ')" >&2

health="$("${loadgen_bin}" --port "${rport}" --check-health)"
grep -q '"status": "ok"' <<< "${health}" || {
    echo "FAIL: unexpected fleet HEALTH: ${health}" >&2
    exit 1
}

# --- 2. enroll keys through the router --------------------------------
n_keys=8
"${loadgen_bin}" --port "${rport}" --puf-enroll "${n_keys}" || {
    echo "FAIL: enrollment through the router failed" >&2
    exit 1
}

# --- 3. vendor-mix load; kill a daemon mid-run ------------------------
"${loadgen_bin}" --port "${rport}" --scenario vendor-mix \
    --conns 2 --window 8 --duration 6 --bytes 16 \
    --json-out "${workdir}/load.json" &
load_pid=$!
sleep 2
d2_port="$(cat "${workdir}/d2.port")"
d2_mport="$(cat "${workdir}/d2.mport")"
kill -9 "${d2_pid}"
echo "killed daemon 2 (pid ${d2_pid}) mid-load" >&2

wait "${load_pid}" || {
    echo "FAIL: vendor-mix load reported errors across the kill" >&2
    cat "${workdir}/load.json" >&2 || true
    cat "${workdir}/router.log" >&2
    exit 1
}
grep -q '"errors": 0' "${workdir}/load.json" || {
    echo "FAIL: load summary has client errors:" >&2
    cat "${workdir}/load.json" >&2
    exit 1
}
grep -q '"ok": 0,' "${workdir}/load.json" && {
    echo "FAIL: load completed nothing" >&2
    cat "${workdir}/load.json" >&2
    exit 1
}
echo "load summary: $(cat "${workdir}/load.json" | head -c 400)" >&2

# --- 4. the router must have ejected the dead daemon ------------------
wait_log "${workdir}/router.log" "ejected" "router"

# With a daemon dead, every replicated key must still answer OK: keys
# it owned fail over to their ring-successor replicas.
"${loadgen_bin}" --port "${rport}" --puf-verify "${n_keys}" || {
    echo "FAIL: key verification failed while a daemon was down" >&2
    cat "${workdir}/router.log" >&2
    exit 1
}

# --- 5. restart daemon 2 on its old ports; await re-admission ---------
rm -f "${workdir}/d2.port" "${workdir}/d2.mport"
start_daemon 2 "${d2_port}" "${d2_mport}"
wait_file "${workdir}/d2.port" "${d2_pid}" "daemon 2 (restarted)"
wait_log "${workdir}/router.log" "re-admitted" "router"

# --- 6. every key must still verify through the router ----------------
"${loadgen_bin}" --port "${rport}" --puf-verify "${n_keys}" || {
    echo "FAIL: a replicated key was lost across the failover" >&2
    cat "${workdir}/router.log" >&2
    exit 1
}

# --- 7. fleet /metrics aggregate == sum of the daemons ----------------
http_get 127.0.0.1 "${rmport}" /metrics "${workdir}/fleet.prom" || {
    echo "FAIL: router /metrics unavailable" >&2
    exit 1
}
http_get 127.0.0.1 "${rmport}" /fleet "${workdir}/fleet.json" || {
    echo "FAIL: router /fleet unavailable" >&2
    exit 1
}
grep -q '"role": "router"' "${workdir}/fleet.json" || {
    echo "FAIL: /fleet topology malformed:" >&2
    cat "${workdir}/fleet.json" >&2
    exit 1
}
agg="$(awk '$1 == "fracdram_service_jobs_total" {print $2}' \
    "${workdir}/fleet.prom")"
[[ -n "${agg}" ]] || {
    echo "FAIL: no aggregated fracdram_service_jobs_total" >&2
    head -50 "${workdir}/fleet.prom" >&2
    exit 1
}
want=0
for i in 1 2 3; do
    http_get 127.0.0.1 "$(cat "${workdir}/d${i}.mport")" /metrics \
        "${workdir}/d${i}.prom" || {
        echo "FAIL: daemon ${i} /metrics unavailable" >&2
        exit 1
    }
    v="$(awk '$1 == "fracdram_service_jobs_total" {print $2}' \
        "${workdir}/d${i}.prom")"
    want=$((want + v))
done
# The daemons serve no traffic between the two scrape rounds, so the
# totals must match exactly.
[[ "${agg}" -eq "${want}" ]] || {
    echo "FAIL: aggregate jobs ${agg} != sum of daemons ${want}" >&2
    exit 1
}
echo "fleet aggregate ok: jobs_total ${agg} == ${want}" >&2

# --- 8. graceful teardown ---------------------------------------------
kill -TERM "${router_pid}"
rc=0
wait "${router_pid}" || rc=$?
if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: router exited ${rc} on SIGTERM" >&2
    cat "${workdir}/router.log" >&2
    exit 1
fi
grep -q "clean shutdown" "${workdir}/router.log" || {
    echo "FAIL: no clean-shutdown marker in router log" >&2
    cat "${workdir}/router.log" >&2
    exit 1
}
for i in 1 2 3; do
    pid_var="d${i}_pid"
    kill -TERM "${!pid_var}" 2> /dev/null || true
    wait "${!pid_var}" || {
        echo "FAIL: daemon ${i} did not exit cleanly" >&2
        cat "${workdir}/d${i}.log" >&2
        exit 1
    }
    grep -q "clean shutdown" "${workdir}/d${i}.log" || {
        echo "FAIL: no clean-shutdown marker in daemon ${i} log" >&2
        cat "${workdir}/d${i}.log" >&2
        exit 1
    }
done
pids=()
echo "PASS: smoke_fleet" >&2
