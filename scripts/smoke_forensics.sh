#!/usr/bin/env bash
# Process-level proof of the reactor-stall forensics pipeline, wired
# into ctest as "smoke_forensics" and CI as the forensics-smoke job:
#
#   1. start fracdram_serve with one reactor, a 100ms watchdog, a
#      postmortem dir, and the FRACDRAM_TEST_FREEZE_REACTOR test hook
#      armed (reactor 0 sleeps 3s on its loop thread when it adopts
#      its first connection),
#   2. open one TCP connection - the loop freezes mid-phase,
#   3. the watchdog must detect the frozen heartbeat, name reactor 0
#      and its stuck phase in the WARN, and trigger a postmortem dump
#      through the flight recorder,
#   4. validate the bundle (reason, detail, phase legend, history),
#   5. after the freeze the reactor must recover: the daemon still
#      answers requests and shuts down cleanly on SIGTERM.
#
# Usage: smoke_forensics.sh <serve>

set -euo pipefail

serve_bin="${1:?usage: smoke_forensics.sh <serve>}"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [[ -n "${serve_pid}" ]] && kill "${serve_pid}" 2> /dev/null || true
    rm -rf "${workdir}"
}
trap cleanup EXIT

port_file="${workdir}/port"
mport_file="${workdir}/metrics_port"
serve_log="${workdir}/serve.log"
pm_dir="${workdir}/postmortem"
mkdir -p "${pm_dir}"

# http_get HOST PORT PATH OUTFILE -> exit 0 and body in OUTFILE on 200
http_get() {
    local host="$1" port="$2" path="$3" out="$4"
    local resp
    exec 9<> "/dev/tcp/${host}/${port}" || return 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "${path}" >&9
    resp="$(cat <&9)"
    exec 9>&- 9<&-
    printf '%s' "${resp#*$'\r\n\r\n'}" > "${out}"
    grep -q '^HTTP/1\.0 200' <<< "${resp}"
}

FRACDRAM_TEST_FREEZE_REACTOR="0:3000" \
    "${serve_bin}" --port 0 --reactors 1 --shards 2 --cols 512 \
    --port-file "${port_file}" \
    --metrics-port 0 --metrics-port-file "${mport_file}" \
    --watchdog-interval-ms 100 --stall-intervals 3 \
    --history-res-ms 25 --history-points 400 \
    --postmortem-dir "${pm_dir}" \
    > "${serve_log}" 2>&1 &
serve_pid=$!

for _ in $(seq 1 100); do
    [[ -s "${port_file}" && -s "${mport_file}" ]] && break
    kill -0 "${serve_pid}" 2> /dev/null || {
        echo "FAIL: daemon died during startup" >&2
        cat "${serve_log}" >&2
        exit 1
    }
    sleep 0.1
done
[[ -s "${port_file}" && -s "${mport_file}" ]] || {
    echo "FAIL: daemon never published its ports" >&2
    cat "${serve_log}" >&2
    exit 1
}
port="$(cat "${port_file}")"
mport="$(cat "${mport_file}")"
echo "daemon up: data port ${port}, metrics port ${mport}" >&2

grep -q 'freeze hook armed' "${serve_log}" || {
    echo "FAIL: freeze test hook did not arm" >&2
    cat "${serve_log}" >&2
    exit 1
}

# One connection is enough: adopting it freezes the loop for 3s.
exec 8<> "/dev/tcp/127.0.0.1/${port}" || {
    echo "FAIL: cannot connect to the daemon" >&2
    exit 1
}

# The watchdog (100ms interval, 3 frozen samples) must dump within
# the 3s freeze window.
pm_file=""
for _ in $(seq 1 100); do
    pm_file="$(ls "${pm_dir}"/postmortem-1*.json 2> /dev/null |
        head -1 || true)"
    [[ -n "${pm_file}" ]] && break
    sleep 0.1
done
exec 8>&- 8<&- || true
[[ -n "${pm_file}" ]] || {
    echo "FAIL: stall produced no postmortem bundle" >&2
    cat "${serve_log}" >&2
    exit 1
}
echo "postmortem bundle: ${pm_file}" >&2

python3 - "${pm_file}" <<'PY' || exit 1
import json, sys
bundle = json.load(open(sys.argv[1]))
assert bundle["reason"] == "reactor_stall", bundle["reason"]
detail = bundle["detail"]
assert "reactor 0 stalled" in detail, detail
assert "stuck in phase '" in detail, detail
want = {"idle", "accept", "read", "shard-dispatch", "writev",
        "control", "tick"}
assert set(bundle["phase_names"]) == want
assert bundle["watchdog"]["stall_events"] >= 1, bundle["watchdog"]
assert bundle["watchdog"]["stalled_reactors"] >= 1
assert bundle["history"] is not None, "bundle has no history"
assert "service.reactor0.heartbeat" in bundle["history"]["series"]
print(f"stall postmortem ok: {detail}")
PY

grep -q 'reactor 0 stalled' "${serve_log}" || {
    echo "FAIL: watchdog WARN missing from the daemon log" >&2
    cat "${serve_log}" >&2
    exit 1
}

# Recovery: once the freeze expires the loop heartbeat advances
# again and the daemon serves normally.
sleep 3
grep -q 'reactor 0 recovered' "${serve_log}" || {
    echo "FAIL: no recovery marker after the freeze expired" >&2
    cat "${serve_log}" >&2
    exit 1
}
http_get 127.0.0.1 "${mport}" /healthz "${workdir}/healthz" || {
    echo "FAIL: daemon unhealthy after recovery" >&2
    exit 1
}

kill -TERM "${serve_pid}"
rc=0
wait "${serve_pid}" || rc=$?
serve_pid=""
if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: daemon exited ${rc} on SIGTERM" >&2
    cat "${serve_log}" >&2
    exit 1
fi
grep -q "clean shutdown" "${serve_log}" || {
    echo "FAIL: no clean-shutdown marker in daemon log" >&2
    cat "${serve_log}" >&2
    exit 1
}
echo "PASS: smoke_forensics" >&2
