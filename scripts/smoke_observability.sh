#!/usr/bin/env bash
# Process-level smoke test of the observability surface, wired into
# ctest as "smoke_observability":
#
#   1. start fracdram_serve with --metrics-port 0 and an SLO,
#   2. scrape /metrics and /healthz over plain TCP (bash /dev/tcp, so
#      no curl dependency) and require a 200 + Prometheus families,
#   3. fire a traced loadgen burst and require zero errors,
#   4. re-scrape: the request_ns histogram must have moved, and
#      /varz?trace=8 must return per-stage timelines,
#   5. render one fracdram_top frame against the live daemon,
#   6. query /history and require per-tick series for the service
#      families,
#   7. kill -QUIT the loaded daemon and validate the postmortem
#      bundle it writes (valid JSON, >=1 trace, >=60 history points,
#      the full reactor phase legend) while it keeps serving,
#   8. SIGTERM and require a clean shutdown.
#
# Usage: smoke_observability.sh <serve> <loadgen> <top>

set -euo pipefail

serve_bin="${1:?usage: smoke_observability.sh <serve> <loadgen> <top>}"
loadgen_bin="${2:?usage: smoke_observability.sh <serve> <loadgen> <top>}"
top_bin="${3:?usage: smoke_observability.sh <serve> <loadgen> <top>}"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [[ -n "${serve_pid}" ]] && kill "${serve_pid}" 2> /dev/null || true
    rm -rf "${workdir}"
}
trap cleanup EXIT

port_file="${workdir}/port"
mport_file="${workdir}/metrics_port"
serve_log="${workdir}/serve.log"

# http_get HOST PORT PATH OUTFILE -> exit 0 and body in OUTFILE on 200
http_get() {
    local host="$1" port="$2" path="$3" out="$4"
    local resp
    exec 9<> "/dev/tcp/${host}/${port}" || return 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "${path}" >&9
    resp="$(cat <&9)"
    exec 9>&- 9<&-
    printf '%s' "${resp#*$'\r\n\r\n'}" > "${out}"
    grep -q '^HTTP/1\.0 200' <<< "${resp}"
}

pm_dir="${workdir}/postmortem"
mkdir -p "${pm_dir}"

# 25ms history ticks so >=60 points accumulate within the test's
# few seconds of runtime (production default is 1s).
"${serve_bin}" --port 0 --shards 2 --cols 512 \
    --port-file "${port_file}" \
    --metrics-port 0 --metrics-port-file "${mport_file}" \
    --slo-p99-us 500000 --trace-ring 512 \
    --history-res-ms 25 --history-points 600 \
    --postmortem-dir "${pm_dir}" \
    > "${serve_log}" 2>&1 &
serve_pid=$!

for _ in $(seq 1 100); do
    [[ -s "${port_file}" && -s "${mport_file}" ]] && break
    kill -0 "${serve_pid}" 2> /dev/null || {
        echo "FAIL: daemon died during startup" >&2
        cat "${serve_log}" >&2
        exit 1
    }
    sleep 0.1
done
[[ -s "${port_file}" && -s "${mport_file}" ]] || {
    echo "FAIL: daemon never published its ports" >&2
    cat "${serve_log}" >&2
    exit 1
}
port="$(cat "${port_file}")"
mport="$(cat "${mport_file}")"
echo "daemon up: data port ${port}, metrics port ${mport}" >&2

# Cold scrape: valid exposition even before any traffic.
http_get 127.0.0.1 "${mport}" /metrics "${workdir}/metrics0" || {
    echo "FAIL: /metrics not 200 before traffic" >&2
    exit 1
}
grep -q '^# TYPE fracdram_service_shard_queue_depth gauge' \
    "${workdir}/metrics0" || {
    echo "FAIL: /metrics missing service families:" >&2
    head -20 "${workdir}/metrics0" >&2
    exit 1
}
http_get 127.0.0.1 "${mport}" /healthz "${workdir}/healthz" || {
    echo "FAIL: /healthz not 200 on an idle daemon" >&2
    exit 1
}
grep -q ok "${workdir}/healthz" || {
    echo "FAIL: unexpected /healthz body" >&2
    exit 1
}

# Traced burst: every request carries a request id.
"${loadgen_bin}" --port "${port}" --conns 2 --window 8 --duration 2 \
    --bytes 32 --warmup-ms 200 --trace \
    --json-out "${workdir}/loadgen.json" || {
    echo "FAIL: loadgen reported errors" >&2
    exit 1
}
grep -q '"errors": 0' "${workdir}/loadgen.json" || {
    echo "FAIL: loadgen summary has errors:" >&2
    cat "${workdir}/loadgen.json" >&2
    exit 1
}
grep -q '"server": {' "${workdir}/loadgen.json" || {
    echo "FAIL: loadgen summary missing the server-side histograms" >&2
    cat "${workdir}/loadgen.json" >&2
    exit 1
}

# Warm scrape: the burst must be visible in the histograms.
http_get 127.0.0.1 "${mport}" /metrics "${workdir}/metrics1" || {
    echo "FAIL: /metrics not 200 after traffic" >&2
    exit 1
}
count="$(awk '$1 == "fracdram_service_request_ns_count" {print $2}' \
    "${workdir}/metrics1")"
[[ -n "${count}" && "${count}" -gt 0 ]] || {
    echo "FAIL: request_ns histogram empty after a traced burst" >&2
    grep fracdram_service_request_ns "${workdir}/metrics1" >&2 || true
    exit 1
}
grep -q 'fracdram_service_shard_batch_jobs_sum{shard="0"}' \
    "${workdir}/metrics1" || {
    echo "FAIL: per-shard histogram families missing" >&2
    exit 1
}

# Per-request timelines out of the ring.
http_get 127.0.0.1 "${mport}" '/varz?trace=8' "${workdir}/varz" || {
    echo "FAIL: /varz not 200" >&2
    exit 1
}
grep -q '"queue_wait_ns"' "${workdir}/varz" || {
    echo "FAIL: /varz?trace=8 has no per-stage timelines:" >&2
    cat "${workdir}/varz" >&2
    exit 1
}

# One dashboard frame against the live daemon.
"${top_bin}" --port "${mport}" --interval-ms 200 --iterations 1 \
    --no-clear > "${workdir}/top.out" || {
    echo "FAIL: fracdram_top exited non-zero" >&2
    cat "${workdir}/top.out" >&2
    exit 1
}
grep -q 'req latency (server, windowed)' "${workdir}/top.out" || {
    echo "FAIL: fracdram_top frame incomplete:" >&2
    cat "${workdir}/top.out" >&2
    exit 1
}
echo "fracdram_top frame:" >&2
cat "${workdir}/top.out" >&2

# Server-side metrics history: the names listing and one series.
http_get 127.0.0.1 "${mport}" /history "${workdir}/hist_names" || {
    echo "FAIL: /history not 200" >&2
    exit 1
}
grep -q '"service.jobs"' "${workdir}/hist_names" || {
    echo "FAIL: /history names missing service.jobs:" >&2
    cat "${workdir}/hist_names" >&2
    exit 1
}
http_get 127.0.0.1 "${mport}" \
    '/history?metric=service.request_ns&points=40' \
    "${workdir}/hist_series" || {
    echo "FAIL: /history series query not 200" >&2
    exit 1
}
grep -q '"kind":"histogram"' "${workdir}/hist_series" || {
    echo "FAIL: /history series has wrong kind:" >&2
    cat "${workdir}/hist_series" >&2
    exit 1
}
grep -q '"p99":' "${workdir}/hist_series" || {
    echo "FAIL: /history histogram points carry no quantiles" >&2
    exit 1
}

# Give the 25ms history ring time to hold >= 60 points since start.
sleep 2

# Operator black box: kill -QUIT dumps a postmortem bundle and the
# daemon keeps serving.
kill -QUIT "${serve_pid}"
pm_file=""
for _ in $(seq 1 50); do
    pm_file="$(ls "${pm_dir}"/postmortem-*.json 2> /dev/null |
        head -1 || true)"
    [[ -n "${pm_file}" ]] && break
    sleep 0.1
done
[[ -n "${pm_file}" ]] || {
    echo "FAIL: SIGQUIT produced no postmortem bundle" >&2
    cat "${serve_log}" >&2
    exit 1
}
python3 - "${pm_file}" <<'PY' || exit 1
import json, sys
bundle = json.load(open(sys.argv[1]))
assert bundle["reason"] == "sigquit", bundle["reason"]
assert len(bundle["traces"]) >= 1, "no request timelines in bundle"
phases = set(bundle["phase_names"])
want = {"idle", "accept", "read", "shard-dispatch", "writev",
        "control", "tick"}
assert phases == want, phases
assert len(bundle["reactors"]) >= 1
for r in bundle["reactors"]:
    assert r["phase"] in want, r
    assert r["heartbeat"] > 0, "reactor heartbeat never advanced"
hist = bundle["history"]
assert hist is not None, "bundle has no metrics history"
for family in ("service.jobs", "service.reactor0.heartbeat"):
    pts = hist["series"].get(family)
    assert pts is not None, f"history missing {family}"
    assert len(pts) >= 60, f"{family}: only {len(pts)} points"
assert bundle["watchdog"]["healthy"] is True
print(f"postmortem ok: {len(bundle['traces'])} traces, "
      f"{len(hist['series'])} history series")
PY

# Still serving after the dump: /healthz must answer 200.
http_get 127.0.0.1 "${mport}" /healthz "${workdir}/healthz2" || {
    echo "FAIL: daemon stopped serving after SIGQUIT dump" >&2
    exit 1
}

kill -TERM "${serve_pid}"
rc=0
wait "${serve_pid}" || rc=$?
serve_pid=""
if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: daemon exited ${rc} on SIGTERM" >&2
    cat "${serve_log}" >&2
    exit 1
fi
grep -q "clean shutdown" "${serve_log}" || {
    echo "FAIL: no clean-shutdown marker in daemon log" >&2
    cat "${serve_log}" >&2
    exit 1
}
echo "PASS: smoke_observability" >&2
