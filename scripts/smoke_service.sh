#!/usr/bin/env bash
# Process-level smoke test of the serving pair, wired into ctest as
# "smoke_service" (and run under the tsan preset):
#
#   1. start fracdram_serve on an ephemeral port (2 small shards),
#   2. fire a 2-second fracdram_loadgen burst and require zero
#      transport errors,
#   3. ask for HEALTH and check the daemon reports itself ok,
#   4. SIGTERM the daemon and require a clean (exit 0) shutdown with
#      the "clean shutdown" marker in its log.
#
# Usage: smoke_service.sh <fracdram_serve> <fracdram_loadgen>

set -euo pipefail

serve_bin="${1:?usage: smoke_service.sh <serve_bin> <loadgen_bin>}"
loadgen_bin="${2:?usage: smoke_service.sh <serve_bin> <loadgen_bin>}"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [[ -n "${serve_pid}" ]] && kill "${serve_pid}" 2> /dev/null || true
    rm -rf "${workdir}"
}
trap cleanup EXIT

port_file="${workdir}/port"
serve_log="${workdir}/serve.log"
loadgen_json="${workdir}/loadgen.json"

"${serve_bin}" --port 0 --shards 2 --cols 512 \
    --port-file "${port_file}" > "${serve_log}" 2>&1 &
serve_pid=$!

for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && break
    kill -0 "${serve_pid}" 2> /dev/null || {
        echo "FAIL: daemon died during startup" >&2
        cat "${serve_log}" >&2
        exit 1
    }
    sleep 0.1
done
[[ -s "${port_file}" ]] || {
    echo "FAIL: daemon never published its port" >&2
    cat "${serve_log}" >&2
    exit 1
}
port="$(cat "${port_file}")"
echo "daemon up on port ${port} (pid ${serve_pid})" >&2

# 2-second burst; the loadgen exits non-zero on any transport error.
"${loadgen_bin}" --port "${port}" --conns 2 --window 8 --duration 2 \
    --bytes 32 --warmup-ms 200 --json-out "${loadgen_json}" || {
    echo "FAIL: loadgen reported errors" >&2
    exit 1
}
grep -q '"errors": 0' "${loadgen_json}" || {
    echo "FAIL: loadgen summary has errors:" >&2
    cat "${loadgen_json}" >&2
    exit 1
}
echo "loadgen summary: $(cat "${loadgen_json}")" >&2

# The daemon must still answer HEALTH after the burst.
health="$("${loadgen_bin}" --port "${port}" --check-health)"
grep -q '"status": "ok"' <<< "${health}" || {
    echo "FAIL: unexpected HEALTH: ${health}" >&2
    exit 1
}

kill -TERM "${serve_pid}"
rc=0
wait "${serve_pid}" || rc=$?
serve_pid=""
if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: daemon exited ${rc} on SIGTERM" >&2
    cat "${serve_log}" >&2
    exit 1
fi
grep -q "clean shutdown" "${serve_log}" || {
    echo "FAIL: no clean-shutdown marker in daemon log" >&2
    cat "${serve_log}" >&2
    exit 1
}
echo "PASS: smoke_service" >&2
