#include "analysis/capability.hh"

#include "analysis/study_telemetry.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/frac_op.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"

namespace fracdram::analysis
{

namespace
{

BitVector
markerPattern(std::size_t cols, std::uint64_t tag)
{
    Rng rng(mixSeed(0xcafef00dULL, tag));
    BitVector bits(cols);
    for (std::size_t c = 0; c < cols; ++c)
        bits.set(c, rng.chance(0.5));
    return bits;
}

double
fractionChanged(const BitVector &a, const BitVector &b)
{
    return static_cast<double>(a.hammingDistance(b)) /
           static_cast<double>(a.size());
}

/**
 * Store unique markers in the glitch window, run ACT(r1)-PRE-ACT(r2),
 * and count how many rows were overwritten with a shared result.
 */
std::size_t
countParticipatingRows(softmc::MemoryController &mc, BankAddr bank,
                       RowAddr r1, RowAddr r2)
{
    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    constexpr RowAddr window = 16;
    std::vector<BitVector> markers;
    for (RowAddr row = 0; row < window; ++row) {
        markers.push_back(markerPattern(cols, row));
        mc.writeRowVoltage(bank, row, markers.back());
    }

    core::multiRowActivate(mc, bank, r1, r2);

    std::size_t participating = 0;
    for (RowAddr row = 0; row < window; ++row) {
        const BitVector now = mc.readRowVoltage(bank, row);
        if (fractionChanged(now, markers[row]) > 0.05)
            ++participating;
    }
    return participating;
}

} // namespace

Capability
probeCapability(softmc::MemoryController &mc)
{
    Capability cap;
    const BankAddr bank = 0;

    // Frac probe: a fractional row no longer reads back as all ones.
    mc.fillRowVoltage(bank, 0, true);
    core::frac(mc, bank, 0, 5);
    const BitVector readout = mc.readRowVoltage(bank, 0);
    cap.frac = readout.hammingWeight() < 0.95;

    // Multi-row probes: the adjacent pair (1,2) distinguishes the
    // three-row decoders (group B opens {0,1,2}) from the
    // power-of-two decoders (groups C/D open {0,1,2,3}); the pair
    // (8,1) probes four-row capability directly ({0,1,8,9}).
    const std::size_t adjacent = countParticipatingRows(mc, bank, 1, 2);
    const std::size_t spread = countParticipatingRows(mc, bank, 8, 1);
    cap.threeRow = adjacent == 3;
    cap.fourRow = spread == 4 || adjacent == 4;
    return cap;
}

std::vector<CapabilityRow>
scanAllGroups(const sim::DramParams &params)
{
    // Every group probes a freshly constructed module, so the scan
    // fans out one task per group; results land in group order.
    const auto groups = sim::allGroups();
    const StudyScope study("capability_scan", groups.size());
    return parallel::parallelMap(
        groups.size(), [&](std::size_t i) {
            const ModuleScope scope("capability_scan");
            const auto group = groups[i];
            const auto &profile = sim::vendorProfile(group);
            sim::DramChip chip(group, /*serial=*/1, params);
            softmc::MemoryController mc(chip, /*enforce_spec=*/false);
            CapabilityRow row;
            row.group = group;
            row.vendor = profile.vendor;
            row.freqMhz = profile.freqMhz;
            row.numChips = profile.numChips;
            row.probed = probeCapability(mc);
            return row;
        });
}

} // namespace fracdram::analysis
