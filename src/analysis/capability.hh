/**
 * @file
 * Behavioural capability scanner (paper Table I): probes a module -
 * through the command interface only - for Frac support, three-row
 * activation, and four-row activation.
 */

#ifndef FRACDRAM_ANALYSIS_CAPABILITY_HH
#define FRACDRAM_ANALYSIS_CAPABILITY_HH

#include <string>
#include <vector>

#include "sim/vendor.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

/** Probed capabilities of one module. */
struct Capability
{
    bool frac = false;
    bool threeRow = false;
    bool fourRow = false;
};

/**
 * Probe a module behaviourally (no white-box access):
 *
 *  - Frac: fill a row with ones, issue five Frac operations, read it
 *    back. On a Frac-capable module the near-V_dd/2 cells resolve by
 *    sense-amp offsets and the readout is no longer all ones.
 *  - Three-/four-row activation: store marker values, run
 *    ACT(R1)-PRE-ACT(R2), and count how many rows were overwritten
 *    with the shared result.
 */
Capability probeCapability(softmc::MemoryController &mc);

/** One Table-I row: group metadata plus probed capabilities. */
struct CapabilityRow
{
    sim::DramGroup group;
    std::string vendor;
    int freqMhz;
    int numChips;
    Capability probed;
};

/** Probe one module of every group (regenerates Table I). */
std::vector<CapabilityRow> scanAllGroups(
    const sim::DramParams &params = sim::DramParams{});

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_CAPABILITY_HH
