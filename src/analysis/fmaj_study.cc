#include "analysis/fmaj_study.hh"

#include <algorithm>

#include "analysis/study_telemetry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/maj3.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

namespace
{

/** The six non-trivial constant MAJ3 input combinations. */
constexpr bool kCombos[6][3] = {
    {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
    {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
};

/** Sub-array-local activation pair per group (see the paper). */
void
activationPair(sim::DramGroup group, RowAddr &r1, RowAddr &r2)
{
    if (group == sim::DramGroup::B) {
        r1 = 8; // opens {0, 1, 8, 9}
        r2 = 1;
    } else {
        r1 = 1; // opens {0, 1, 2, 3}
        r2 = 2;
    }
}

core::FMajConfig
offsetConfig(const core::FMajConfig &cfg, RowAddr base)
{
    core::FMajConfig out = cfg;
    out.actFirst += base;
    out.actSecond += base;
    out.fracRow += base;
    return out;
}

/** Columns passing all six combos for one prepared configuration. */
std::vector<bool>
coverageColumns(softmc::MemoryController &mc, BankAddr bank,
                const core::FMajConfig &cfg)
{
    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    std::vector<bool> pass(cols, true);
    for (const auto &combo : kCombos) {
        std::array<BitVector, 3> ops = {
            BitVector(cols, combo[0]),
            BitVector(cols, combo[1]),
            BitVector(cols, combo[2]),
        };
        const bool expected =
            static_cast<int>(combo[0]) + combo[1] + combo[2] >= 2;
        const auto result = core::fmaj(mc, bank, cfg, ops);
        for (std::size_t c = 0; c < cols; ++c)
            if (result.get(c) != expected)
                pass[c] = false;
    }
    return pass;
}

/** Baseline three-row MAJ3 coverage of one sub-array (group B). */
std::vector<bool>
baselineCoverageColumns(softmc::MemoryController &mc, BankAddr bank,
                        RowAddr base)
{
    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    std::vector<bool> pass(cols, true);
    for (const auto &combo : kCombos) {
        std::map<RowAddr, BitVector> ops;
        ops.emplace(base + 0, BitVector(cols, combo[0]));
        ops.emplace(base + 1, BitVector(cols, combo[1]));
        ops.emplace(base + 2, BitVector(cols, combo[2]));
        const bool expected =
            static_cast<int>(combo[0]) + combo[1] + combo[2] >= 2;
        const auto result =
            core::maj3(mc, bank, base + 1, base + 2, ops);
        for (std::size_t c = 0; c < cols; ++c)
            if (result.get(c) != expected)
                pass[c] = false;
    }
    return pass;
}

struct SubarrayRef
{
    BankAddr bank;
    RowAddr base;
};

std::vector<SubarrayRef>
subarrays(const sim::DramParams &dram, int count)
{
    std::vector<SubarrayRef> out;
    const auto per_bank = dram.subarraysPerBank;
    for (int s = 0; s < count; ++s) {
        out.push_back(
            {static_cast<BankAddr>(s / per_bank) % dram.numBanks,
             static_cast<RowAddr>(s % per_bank) *
                 dram.rowsPerSubarray});
    }
    return out;
}

} // namespace

FMajCoverageResult
fmajCoverageStudy(sim::DramGroup group, const FMajStudyParams &params)
{
    fatal_if(!sim::vendorProfile(group).supportsFourRow,
             "group %s cannot open four rows",
             sim::groupName(group).c_str());

    RowAddr r1, r2;
    activationPair(group, r1, r2);

    FMajCoverageResult result;
    result.group = group;

    // Determine the four opened rows (sub-array-local) and their
    // paper labels R1..R4 in activation order.
    sim::DramChip probe(group, params.seedBase, params.dram);
    const auto opened = core::plannedOpenedRows(probe, r1, r2);
    panic_if(opened.size() != 4, "expected four-row activation");
    std::vector<RowAddr> labeled(4);
    labeled[0] = r1;
    labeled[1] = r2;
    {
        std::size_t idx = 2;
        for (const auto &o : opened)
            if (o.row != r1 && o.row != r2)
                labeled[idx++] = o.row;
    }

    const std::size_t runs =
        static_cast<std::size_t>(params.maxFracs) + 1;

    // Prepare all series.
    for (int row_idx = 0; row_idx < 4; ++row_idx) {
        for (const bool init_ones : {true, false}) {
            FMajCoverageSeries series;
            series.fracRow = labeled[row_idx];
            series.fracRowIndex = row_idx + 1;
            series.initOnes = init_ones;
            series.byNumFracs.resize(runs);
            result.series.push_back(series);
        }
    }

    // stats[series][numFracs] over modules.
    std::vector<std::vector<OnlineStats>> stats(
        result.series.size(), std::vector<OnlineStats>(runs));
    OnlineStats baseline_stats;

    // Modules are independent trials (each seeds its own chip from
    // seedBase + m), so they fan out across the trial engine; the
    // per-module coverage values merge below in module order, which
    // keeps every statistic bit-identical to a serial sweep.
    struct ModuleOutcome
    {
        std::vector<std::vector<double>> coverage; // [series][fracs]
        double baseline = 0.0;
    };
    const StudyScope study("fmaj_coverage",
                           static_cast<std::uint64_t>(params.modules));
    const auto outcomes = parallel::parallelMap(
        static_cast<std::size_t>(params.modules), [&](std::size_t m) {
            const ModuleScope scope("fmaj_coverage");
            ModuleOutcome out;
            out.coverage.assign(result.series.size(),
                                std::vector<double>(runs, 0.0));
            sim::DramChip chip(group, params.seedBase + m, params.dram);
            softmc::MemoryController mc(chip, false);
            const auto subs =
                subarrays(params.dram, params.subarraysPerModule);

            for (std::size_t si = 0; si < result.series.size(); ++si) {
                const auto &series = result.series[si];
                for (std::size_t n = 0; n < runs; ++n) {
                    std::size_t pass = 0, total = 0;
                    for (const auto &sub : subs) {
                        core::FMajConfig cfg;
                        cfg.actFirst = r1;
                        cfg.actSecond = r2;
                        cfg.fracRow = series.fracRow;
                        cfg.fracInitOnes = series.initOnes;
                        cfg.numFracs = static_cast<int>(n);
                        const auto cols = coverageColumns(
                            mc, sub.bank, offsetConfig(cfg, sub.base));
                        for (const bool p : cols) {
                            pass += p;
                            ++total;
                        }
                    }
                    out.coverage[si][n] =
                        static_cast<double>(pass) /
                        static_cast<double>(total);
                }
            }

            if (group == sim::DramGroup::B) {
                std::size_t pass = 0, total = 0;
                for (const auto &sub : subs) {
                    const auto cols =
                        baselineCoverageColumns(mc, sub.bank, sub.base);
                    for (const bool p : cols) {
                        pass += p;
                        ++total;
                    }
                }
                out.baseline = static_cast<double>(pass) /
                               static_cast<double>(total);
            }
            return out;
        });

    for (const auto &out : outcomes) {
        for (std::size_t si = 0; si < result.series.size(); ++si)
            for (std::size_t n = 0; n < runs; ++n)
                stats[si][n].add(out.coverage[si][n]);
        if (group == sim::DramGroup::B)
            baseline_stats.add(out.baseline);
    }

    for (std::size_t si = 0; si < result.series.size(); ++si) {
        for (std::size_t n = 0; n < runs; ++n) {
            result.series[si].byNumFracs[n] = {
                stats[si][n].mean(), stats[si][n].ciHalfWidth()};
        }
    }
    if (group == sim::DramGroup::B) {
        result.baselineMaj3 = baseline_stats.mean();
        result.hasBaseline = true;
    }
    return result;
}

FMajComboBreakdown
fmajComboBreakdown(sim::DramGroup group, const core::FMajConfig &config,
                   const FMajStudyParams &params)
{
    FMajComboBreakdown out;
    out.group = group;
    out.config = config;
    const std::size_t runs =
        static_cast<std::size_t>(params.maxFracs) + 1;
    out.success.assign(runs, {});
    out.overall.assign(runs, 0.0);

    std::vector<std::array<std::size_t, 6>> ok(
        runs, std::array<std::size_t, 6>{});
    std::vector<std::size_t> all_ok(runs, 0);
    std::size_t total = 0;

    // One independent counting task per module; integer counts sum to
    // the same totals in any order, merged in module order anyway.
    struct ModuleCounts
    {
        std::vector<std::array<std::size_t, 6>> ok;
        std::vector<std::size_t> allOk;
        std::size_t total = 0;
    };
    const StudyScope study("fmaj_combo",
                           static_cast<std::uint64_t>(params.modules));
    const auto counts = parallel::parallelMap(
        static_cast<std::size_t>(params.modules), [&](std::size_t m) {
            const ModuleScope scope("fmaj_combo");
            ModuleCounts mod;
            mod.ok.assign(runs, std::array<std::size_t, 6>{});
            mod.allOk.assign(runs, 0);
            sim::DramChip chip(group, params.seedBase + m, params.dram);
            softmc::MemoryController mc(chip, false);
            const auto subs =
                subarrays(params.dram, params.subarraysPerModule);
            const std::size_t cols = params.dram.colsPerRow;

            for (const auto &sub : subs) {
                mod.total += cols;
                for (std::size_t n = 0; n < runs; ++n) {
                    core::FMajConfig cfg =
                        offsetConfig(config, sub.base);
                    cfg.numFracs = static_cast<int>(n);
                    std::vector<bool> pass_all(cols, true);
                    for (std::size_t k = 0; k < 6; ++k) {
                        std::array<BitVector, 3> ops = {
                            BitVector(cols, kCombos[k][0]),
                            BitVector(cols, kCombos[k][1]),
                            BitVector(cols, kCombos[k][2]),
                        };
                        const bool expected =
                            static_cast<int>(kCombos[k][0]) +
                                kCombos[k][1] + kCombos[k][2] >=
                            2;
                        const auto result =
                            core::fmaj(mc, sub.bank, cfg, ops);
                        for (std::size_t c = 0; c < cols; ++c) {
                            const bool good =
                                result.get(c) == expected;
                            mod.ok[n][k] += good;
                            pass_all[c] = pass_all[c] && good;
                        }
                    }
                    for (const bool p : pass_all)
                        mod.allOk[n] += p;
                }
            }
            return mod;
        });

    for (const auto &mod : counts) {
        for (std::size_t n = 0; n < runs; ++n) {
            for (std::size_t k = 0; k < 6; ++k)
                ok[n][k] += mod.ok[n][k];
            all_ok[n] += mod.allOk[n];
        }
        total += mod.total;
    }

    for (std::size_t n = 0; n < runs; ++n) {
        for (std::size_t k = 0; k < 6; ++k) {
            out.success[n][k] = total ? static_cast<double>(ok[n][k]) /
                                            static_cast<double>(total)
                                      : 0.0;
        }
        out.overall[n] = total ? static_cast<double>(all_ok[n]) /
                                     static_cast<double>(total)
                               : 0.0;
    }
    return out;
}

FMajStabilityResult
fmajStabilityStudy(sim::DramGroup group, bool baseline_maj3,
                   const FMajStabilityParams &params)
{
    fatal_if(baseline_maj3 && group != sim::DramGroup::B,
             "three-row MAJ3 baseline only exists on group B");

    FMajStabilityResult result;
    result.group = group;
    result.baselineMaj3 = baseline_maj3;

    const std::size_t cols = params.dram.colsPerRow;

    // Each module draws its random inputs from its own stream keyed by
    // the module index, so modules are fully independent trials and
    // the fan-out below cannot perturb any other module's inputs.
    struct ModuleOutcome
    {
        std::vector<double> columnSuccess;
        double fracAlways = 0.0;
    };
    const StudyScope study("fmaj_stability",
                           static_cast<std::uint64_t>(params.modules));
    const auto outcomes = parallel::parallelMap(
        static_cast<std::size_t>(params.modules), [&](std::size_t m) {
            const ModuleScope scope("fmaj_stability");
            Rng input_rng(
                mixSeed(mixSeed(params.seedBase, 0x57ab1e), m));
            auto random_bits = [&input_rng, cols]() {
                BitVector v(cols);
                for (std::size_t c = 0; c < cols; ++c)
                    v.set(c, input_rng.chance(0.5));
                return v;
            };

            sim::DramChip chip(group, params.seedBase + m, params.dram);
            softmc::MemoryController mc(chip, false);
            const auto subs = subarrays(params.dram, params.subarrays);

            ModuleOutcome out;
            std::size_t always = 0, col_total = 0;

            for (const auto &sub : subs) {
                std::vector<std::size_t> good(cols, 0);
                for (int t = 0; t < params.trials; ++t) {
                    const auto a = random_bits();
                    const auto b = random_bits();
                    const auto c3 = random_bits();
                    const auto expected = core::softwareMaj3(a, b, c3);
                    BitVector result_bits;
                    if (baseline_maj3) {
                        std::map<RowAddr, BitVector> ops;
                        ops.emplace(sub.base + 0, a);
                        ops.emplace(sub.base + 1, b);
                        ops.emplace(sub.base + 2, c3);
                        result_bits = core::maj3(mc, sub.bank,
                                                 sub.base + 1,
                                                 sub.base + 2, ops);
                    } else {
                        const auto cfg = offsetConfig(
                            core::bestFMajConfig(group), sub.base);
                        result_bits = core::fmaj(mc, sub.bank, cfg,
                                                 {a, b, c3});
                    }
                    for (std::size_t c = 0; c < cols; ++c)
                        good[c] +=
                            result_bits.get(c) == expected.get(c);
                }
                for (std::size_t c = 0; c < cols; ++c) {
                    const double rate =
                        static_cast<double>(good[c]) /
                        static_cast<double>(params.trials);
                    out.columnSuccess.push_back(rate);
                    always += good[c] ==
                              static_cast<std::size_t>(params.trials);
                    ++col_total;
                }
            }
            std::sort(out.columnSuccess.begin(),
                      out.columnSuccess.end());
            out.fracAlways = static_cast<double>(always) /
                             static_cast<double>(col_total);
            return out;
        });

    OnlineStats err;
    for (auto &out : outcomes) {
        result.columnSuccess.push_back(out.columnSuccess);
        result.alwaysCorrect.push_back(out.fracAlways);
        err.add(1.0 - out.fracAlways);
    }
    result.meanErrorRate = err.mean();
    return result;
}

} // namespace fracdram::analysis
