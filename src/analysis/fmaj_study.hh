/**
 * @file
 * Figs. 9 and 10 harness: coverage and stability of F-MAJ.
 *
 * Coverage (Fig. 9): fraction of columns that produce the correct
 * majority for all six non-trivial constant input combinations, as a
 * function of which row holds the fractional value, its initial
 * value, and the number of Frac operations. Group B also gets the
 * original three-row MAJ3 as the baseline.
 *
 * Stability (Fig. 10b/c): per-column success rate over many F-MAJ
 * trials with random inputs; the paper's headline is the fraction of
 * columns that are *not* always correct (9.1% for baseline MAJ3 on
 * group B vs 2.2% for F-MAJ).
 */

#ifndef FRACDRAM_ANALYSIS_FMAJ_STUDY_HH
#define FRACDRAM_ANALYSIS_FMAJ_STUDY_HH

#include <array>
#include <vector>

#include "core/fmaj.hh"
#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::analysis
{

/** Scale knobs shared by the F-MAJ studies. */
struct FMajStudyParams
{
    int modules = 2;
    int subarraysPerModule = 3;
    int maxFracs = 5;
    sim::DramParams dram = defaultDram();
    std::uint64_t seedBase = 4000;

    static sim::DramParams defaultDram()
    {
        sim::DramParams p;
        p.colsPerRow = 256;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

/** Mean and 95% confidence half-width over modules. */
struct MeanCi
{
    double mean = 0.0;
    double ciHalf = 0.0;
};

/** One Fig. 9 line: a (fractional row, init) choice swept over Fracs. */
struct FMajCoverageSeries
{
    RowAddr fracRow = 0;  //!< sub-array-local row holding the frac
    int fracRowIndex = 0; //!< 1..4 = the paper's R1..R4 labels
    bool initOnes = true;
    std::vector<MeanCi> byNumFracs; //!< index = number of Fracs
};

/** One Fig. 9 panel. */
struct FMajCoverageResult
{
    sim::DramGroup group;
    std::vector<FMajCoverageSeries> series; //!< 4 rows x 2 inits
    /** Original three-row MAJ3 coverage (group B only, else NaN). */
    double baselineMaj3 = 0.0;
    bool hasBaseline = false;
};

/** Run the Fig. 9 coverage sweep for one group (B, C or D). */
FMajCoverageResult fmajCoverageStudy(sim::DramGroup group,
                                     const FMajStudyParams &params);

/** Fig. 10a: per-input-combination success for one configuration. */
struct FMajComboBreakdown
{
    sim::DramGroup group;
    core::FMajConfig config;
    /**
     * success[num_fracs][combo]: combos ordered
     * {1,0,0},{0,1,0},{0,0,1},{0,1,1},{1,0,1},{1,1,0}
     * (operands assigned to the non-frac rows in ascending order).
     */
    std::vector<std::array<double, 6>> success;
    std::vector<double> overall; //!< all-six coverage per num_fracs
};

/** Run the Fig. 10a breakdown. */
FMajComboBreakdown fmajComboBreakdown(sim::DramGroup group,
                                      const core::FMajConfig &config,
                                      const FMajStudyParams &params);

/** Fig. 10b/c: stability of the operation over repeated trials. */
struct FMajStabilityParams
{
    int modules = 3;
    int subarrays = 8;  //!< paper: 500 random sub-arrays
    int trials = 400;   //!< paper: 10000 per sub-array
    sim::DramParams dram = defaultDram();
    std::uint64_t seedBase = 5000;

    static sim::DramParams defaultDram()
    {
        sim::DramParams p;
        p.colsPerRow = 128;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

struct FMajStabilityResult
{
    sim::DramGroup group;
    bool baselineMaj3 = false; //!< true: original MAJ3 was measured
    /** Per module: sorted per-column success rates (CDF data). */
    std::vector<std::vector<double>> columnSuccess;
    /** Per module: fraction of columns always correct. */
    std::vector<double> alwaysCorrect;
    /** 1 - mean(alwaysCorrect): the paper's "average error rate". */
    double meanErrorRate = 0.0;
};

/**
 * Run the stability study.
 * @param baseline_maj3 measure the original three-row MAJ3 instead of
 *        F-MAJ (group B only)
 */
FMajStabilityResult fmajStabilityStudy(sim::DramGroup group,
                                       bool baseline_maj3,
                                       const FMajStabilityParams &
                                           params);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_FMAJ_STUDY_HH
