#include "analysis/halfm_study.hh"

#include "analysis/study_telemetry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/frac_op.hh"
#include "core/half_m.hh"
#include "core/multi_row.hh"
#include "core/retention.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

namespace
{

/** Accumulates a bucket histogram over many profile runs. */
struct BucketCounter
{
    std::vector<std::size_t> counts =
        std::vector<std::size_t>(core::RetentionBuckets::numBuckets(),
                                 0);
    std::size_t total = 0;

    void
    add(const std::vector<std::size_t> &buckets)
    {
        for (const auto b : buckets) {
            ++counts[b];
            ++total;
        }
    }

    void
    merge(const BucketCounter &other)
    {
        for (std::size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
        total += other.total;
    }

    std::vector<double>
    pdf() const
    {
        std::vector<double> out(counts.size(), 0.0);
        if (total) {
            for (std::size_t i = 0; i < counts.size(); ++i)
                out[i] = static_cast<double>(counts[i]) /
                         static_cast<double>(total);
        }
        return out;
    }
};

struct ComboCounter
{
    std::array<std::size_t, 4> counts{};
    std::size_t total = 0;

    void
    add(const BitVector &x1, const BitVector &x2)
    {
        for (std::size_t c = 0; c < x1.size(); ++c) {
            const std::size_t idx = (x1.get(c) ? 0u : 2u) +
                                    (x2.get(c) ? 0u : 1u);
            ++counts[idx];
            ++total;
        }
    }

    void
    merge(const ComboCounter &other)
    {
        for (std::size_t i = 0; i < 4; ++i)
            counts[i] += other.counts[i];
        total += other.total;
    }

    std::array<double, 4>
    fractions() const
    {
        std::array<double, 4> out{};
        if (total) {
            for (std::size_t i = 0; i < 4; ++i)
                out[i] = static_cast<double>(counts[i]) /
                         static_cast<double>(total);
        }
        return out;
    }
};

/** All counters one module contributes; summed in module order. */
struct HalfMModuleCounts
{
    BucketCounter retHalf, retWeakOne, retNormalOne, retFrac5;
    ComboCounter majHalf, majWeakOnes, majWeakZeros;
};

HalfMModuleCounts
halfMModule(const HalfMStudyParams &params, std::size_t m)
{
    HalfMModuleCounts out;
    BucketCounter &ret_half = out.retHalf;
    BucketCounter &ret_weak_one = out.retWeakOne;
    BucketCounter &ret_normal_one = out.retNormalOne;
    BucketCounter &ret_frac5 = out.retFrac5;
    ComboCounter &maj_half = out.majHalf;
    ComboCounter &maj_weak_ones = out.majWeakOnes;
    ComboCounter &maj_weak_zeros = out.majWeakZeros;

    const std::size_t cols = params.dram.colsPerRow;

    {
        sim::DramChip chip(sim::DramGroup::B, params.seedBase + m,
                           params.dram);
        softmc::MemoryController mc(chip, false);
        const auto per_bank = params.dram.subarraysPerBank;
        for (int s = 0; s < params.subarraysPerModule; ++s) {
            const BankAddr bank = static_cast<BankAddr>(s / per_bank) %
                                  params.dram.numBanks;
            const RowAddr base = static_cast<RowAddr>(s % per_bank) *
                                 params.dram.rowsPerSubarray;
            const RowAddr r1 = base + 8, r2 = base + 1;
            const RowAddr probe_row = base + 2;
            const RowAddr result_row = base + 0; // R3, holds init one

            const auto opened = core::plannedOpenedRows(chip, r1, r2);
            panic_if(opened.size() != 4,
                     "Half-m study expects a four-row activation");
            const BitVector all_mask(cols, true);

            auto prepare_half = [&] {
                core::halfM(mc, bank, r1, r2,
                            core::halfMInitPatterns(opened, all_mask,
                                                    true));
            };
            auto prepare_weak = [&](bool value) {
                std::map<RowAddr, BitVector> inits;
                for (const auto &o : opened)
                    inits.emplace(o.row, BitVector(cols, value));
                core::halfM(mc, bank, r1, r2, inits);
            };

            // Retention profiles of the result row.
            core::RetentionProfiler profiler(mc, bank, result_row);
            ret_half.add(profiler.profile(prepare_half));
            ret_weak_one.add(
                profiler.profile([&] { prepare_weak(true); }));
            ret_normal_one.add(profiler.profile(
                [&] { mc.fillRowVoltage(bank, result_row, true); }));
            ret_frac5.add(profiler.profile([&] {
                mc.fillRowVoltage(bank, result_row, true);
                core::frac(mc, bank, result_row, 5);
            }));

            // MAJ3 probes: the Half-m result sits in rows 0 and 1;
            // row 2 provides the known probe operand.
            auto maj_probe = [&](auto prepare, ComboCounter &counter) {
                prepare();
                mc.fillRowVoltage(bank, probe_row, true);
                const auto x1 = core::multiRowActivate(
                    mc, bank, base + 1, base + 2);
                prepare();
                mc.fillRowVoltage(bank, probe_row, false);
                const auto x2 = core::multiRowActivate(
                    mc, bank, base + 1, base + 2);
                counter.add(x1, x2);
            };
            maj_probe(prepare_half, maj_half);
            maj_probe([&] { prepare_weak(true); }, maj_weak_ones);
            maj_probe([&] { prepare_weak(false); }, maj_weak_zeros);
        }
    }
    return out;
}

} // namespace

HalfMStudyResult
halfMStudy(const HalfMStudyParams &params)
{
    // One task per module (independent chips); the histogram counters
    // are plain integer sums, merged in module order.
    const StudyScope study("halfm",
                           static_cast<std::uint64_t>(params.modules));
    const auto partials = parallel::parallelMap(
        static_cast<std::size_t>(params.modules), [&](std::size_t m) {
            const ModuleScope scope("halfm");
            return halfMModule(params, m);
        });

    HalfMModuleCounts sum;
    for (const auto &p : partials) {
        sum.retHalf.merge(p.retHalf);
        sum.retWeakOne.merge(p.retWeakOne);
        sum.retNormalOne.merge(p.retNormalOne);
        sum.retFrac5.merge(p.retFrac5);
        sum.majHalf.merge(p.majHalf);
        sum.majWeakOnes.merge(p.majWeakOnes);
        sum.majWeakZeros.merge(p.majWeakZeros);
    }

    HalfMStudyResult result;
    result.retentionHalf = sum.retHalf.pdf();
    result.retentionWeakOne = sum.retWeakOne.pdf();
    result.retentionNormalOne = sum.retNormalOne.pdf();
    result.retentionFrac5 = sum.retFrac5.pdf();
    result.maj3Half = sum.majHalf.fractions();
    result.maj3WeakOnes = sum.majWeakOnes.fractions();
    result.maj3WeakZeros = sum.majWeakZeros.fractions();
    result.distinguishableHalf = result.maj3Half[1]; // (X1,X2)=(1,0)
    return result;
}

} // namespace fracdram::analysis
