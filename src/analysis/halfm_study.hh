/**
 * @file
 * Fig. 8 harness: evaluation of Half-m on group B.
 *
 * Rows {0,1,8,9} are opened by ACT(8)-PRE-ACT(1) and interrupted.
 * With a 2-high/2-low init the columns hold a Half value; with
 * all-ones (all-zeros) they hold weak ones (zeros). The harness
 * collects retention PDFs of the Half value, the weak one, a normal
 * one, and a 5-Frac fractional value (the reference the paper plots),
 * plus the MAJ3 (X1, X2) combinations for the Half value and the
 * weak values.
 */

#ifndef FRACDRAM_ANALYSIS_HALFM_STUDY_HH
#define FRACDRAM_ANALYSIS_HALFM_STUDY_HH

#include <array>
#include <vector>

#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::analysis
{

/** Scale knobs of the Fig. 8 study. */
struct HalfMStudyParams
{
    int modules = 2;
    int subarraysPerModule = 4;
    sim::DramParams dram = defaultDram();
    std::uint64_t seedBase = 3000;

    static sim::DramParams defaultDram()
    {
        sim::DramParams p;
        p.colsPerRow = 512;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

/** Everything Fig. 8 plots. */
struct HalfMStudyResult
{
    /** Retention PDFs over the six paper buckets. */
    std::vector<double> retentionHalf;
    std::vector<double> retentionWeakOne;
    std::vector<double> retentionNormalOne;
    std::vector<double> retentionFrac5; //!< 5-Frac reference

    /** MAJ3 combos, ordered (1,1), (1,0), (0,1), (0,0). */
    std::array<double, 4> maj3Half{};
    std::array<double, 4> maj3WeakOnes{};
    std::array<double, 4> maj3WeakZeros{};

    /** Fraction of columns with a distinguishable Half value. */
    double distinguishableHalf = 0.0;
};

/** Run the Fig. 8 study on group B. */
HalfMStudyResult halfMStudy(const HalfMStudyParams &params);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_HALFM_STUDY_HH
