#include "analysis/maj3_study.hh"

#include "analysis/study_telemetry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/verify.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

std::vector<Maj3StudySeries>
maj3Study(const Maj3StudyParams &params)
{
    struct Config
    {
        const char *label;
        bool frac_r1r2;
        bool init_ones;
    };
    const Config configs[4] = {
        {"frac in R1,R2, init ones", true, true},
        {"frac in R1,R2, init zeros", true, false},
        {"frac in R1,R3, init ones", false, true},
        {"frac in R1,R3, init zeros", false, false},
    };

    const std::size_t runs =
        static_cast<std::size_t>(params.maxFracs) + 1;

    // Every (configuration, module) pair owns a freshly seeded chip,
    // so the whole grid fans out at once; the integer combo counts
    // merge per configuration afterwards.
    struct TaskCounts
    {
        std::vector<std::array<std::size_t, 4>> counts;
        std::size_t colsTotal = 0;
    };
    const std::size_t modules =
        static_cast<std::size_t>(params.modules);
    const StudyScope study("maj3", 4 * modules);
    const auto partials = parallel::parallelMap(
        4 * modules, [&](std::size_t task) {
            const ModuleScope scope("maj3");
            const auto &cfg = configs[task / modules];
            const std::size_t m = task % modules;
            TaskCounts out;
            out.counts.assign(runs, {0, 0, 0, 0});

            sim::DramChip chip(sim::DramGroup::B,
                               params.seedBase + m, params.dram);
            softmc::MemoryController mc(chip, false);
            const auto per_bank = params.dram.subarraysPerBank;
            for (int s = 0; s < params.subarraysPerModule; ++s) {
                const BankAddr bank =
                    static_cast<BankAddr>(s / per_bank) %
                    params.dram.numBanks;
                const RowAddr base =
                    static_cast<RowAddr>(s % per_bank) *
                    params.dram.rowsPerSubarray;
                // The paper uses the first three rows of the
                // sub-array: ACT(R1=1)-PRE-ACT(R2=2) -> R3 = 0.
                const RowAddr r1 = base + 1, r2 = base + 2,
                              r3 = base + 0;
                const std::vector<RowAddr> frac_rows =
                    cfg.frac_r1r2 ? std::vector<RowAddr>{r1, r2}
                                  : std::vector<RowAddr>{r1, r3};
                const RowAddr probe = cfg.frac_r1r2 ? r3 : r2;

                for (std::size_t n = 0; n < runs; ++n) {
                    const auto res = core::maj3FracProbe(
                        mc, bank, r1, r2, frac_rows, probe,
                        static_cast<int>(n), cfg.init_ones);
                    for (std::size_t c = 0; c < res.x1.size(); ++c) {
                        const std::size_t idx =
                            (res.x1.get(c) ? 0u : 2u) +
                            (res.x2.get(c) ? 0u : 1u);
                        ++out.counts[n][idx];
                    }
                    if (n == 0)
                        out.colsTotal += res.x1.size();
                }
            }
            return out;
        });

    std::vector<Maj3StudySeries> out;
    for (std::size_t ci = 0; ci < 4; ++ci) {
        const auto &cfg = configs[ci];
        Maj3StudySeries series;
        series.label = cfg.label;
        series.fracInR1R2 = cfg.frac_r1r2;
        series.initOnes = cfg.init_ones;
        series.combos.assign(runs, {0.0, 0.0, 0.0, 0.0});
        std::vector<std::array<std::size_t, 4>> counts(
            runs, {0, 0, 0, 0});
        std::size_t cols_total = 0;
        for (std::size_t m = 0; m < modules; ++m) {
            const auto &p = partials[ci * modules + m];
            for (std::size_t n = 0; n < runs; ++n)
                for (std::size_t k = 0; k < 4; ++k)
                    counts[n][k] += p.counts[n][k];
            cols_total += p.colsTotal;
        }

        for (std::size_t n = 0; n < runs; ++n) {
            for (std::size_t k = 0; k < 4; ++k) {
                series.combos[n][k] =
                    cols_total ? static_cast<double>(counts[n][k]) /
                                     static_cast<double>(cols_total)
                               : 0.0;
            }
        }
        out.push_back(std::move(series));
    }
    return out;
}

} // namespace fracdram::analysis
