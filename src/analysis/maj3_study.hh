/**
 * @file
 * Fig. 7 harness: the MAJ3-based verification of Frac on group B.
 *
 * Four configurations, matching the paper's subplots:
 *  (a) fractional value in R1,R2; initial value all ones
 *  (b) fractional value in R1,R2; initial value all zeros
 *  (c) fractional value in R1,R3; initial value all ones
 *  (d) fractional value in R1,R3; initial value all zeros
 * For each, sweep the number of Frac operations and report the
 * proportions of the four (X1, X2) result combinations.
 */

#ifndef FRACDRAM_ANALYSIS_MAJ3_STUDY_HH
#define FRACDRAM_ANALYSIS_MAJ3_STUDY_HH

#include <array>
#include <string>
#include <vector>

#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::analysis
{

/** Scale knobs of the Fig. 7 study. */
struct Maj3StudyParams
{
    int modules = 2;            //!< paper: every chip in group B
    int subarraysPerModule = 4; //!< paper: every sub-array
    int maxFracs = 5;
    sim::DramParams dram = defaultDram();
    std::uint64_t seedBase = 2000;

    static sim::DramParams defaultDram()
    {
        sim::DramParams p;
        p.colsPerRow = 512;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

/** One subplot of Fig. 7. */
struct Maj3StudySeries
{
    std::string label;   //!< e.g. "frac in R1,R2, init ones"
    bool fracInR1R2;     //!< true: (a)/(b); false: (c)/(d)
    bool initOnes;
    /**
     * combos[num_fracs][k]: proportion of columns with result
     * combination k, ordered (X1,X2) = (1,1), (1,0), (0,1), (0,0).
     */
    std::vector<std::array<double, 4>> combos;
};

/** Index of the proof combination (X1=1, X2=0) in the combo arrays. */
inline constexpr std::size_t maj3ProofComboIndex = 1;

/** Run all four configurations on group B. */
std::vector<Maj3StudySeries> maj3Study(const Maj3StudyParams &params);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_MAJ3_STUDY_HH
