#include "analysis/puf_study.hh"

#include <algorithm>
#include <memory>

#include "analysis/study_telemetry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

namespace
{

/** One instantiated module with its PUF. */
struct ModuleUnderTest
{
    std::unique_ptr<sim::DramChip> chip;
    std::unique_ptr<softmc::MemoryController> mc;
    std::unique_ptr<puf::FracPuf> puf;
    sim::DramGroup group;

    ModuleUnderTest(sim::DramGroup g, std::uint64_t serial,
                    const PufStudyParams &params)
        : chip(std::make_unique<sim::DramChip>(g, serial, params.dram)),
          mc(std::make_unique<softmc::MemoryController>(*chip, false)),
          puf(std::make_unique<puf::FracPuf>(*mc, params.numFracs)),
          group(g)
    {
        puf->setDiscardAfterEvaluate(true);
    }

    std::vector<BitVector>
    collect(int challenges)
    {
        return puf->evaluateAll(puf->makeChallenges(
            static_cast<std::size_t>(challenges)));
    }
};

void
appendPairedHd(std::vector<double> &out,
               const std::vector<BitVector> &a,
               const std::vector<BitVector> &b)
{
    const auto hd = puf::HammingStudy::pairedDistances(a, b);
    out.insert(out.end(), hd.begin(), hd.end());
}

} // namespace

PufStudyResult
pufStudy(const PufStudyParams &params)
{
    PufStudyResult result;

    // responses[group][module] -> first data set (used for inter-HD).
    std::vector<std::vector<std::vector<BitVector>>> responses;
    std::vector<sim::DramGroup> groups = sim::fracCapableGroups();

    // Flatten the (group, module) grid: every pair evaluates an
    // independent chip, so the whole characterization campaign fans
    // out at once (the platform's 582-concurrent-chip analogue).
    struct TaskSpec
    {
        sim::DramGroup g;
        int m;
    };
    std::vector<TaskSpec> specs;
    std::vector<int> modulesPerGroup;
    for (const auto g : groups) {
        const int modules =
            std::min(params.modulesPerGroup,
                     sim::vendorProfile(g).numModules);
        modulesPerGroup.push_back(modules);
        for (int m = 0; m < modules; ++m)
            specs.push_back({g, m});
    }

    struct ModuleData
    {
        std::vector<double> intraHd;
        std::vector<BitVector> set1;
    };
    const StudyScope study("puf", specs.size());
    const auto collected = parallel::parallelMap(
        specs.size(), [&](std::size_t i) {
            const ModuleScope scope("puf");
            const auto &spec = specs[i];
            ModuleUnderTest mut(spec.g, params.seedBase + spec.m,
                                params);
            ModuleData data;
            data.set1 = mut.collect(params.challenges);
            const auto set2 = mut.collect(params.challenges);
            data.intraHd =
                puf::HammingStudy::pairedDistances(data.set1, set2);
            return data;
        });

    std::size_t flat = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto g = groups[gi];
        PufGroupResult gr;
        gr.group = g;
        std::vector<std::vector<BitVector>> module_responses;
        for (int m = 0; m < modulesPerGroup[gi]; ++m, ++flat) {
            const auto &data = collected[flat];
            gr.intraHd.insert(gr.intraHd.end(), data.intraHd.begin(),
                              data.intraHd.end());
            module_responses.push_back(data.set1);
        }
        gr.hammingWeight = 0.0;
        for (const auto &set : module_responses) {
            gr.hammingWeight += puf::HammingStudy::meanHammingWeight(
                set);
        }
        gr.hammingWeight /= static_cast<double>(
            module_responses.size());

        for (std::size_t i = 0; i < module_responses.size(); ++i) {
            for (std::size_t j = i + 1; j < module_responses.size();
                 ++j) {
                appendPairedHd(gr.interHd, module_responses[i],
                               module_responses[j]);
            }
        }
        responses.push_back(std::move(module_responses));
        result.groups.push_back(std::move(gr));
    }

    // Cross-group inter-HD: first module of each group, pairwise.
    for (std::size_t gi = 0; gi < responses.size(); ++gi) {
        for (std::size_t gj = gi + 1; gj < responses.size(); ++gj) {
            appendPairedHd(result.crossGroupInterHd,
                           responses[gi][0], responses[gj][0]);
        }
    }

    for (const auto &gr : result.groups) {
        for (const double d : gr.intraHd)
            result.maxIntraHd = std::max(result.maxIntraHd, d);
        for (const double d : gr.interHd)
            result.minInterHd = std::min(result.minInterHd, d);
    }
    for (const double d : result.crossGroupInterHd)
        result.minInterHd = std::min(result.minInterHd, d);
    return result;
}

PufEnvStudyResult
pufEnvStudy(const PufStudyParams &params)
{
    PufEnvStudyResult result;

    struct ModuleSets
    {
        std::unique_ptr<ModuleUnderTest> mut;
        std::vector<BitVector> baseline;
    };

    // Instantiate and baseline every module in parallel; each owns
    // its chip, so later environment phases also fan out per module.
    struct ModuleSpec
    {
        sim::DramGroup g;
        int m;
    };
    std::vector<ModuleSpec> specs;
    for (const auto g : sim::fracCapableGroups()) {
        const int count = std::min(params.modulesPerGroup,
                                   sim::vendorProfile(g).numModules);
        for (int m = 0; m < count; ++m)
            specs.push_back({g, m});
    }
    const StudyScope study("puf_env", specs.size());
    auto modules = parallel::parallelMap(
        specs.size(), [&](std::size_t i) {
            const ModuleScope scope("puf_env");
            ModuleSets ms;
            ms.mut = std::make_unique<ModuleUnderTest>(
                specs[i].g, params.seedBase + specs[i].m, params);
            ms.baseline = ms.mut->collect(params.challenges);
            return ms;
        });

    // (a) Ten days later, at 1.4 V supply.
    const auto vdd_sets = parallel::parallelMap(
        modules.size(), [&](std::size_t i) {
            auto &ms = modules[i];
            ms.mut->mc->waitSeconds(10.0 * 24.0 * 3600.0);
            ms.mut->chip->env().vdd = 1.4;
            auto set = ms.mut->collect(params.challenges);
            ms.mut->chip->env().vdd = 1.5;
            return set;
        });
    for (std::size_t i = 0; i < modules.size(); ++i) {
        appendPairedHd(result.intraVdd, modules[i].baseline,
                       vdd_sets[i]);
        for (std::size_t j = 0; j < modules.size(); ++j) {
            if (i != j) {
                appendPairedHd(result.interVdd, modules[i].baseline,
                               vdd_sets[j]);
            }
        }
    }
    for (const double d : result.intraVdd)
        result.maxIntraVdd = std::max(result.maxIntraVdd, d);
    for (const double d : result.interVdd)
        result.minInterVdd = std::min(result.minInterVdd, d);

    // (b) Three months later, at 20 / 40 / 60 C.
    for (auto &ms : modules)
        ms.mut->mc->waitSeconds(90.0 * 24.0 * 3600.0);
    for (const double temp : {20.0, 40.0, 60.0}) {
        PufEnvStudyResult::TempPoint point;
        point.temperatureC = temp;
        const auto temp_sets = parallel::parallelMap(
            modules.size(), [&](std::size_t i) {
                auto &ms = modules[i];
                ms.mut->chip->env().temperatureC = temp;
                auto set = ms.mut->collect(params.challenges);
                ms.mut->chip->env().temperatureC = 20.0;
                return set;
            });
        for (std::size_t i = 0; i < modules.size(); ++i) {
            appendPairedHd(point.intraHd, modules[i].baseline,
                           temp_sets[i]);
            for (std::size_t j = 0; j < modules.size(); ++j) {
                if (i != j) {
                    const auto hd = puf::HammingStudy::pairedDistances(
                        modules[i].baseline, temp_sets[j]);
                    for (const double d : hd) {
                        result.minInterTemp =
                            std::min(result.minInterTemp, d);
                    }
                }
            }
        }
        double sum = 0.0, mx = 0.0;
        for (const double d : point.intraHd) {
            sum += d;
            mx = std::max(mx, d);
        }
        point.meanIntraHd =
            point.intraHd.empty()
                ? 0.0
                : sum / static_cast<double>(point.intraHd.size());
        point.maxIntraHd = mx;
        result.temperatures.push_back(std::move(point));
    }
    return result;
}

} // namespace fracdram::analysis
