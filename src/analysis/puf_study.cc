#include "analysis/puf_study.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

namespace
{

/** One instantiated module with its PUF. */
struct ModuleUnderTest
{
    std::unique_ptr<sim::DramChip> chip;
    std::unique_ptr<softmc::MemoryController> mc;
    std::unique_ptr<puf::FracPuf> puf;
    sim::DramGroup group;

    ModuleUnderTest(sim::DramGroup g, std::uint64_t serial,
                    const PufStudyParams &params)
        : chip(std::make_unique<sim::DramChip>(g, serial, params.dram)),
          mc(std::make_unique<softmc::MemoryController>(*chip, false)),
          puf(std::make_unique<puf::FracPuf>(*mc, params.numFracs)),
          group(g)
    {
        puf->setDiscardAfterEvaluate(true);
    }

    std::vector<BitVector>
    collect(int challenges)
    {
        return puf->evaluateAll(puf->makeChallenges(
            static_cast<std::size_t>(challenges)));
    }
};

void
appendPairedHd(std::vector<double> &out,
               const std::vector<BitVector> &a,
               const std::vector<BitVector> &b)
{
    const auto hd = puf::HammingStudy::pairedDistances(a, b);
    out.insert(out.end(), hd.begin(), hd.end());
}

} // namespace

PufStudyResult
pufStudy(const PufStudyParams &params)
{
    PufStudyResult result;

    // responses[group][module] -> first data set (used for inter-HD).
    std::vector<std::vector<std::vector<BitVector>>> responses;
    std::vector<sim::DramGroup> groups = sim::fracCapableGroups();

    for (const auto g : groups) {
        PufGroupResult gr;
        gr.group = g;
        std::vector<std::vector<BitVector>> module_responses;
        const int modules =
            std::min(params.modulesPerGroup,
                     sim::vendorProfile(g).numModules);
        for (int m = 0; m < modules; ++m) {
            ModuleUnderTest mut(g, params.seedBase + m, params);
            const auto set1 = mut.collect(params.challenges);
            const auto set2 = mut.collect(params.challenges);
            appendPairedHd(gr.intraHd, set1, set2);
            module_responses.push_back(set1);
        }
        gr.hammingWeight = 0.0;
        for (const auto &set : module_responses) {
            gr.hammingWeight += puf::HammingStudy::meanHammingWeight(
                set);
        }
        gr.hammingWeight /= static_cast<double>(
            module_responses.size());

        for (std::size_t i = 0; i < module_responses.size(); ++i) {
            for (std::size_t j = i + 1; j < module_responses.size();
                 ++j) {
                appendPairedHd(gr.interHd, module_responses[i],
                               module_responses[j]);
            }
        }
        responses.push_back(std::move(module_responses));
        result.groups.push_back(std::move(gr));
    }

    // Cross-group inter-HD: first module of each group, pairwise.
    for (std::size_t gi = 0; gi < responses.size(); ++gi) {
        for (std::size_t gj = gi + 1; gj < responses.size(); ++gj) {
            appendPairedHd(result.crossGroupInterHd,
                           responses[gi][0], responses[gj][0]);
        }
    }

    for (const auto &gr : result.groups) {
        for (const double d : gr.intraHd)
            result.maxIntraHd = std::max(result.maxIntraHd, d);
        for (const double d : gr.interHd)
            result.minInterHd = std::min(result.minInterHd, d);
    }
    for (const double d : result.crossGroupInterHd)
        result.minInterHd = std::min(result.minInterHd, d);
    return result;
}

PufEnvStudyResult
pufEnvStudy(const PufStudyParams &params)
{
    PufEnvStudyResult result;

    struct ModuleSets
    {
        std::unique_ptr<ModuleUnderTest> mut;
        std::vector<BitVector> baseline;
    };
    std::vector<ModuleSets> modules;

    for (const auto g : sim::fracCapableGroups()) {
        const int count = std::min(params.modulesPerGroup,
                                   sim::vendorProfile(g).numModules);
        for (int m = 0; m < count; ++m) {
            ModuleSets ms;
            ms.mut = std::make_unique<ModuleUnderTest>(
                g, params.seedBase + m, params);
            ms.baseline = ms.mut->collect(params.challenges);
            modules.push_back(std::move(ms));
        }
    }

    // (a) Ten days later, at 1.4 V supply.
    std::vector<std::vector<BitVector>> vdd_sets;
    for (auto &ms : modules) {
        ms.mut->mc->waitSeconds(10.0 * 24.0 * 3600.0);
        ms.mut->chip->env().vdd = 1.4;
        vdd_sets.push_back(ms.mut->collect(params.challenges));
        ms.mut->chip->env().vdd = 1.5;
    }
    for (std::size_t i = 0; i < modules.size(); ++i) {
        appendPairedHd(result.intraVdd, modules[i].baseline,
                       vdd_sets[i]);
        for (std::size_t j = 0; j < modules.size(); ++j) {
            if (i != j) {
                appendPairedHd(result.interVdd, modules[i].baseline,
                               vdd_sets[j]);
            }
        }
    }
    for (const double d : result.intraVdd)
        result.maxIntraVdd = std::max(result.maxIntraVdd, d);
    for (const double d : result.interVdd)
        result.minInterVdd = std::min(result.minInterVdd, d);

    // (b) Three months later, at 20 / 40 / 60 C.
    for (auto &ms : modules)
        ms.mut->mc->waitSeconds(90.0 * 24.0 * 3600.0);
    for (const double temp : {20.0, 40.0, 60.0}) {
        PufEnvStudyResult::TempPoint point;
        point.temperatureC = temp;
        std::vector<std::vector<BitVector>> temp_sets;
        for (auto &ms : modules) {
            ms.mut->chip->env().temperatureC = temp;
            temp_sets.push_back(ms.mut->collect(params.challenges));
            ms.mut->chip->env().temperatureC = 20.0;
        }
        for (std::size_t i = 0; i < modules.size(); ++i) {
            appendPairedHd(point.intraHd, modules[i].baseline,
                           temp_sets[i]);
            for (std::size_t j = 0; j < modules.size(); ++j) {
                if (i != j) {
                    const auto hd = puf::HammingStudy::pairedDistances(
                        modules[i].baseline, temp_sets[j]);
                    for (const double d : hd) {
                        result.minInterTemp =
                            std::min(result.minInterTemp, d);
                    }
                }
            }
        }
        double sum = 0.0, mx = 0.0;
        for (const double d : point.intraHd) {
            sum += d;
            mx = std::max(mx, d);
        }
        point.meanIntraHd =
            point.intraHd.empty()
                ? 0.0
                : sum / static_cast<double>(point.intraHd.size());
        point.maxIntraHd = mx;
        result.temperatures.push_back(std::move(point));
    }
    return result;
}

} // namespace fracdram::analysis
