/**
 * @file
 * Figs. 11 and 12 harness: Frac-PUF uniqueness, reliability, and
 * environmental robustness.
 */

#ifndef FRACDRAM_ANALYSIS_PUF_STUDY_HH
#define FRACDRAM_ANALYSIS_PUF_STUDY_HH

#include <vector>

#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::analysis
{

/** Scale knobs of the PUF studies. */
struct PufStudyParams
{
    int modulesPerGroup = 2; //!< paper: at least two per group
    int challenges = 40;     //!< paper: 120 challenge-response pairs
    int numFracs = 10;       //!< paper: ten Frac operations
    sim::DramParams dram = defaultDram();
    std::uint64_t seedBase = 6000;

    static sim::DramParams defaultDram()
    {
        // The paper's segment is one 8 KB row (65536 bits); scaled
        // down here, which leaves HD statistics unchanged.
        sim::DramParams p;
        p.colsPerRow = 2048;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

/** One group's Fig. 11 marks. */
struct PufGroupResult
{
    sim::DramGroup group;
    std::vector<double> intraHd; //!< same module, repeated challenge
    std::vector<double> interHd; //!< different modules, same group
    double hammingWeight = 0.0;  //!< mean response weight
};

/** Fig. 11: per-group and cross-group HD distributions. */
struct PufStudyResult
{
    std::vector<PufGroupResult> groups;
    std::vector<double> crossGroupInterHd;
    double maxIntraHd = 0.0;
    double minInterHd = 1.0;
};

/** Run the Fig. 11 study over all Frac-capable groups. */
PufStudyResult pufStudy(const PufStudyParams &params);

/** Fig. 12: responses under changed supply voltage / temperature. */
struct PufEnvStudyResult
{
    /** (a) HD between the nominal and the 1.4 V data sets. */
    std::vector<double> intraVdd;
    std::vector<double> interVdd;
    double maxIntraVdd = 0.0;
    double minInterVdd = 1.0;

    /** (b) intra-HD vs the 20 C baseline, per temperature. */
    struct TempPoint
    {
        double temperatureC;
        std::vector<double> intraHd;
        double meanIntraHd;
        double maxIntraHd;
    };
    std::vector<TempPoint> temperatures;
    double minInterTemp = 1.0;
};

/** Run the Fig. 12 study. */
PufEnvStudyResult pufEnvStudy(const PufStudyParams &params);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_PUF_STUDY_HH
