#include "analysis/retention_study.hh"

#include "analysis/study_telemetry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/frac_op.hh"
#include "core/retention.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

namespace
{

/** Deterministic spread of sampled rows over banks and sub-arrays. */
std::vector<std::pair<BankAddr, RowAddr>>
sampleRows(const sim::DramParams &dram, int count)
{
    std::vector<std::pair<BankAddr, RowAddr>> out;
    for (int i = 0; i < count; ++i) {
        const BankAddr bank = static_cast<BankAddr>(i) % dram.numBanks;
        // Walk sub-arrays and rows with co-prime strides.
        const RowAddr row = static_cast<RowAddr>(
            (static_cast<std::uint32_t>(i) * 13u + 5u) %
            dram.rowsPerBank());
        out.emplace_back(bank, row);
    }
    return out;
}

} // namespace

RetentionHeatmap
retentionStudy(sim::DramGroup group, const RetentionStudyParams &params)
{
    const auto &profile = sim::vendorProfile(group);
    const std::size_t num_buckets = core::RetentionBuckets::numBuckets();
    const std::size_t runs =
        static_cast<std::size_t>(params.maxFracs) + 1;

    RetentionHeatmap heat;
    heat.group = group;
    heat.pdf.assign(runs, std::vector<double>(num_buckets, 0.0));
    std::vector<std::vector<std::size_t>> counts(
        runs, std::vector<std::size_t>(num_buckets, 0));

    std::size_t n_long = 0, n_mono = 0, n_other = 0;

    // Timing-checker groups: one module suffices to show the flat
    // profile.
    const std::size_t modules =
        profile.supportsFrac ? static_cast<std::size_t>(params.modules)
                             : 1;

    struct ModuleCounts
    {
        std::vector<std::vector<std::size_t>> counts;
        std::size_t nLong = 0, nMono = 0, nOther = 0, cells = 0;
    };
    const StudyScope study("retention",
                           static_cast<std::uint64_t>(modules));
    const auto partials = parallel::parallelMap(
        modules, [&](std::size_t m) {
            const ModuleScope scope("retention");
            ModuleCounts mod;
            mod.counts.assign(
                runs, std::vector<std::size_t>(num_buckets, 0));
            sim::DramChip chip(group, params.seedBase + m, params.dram);
            softmc::MemoryController mc(chip, false);
            for (const auto &[bank, row] :
                 sampleRows(params.dram, params.rowsPerModule)) {
                core::RetentionProfiler profiler(mc, bank, row);
                // bucket[num_fracs][col]
                std::vector<std::vector<std::size_t>> buckets;
                for (std::size_t n = 0; n < runs; ++n) {
                    buckets.push_back(profiler.profile([&] {
                        mc.fillRowVoltage(bank, row, true);
                        if (n > 0)
                            core::frac(mc, bank, row,
                                       static_cast<int>(n));
                    }));
                }
                const std::size_t cols = params.dram.colsPerRow;
                for (std::size_t c = 0; c < cols; ++c) {
                    bool always_top = true;
                    bool non_increasing = true;
                    bool strictly_decreased = false;
                    for (std::size_t n = 0; n < runs; ++n) {
                        const std::size_t b = buckets[n][c];
                        ++mod.counts[n][b];
                        always_top &= b == num_buckets - 1;
                        if (n > 0) {
                            non_increasing &= b <= buckets[n - 1][c];
                            strictly_decreased |=
                                b < buckets[n - 1][c];
                        }
                    }
                    if (always_top)
                        ++mod.nLong;
                    else if (non_increasing && strictly_decreased)
                        ++mod.nMono;
                    else
                        ++mod.nOther;
                    ++mod.cells;
                }
            }
            return mod;
        });

    for (const auto &mod : partials) {
        for (std::size_t n = 0; n < runs; ++n)
            for (std::size_t b = 0; b < num_buckets; ++b)
                counts[n][b] += mod.counts[n][b];
        n_long += mod.nLong;
        n_mono += mod.nMono;
        n_other += mod.nOther;
        heat.cells += mod.cells;
    }

    // Each cell contributes one bucket observation per run, so each
    // run's column of the heatmap normalizes by the cell count.
    for (std::size_t n = 0; n < runs; ++n) {
        for (std::size_t b = 0; b < num_buckets; ++b) {
            heat.pdf[n][b] =
                heat.cells ? static_cast<double>(counts[n][b]) /
                                 static_cast<double>(heat.cells)
                           : 0.0;
        }
    }

    const double total = static_cast<double>(heat.cells);
    if (heat.cells) {
        heat.fracLongRetention = n_long / total;
        heat.fracMonotonicDecrease = n_mono / total;
        heat.fracOther = n_other / total;
    }
    return heat;
}

std::vector<RetentionHeatmap>
retentionStudyAllGroups(const RetentionStudyParams &params)
{
    std::vector<sim::DramGroup> groups;
    for (const auto g : sim::allGroups()) {
        if (!sim::vendorProfile(g).supportsFrac)
            continue; // paper omits J-L: Frac has no effect there
        groups.push_back(g);
    }
    // Fan out over groups; each group's module sweep then runs inline
    // on its worker (nested parallelFor degrades to serial).
    return parallel::parallelMap(groups.size(), [&](std::size_t i) {
        return retentionStudy(groups[i], params);
    });
}

} // namespace fracdram::analysis
