/**
 * @file
 * Fig. 6 harness: retention-time profiles of Frac'd rows.
 *
 * For each vendor group, sample rows across banks, profile the
 * retention buckets after 0..5 Frac operations, and classify every
 * cell into the paper's three categories: always ">12h" (long),
 * monotonic decrease (the proof-of-concept cells), and others.
 */

#ifndef FRACDRAM_ANALYSIS_RETENTION_STUDY_HH
#define FRACDRAM_ANALYSIS_RETENTION_STUDY_HH

#include <vector>

#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::analysis
{

/** Scale knobs of the retention study. */
struct RetentionStudyParams
{
    /** Modules sampled per group (paper: 16 chips per group). */
    int modules = 2;
    /** Rows sampled per module (paper: 5 rows per bank). */
    int rowsPerModule = 6;
    /** Maximum number of Frac operations (paper: 5). */
    int maxFracs = 5;
    /** Module geometry. */
    sim::DramParams dram = defaultDram();
    /** Base serial; module i uses seedBase + i. */
    std::uint64_t seedBase = 1000;

    static sim::DramParams defaultDram()
    {
        sim::DramParams p;
        p.colsPerRow = 512;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        return p;
    }
};

/** One group's Fig. 6 panel. */
struct RetentionHeatmap
{
    sim::DramGroup group;
    /** pdf[num_fracs][bucket]: fraction of cells per bucket. */
    std::vector<std::vector<double>> pdf;
    /** Cells always in the ">12h" bucket. */
    double fracLongRetention = 0.0;
    /** Cells whose bucket decreases monotonically with more Fracs. */
    double fracMonotonicDecrease = 0.0;
    /** Everything else (VRT cells and unresolved patterns). */
    double fracOther = 0.0;
    /** Total cells classified. */
    std::size_t cells = 0;
};

/** Run the study for one group. */
RetentionHeatmap retentionStudy(sim::DramGroup group,
                                const RetentionStudyParams &params);

/** Run the study for all Frac-capable groups (paper: A-I). */
std::vector<RetentionHeatmap>
retentionStudyAllGroups(const RetentionStudyParams &params);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_RETENTION_STUDY_HH
