#include "analysis/reverse.hh"

#include <bit>

#include "common/rng.hh"
#include "core/frac_op.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"

namespace fracdram::analysis
{

namespace
{

BitVector
markerPattern(std::size_t cols, std::uint64_t tag)
{
    Rng rng(mixSeed(0x5eedbeefULL, tag));
    BitVector bits(cols);
    for (std::size_t c = 0; c < cols; ++c)
        bits.set(c, rng.chance(0.5));
    return bits;
}

} // namespace

DecoderModel
reverseEngineerDecoder(softmc::MemoryController &mc, RowAddr scan_rows)
{
    DecoderModel model;
    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    const BankAddr bank = 0;

    for (RowAddr r1 = 0; r1 < scan_rows; ++r1) {
        for (RowAddr r2 = 0; r2 < scan_rows; ++r2) {
            if (r1 == r2)
                continue;
            // Unique markers in the window, run the sequence, count
            // rows overwritten with a shared result.
            std::vector<BitVector> markers;
            for (RowAddr row = 0; row < scan_rows; ++row) {
                markers.push_back(markerPattern(cols, row));
                mc.writeRowVoltage(bank, row, markers.back());
            }
            core::multiRowActivate(mc, bank, r1, r2);
            std::size_t participating = 0;
            std::uint32_t glitched_bits = 0;
            for (RowAddr row = 0; row < scan_rows; ++row) {
                const BitVector now = mc.readRowVoltage(bank, row);
                const double changed =
                    static_cast<double>(
                        now.hammingDistance(markers[row])) /
                    static_cast<double>(cols);
                if (changed > 0.05) {
                    ++participating;
                    glitched_bits |= row ^ r2;
                }
            }
            if (participating == 0)
                participating = 1; // only R2 (restored in place)

            const int distance =
                std::popcount(r1 ^ r2);
            model.sizesByDistance[distance].push_back(participating);
            model.maxOpenedRows =
                std::max(model.maxOpenedRows, participating);
            if (participating == 3)
                model.hasThreeRowSets = true;
            if (participating > 1 &&
                !std::has_single_bit(participating) &&
                participating != 3) {
                model.powerOfTwoOnly = false;
            }
            if (participating > 1 && glitched_bits != 0) {
                const int top_bit =
                    31 - std::countl_zero(glitched_bits);
                model.inferredWindowBits = std::max(
                    model.inferredWindowBits, top_bit + 1);
            }
        }
    }
    return model;
}

std::vector<int>
estimateSenseFlipPoints(softmc::MemoryController &mc, BankAddr bank,
                        RowAddr row, int max_fracs)
{
    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    std::vector<int> flip(cols, max_fracs + 1);
    for (int n = 1; n <= max_fracs; ++n) {
        mc.fillRowVoltage(bank, row, true);
        core::frac(mc, bank, row, n);
        const BitVector readout = mc.readRowVoltage(bank, row);
        for (ColAddr c = 0; c < cols; ++c) {
            if (flip[c] > max_fracs && !readout.get(c))
                flip[c] = n;
        }
    }
    return flip;
}

} // namespace fracdram::analysis
