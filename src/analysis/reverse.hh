/**
 * @file
 * Reverse-engineering tools (paper Sec. VI-C): fractional values as a
 * probe into the "black-box" DRAM design.
 *
 *  - Row-decoder reverse engineering: scan ACT-PRE-ACT pairs and
 *    infer the glitch behaviour (how many rows open for which address
 *    distances, the glitch window, whether exactly-three-row sets
 *    exist) - the experiment behind the paper's Sec. VI-A1 findings.
 *  - Sense-amplifier threshold estimation: the number of Fracs at
 *    which a column's readout flips is monotone in its decision
 *    threshold, giving a per-column offset ranking without any
 *    analog access.
 */

#ifndef FRACDRAM_ANALYSIS_REVERSE_HH
#define FRACDRAM_ANALYSIS_REVERSE_HH

#include <map>
#include <vector>

#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

/** Inferred row-decoder behaviour. */
struct DecoderModel
{
    /** Observed opened-set size per Hamming distance of (R1, R2). */
    std::map<int, std::vector<std::size_t>> sizesByDistance;
    /** Largest opened set seen. */
    std::size_t maxOpenedRows = 1;
    /** Whether any exactly-three-row set was seen (group B quirk). */
    bool hasThreeRowSets = false;
    /** Whether every multi-open set had power-of-two size. */
    bool powerOfTwoOnly = true;
    /** Highest differing-bit index that still glitched. */
    int inferredWindowBits = 0;
};

/**
 * Scan all (R1, R2) pairs inside one sub-array window and infer the
 * decoder model behaviourally.
 *
 * @param mc controller (enforcement off)
 * @param scan_rows scan window (pairs drawn from [0, scan_rows))
 */
DecoderModel reverseEngineerDecoder(softmc::MemoryController &mc,
                                    RowAddr scan_rows = 16);

/**
 * Estimate each column's sense threshold position: the smallest
 * number of Fracs (from all ones) after which the column reads zero.
 * Columns that flip early sit above (positive-offset) sense amps;
 * columns that never flip within @p max_fracs get max_fracs + 1.
 *
 * @return per-column flip point, a monotone proxy of the threshold
 */
std::vector<int> estimateSenseFlipPoints(softmc::MemoryController &mc,
                                         BankAddr bank, RowAddr row,
                                         int max_fracs = 12);

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_REVERSE_HH
