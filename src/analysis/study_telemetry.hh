/**
 * @file
 * Shared observability helpers for the analysis studies.
 *
 * Every study entry point opens a StudyScope (one wall-clock trace
 * span plus run/work-item counters) and every per-module task inside
 * a parallelMap opens a ModuleScope (per-item span plus a duration
 * histogram), so a single run report shows which study dominated and
 * how its modules were distributed over the worker lanes. Both scopes
 * are free when telemetry is disabled.
 */

#ifndef FRACDRAM_ANALYSIS_STUDY_TELEMETRY_HH
#define FRACDRAM_ANALYSIS_STUDY_TELEMETRY_HH

#include <cstdint>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace fracdram::analysis
{

/**
 * RAII study-level scope: a trace span named after the study plus
 * `analysis.study.<name>` (runs) and `analysis.modules` (work items).
 */
class StudyScope
{
  public:
    /**
     * @param study literal study name (outlives the trace sink)
     * @param items work items (modules/groups) the study fans out over
     */
    explicit StudyScope(const char *study, std::uint64_t items = 1)
        : span_(study)
    {
        if (telemetry::enabled()) {
            telemetry::countNamed(std::string("analysis.study.") +
                                  study);
            telemetry::countNamed("analysis.modules", items);
        }
    }

  private:
    telemetry::TraceSpan span_;
};

/**
 * RAII per-work-item scope for a study's parallelMap lambda: a trace
 * span on the executing worker's lane plus an
 * `analysis.<study>.module_ns` duration histogram.
 */
class ModuleScope
{
  public:
    /** @param study literal study name (outlives the trace sink) */
    explicit ModuleScope(const char *study)
        : study_(study), span_(study), armed_(telemetry::enabled()),
          start_(armed_ ? telemetry::nowNs() : 0)
    {
    }
    ~ModuleScope()
    {
        if (!armed_)
            return;
        // Interning per item is fine: items run for milliseconds,
        // not nanoseconds.
        const auto id = telemetry::Metrics::instance().histogram(
            std::string("analysis.") + study_ + ".module_ns");
        telemetry::observe(id, telemetry::nowNs() - start_);
    }
    ModuleScope(const ModuleScope &) = delete;
    ModuleScope &operator=(const ModuleScope &) = delete;

  private:
    const char *study_;
    telemetry::TraceSpan span_;
    bool armed_;
    std::uint64_t start_;
};

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_STUDY_TELEMETRY_HH
