#include "analysis/tau_estimate.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "core/retention.hh"

namespace fracdram::analysis
{

std::size_t
TauEstimate::resolvedCount() const
{
    std::size_t n = 0;
    for (const bool r : resolved)
        n += r;
    return n;
}

TauEstimate
estimateCellTau(softmc::MemoryController &mc, BankAddr bank,
                RowAddr row, const TauEstimateParams &params)
{
    panic_if(params.fracLadder.empty(), "need at least one rung");
    fatal_if(!mc.chip().profile().supportsFrac,
             "tau estimation needs Frac support");

    const std::size_t cols = mc.chip().dramParams().colsPerRow;
    const Volt vdd = mc.chip().env().vdd;
    const Volt half = vdd / 2.0;
    const Volt v_th = params.thresholdFraction * vdd;

    core::RetentionProfiler profiler(mc, bank, row);

    // Least-squares fit of t_ret = tau * depth through the origin:
    // tau = sum(t*depth) / sum(depth^2). Deeper rungs (larger
    // V0 - V_th) are less sensitive to per-cell offset noise and
    // dominate the fit automatically.
    std::vector<double> td_sum(cols, 0.0);
    std::vector<double> dd_sum(cols, 0.0);
    std::vector<int> tau_n(cols, 0);

    for (const int rung : params.fracLadder) {
        // Reconstructed starting voltage of this rung (population
        // model; per-cell alpha variation is the method's noise).
        const Volt v0 =
            half + half * std::pow(params.attenuationPerFrac, rung);
        if (v0 <= v_th)
            continue; // below threshold; retention would be zero
        const double depth = std::log(v0 / v_th);

        const auto buckets = profiler.profile(
            [&] {
                mc.fillRowVoltage(bank, row, true);
                core::frac(mc, bank, row, rung);
            },
            params.probes);

        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t b = buckets[c];
            if (b == 0 || b >= params.probes.size())
                continue; // dead immediately or beyond the horizon
            // Bracketed: died between probes[b-1] and probes[b];
            // take the geometric midpoint as the retention time.
            const double t_ret = std::sqrt(params.probes[b - 1] *
                                           params.probes[b]);
            td_sum[c] += t_ret * depth;
            dd_sum[c] += depth * depth;
            ++tau_n[c];
        }
    }

    TauEstimate out;
    out.tauSeconds.assign(cols, 0.0);
    out.resolved.assign(cols, false);
    for (std::size_t c = 0; c < cols; ++c) {
        if (tau_n[c] > 0) {
            out.tauSeconds[c] = td_sum[c] / dd_sum[c];
            out.resolved[c] = true;
        }
    }
    return out;
}

} // namespace fracdram::analysis
