/**
 * @file
 * Per-cell leakage characterization with fractional values (paper
 * Sec. VI-C: "store different levels of fractional value and measure
 * the retention time of each, thereby roughly tracing the voltage
 * change during leakage").
 *
 * Binary writes give exactly one point of a cell's V(t) curve (full
 * V_dd). Frac gives a ladder of starting voltages, and the retention
 * time measured from each rung brackets the cell's leakage time
 * constant: t_ret(k) ~ tau * ln(V0(k) / V_th). The estimator combines
 * the rungs into a per-cell tau.
 */

#ifndef FRACDRAM_ANALYSIS_TAU_ESTIMATE_HH
#define FRACDRAM_ANALYSIS_TAU_ESTIMATE_HH

#include <vector>

#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::analysis
{

/** Per-cell leakage estimates for one row. */
struct TauEstimate
{
    /** Estimated leakage time constant per column (seconds). */
    std::vector<Seconds> tauSeconds;
    /**
     * Whether the estimate is resolved: at least one rung produced a
     * finite retention bracket. Cells that survive every probe at
     * every level cannot be characterized within the time horizon.
     */
    std::vector<bool> resolved;

    /** Count of resolved cells. */
    std::size_t resolvedCount() const;
};

/** Tuning knobs of the estimator. */
struct TauEstimateParams
{
    /**
     * Frac ladder: retention measured after each of these counts.
     * Deep rungs only by default: shallow rungs park the cell within
     * a per-cell offset of the threshold, where the reconstructed
     * depth - and with it the tau estimate - is noise-dominated.
     */
    std::vector<int> fracLadder = {1, 2};
    /** Probe times per rung (seconds, strictly increasing). */
    std::vector<Seconds> probes = {
        1.0,          60.0,          600.0,        3600.0,
        4.0 * 3600.0, 12.0 * 3600.0, 48.0 * 3600.0, 168.0 * 3600.0,
    };
    /**
     * Assumed per-Frac attenuation of (V - V_dd/2): the population
     * mean of 1 - alpha * C_b / (C_b + C_c). Used to reconstruct the
     * ladder's starting voltages.
     */
    double attenuationPerFrac = 0.40;
    /** Assumed sense threshold as a fraction of V_dd. */
    double thresholdFraction = 0.502;
};

/**
 * Estimate the leakage time constant of every cell in a row.
 *
 * @param mc controller (enforcement off; the module must Frac)
 * @param bank bank of the row
 * @param row row to characterize
 * @param params estimator knobs
 */
TauEstimate estimateCellTau(softmc::MemoryController &mc,
                            BankAddr bank, RowAddr row,
                            const TauEstimateParams &params =
                                TauEstimateParams{});

} // namespace fracdram::analysis

#endif // FRACDRAM_ANALYSIS_TAU_ESTIMATE_HH
