#include "common/bitvec.hh"

#include <bit>

#include "common/logging.hh"

namespace fracdram
{

BitVector::BitVector(std::size_t n, bool value) : size_(n)
{
    words_.assign((n + bitsPerWord - 1) / bitsPerWord,
                  value ? ~std::uint64_t{0} : 0);
    maskTail();
}

BitVector
BitVector::fromString(const std::string &s)
{
    BitVector v(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        panic_if(s[i] != '0' && s[i] != '1',
                 "BitVector::fromString: bad char '%c'", s[i]);
        v.set(i, s[i] == '1');
    }
    return v;
}

void
BitVector::maskTail()
{
    const std::size_t rem = size_ % bitsPerWord;
    if (rem != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << rem) - 1;
}

bool
BitVector::get(std::size_t i) const
{
    panic_if(i >= size_, "BitVector::get(%zu) out of range %zu", i, size_);
    return (words_[i / bitsPerWord] >> (i % bitsPerWord)) & 1;
}

void
BitVector::set(std::size_t i, bool value)
{
    panic_if(i >= size_, "BitVector::set(%zu) out of range %zu", i, size_);
    const std::uint64_t mask = std::uint64_t{1} << (i % bitsPerWord);
    if (value)
        words_[i / bitsPerWord] |= mask;
    else
        words_[i / bitsPerWord] &= ~mask;
}

void
BitVector::pushBack(bool value)
{
    if (size_ % bitsPerWord == 0)
        words_.push_back(0);
    ++size_;
    set(size_ - 1, value);
}

void
BitVector::append(const BitVector &other)
{
    for (std::size_t i = 0; i < other.size(); ++i)
        pushBack(other.get(i));
}

void
BitVector::fill(bool value)
{
    for (auto &w : words_)
        w = value ? ~std::uint64_t{0} : 0;
    maskTail();
}

void
BitVector::invert()
{
    for (auto &w : words_)
        w = ~w;
    maskTail();
}

std::size_t
BitVector::popcount() const
{
    std::size_t n = 0;
    for (const auto w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

double
BitVector::hammingWeight() const
{
    if (size_ == 0)
        return 0.0;
    return static_cast<double>(popcount()) / static_cast<double>(size_);
}

std::size_t
BitVector::hammingDistance(const BitVector &other) const
{
    panic_if(size_ != other.size_,
             "hammingDistance: size mismatch %zu vs %zu", size_,
             other.size_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
        n += static_cast<std::size_t>(
            std::popcount(words_[i] ^ other.words_[i]));
    return n;
}

BitVector
BitVector::operator^(const BitVector &other) const
{
    panic_if(size_ != other.size_, "operator^: size mismatch");
    BitVector out(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] ^ other.words_[i];
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

std::string
BitVector::toString() const
{
    std::string s(size_, '0');
    for (std::size_t i = 0; i < size_; ++i)
        if (get(i))
            s[i] = '1';
    return s;
}

} // namespace fracdram
