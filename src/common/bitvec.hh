/**
 * @file
 * A compact bit vector used for row data, PUF responses and the NIST
 * bit streams.
 */

#ifndef FRACDRAM_COMMON_BITVEC_HH
#define FRACDRAM_COMMON_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fracdram
{

/**
 * Dynamically sized vector of bits with word-level storage.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** @param n number of bits, all initialized to @p value. */
    explicit BitVector(std::size_t n, bool value = false);

    /** Build from a string of '0'/'1' characters. */
    static BitVector fromString(const std::string &s);

    /** Number of bits. */
    std::size_t size() const { return size_; }

    /** Whether the vector holds no bits. */
    bool empty() const { return size_ == 0; }

    /** Read bit i. */
    bool get(std::size_t i) const;

    /** Write bit i. */
    void set(std::size_t i, bool value);

    /** Append one bit. */
    void pushBack(bool value);

    /** Append all bits of another vector. */
    void append(const BitVector &other);

    /** Set every bit to @p value. */
    void fill(bool value);

    /** Flip every bit in place (no temporary mask allocation). */
    void invert();

    /** Number of one bits. */
    std::size_t popcount() const;

    /** Fraction of one bits (Hamming weight); 0 when empty. */
    double hammingWeight() const;

    /**
     * Number of differing bits against @p other.
     * Requires equal sizes.
     */
    std::size_t hammingDistance(const BitVector &other) const;

    /** XOR with another vector of equal size. */
    BitVector operator^(const BitVector &other) const;

    /** Bitwise equality. */
    bool operator==(const BitVector &other) const;

    /** Render as a '0'/'1' string (head bits first). */
    std::string toString() const;

    /**
     * Raw word storage: bit i lives in word i/64 at position i%64,
     * so the byte image (little-endian words) packs bit i into byte
     * i/8, position i%8. Bits past size() are zero.
     */
    const std::uint64_t *words() const { return words_.data(); }

    /** Number of storage words backing words(). */
    std::size_t numWords() const { return wordCount(); }

    /**
     * Mutable word storage for bulk writers (sim kernels). Callers
     * must keep the bits past size() zero - every other member
     * relies on that invariant.
     */
    std::uint64_t *mutableWords() { return words_.data(); }

  private:
    static constexpr std::size_t bitsPerWord = 64;

    std::size_t wordCount() const
    {
        return (size_ + bitsPerWord - 1) / bitsPerWord;
    }

    void maskTail();

    std::vector<std::uint64_t> words_;
    std::size_t size_ = 0;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_BITVEC_HH
