#include "common/csv.hh"

#include <cstdio>

#include "common/logging.hh"

namespace fracdram
{

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "CSV needs at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "CSV row width %zu != header width %zu", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

std::string
CsvWriter::render() const
{
    auto line = [](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ",";
            out += escape(cells[i]);
        }
        return out + "\n";
    };
    std::string out = line(headers_);
    for (const auto &row : rows_)
        out += line(row);
    return out;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return false;
    }
    const std::string content = render();
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    return ok;
}

} // namespace fracdram
