/**
 * @file
 * Minimal CSV writer so the bench binaries can dump plot-ready data
 * (`--csv <dir>` on the figure benches).
 */

#ifndef FRACDRAM_COMMON_CSV_HH
#define FRACDRAM_COMMON_CSV_HH

#include <string>
#include <vector>

namespace fracdram
{

/**
 * Accumulates rows and writes an RFC-4180-ish CSV file.
 */
class CsvWriter
{
  public:
    /** @param headers column names (first line of the file). */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render the CSV contents. */
    std::string render() const;

    /**
     * Write to @p path.
     * @return whether the file was written
     */
    bool writeFile(const std::string &path) const;

    /** Quote/escape a single cell per RFC 4180. */
    static std::string escape(const std::string &cell);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_CSV_HH
