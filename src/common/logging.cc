#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace fracdram
{

namespace
{
// Atomic so parallel trial workers can consult it without racing a
// driver's setVerbose() call.
std::atomic<bool> verboseFlag{true};

// One writer lock for every stderr line. Each message is formatted
// into a single buffer first and written with one stdio call under
// the lock, so warn()/inform() lines from parallel trial workers
// never interleave mid-line.
std::mutex &
writerMutex()
{
    static std::mutex *m = new std::mutex(); // leaked: usable during
    return *m;                               // static destruction
}
} // namespace

void
logLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    if (prefix != nullptr && prefix[0] != '\0') {
        line += prefix;
        line += ": ";
    }
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(writerMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("panic", strprintf("%s @ %s:%d", msg.c_str(), file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("fatal", strprintf("%s @ %s:%d", msg.c_str(), file, line));
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("warn", msg);
}

void
informImpl(const char *fmt, ...)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("info", msg);
}

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

} // namespace fracdram
