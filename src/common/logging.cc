#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <optional>
#include <vector>

namespace fracdram
{

namespace
{
// Atomic so parallel trial workers can consult it without racing a
// driver's setLogLevel()/setVerbose() call.
std::atomic<int> programLevel{static_cast<int>(LogLevel::Info)};

/**
 * FRACDRAM_LOG_LEVEL, parsed once on first use. Unset or
 * unrecognized values mean "no override".
 */
const std::optional<LogLevel> &
envLevel()
{
    static const std::optional<LogLevel> level =
        []() -> std::optional<LogLevel> {
        const char *env = std::getenv("FRACDRAM_LOG_LEVEL");
        if (env == nullptr)
            return std::nullopt;
        if (std::strcmp(env, "error") == 0 ||
            std::strcmp(env, "quiet") == 0)
            return LogLevel::Error;
        if (std::strcmp(env, "warn") == 0)
            return LogLevel::Warn;
        if (std::strcmp(env, "info") == 0)
            return LogLevel::Info;
        if (std::strcmp(env, "debug") == 0)
            return LogLevel::Debug;
        return std::nullopt;
    }();
    return level;
}

bool
levelEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/**
 * Small stable per-thread id for log attribution (T1 = first thread
 * that logged, usually main). Thread ids from the OS are recycled
 * and unwieldy; a dense counter reads better in daemon logs.
 */
unsigned
threadLogId()
{
    static std::atomic<unsigned> nextId{0};
    thread_local const unsigned id = ++nextId;
    return id;
}

// One writer lock for every stderr line. Each message is formatted
// into a single buffer first and written with one stdio call under
// the lock, so warn()/inform() lines from parallel trial workers
// never interleave mid-line.
std::mutex &
writerMutex()
{
    static std::mutex *m = new std::mutex(); // leaked: usable during
    return *m;                               // static destruction
}
} // namespace

void
logLine(const char *prefix, const std::string &msg)
{
    // ISO-8601 UTC with milliseconds.
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    tm utc{};
    gmtime_r(&ts.tv_sec, &utc);
    char stamp[40];
    const std::size_t n =
        strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &utc);
    std::snprintf(stamp + n, sizeof(stamp) - n, ".%03ldZ",
                  ts.tv_nsec / 1000000);

    std::string line;
    line.reserve(msg.size() + 48);
    line += stamp;
    line += strprintf(" [T%u] ", threadLogId());
    if (prefix != nullptr && prefix[0] != '\0') {
        line += prefix;
        line += ": ";
    }
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(writerMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("panic", strprintf("%s @ %s:%d", msg.c_str(), file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("fatal", strprintf("%s @ %s:%d", msg.c_str(), file, line));
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("warn", msg);
}

void
informImpl(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("info", msg);
}

void
debugImpl(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Debug))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine("debug", msg);
}

void
setLogLevel(LogLevel level)
{
    programLevel.store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    if (envLevel().has_value())
        return *envLevel();
    return static_cast<LogLevel>(
        programLevel.load(std::memory_order_relaxed));
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Error);
}

bool
verbose()
{
    return logLevel() >= LogLevel::Info;
}

} // namespace fracdram
