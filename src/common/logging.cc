#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fracdram
{

namespace
{
// Atomic so parallel trial workers can consult it without racing a
// driver's setVerbose() call.
std::atomic<bool> verboseFlag{true};
} // namespace

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

} // namespace fracdram
