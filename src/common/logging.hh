/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is off but the run can continue.
 * inform() - plain status output.
 */

#ifndef FRACDRAM_COMMON_LOGGING_HH
#define FRACDRAM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace fracdram
{

/** Printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void debugImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Write one complete line to stderr under the process-wide writer
 * lock, prefixed with an ISO-8601 UTC timestamp and a small stable
 * thread id:
 *
 *     2026-08-05T12:34:56.789Z [T2] warn: msg
 *
 * All logging helpers route through this, so multi-threaded output
 * never interleaves mid-line and long-running daemon logs stay
 * attributable; telemetry's human-readable summary uses the same
 * writer.
 */
void logLine(const char *prefix, const std::string &msg);

/**
 * Severity filter for warn()/inform()/debug_log() (panic/fatal always
 * print). The FRACDRAM_LOG_LEVEL environment variable - one of
 * "error" (or "quiet"), "warn", "info", "debug" - overrides whatever
 * the program sets, so a daemon's verbosity can be turned up without
 * a rebuild or flag.
 */
enum class LogLevel
{
    Error = 0, //!< only panic/fatal output
    Warn,
    Info, //!< default
    Debug,
};

/** Programmatic filter (loses against FRACDRAM_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** The effective filter (env override applied). */
LogLevel logLevel();

/** Legacy toggle: false maps to Error, true to Info. */
void setVerbose(bool verbose);

/** @return whether warn()/inform() currently print. */
bool verbose();

} // namespace fracdram

#define panic(...) \
    ::fracdram::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::fracdram::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::fracdram::warnImpl(__VA_ARGS__)
#define inform(...) ::fracdram::informImpl(__VA_ARGS__)
#define debug_log(...) ::fracdram::debugImpl(__VA_ARGS__)

/** Assert an invariant with a formatted message on failure. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                          \
    } while (0)

#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // FRACDRAM_COMMON_LOGGING_HH
