#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace fracdram::parallel
{

namespace
{

thread_local bool tlsInsideWorker = false;

/** Shared task histograms (queue wait / execution, nanoseconds). */
telemetry::HistogramId
queueWaitHist()
{
    static const auto id = telemetry::Metrics::instance().histogram(
        "parallel.task.queue_wait_ns");
    return id;
}

telemetry::HistogramId
execHist()
{
    static const auto id = telemetry::Metrics::instance().histogram(
        "parallel.task.exec_ns");
    return id;
}

/** Explicit override from setThreads(); 0 means "resolve automatically". */
std::atomic<unsigned> configuredThreads{0};

unsigned
resolveAutoThreads()
{
    if (const char *env = std::getenv("FRACDRAM_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** The engine's shared pool, rebuilt when the thread count changes. */
std::mutex poolMutex;
std::unique_ptr<ThreadPool> pool;

ThreadPool &
acquirePool(unsigned want)
{
    std::lock_guard<std::mutex> lock(poolMutex);
    if (!pool || pool->threadCount() != want) {
        pool = std::make_unique<ThreadPool>(want);
        static const auto threads_gauge =
            telemetry::Metrics::instance().gauge("parallel.threads");
        telemetry::setGauge(threads_gauge,
                            static_cast<std::int64_t>(want));
    }
    return *pool;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    if (insideWorker()) {
        throw std::logic_error(
            "ThreadPool::submit from a worker thread (nested submit "
            "rejected; use parallelFor, which degrades to serial)");
    }
    std::packaged_task<void()> wrapped(std::move(task));
    auto future = wrapped.get_future();
    QueueItem item{std::move(wrapped),
                   telemetry::enabled() ? telemetry::nowNs() : 0};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::logic_error("submit on a stopped ThreadPool");
        queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return future;
}

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

void
ThreadPool::workerLoop(unsigned index)
{
    tlsInsideWorker = true;
    // Per-worker lane + counters: the worker ordinal (not the OS
    // thread id) keys the metric names, so reports stay comparable
    // across runs and pool rebuilds.
    if (telemetry::enabled())
        telemetry::setThreadName(strprintf("worker-%u", index));
    auto &metrics = telemetry::Metrics::instance();
    const auto tasks_id = metrics.counter(
        strprintf("parallel.worker.%u.tasks", index));
    const auto busy_id = metrics.counter(
        strprintf("parallel.worker.%u.busy_ns", index));
    for (;;) {
        QueueItem item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ with a drained queue
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        std::uint64_t start = 0;
        if (telemetry::enabled()) {
            start = telemetry::nowNs();
            if (item.enqueueNs != 0)
                telemetry::observe(queueWaitHist(),
                                   start - item.enqueueNs);
        }
        item.task();
        if (start != 0) {
            const std::uint64_t dur = telemetry::nowNs() - start;
            telemetry::count(tasks_id);
            telemetry::count(busy_id, dur);
            telemetry::observe(execHist(), dur);
            telemetry::traceSpan("pool task", start, dur);
        }
    }
}

void
setThreads(unsigned n)
{
    configuredThreads.store(n, std::memory_order_relaxed);
}

unsigned
threads()
{
    const unsigned n = configuredThreads.load(std::memory_order_relaxed);
    return n ? n : resolveAutoThreads();
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    static const auto calls_id =
        telemetry::Metrics::instance().counter("parallel.for.calls");
    static const auto indices_id =
        telemetry::Metrics::instance().counter("parallel.for.indices");
    static const auto for_hist =
        telemetry::Metrics::instance().histogram("parallel.for.ns");
    telemetry::count(calls_id);
    telemetry::count(indices_id, n);
    telemetry::ScopedTimer for_timer(for_hist);
    telemetry::TraceSpan for_span("parallelFor");

    const unsigned want = threads();
    if (want <= 1 || n == 1 || ThreadPool::insideWorker()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    ThreadPool &tp = acquirePool(want);

    // Dynamic index claiming: no per-worker partition, so stragglers
    // never idle the pool, and since each index touches only its own
    // state the results are scheduling-independent.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto firstError = std::make_shared<std::atomic<bool>>(false);
    auto errorPtr = std::make_shared<std::exception_ptr>();
    auto errorMutex = std::make_shared<std::mutex>();

    auto claimLoop = [n, &fn, next, firstError, errorPtr, errorMutex] {
        for (;;) {
            if (firstError->load(std::memory_order_relaxed))
                return; // fail fast; caller rethrows anyway
            const std::size_t i =
                next->fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*errorMutex);
                if (!firstError->exchange(true))
                    *errorPtr = std::current_exception();
                return;
            }
        }
    };

    const std::size_t helpers =
        std::min<std::size_t>(tp.threadCount(), n) - 1;
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (std::size_t t = 0; t < helpers; ++t)
        futures.push_back(tp.submit(claimLoop));

    claimLoop(); // the calling thread participates

    for (auto &f : futures)
        f.get();

    if (firstError->load(std::memory_order_acquire) && *errorPtr)
        std::rethrow_exception(*errorPtr);
}

} // namespace fracdram::parallel
