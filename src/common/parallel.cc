#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>

namespace fracdram::parallel
{

namespace
{

thread_local bool tlsInsideWorker = false;

/** Explicit override from setThreads(); 0 means "resolve automatically". */
std::atomic<unsigned> configuredThreads{0};

unsigned
resolveAutoThreads()
{
    if (const char *env = std::getenv("FRACDRAM_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** The engine's shared pool, rebuilt when the thread count changes. */
std::mutex poolMutex;
std::unique_ptr<ThreadPool> pool;

ThreadPool &
acquirePool(unsigned want)
{
    std::lock_guard<std::mutex> lock(poolMutex);
    if (!pool || pool->threadCount() != want)
        pool = std::make_unique<ThreadPool>(want);
    return *pool;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    if (insideWorker()) {
        throw std::logic_error(
            "ThreadPool::submit from a worker thread (nested submit "
            "rejected; use parallelFor, which degrades to serial)");
    }
    std::packaged_task<void()> wrapped(std::move(task));
    auto future = wrapped.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::logic_error("submit on a stopped ThreadPool");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
    return future;
}

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

void
ThreadPool::workerLoop()
{
    tlsInsideWorker = true;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
setThreads(unsigned n)
{
    configuredThreads.store(n, std::memory_order_relaxed);
}

unsigned
threads()
{
    const unsigned n = configuredThreads.load(std::memory_order_relaxed);
    return n ? n : resolveAutoThreads();
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    const unsigned want = threads();
    if (want <= 1 || n == 1 || ThreadPool::insideWorker()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    ThreadPool &tp = acquirePool(want);

    // Dynamic index claiming: no per-worker partition, so stragglers
    // never idle the pool, and since each index touches only its own
    // state the results are scheduling-independent.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto firstError = std::make_shared<std::atomic<bool>>(false);
    auto errorPtr = std::make_shared<std::exception_ptr>();
    auto errorMutex = std::make_shared<std::mutex>();

    auto claimLoop = [n, &fn, next, firstError, errorPtr, errorMutex] {
        for (;;) {
            if (firstError->load(std::memory_order_relaxed))
                return; // fail fast; caller rethrows anyway
            const std::size_t i =
                next->fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*errorMutex);
                if (!firstError->exchange(true))
                    *errorPtr = std::current_exception();
                return;
            }
        }
    };

    const std::size_t helpers =
        std::min<std::size_t>(tp.threadCount(), n) - 1;
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (std::size_t t = 0; t < helpers; ++t)
        futures.push_back(tp.submit(claimLoop));

    claimLoop(); // the calling thread participates

    for (auto &f : futures)
        f.get();

    if (firstError->load(std::memory_order_acquire) && *errorPtr)
        std::rethrow_exception(*errorPtr);
}

} // namespace fracdram::parallel
