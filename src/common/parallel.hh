/**
 * @file
 * Deterministic parallel trial engine.
 *
 * The experiment harnesses sweep embarrassingly parallel axes (vendor
 * group, module serial, sub-array); the real FracDRAM platform ran 582
 * chips concurrently on FPGA hosts. This subsystem provides the host
 * substitute: a fixed-size, work-stealing-free thread pool plus
 * parallelFor/parallelMap helpers whose results are *bit-identical* to
 * a serial run.
 *
 * Determinism contract: every index i of a parallelFor must be a pure
 * function of i and of state reachable only through i (e.g. a chip
 * seeded from mixSeed(root, i)). Workers claim indices dynamically,
 * but because no state is shared between indices and results land in
 * index-order slots, the merged output never depends on scheduling.
 *
 * Thread count resolution order:
 *   1. setThreads(n) with n >= 1 (the CLI --threads flag),
 *   2. the FRACDRAM_THREADS environment variable,
 *   3. std::thread::hardware_concurrency().
 *
 * Nested parallelism is defined but degenerate: a parallelFor issued
 * from inside a worker runs serially inline on that worker, while a
 * raw ThreadPool::submit from a worker throws (deadlock guard).
 */

#ifndef FRACDRAM_COMMON_PARALLEL_HH
#define FRACDRAM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fracdram::parallel
{

/**
 * A fixed-size FIFO thread pool. Tasks run in submission order (one
 * queue, no stealing); completion order depends on task durations.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue a task; the future reports completion or rethrows the
     * task's exception.
     * @throws std::logic_error when called from a pool worker (a
     *         nested submit could deadlock waiting on its own queue).
     */
    std::future<void> submit(std::function<void()> task);

    /** Whether the calling thread is a worker of *any* pool. */
    static bool insideWorker();

  private:
    /** @param index worker ordinal, used for telemetry lane names */
    void workerLoop(unsigned index);

    /** A queued task plus its enqueue timestamp (0 = untimed). */
    struct QueueItem
    {
        std::packaged_task<void()> task;
        std::uint64_t enqueueNs = 0;
    };

    std::vector<std::thread> workers_;
    std::deque<QueueItem> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Configure the trial engine's thread count.
 * @param n worker count; 0 restores automatic resolution
 *          (FRACDRAM_THREADS env var, then hardware concurrency).
 */
void setThreads(unsigned n);

/** Resolved thread count the next parallelFor will use. */
unsigned threads();

/**
 * Run fn(0) ... fn(n-1), spread over the engine's threads.
 *
 * Blocks until every index completed. The first exception thrown by
 * any fn(i) is rethrown on the calling thread (remaining indices may
 * be skipped). Runs serially inline when threads() == 1, when n < 2,
 * or when called from inside a worker (nested parallelism).
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Map i -> fn(i) for i in [0, n), preserving index order in the
 * returned vector regardless of scheduling.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using T = decltype(fn(std::size_t{}));
    std::vector<T> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace fracdram::parallel

#endif // FRACDRAM_COMMON_PARALLEL_HH
