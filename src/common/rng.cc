#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace fracdram
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t tag)
{
    return splitmix64(seed ^ splitmix64(tag + 0x632be59bd9b4e019ULL));
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : spare_(0.0), hasSpare_(false)
{
    // Seed all four lanes through SplitMix64 as the xoshiro authors
    // recommend; guards against the all-zero state.
    std::uint64_t x = seed;
    for (auto &lane : s_) {
        x = splitmix64(x);
        lane = x;
    }
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
Rng::gamma(double k)
{
    panic_if(k <= 0.0, "gamma shape must be positive, got %f", k);
    if (k < 1.0) {
        // Boost to shape >= 1, then apply the standard correction.
        const double u = uniform();
        return gamma(k + 1.0) * std::pow(u, 1.0 / k);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x +
                d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

double
Rng::beta(double a, double b)
{
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    panic_if(n == 0, "Rng::below(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

} // namespace fracdram
