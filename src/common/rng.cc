#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/simd/ops.hh"

namespace fracdram
{

namespace
{

/** Raw->uniform/Bernoulli chunk size: 2 KiB of raw words. */
constexpr std::size_t kRawChunk = 256;

} // namespace

double
Rng::materializeSpare()
{
    // Exactly the spare computation of the eager pair below, replayed
    // from the stashed uniforms of a pair that skipGaussians deferred.
    const double r = std::sqrt(-2.0 * std::log(spareU1_));
    const double theta = 2.0 * M_PI * spareU2_;
    spareLazy_ = false;
    return r * std::sin(theta);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareLazy_ ? materializeSpare() : spare_;
    }
    const double u1 = drawU1();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    spareLazy_ = false;
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussianNoSpare()
{
    const double u1 = drawU1();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    return r * std::cos(theta);
}

void
Rng::fillGaussian(std::span<double> dst, double mean, double sigma)
{
    std::size_t i = 0;
    const std::size_t n = dst.size();
    if (i < n && hasSpare_) {
        hasSpare_ = false;
        dst[i++] = mean + sigma *
                              (spareLazy_ ? materializeSpare() : spare_);
    }
    // Uniforms are prefetched in chunks: raw engine words (the serial
    // xoshiro recurrence cannot vectorize) mapped to doubles by the
    // SIMD tier, consumed strictly in draw order. Each refill fetches
    // at most the number of draws the scalar loop is guaranteed to
    // still make (2 per remaining pair), so the engine never
    // over-advances; a u1 rejection (raw>>11 == 0, p ~ 2^-53) only
    // drains the FIFO early, and the tail falls back to live draws
    // with the identical per-draw expression.
    std::uint64_t raw[kRawChunk];
    double uni[kRawChunk];
    std::size_t avail = 0;
    std::size_t pos = 0;
    const auto take = [&]() -> double {
        return pos < avail ? uni[pos++] : uniform();
    };
    while (i < n) {
        if (pos == avail) {
            const std::size_t want =
                std::min(kRawChunk, 2 * ((n - i + 1) / 2));
            for (std::size_t k = 0; k < want; ++k)
                raw[k] = next();
            simd::rawOps().uniformMap(uni, raw, want);
            avail = want;
            pos = 0;
        }
        double u1 = take();
        while (u1 <= 0.0)
            u1 = take();
        const double u2 = take();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        // Keep the scalar path's evaluation order: the sine (spare)
        // before the cosine (returned first). glibc computes both
        // from the same argument, so order only matters for the
        // stream-equivalence reasoning, not the values.
        const double sine = r * std::sin(theta);
        const double cosine = r * std::cos(theta);
        dst[i++] = mean + sigma * cosine;
        if (i < n) {
            dst[i++] = mean + sigma * sine;
        } else {
            spare_ = sine;
            spareLazy_ = false;
            hasSpare_ = true;
        }
    }
}

void
Rng::fillChance(std::span<std::uint8_t> dst, double p)
{
    // One next() per slot in index order, exactly like the scalar
    // loop; the raw->Bernoulli map (convert + compare + byte pack)
    // runs in the SIMD tier.
    const std::size_t n = dst.size();
    std::uint64_t raw[kRawChunk];
    for (std::size_t i = 0; i < n; i += kRawChunk) {
        const std::size_t lim = std::min(kRawChunk, n - i);
        for (std::size_t k = 0; k < lim; ++k)
            raw[k] = next();
        simd::rawOps().chanceMap(dst.data() + i, raw, p, lim);
    }
}

void
Rng::skipGaussians(std::size_t n)
{
    while (n > 0) {
        if (hasSpare_) {
            hasSpare_ = false;
            --n;
            continue;
        }
        // Consume a whole pair without the log/sqrt/sincos; stash the
        // uniforms so a later live draw can still recover the spare.
        spareU1_ = drawU1();
        spareU2_ = uniform();
        spareLazy_ = true;
        hasSpare_ = true;
        --n;
    }
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
Rng::gamma(double k)
{
    panic_if(k <= 0.0, "gamma shape must be positive, got %f", k);
    if (k < 1.0) {
        // Boost to shape >= 1, then apply the standard correction.
        const double u = uniform();
        return gamma(k + 1.0) * std::pow(u, 1.0 / k);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x +
                d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

double
Rng::beta(double a, double b)
{
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    panic_if(n == 0, "Rng::below(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

} // namespace fracdram
