/**
 * @file
 * Deterministic random-number infrastructure.
 *
 * Process variation must be reproducible: the same (chip serial, bank,
 * row, column) must always yield the same manufacturing parameters, no
 * matter in which order experiments touch them. RngFactory hands out
 * independent streams keyed by a hierarchy of integer tags, all derived
 * from one root seed via SplitMix64 hashing.
 */

#ifndef FRACDRAM_COMMON_RNG_HH
#define FRACDRAM_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace fracdram
{

/** SplitMix64 hash step; good avalanche, cheap, reproducible. */
std::uint64_t splitmix64(std::uint64_t x);

/** Combine a seed with a tag into a new independent seed. */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t tag);

/**
 * A small, fast PRNG (xoshiro256**) with distribution helpers.
 *
 * Not cryptographic; used only for simulating device physics.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Lognormal: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Beta(a, b) via two gamma draws. */
    double beta(double a, double b);

    /** Gamma(shape k, scale 1) via Marsaglia-Tsang. */
    double gamma(double k);

    /** Bernoulli trial. */
    bool chance(double p);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

  private:
    std::uint64_t s_[4];
    double spare_;
    bool hasSpare_;
};

/**
 * Factory producing independent, reproducible Rng streams from
 * hierarchical integer tags.
 */
class RngFactory
{
  public:
    explicit RngFactory(std::uint64_t root_seed) : seed_(root_seed) {}

    /** Derive a sub-factory for a component (e.g. a bank). */
    RngFactory sub(std::uint64_t tag) const
    {
        return RngFactory(mixSeed(seed_, tag));
    }

    /** Materialize a stream for a leaf entity. */
    Rng stream(std::uint64_t tag) const { return Rng(mixSeed(seed_, tag)); }

    /** Root seed of this factory. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_RNG_HH
