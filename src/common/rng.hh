/**
 * @file
 * Deterministic random-number infrastructure.
 *
 * Process variation must be reproducible: the same (chip serial, bank,
 * row, column) must always yield the same manufacturing parameters, no
 * matter in which order experiments touch them. RngFactory hands out
 * independent streams keyed by a hierarchy of integer tags, all derived
 * from one root seed via SplitMix64 hashing.
 *
 * Batched draws: the columnar kernels (sim/kernels) consume noise a
 * whole row at a time through fillGaussian/fillChance. These are
 * *stream-equivalent* to the scalar loops they replace: fillGaussian
 * over n slots advances the engine exactly as n gaussian(mean, sigma)
 * calls would, bit for bit, including the Box-Muller spare cache. See
 * DESIGN.md ("Columnar kernels") before touching any of this.
 *
 * skipGaussians advances the stream without paying for the
 * transcendentals; the half-drawn pair it may leave behind is stored
 * lazily (as its two uniforms) and only materialized if a later live
 * draw consumes it, so skipping is value-identical to drawing and
 * discarding.
 */

#ifndef FRACDRAM_COMMON_RNG_HH
#define FRACDRAM_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace fracdram
{

/** SplitMix64 hash step; good avalanche, cheap, reproducible. */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * The tag-dependent half of mixSeed. mixSeed(seed, tag) ==
 * mixSeedWithTag(seed, mixTag(tag)); hoisting mixTag pays the tag
 * hash once when one tag combines with many seeds (e.g. one column
 * against every per-purpose stream prefix).
 */
inline std::uint64_t
mixTag(std::uint64_t tag)
{
    return splitmix64(tag + 0x632be59bd9b4e019ULL);
}

inline std::uint64_t
mixSeedWithTag(std::uint64_t seed, std::uint64_t tag_hash)
{
    return splitmix64(seed ^ tag_hash);
}

/** Combine a seed with a tag into a new independent seed. */
inline std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t tag)
{
    return mixSeedWithTag(seed, mixTag(tag));
}

/**
 * A small, fast PRNG (xoshiro256**) with distribution helpers.
 *
 * Not cryptographic; used only for simulating device physics.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
        : spare_(0.0), spareU1_(0.0), spareU2_(0.0), hasSpare_(false),
          spareLazy_(false)
    {
        // Seed all four lanes through SplitMix64 as the xoshiro
        // authors recommend; guards against the all-zero state.
        std::uint64_t x = seed;
        for (auto &lane : s_) {
            x = splitmix64(x);
            lane = x;
        }
        if (!(s_[0] | s_[1] | s_[2] | s_[3]))
            s_[0] = 1;
    }

    /**
     * The first next() a fresh Rng(seed) would return, without
     * paying for the full four-lane seeding. Exact for every seed:
     * the first output reads only lane 1, and the all-zero guard
     * rewrites lane 0, which the first output never touches.
     */
    static std::uint64_t firstDraw(std::uint64_t seed)
    {
        const std::uint64_t s1 = splitmix64(splitmix64(seed));
        return rotl(s1 * 5, 7) * 9;
    }

    /** chance(p) of a fresh Rng(seed), via firstDraw. */
    static bool firstChance(std::uint64_t seed, double p)
    {
        return static_cast<double>(firstDraw(seed) >> 11) *
                   0x1.0p-53 <
               p;
    }

    /** Raw 64 random bits. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /**
     * Standard normal, identical to gaussian() on a stream with no
     * cached spare, but without computing or storing the pair's
     * second half. Only valid on a stream whose spare cache is empty
     * and that will never draw another gaussian afterwards (throwaway
     * hashed streams, e.g. VariationMap's per-cell streams).
     */
    double gaussianNoSpare();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /** Lognormal: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Beta(a, b) via two gamma draws. */
    double beta(double a, double b);

    /** Gamma(shape k, scale 1) via Marsaglia-Tsang. */
    double gamma(double k);

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /**
     * Fill @p dst with draws identical to dst[i] = gaussian(mean,
     * sigma) in index order (stream-equivalent batching).
     */
    void fillGaussian(std::span<double> dst, double mean,
                      double sigma);

    /**
     * Fill @p dst with Bernoulli draws identical to dst[i] =
     * chance(p) ? 1 : 0 in index order.
     */
    void fillChance(std::span<std::uint8_t> dst, double p);

    /**
     * Advance the stream exactly as @p n gaussian() draws would -
     * same next() consumption, same spare-cache hand-off to later
     * draws - without computing the discarded values.
     */
    void skipGaussians(std::size_t n);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** First uniform of a Box-Muller pair (rejects exact zero). */
    double drawU1()
    {
        double u1;
        do {
            u1 = uniform();
        } while (u1 <= 0.0);
        return u1;
    }

    /** Compute the deferred spare of a pair skipped lazily. */
    double materializeSpare();

    std::uint64_t s_[4];
    double spare_;     //!< eager spare value (valid when !spareLazy_)
    double spareU1_;   //!< uniforms of a lazily skipped pair
    double spareU2_;
    bool hasSpare_;
    bool spareLazy_;
};

/**
 * Factory producing independent, reproducible Rng streams from
 * hierarchical integer tags.
 */
class RngFactory
{
  public:
    explicit RngFactory(std::uint64_t root_seed) : seed_(root_seed) {}

    /** Derive a sub-factory for a component (e.g. a bank). */
    RngFactory sub(std::uint64_t tag) const
    {
        return RngFactory(mixSeed(seed_, tag));
    }

    /** Materialize a stream for a leaf entity. */
    Rng stream(std::uint64_t tag) const { return Rng(mixSeed(seed_, tag)); }

    /** Root seed of this factory. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_RNG_HH
