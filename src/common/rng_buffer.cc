#include "common/rng_buffer.hh"

namespace fracdram
{

std::span<const double>
RngBuffer::gaussian(Rng &rng, std::size_t n, double mean, double sigma)
{
    if (gauss_.size() < n)
        gauss_.resize(n);
    const std::span<double> dst(gauss_.data(), n);
    rng.fillGaussian(dst, mean, sigma);
    return dst;
}

std::span<const std::uint8_t>
RngBuffer::chance(Rng &rng, std::size_t n, double p)
{
    if (coins_.size() < n)
        coins_.resize(n);
    const std::span<std::uint8_t> dst(coins_.data(), n);
    rng.fillChance(dst, p);
    return dst;
}

} // namespace fracdram
