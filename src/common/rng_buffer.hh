/**
 * @file
 * Reusable scratch storage for batched RNG draws.
 *
 * The columnar kernels consume row-wide spans of gaussians and
 * Bernoulli coins on every activation; allocating those arrays per
 * call would put the allocator back on the hot path the batching just
 * removed. An RngBuffer owns grow-only arrays and hands out spans
 * filled through Rng::fillGaussian / Rng::fillChance, which are
 * stream-equivalent to the scalar draw loops (see DESIGN.md,
 * "Columnar kernels").
 *
 * One RngBuffer per Bank (or per single-threaded consumer): the spans
 * alias the buffer's storage and are invalidated by the next fill of
 * the same kind.
 */

#ifndef FRACDRAM_COMMON_RNG_BUFFER_HH
#define FRACDRAM_COMMON_RNG_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/rng.hh"
#include "common/simd/aligned.hh"

namespace fracdram
{

/**
 * Grow-only scratch arrays for row-wide RNG draws.
 */
class RngBuffer
{
  public:
    /**
     * Draw @p n gaussians from @p rng, identical to n scalar
     * gaussian(mean, sigma) calls in order.
     * @return span valid until the next gaussian() fill
     */
    std::span<const double> gaussian(Rng &rng, std::size_t n,
                                     double mean, double sigma);

    /**
     * Draw @p n Bernoulli coins from @p rng, identical to n scalar
     * chance(p) calls in order (1 = success).
     * @return span valid until the next chance() fill
     */
    std::span<const std::uint8_t> chance(Rng &rng, std::size_t n,
                                         double p);

  private:
    // 64-byte aligned: these spans feed the SIMD kernels directly.
    simd::AlignedVector<double> gauss_;
    simd::AlignedVector<std::uint8_t> coins_;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_RNG_BUFFER_HH
