#include "common/sha256.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/sha256_compress.hh"
#include "common/simd/simd.hh"

namespace fracdram
{

namespace sha256_detail
{

const std::uint32_t kSha256Round[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

namespace
{

inline std::uint32_t
rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

void
compressScalar(std::uint32_t state[8], const std::uint8_t *block)
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t{block[4 * i]} << 24) |
               (std::uint32_t{block[4 * i + 1]} << 16) |
               (std::uint32_t{block[4 * i + 2]} << 8) |
               std::uint32_t{block[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^
                                 (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^
                                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kSha256Round[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

CompressFn
activeCompress()
{
#if FRACDRAM_HAVE_SHANI
    static const CompressFn fn =
        simd::shaNiActive() ? compressShani : compressScalar;
    return fn;
#else
    return compressScalar;
#endif
}

} // namespace sha256_detail

namespace
{

constexpr std::uint32_t kSha256Iv[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

} // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{
}

void
Sha256::processBlock(const std::uint8_t *block)
{
    sha256_detail::activeCompress()(state_.data(), block);
}

void
Sha256::hashSingleBlocks(const std::uint8_t *blocks, std::size_t n,
                         Digest *out)
{
    std::size_t i = 0;
#if FRACDRAM_HAVE_AVX2
    // Independent messages: eight at a time through the transposed
    // AVX2 schedule (worth more than SHA-NI's serial 8x).
    if (simd::activeIsa() >= simd::Isa::Avx2)
        for (; i + 8 <= n; i += 8)
            sha256_detail::hashSingleBlocks8Avx2(blocks + 64 * i,
                                                 out[i].data());
#endif
    const auto compress = sha256_detail::activeCompress();
    for (; i < n; ++i) {
        std::uint32_t st[8];
        std::memcpy(st, kSha256Iv, sizeof(st));
        compress(st, blocks + 64 * i);
        for (int s = 0; s < 8; ++s) {
            out[i][4 * s] = static_cast<std::uint8_t>(st[s] >> 24);
            out[i][4 * s + 1] =
                static_cast<std::uint8_t>(st[s] >> 16);
            out[i][4 * s + 2] = static_cast<std::uint8_t>(st[s] >> 8);
            out[i][4 * s + 3] = static_cast<std::uint8_t>(st[s]);
        }
    }
}

void
Sha256::update(const std::uint8_t *data, std::size_t len)
{
    totalBytes_ += len;
    while (len > 0) {
        const std::size_t take =
            std::min(len, buffer_.size() - bufferLen_);
        std::memcpy(buffer_.data() + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == buffer_.size()) {
            processBlock(buffer_.data());
            bufferLen_ = 0;
        }
    }
}

void
Sha256::update(const std::vector<std::uint8_t> &data)
{
    update(data.data(), data.size());
}

Sha256::Digest
Sha256::finish()
{
    const std::uint64_t bit_len = totalBytes_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass the totalBytes_ accounting for the length field itself.
    std::memcpy(buffer_.data() + bufferLen_, len_bytes, 8);
    processBlock(buffer_.data());

    Digest out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

Sha256::Digest
Sha256::hash(const std::uint8_t *data, std::size_t len)
{
    Sha256 h;
    h.update(data, len);
    return h.finish();
}

void
Sha256::updateBits(const BitVector &bits)
{
    // Bits past size() are zero by BitVector invariant, so the last
    // partial byte comes out zero-padded exactly like the bit-by-bit
    // packing this replaces.
    const std::size_t nbytes = (bits.size() + 7) / 8;
    const std::uint64_t *w = bits.words();
    std::uint8_t chunk[64];
    std::size_t i = 0;
    while (i < nbytes) {
        const std::size_t lim =
            nbytes - i < sizeof(chunk) ? nbytes - i : sizeof(chunk);
        for (std::size_t b = 0; b < lim; ++b)
            chunk[b] = static_cast<std::uint8_t>(
                w[(i + b) / 8] >> (((i + b) % 8) * 8));
        update(chunk, lim);
        i += lim;
    }
}

Sha256::Digest
Sha256::hashBits(const BitVector &bits)
{
    Sha256 h;
    h.updateBits(bits);
    return h.finish();
}

std::string
Sha256::toHex(const Digest &digest)
{
    std::string out;
    for (const auto b : digest)
        out += strprintf("%02x", b);
    return out;
}

} // namespace fracdram
