/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch. Used as the
 * cryptographic conditioner of the QUAC-style TRNG - the same role
 * SHA-256 plays in the original QUAC-TRNG design.
 */

#ifndef FRACDRAM_COMMON_SHA256_HH
#define FRACDRAM_COMMON_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hh"

namespace fracdram
{

/**
 * Incremental SHA-256.
 */
class Sha256
{
  public:
    using Digest = std::array<std::uint8_t, 32>;

    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb a byte vector. */
    void update(const std::vector<std::uint8_t> &data);

    /**
     * Absorb a bit vector as its packed byte image (bit i -> byte
     * i/8, position i%8; the tail byte zero-padded). Identical to
     * packing the bits into a byte array and calling update, but
     * emitted word-wise from the BitVector's backing storage.
     */
    void updateBits(const BitVector &bits);

    /** Finalize and return the digest (object becomes unusable). */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const std::uint8_t *data, std::size_t len);

    /**
     * Hash @p n independent 64-byte blocks, each a complete
     * pre-padded final block (message, 0x80, zero pad, big-endian
     * bit length), into @p out[0..n). Equivalent to running each
     * block through one compress from the IV - which is exactly what
     * Sha256().update(msg).finish() does for messages of at most 55
     * bytes - but dispatched to the multi-way SIMD tier when one is
     * active. The DRBG's counter-mode blocks all have this shape.
     */
    static void hashSingleBlocks(const std::uint8_t *blocks,
                                 std::size_t n, Digest *out);

    /** One-shot over a bit vector (packed little-endian per word). */
    static Digest hashBits(const BitVector &bits);

    /** Hex rendering of a digest (for tests and logs). */
    static std::string toHex(const Digest &digest);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t totalBytes_ = 0;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferLen_ = 0;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_SHA256_HH
