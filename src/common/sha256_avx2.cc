/**
 * @file
 * 8-way transposed SHA-256 for independent single-block messages
 * (sha256_detail::hashSingleBlocks8Avx2). Lane j of every vector
 * carries message j's state, so the scalar round structure runs
 * verbatim on epi32 vectors - eight full hashes for one pass of the
 * 64 rounds. Used by the DRBG, whose counter-mode blocks are all
 * independent 40-byte messages pre-padded into one final block.
 *
 * Integer-only: bit-exact vs the scalar rounds by construction.
 * Compiled with -mavx2; reached only when simd::activeIsa() >= Avx2.
 */

#include <immintrin.h>

#include "common/sha256_compress.hh"

namespace fracdram::sha256_detail
{

namespace
{

inline __m256i
rotr32(__m256i x, int n)
{
    return _mm256_or_si256(_mm256_srli_epi32(x, n),
                           _mm256_slli_epi32(x, 32 - n));
}

/** Message word i of block j, big-endian. */
inline std::uint32_t
word(const std::uint8_t *blocks, int j, int i)
{
    const std::uint8_t *p = blocks + 64 * j + 4 * i;
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

} // namespace

void
hashSingleBlocks8Avx2(const std::uint8_t *blocks,
                      std::uint8_t *digests)
{
    // Transposed message schedule: w[i] holds word i of all eight
    // blocks, one per 32-bit lane.
    __m256i w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = _mm256_set_epi32(
            static_cast<int>(word(blocks, 7, i)),
            static_cast<int>(word(blocks, 6, i)),
            static_cast<int>(word(blocks, 5, i)),
            static_cast<int>(word(blocks, 4, i)),
            static_cast<int>(word(blocks, 3, i)),
            static_cast<int>(word(blocks, 2, i)),
            static_cast<int>(word(blocks, 1, i)),
            static_cast<int>(word(blocks, 0, i)));
    for (int i = 16; i < 64; ++i) {
        const __m256i w15 = w[i - 15];
        const __m256i w2 = w[i - 2];
        const __m256i s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(w15, 7), rotr32(w15, 18)),
            _mm256_srli_epi32(w15, 3));
        const __m256i s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(w2, 17), rotr32(w2, 19)),
            _mm256_srli_epi32(w2, 10));
        w[i] = _mm256_add_epi32(
            _mm256_add_epi32(w[i - 16], s0),
            _mm256_add_epi32(w[i - 7], s1));
    }

    __m256i a = _mm256_set1_epi32(0x6a09e667);
    __m256i b = _mm256_set1_epi32(static_cast<int>(0xbb67ae85));
    __m256i c = _mm256_set1_epi32(0x3c6ef372);
    __m256i d = _mm256_set1_epi32(static_cast<int>(0xa54ff53a));
    __m256i e = _mm256_set1_epi32(0x510e527f);
    __m256i f = _mm256_set1_epi32(static_cast<int>(0x9b05688c));
    __m256i g = _mm256_set1_epi32(0x1f83d9ab);
    __m256i h = _mm256_set1_epi32(0x5be0cd19);

    for (int i = 0; i < 64; ++i) {
        const __m256i s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(e, 6), rotr32(e, 11)),
            rotr32(e, 25));
        const __m256i ch = _mm256_xor_si256(
            _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
        const __m256i t1 = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_add_epi32(h, s1), ch),
            _mm256_add_epi32(
                _mm256_set1_epi32(
                    static_cast<int>(kSha256Round[i])),
                w[i]));
        const __m256i s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr32(a, 2), rotr32(a, 13)),
            rotr32(a, 22));
        const __m256i maj = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_and_si256(a, b),
                             _mm256_and_si256(a, c)),
            _mm256_and_si256(b, c));
        const __m256i t2 = _mm256_add_epi32(s0, maj);
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, t1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(t1, t2);
    }

    const __m256i st[8] = {
        _mm256_add_epi32(a, _mm256_set1_epi32(0x6a09e667)),
        _mm256_add_epi32(
            b, _mm256_set1_epi32(static_cast<int>(0xbb67ae85))),
        _mm256_add_epi32(c, _mm256_set1_epi32(0x3c6ef372)),
        _mm256_add_epi32(
            d, _mm256_set1_epi32(static_cast<int>(0xa54ff53a))),
        _mm256_add_epi32(e, _mm256_set1_epi32(0x510e527f)),
        _mm256_add_epi32(
            f, _mm256_set1_epi32(static_cast<int>(0x9b05688c))),
        _mm256_add_epi32(g, _mm256_set1_epi32(0x1f83d9ab)),
        _mm256_add_epi32(h, _mm256_set1_epi32(0x5be0cd19)),
    };

    // Un-transpose: digest j = big-endian state words, lane j.
    alignas(32) std::uint32_t lanes[8][8];
    for (int s = 0; s < 8; ++s)
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes[s]),
                           st[s]);
    for (int j = 0; j < 8; ++j) {
        std::uint8_t *out = digests + 32 * j;
        for (int s = 0; s < 8; ++s) {
            const std::uint32_t v = lanes[s][j];
            out[4 * s] = static_cast<std::uint8_t>(v >> 24);
            out[4 * s + 1] = static_cast<std::uint8_t>(v >> 16);
            out[4 * s + 2] = static_cast<std::uint8_t>(v >> 8);
            out[4 * s + 3] = static_cast<std::uint8_t>(v);
        }
    }
}

} // namespace fracdram::sha256_detail
