/**
 * @file
 * Internal SHA-256 compression tiers behind common/sha256.hh.
 *
 * Three implementations of the FIPS 180-4 compression function live
 * in separate TUs: the portable scalar rounds (sha256.cc), a SHA-NI
 * single-stream compress (sha256_shani.cc), and an 8-way transposed
 * AVX2 hash of independent pre-padded single blocks (sha256_avx2.cc,
 * used by the DRBG whose counter-mode blocks are all 40-byte messages
 * hashed from the IV). All are integer-only, so tier selection is
 * trivially bit-exact; selection follows simd::activeIsa() /
 * simd::shaNiActive().
 *
 * Internal to common/ and the SHA equivalence tests; everything else
 * uses the Sha256 class.
 */

#ifndef FRACDRAM_COMMON_SHA256_COMPRESS_HH
#define FRACDRAM_COMMON_SHA256_COMPRESS_HH

#include <cstddef>
#include <cstdint>

namespace fracdram::sha256_detail
{

/** FIPS 180-4 round constants, shared by every tier. */
extern const std::uint32_t kSha256Round[64];

/** One 64-byte block through the compression function. */
using CompressFn = void (*)(std::uint32_t state[8],
                            const std::uint8_t *block);

/** Portable reference rounds (always compiled). */
void compressScalar(std::uint32_t state[8], const std::uint8_t *block);

#if FRACDRAM_HAVE_SHANI
/** SHA-NI compress (sha256_shani.cc). */
void compressShani(std::uint32_t state[8], const std::uint8_t *block);
#endif

#if FRACDRAM_HAVE_AVX2
/**
 * Hash eight independent pre-padded 64-byte final blocks from the
 * SHA-256 IV in one transposed pass: @p digests receives eight
 * big-endian 32-byte digests. (sha256_avx2.cc)
 */
void hashSingleBlocks8Avx2(const std::uint8_t *blocks,
                           std::uint8_t *digests);
#endif

/**
 * The single-stream compress the process resolved to (SHA-NI when
 * hardware, build, and FRACDRAM_ISA all allow it; scalar otherwise).
 */
CompressFn activeCompress();

} // namespace fracdram::sha256_detail

#endif // FRACDRAM_COMMON_SHA256_COMPRESS_HH
