/**
 * @file
 * SHA-NI tier of the SHA-256 compression function. One sha256rnds2
 * pair retires four rounds, with sha256msg1/msg2 computing the
 * message schedule in-register; ~5-8x the scalar rounds on a single
 * stream. Compiled with -msha -msse4.1 and reached only through
 * sha256_detail::activeCompress() when cpuid reports SHA-NI (and
 * FRACDRAM_ISA is not forcing scalar).
 *
 * State layout follows the instruction's convention: STATE0 = ABEF,
 * STATE1 = CDGH (high lane first), permuted on entry/exit from the
 * linear a..h array. Integer-only, so bit-exactness vs the scalar
 * rounds is structural.
 */

#include <immintrin.h>

#include "common/sha256_compress.hh"

namespace fracdram::sha256_detail
{

void
compressShani(std::uint32_t state[8], const std::uint8_t *block)
{
    // Byte shuffle turning each little-endian 32-bit load into the
    // big-endian message word SHA-256 expects.
    const __m128i kBswap = _mm_set_epi64x(
        static_cast<long long>(0x0c0d0e0f08090a0bULL),
        static_cast<long long>(0x0405060700010203ULL));

    __m128i tmp =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state));
    __m128i state1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(state + 4));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

    const __m128i save0 = state0;
    const __m128i save1 = state1;

    // m[] rotates through the last 16 message words, four per slot.
    __m128i m[4];
    for (int g = 0; g < 16; ++g) {
        __m128i msg;
        if (g < 4) {
            m[g] = _mm_shuffle_epi8(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(block + 16 * g)),
                kBswap);
            msg = m[g];
        } else {
            // W[4g..4g+3] from W[4g-16..] (oldest slot, overwritten),
            // W[4g-12..], W[4g-8..], W[4g-4..].
            __m128i &m0 = m[g & 3];
            const __m128i m1 = m[(g + 1) & 3];
            const __m128i m2 = m[(g + 2) & 3];
            const __m128i m3 = m[(g + 3) & 3];
            __m128i t = _mm_sha256msg1_epu32(m0, m1);
            t = _mm_add_epi32(t, _mm_alignr_epi8(m3, m2, 4));
            m0 = _mm_sha256msg2_epu32(t, m3);
            msg = m0;
        }
        __m128i wk = _mm_add_epi32(
            msg, _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                     kSha256Round + 4 * g)));
        state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
        wk = _mm_shuffle_epi32(wk, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);

    tmp = _mm_shuffle_epi32(state0, 0x1B);    // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);      // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);         // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state + 4), state1);
}

} // namespace fracdram::sha256_detail
