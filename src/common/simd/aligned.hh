/**
 * @file
 * Cache-line / vector-register aligned allocation for the SoA hot
 * arrays. The SIMD kernels use unaligned loads (so any pointer is
 * *correct*), but 64-byte alignment keeps every 512-bit access inside
 * one cache line and lets the hardware prefetcher see clean streams;
 * threading AlignedVector through Bank/RowStore/RngBuffer scratch
 * makes that the default for every kernel operand.
 */

#ifndef FRACDRAM_COMMON_SIMD_ALIGNED_HH
#define FRACDRAM_COMMON_SIMD_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace fracdram::simd
{

/** Minimal std::allocator drop-in with a fixed alignment. */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    static_assert((Align & (Align - 1)) == 0, "Align must be a power "
                                              "of two");
    static_assert(Align >= alignof(T), "Align below the type's own "
                                       "requirement");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** std::vector whose data() is 64-byte aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

} // namespace fracdram::simd

#endif // FRACDRAM_COMMON_SIMD_ALIGNED_HH
