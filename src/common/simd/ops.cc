#include "common/simd/ops.hh"

namespace fracdram::simd
{

namespace
{

void
uniformMapScalar(double *dst, const std::uint64_t *raw, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
}

void
chanceMapScalar(std::uint8_t *dst, const std::uint64_t *raw, double p,
                std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] =
            static_cast<double>(raw[i] >> 11) * 0x1.0p-53 < p ? 1 : 0;
}

const RawOps kScalarOps = {uniformMapScalar, chanceMapScalar};

} // namespace

#if FRACDRAM_HAVE_AVX2
const RawOps &avx2RawOps(); // ops_avx2.cc
#endif
#if FRACDRAM_HAVE_AVX512
const RawOps &avx512RawOps(); // ops_avx512.cc
#endif

const RawOps *
rawOpsForIsa(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return &kScalarOps;
    case Isa::Avx2:
#if FRACDRAM_HAVE_AVX2
        if (cpuFeatures().avx2)
            return &avx2RawOps();
#endif
        return nullptr;
    case Isa::Avx512:
#if FRACDRAM_HAVE_AVX512
        if (cpuFeatures().avx512)
            return &avx512RawOps();
#endif
        return nullptr;
    }
    return nullptr;
}

const RawOps &
rawOps()
{
    static const RawOps &ops = *rawOpsForIsa(activeIsa());
    return ops;
}

} // namespace fracdram::simd
