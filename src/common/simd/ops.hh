/**
 * @file
 * Dispatched SIMD primitives over raw 64-bit RNG outputs.
 *
 * Rng's engine (xoshiro256**) is a serial recurrence, so the draws
 * themselves cannot be vectorized without changing the stream; what
 * *can* be vectorized is the map from raw draws to distribution
 * values. Rng::fillChance / fillGaussian batch their next() calls
 * into a raw buffer and run these kernels over it.
 *
 * Bit-exactness: uniformMap reproduces Rng::uniform()'s
 * double(x >> 11) * 0x1.0p-53 exactly - x >> 11 < 2^53 is exactly
 * representable, and the 2^-53 scale only adjusts the exponent - so
 * every ISA yields the identical double, and chanceMap the identical
 * comparison result.
 */

#ifndef FRACDRAM_COMMON_SIMD_OPS_HH
#define FRACDRAM_COMMON_SIMD_OPS_HH

#include <cstddef>
#include <cstdint>

#include "common/simd/simd.hh"

namespace fracdram::simd
{

/** Per-ISA function table for the raw-draw maps. */
struct RawOps
{
    /** dst[i] = double(raw[i] >> 11) * 0x1.0p-53 (Rng::uniform). */
    void (*uniformMap)(double *dst, const std::uint64_t *raw,
                       std::size_t n);
    /** dst[i] = uniform(raw[i]) < p ? 1 : 0 (Rng::chance). */
    void (*chanceMap)(std::uint8_t *dst, const std::uint64_t *raw,
                      double p, std::size_t n);
};

/** The table for the resolved ISA (resolved once, like activeIsa). */
const RawOps &rawOps();

/**
 * Table for a specific tier, for the equivalence tests.
 * @return nullptr when the tier was not compiled or the machine
 *         cannot execute it
 */
const RawOps *rawOpsForIsa(Isa isa);

} // namespace fracdram::simd

#endif // FRACDRAM_COMMON_SIMD_OPS_HH
