/**
 * @file
 * AVX2 raw-draw maps. Compiled with -mavx2 -mbmi2; only reachable
 * when cpuid reports both (see simd.cc's tier gating).
 *
 * u64 -> double without AVX-512's vcvtuqq2pd: split v = raw >> 11
 * (< 2^53) into hi = v >> 32 (< 2^21) and lo = v & 0xffffffff, turn
 * each into a double with the 2^52 magic-number trick (exact below
 * 2^52), then hi * 2^32 + lo. Every step is exact, so the result is
 * bit-identical to the scalar static_cast.
 */

#include <immintrin.h>

#include <cstring>

#include "common/simd/ops.hh"

namespace fracdram::simd
{

namespace
{

constexpr std::int64_t kMagic = 0x4330000000000000LL; // 2^52

inline __m256d
uniform4(__m256i raw)
{
    const __m256i magic_i = _mm256_set1_epi64x(kMagic);
    const __m256d magic_d = _mm256_castsi256_pd(magic_i);
    const __m256i v = _mm256_srli_epi64(raw, 11);
    const __m256i hi = _mm256_srli_epi64(v, 32);
    const __m256i lo =
        _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffLL));
    const __m256d dhi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(hi, magic_i)), magic_d);
    const __m256d dlo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(lo, magic_i)), magic_d);
    const __m256d d = _mm256_add_pd(
        _mm256_mul_pd(dhi, _mm256_set1_pd(4294967296.0)), dlo);
    return _mm256_mul_pd(d, _mm256_set1_pd(0x1.0p-53));
}

void
uniformMapAvx2(double *dst, const std::uint64_t *raw, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(raw + i));
        _mm256_storeu_pd(dst + i, uniform4(r));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
}

void
chanceMapAvx2(std::uint8_t *dst, const std::uint64_t *raw, double p,
              std::size_t n)
{
    const __m256d pv = _mm256_set1_pd(p);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(raw + i));
        const __m256d cmp =
            _mm256_cmp_pd(uniform4(r), pv, _CMP_LT_OQ);
        const unsigned mask =
            static_cast<unsigned>(_mm256_movemask_pd(cmp));
        const std::uint32_t bytes = static_cast<std::uint32_t>(
            _pdep_u64(mask, 0x01010101ULL));
        std::memcpy(dst + i, &bytes, 4);
    }
    for (; i < n; ++i)
        dst[i] =
            static_cast<double>(raw[i] >> 11) * 0x1.0p-53 < p ? 1 : 0;
}

const RawOps kAvx2Ops = {uniformMapAvx2, chanceMapAvx2};

} // namespace

const RawOps &
avx2RawOps()
{
    return kAvx2Ops;
}

} // namespace fracdram::simd
