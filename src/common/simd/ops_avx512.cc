/**
 * @file
 * AVX-512 raw-draw maps (F/DQ/BW/VL). vcvtuqq2pd converts u64 ->
 * double with round-to-nearest, which is exact for values < 2^53 -
 * and raw >> 11 always is - so the result is bit-identical to the
 * scalar static_cast.
 */

#include <immintrin.h>

#include "common/simd/ops.hh"

namespace fracdram::simd
{

namespace
{

inline __m512d
uniform8(__m512i raw)
{
    const __m512d d =
        _mm512_cvtepu64_pd(_mm512_srli_epi64(raw, 11));
    return _mm512_mul_pd(d, _mm512_set1_pd(0x1.0p-53));
}

void
uniformMapAvx512(double *dst, const std::uint64_t *raw, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i r = _mm512_loadu_si512(raw + i);
        _mm512_storeu_pd(dst + i, uniform8(r));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
}

void
chanceMapAvx512(std::uint8_t *dst, const std::uint64_t *raw, double p,
                std::size_t n)
{
    const __m512d pv = _mm512_set1_pd(p);
    const __m128i ones = _mm_set1_epi8(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __mmask8 m0 = _mm512_cmp_pd_mask(
            uniform8(_mm512_loadu_si512(raw + i)), pv, _CMP_LT_OQ);
        const __mmask8 m1 = _mm512_cmp_pd_mask(
            uniform8(_mm512_loadu_si512(raw + i + 8)), pv,
            _CMP_LT_OQ);
        const __mmask16 m =
            static_cast<__mmask16>(m0) |
            static_cast<__mmask16>(static_cast<__mmask16>(m1) << 8);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_maskz_mov_epi8(m, ones));
    }
    for (; i < n; ++i)
        dst[i] =
            static_cast<double>(raw[i] >> 11) * 0x1.0p-53 < p ? 1 : 0;
}

const RawOps kAvx512Ops = {uniformMapAvx512, chanceMapAvx512};

} // namespace

const RawOps &
avx512RawOps()
{
    return kAvx512Ops;
}

} // namespace fracdram::simd
