#include "common/simd/simd.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "common/logging.hh"
#include "telemetry/metrics.hh"

#ifndef FRACDRAM_HAVE_AVX2
#define FRACDRAM_HAVE_AVX2 0
#endif
#ifndef FRACDRAM_HAVE_AVX512
#define FRACDRAM_HAVE_AVX512 0
#endif
#ifndef FRACDRAM_HAVE_SHANI
#define FRACDRAM_HAVE_SHANI 0
#endif

namespace fracdram::simd
{

namespace
{

#if defined(__x86_64__) || defined(__i386__)

std::uint64_t
readXcr0()
{
    std::uint32_t eax, edx;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (std::uint64_t{edx} << 32) | eax;
}

CpuFeatures
detect()
{
    CpuFeatures f;
    unsigned eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return f;
    f.shaNi = (ebx & (1u << 29)) != 0;
    if (!osxsave || !avx)
        return f;
    const std::uint64_t xcr0 = readXcr0();
    const bool ymm_os = (xcr0 & 0x6) == 0x6;   // XMM + YMM state
    const bool zmm_os = (xcr0 & 0xe6) == 0xe6; // + opmask/ZMM state
    const bool avx2 = (ebx & (1u << 5)) != 0;
    const bool bmi2 = (ebx & (1u << 8)) != 0;
    const bool avx512f = (ebx & (1u << 16)) != 0;
    const bool avx512dq = (ebx & (1u << 17)) != 0;
    const bool avx512bw = (ebx & (1u << 30)) != 0;
    const bool avx512vl = (ebx & (1u << 31)) != 0;
    // The AVX2 kernels use BMI2 (pdep) for bit<->lane conversion, so
    // the tier requires both; every AVX2 part since Haswell has BMI2.
    f.avx2 = ymm_os && avx2 && bmi2;
    f.avx512 =
        zmm_os && f.avx2 && avx512f && avx512dq && avx512bw && avx512vl;
    return f;
}

#else

CpuFeatures
detect()
{
    return CpuFeatures{};
}

#endif

/** Highest tier the build actually compiled. */
constexpr Isa
builtIsa()
{
#if FRACDRAM_HAVE_AVX512
    return Isa::Avx512;
#elif FRACDRAM_HAVE_AVX2
    return Isa::Avx2;
#else
    return Isa::Scalar;
#endif
}

std::string
describeRaw(Isa isa)
{
    const CpuFeatures &f = cpuFeatures();
    std::string hw;
    if (f.avx2)
        hw += " avx2";
    if (f.avx512)
        hw += " avx512";
    if (f.shaNi)
        hw += " sha_ni";
    if (hw.empty())
        hw = " baseline";
    std::string out = isaName(isa);
    out += " (hw:";
    out += hw;
    out += "; sha: ";
    const bool sha =
        f.shaNi && FRACDRAM_HAVE_SHANI != 0 && isa != Isa::Scalar;
    out += sha ? "sha_ni" : "scalar";
    out += ")";
    return out;
}

Isa
resolve()
{
    const CpuFeatures &f = cpuFeatures();
    Isa best = Isa::Scalar;
    if (f.avx2 && builtIsa() >= Isa::Avx2)
        best = Isa::Avx2;
    if (f.avx512 && builtIsa() >= Isa::Avx512)
        best = Isa::Avx512;

    Isa pick = best;
    const char *env = std::getenv("FRACDRAM_ISA");
    if (env != nullptr && env[0] != '\0') {
        Isa asked;
        if (!parseIsa(env, asked)) {
            warn("FRACDRAM_ISA='%s' is not scalar|avx2|avx512; "
                 "using %s",
                 env, isaName(best));
        } else if (asked > best) {
            warn("FRACDRAM_ISA=%s exceeds what this machine/build "
                 "supports; clamping to %s",
                 env, isaName(best));
        } else {
            pick = asked;
        }
    }
    debug_log("simd: resolved %s", describeRaw(pick).c_str());
    return pick;
}

/** Gauge publication shared by the resolution and publishIsaGauges. */
void
publishFor(Isa isa)
{
    auto &m = telemetry::Metrics::instance();
    telemetry::setGauge(m.gauge("simd.isa_level"),
                        static_cast<std::int64_t>(isa));
    const bool sha = cpuFeatures().shaNi && FRACDRAM_HAVE_SHANI != 0 &&
                     isa != Isa::Scalar;
    telemetry::setGauge(m.gauge("simd.sha_ni"), sha ? 1 : 0);
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = detect();
    return f;
}

Isa
activeIsa()
{
    static const Isa isa = [] {
        const Isa resolved = resolve();
        publishFor(resolved);
        return resolved;
    }();
    return isa;
}

bool
shaNiActive()
{
#if FRACDRAM_HAVE_SHANI
    return cpuFeatures().shaNi && activeIsa() != Isa::Scalar;
#else
    return false;
#endif
}

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Avx512:
        return "avx512";
    }
    return "scalar";
}

bool
parseIsa(const char *name, Isa &out)
{
    if (std::strcmp(name, "scalar") == 0)
        out = Isa::Scalar;
    else if (std::strcmp(name, "avx2") == 0)
        out = Isa::Avx2;
    else if (std::strcmp(name, "avx512") == 0)
        out = Isa::Avx512;
    else
        return false;
    return true;
}

std::string
describeIsa()
{
    return describeRaw(activeIsa());
}

void
publishIsaGauges()
{
    publishFor(activeIsa());
}

} // namespace fracdram::simd
