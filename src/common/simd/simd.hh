/**
 * @file
 * Runtime ISA selection for the SIMD kernel layer.
 *
 * Every vectorized path in the tree (sim/kernels_*.cc, the SHA-256
 * compress/multi-way TUs, the common/simd ops table) is selected
 * through one process-wide resolution: cpuid feature detection,
 * clamped by what the build compiled (FRACDRAM_HAVE_* macros) and by
 * the FRACDRAM_ISA environment override. The resolution happens once,
 * on first use, behind a function-local static - thread-safe, and
 * cheap enough that dispatch sites just call activeIsa().
 *
 * FRACDRAM_ISA=scalar|avx2|avx512 forces a tier for testing and
 * benching; asking for more than the machine (or the build) supports
 * clamps down with a warning. "scalar" disables *everything*,
 * including SHA-NI, so the fallback paths stay honestly exercised.
 *
 * Bit-exactness contract: selecting a different ISA never changes any
 * output bit. Integer paths (SHA-256) are trivially exact; the
 * floating-point kernels keep the scalar per-element expression order
 * within each lane (see DESIGN.md, "SIMD dispatch").
 */

#ifndef FRACDRAM_COMMON_SIMD_SIMD_HH
#define FRACDRAM_COMMON_SIMD_SIMD_HH

#include <cstdint>
#include <string>

namespace fracdram::simd
{

/** Vector tier of the dispatched kernels, in increasing width. */
enum class Isa : int
{
    Scalar = 0,
    Avx2 = 1,   //!< 256-bit, implies BMI2 (Haswell+)
    Avx512 = 2, //!< 512-bit, requires F+BW+DQ+VL and OS zmm state
};

/** What the silicon (and the OS) can execute, regardless of build. */
struct CpuFeatures
{
    bool avx2 = false;   //!< AVX2 + BMI2, OS ymm state enabled
    bool avx512 = false; //!< AVX-512 F/BW/DQ/VL, OS zmm state enabled
    bool shaNi = false;  //!< SHA-NI extension present
};

/** Detected hardware features (computed once). */
const CpuFeatures &cpuFeatures();

/**
 * The resolved kernel tier: min(hardware, build, FRACDRAM_ISA).
 * Resolved once on first call; set FRACDRAM_ISA before anything
 * touches a kernel (in practice: before main() does real work).
 */
Isa activeIsa();

/**
 * Whether the SHA-NI compress path is live: hardware has it, the
 * build compiled it, and FRACDRAM_ISA is not forcing scalar.
 */
bool shaNiActive();

/** "scalar" / "avx2" / "avx512". */
const char *isaName(Isa isa);

/**
 * Parse an ISA name as FRACDRAM_ISA accepts it.
 * @return false when @p name is not a known tier
 */
bool parseIsa(const char *name, Isa &out);

/**
 * One-line summary of the resolution for logs and BENCH records,
 * e.g. "avx512 (hw: avx2 avx512 sha_ni; sha: sha_ni)".
 */
std::string describeIsa();

/**
 * Register the resolved tier as telemetry gauges (simd.isa_level,
 * simd.sha_ni) so /metrics archives record which path actually ran.
 * Called automatically by the first activeIsa() resolution; safe to
 * call again (idempotent values).
 */
void publishIsaGauges();

} // namespace fracdram::simd

#endif // FRACDRAM_COMMON_SIMD_SIMD_HH
