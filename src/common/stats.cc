#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace fracdram
{

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::stderror() const
{
    if (n_ < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

double
OnlineStats::ciHalfWidth(double z) const
{
    return z * stderror();
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges))
{
    panic_if(edges_.empty(), "Histogram needs at least one edge");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        panic_if(edges_[i] <= edges_[i - 1],
                 "Histogram edges must be strictly increasing");
    }
    counts_.assign(edges_.size() + 1, 0);
}

std::size_t
Histogram::bucketOf(double x) const
{
    // First bucket holds x < edges_[0]; bucket i holds
    // edges_[i-1] <= x < edges_[i]; last bucket holds x >= edges_.back().
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    std::size_t idx =
        static_cast<std::size_t>(std::distance(edges_.begin(), it));
    if (idx > 0 && x == edges_[idx - 1]) {
        // upper_bound already placed equal values to the right; nothing
        // more to do, but keep the branch for clarity of the contract.
    }
    return idx;
}

void
Histogram::add(double x)
{
    ++counts_[bucketOf(x)];
    ++total_;
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

std::vector<double>
Histogram::pdf() const
{
    std::vector<double> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = fraction(i);
    return out;
}

void
EmpiricalCdf::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::at(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(std::distance(samples_.begin(), it)) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    panic_if(samples_.empty(), "quantile of empty CDF");
    panic_if(q < 0.0 || q > 1.0, "quantile q=%f out of [0,1]", q);
    ensureSorted();
    if (q >= 1.0)
        return samples_.back();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<double>
EmpiricalCdf::sorted() const
{
    ensureSorted();
    return samples_;
}

double
lgammaSafe(double x)
{
    return std::lgamma(x);
}

double
erfcSafe(double x)
{
    return std::erfc(x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace
{

// Continued-fraction evaluation of Q(a,x), valid for x > a + 1.
double
igamcContinuedFraction(double a, double x)
{
    const double eps = 1e-15;
    const double fpmin = std::numeric_limits<double>::min() / eps;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 1000; ++i) {
        const double an = -static_cast<double>(i) *
                          (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return std::exp(-x + a * std::log(x) - lgammaSafe(a)) * h;
}

// Series evaluation of P(a,x), valid for x <= a + 1.
double
igamSeries(double a, double x)
{
    if (x <= 0.0)
        return 0.0;
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 1000; ++i) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - lgammaSafe(a));
}

} // namespace

double
igam(double a, double x)
{
    panic_if(a <= 0.0, "igam: a must be positive");
    if (x <= 0.0)
        return 0.0;
    if (x < a + 1.0)
        return igamSeries(a, x);
    return 1.0 - igamcContinuedFraction(a, x);
}

double
igamc(double a, double x)
{
    panic_if(a <= 0.0, "igamc: a must be positive");
    if (x <= 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - igamSeries(a, x);
    return igamcContinuedFraction(a, x);
}

} // namespace fracdram
