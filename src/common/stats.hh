/**
 * @file
 * Small statistics toolkit used by the experiment harnesses: streaming
 * moments, fixed-bucket histograms, empirical CDFs, and confidence
 * intervals.
 */

#ifndef FRACDRAM_COMMON_STATS_HH
#define FRACDRAM_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace fracdram
{

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 */
class OnlineStats
{
  public:
    OnlineStats() = default;

    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Number of samples seen. */
    std::size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean. */
    double stderror() const;

    /**
     * Half-width of the normal-approximation confidence interval.
     * @param z z-score (1.96 for 95%).
     */
    double ciHalfWidth(double z = 1.96) const;

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * Histogram with caller-supplied bucket edges.
 *
 * A sample x lands in bucket i when edge[i] <= x < edge[i+1]; values
 * below the first edge go to bucket 0 underflow, values at or above the
 * last edge to the overflow bucket.
 */
class Histogram
{
  public:
    /** @param edges strictly increasing internal bucket edges. */
    explicit Histogram(std::vector<double> edges);

    /** Add one sample. */
    void add(double x);

    /** Bucket index a value would land in (including under/overflow). */
    std::size_t bucketOf(double x) const;

    /** Number of buckets (edges.size() + 1). */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Raw count in bucket i. */
    std::size_t count(std::size_t i) const { return counts_.at(i); }

    /** Total samples. */
    std::size_t total() const { return total_; }

    /** Bucket count as a fraction of the total (a PDF column). */
    double fraction(std::size_t i) const;

    /** All fractions, one per bucket. */
    std::vector<double> pdf() const;

  private:
    std::vector<double> edges_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Empirical CDF over a stored sample set.
 */
class EmpiricalCdf
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Fraction of samples <= x. */
    double at(double x) const;

    /** q-th quantile (0 <= q <= 1) of the sample set. */
    double quantile(double q) const;

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Sorted copy of the samples. */
    std::vector<double> sorted() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/** Regularized upper incomplete gamma Q(a, x); used by the NIST tests. */
double igamc(double a, double x);

/** Regularized lower incomplete gamma P(a, x). */
double igam(double a, double x);

/** Complementary error function wrapper (for NIST p-values). */
double erfcSafe(double x);

/** Natural log of the gamma function. */
double lgammaSafe(double x);

/** Standard normal CDF. */
double normalCdf(double x);

} // namespace fracdram

#endif // FRACDRAM_COMMON_STATS_HH
