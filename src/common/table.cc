#include "common/table.hh"

#include <cstdio>

#include "common/logging.hh"

namespace fracdram
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "TextTable row width %zu != header width %zu", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int prec)
{
    return strprintf("%.*f", prec, v);
}

std::string
TextTable::pct(double fraction, int prec)
{
    return strprintf("%.*f%%", prec, fraction * 100.0);
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(width[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                line += "  ";
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace fracdram
