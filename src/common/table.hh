/**
 * @file
 * Plain-text table printer used by the bench binaries to emit the
 * paper's tables and figure series as aligned rows.
 */

#ifndef FRACDRAM_COMMON_TABLE_HH
#define FRACDRAM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace fracdram
{

/**
 * Column-aligned text table with a header row.
 */
class TextTable
{
  public:
    /** @param headers column titles. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 3);

    /** Convenience: format a percentage with @p prec decimals. */
    static std::string pct(double fraction, int prec = 1);

    /** Render the table with padding and a separator line. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fracdram

#endif // FRACDRAM_COMMON_TABLE_HH
