/**
 * @file
 * Shared scalar types used across the FracDRAM libraries.
 */

#ifndef FRACDRAM_COMMON_TYPES_HH
#define FRACDRAM_COMMON_TYPES_HH

#include <cstdint>

namespace fracdram
{

/** Cell / bit-line voltage in volts. */
using Volt = double;

/** Wall-clock time in seconds (retention experiments). */
using Seconds = double;

/** Memory-controller cycle count. One cycle is 2.5 ns (SoftMC @400MHz). */
using Cycles = std::uint64_t;

/** Row index inside a bank. */
using RowAddr = std::uint32_t;

/** Column (bit) index inside a row. */
using ColAddr = std::uint32_t;

/** Bank index inside a chip. */
using BankAddr = std::uint32_t;

/** Duration of one SoftMC memory cycle in nanoseconds. */
inline constexpr double memCycleNs = 2.5;

/** Nominal DDR3 supply voltage in volts. */
inline constexpr Volt nominalVdd = 1.5;

} // namespace fracdram

#endif // FRACDRAM_COMMON_TYPES_HH
