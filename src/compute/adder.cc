#include "compute/adder.hh"

#include "common/logging.hh"

namespace fracdram::compute
{

PlanarVector::PlanarVector(BitwiseEngine &engine, std::size_t width)
    : engine_(&engine)
{
    panic_if(width == 0, "planar vector needs at least one bit");
    planes_.reserve(width);
    for (std::size_t i = 0; i < width; ++i)
        planes_.push_back(engine.alloc());
}

PlanarVector::PlanarVector(BitwiseEngine &engine,
                           std::vector<Value> planes)
    : engine_(&engine), planes_(std::move(planes))
{
    panic_if(planes_.empty(), "planar vector needs at least one bit");
}

void
PlanarVector::store(const std::vector<std::uint64_t> &values)
{
    const std::size_t lanes = engine_->lanes();
    panic_if(values.size() > lanes, "more values (%zu) than lanes "
                                    "(%zu)",
             values.size(), lanes);
    for (std::size_t i = 0; i < planes_.size(); ++i) {
        BitVector bits(lanes);
        for (std::size_t l = 0; l < values.size(); ++l)
            bits.set(l, (values[l] >> i) & 1);
        engine_->write(planes_[i], bits);
    }
}

std::vector<std::uint64_t>
PlanarVector::load()
{
    const std::size_t lanes = engine_->lanes();
    std::vector<std::uint64_t> out(lanes, 0);
    for (std::size_t i = 0; i < planes_.size(); ++i) {
        const BitVector bits = engine_->read(planes_[i]);
        for (std::size_t l = 0; l < lanes; ++l) {
            if (bits.get(l))
                out[l] |= std::uint64_t{1} << i;
        }
    }
    return out;
}

void
PlanarVector::release()
{
    for (const auto &p : planes_)
        engine_->release(p);
    planes_.clear();
}

PlanarVector
addVectors(BitwiseEngine &engine, const PlanarVector &a,
           const PlanarVector &b)
{
    panic_if(a.width() != b.width(),
             "operand widths differ (%zu vs %zu)", a.width(),
             b.width());
    const std::size_t width = a.width();
    std::vector<Value> sum_planes;
    sum_planes.reserve(width + 1);

    // Bit 0: half adder.
    Value carry = engine.opAnd(a.planes()[0], b.planes()[0]);
    sum_planes.push_back(
        engine.opXor(a.planes()[0], b.planes()[0]));

    // Bits 1..width-1: full adders. The carry is ONE in-DRAM MAJ3.
    for (std::size_t i = 1; i < width; ++i) {
        const Value ab = engine.opXor(a.planes()[i], b.planes()[i]);
        sum_planes.push_back(engine.opXor(ab, carry));
        Value next_carry =
            engine.opMaj(a.planes()[i], b.planes()[i], carry);
        engine.release(ab);
        engine.release(carry);
        carry = next_carry;
    }
    sum_planes.push_back(carry); // carry out
    return PlanarVector(engine, std::move(sum_planes));
}

PlanarVector
shiftLeft(BitwiseEngine &engine, const PlanarVector &a,
          std::size_t amount)
{
    std::vector<Value> planes;
    planes.reserve(a.width() + amount);
    const BitVector zeros(engine.lanes(), false);
    for (std::size_t i = 0; i < amount; ++i) {
        const Value z = engine.alloc();
        engine.write(z, zeros);
        planes.push_back(z);
    }
    for (const auto &p : a.planes())
        planes.push_back(engine.opCopy(p));
    return PlanarVector(engine, std::move(planes));
}

PlanarVector
mulConstant(BitwiseEngine &engine, const PlanarVector &a,
            std::uint64_t k)
{
    panic_if(k == 0, "multiply by zero: just allocate zeros");
    // Decompose k into set bits; accumulate shifted copies.
    std::vector<std::size_t> shifts;
    for (std::size_t bit = 0; bit < 64; ++bit)
        if ((k >> bit) & 1)
            shifts.push_back(bit);

    PlanarVector acc = shiftLeft(engine, a, shifts[0]);
    for (std::size_t i = 1; i < shifts.size(); ++i) {
        PlanarVector term = shiftLeft(engine, a, shifts[i]);
        // Align widths by zero-extending the narrower operand.
        while (term.width() < acc.width()) {
            const Value z = engine.alloc();
            engine.write(z, BitVector(engine.lanes(), false));
            auto planes = term.planes();
            planes.push_back(z);
            term = PlanarVector(engine, std::move(planes));
        }
        while (acc.width() < term.width()) {
            const Value z = engine.alloc();
            engine.write(z, BitVector(engine.lanes(), false));
            auto planes = acc.planes();
            planes.push_back(z);
            acc = PlanarVector(engine, std::move(planes));
        }
        PlanarVector sum = addVectors(engine, acc, term);
        acc.release();
        term.release();
        acc = std::move(sum);
    }
    return acc;
}

} // namespace fracdram::compute
