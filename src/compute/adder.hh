/**
 * @file
 * Bulk vector addition in DRAM: thousands of independent adders, one
 * per column, built from the in-memory majority.
 *
 * Numbers are stored bit-planar (plane i holds bit i of every lane).
 * A ripple-carry step per bit position:
 *
 *   carry_out = MAJ(a_i, b_i, carry)   <- a single in-DRAM MAJ3!
 *   sum_i     = a_i XOR b_i XOR carry
 *
 * The majority operation the paper characterizes *is* the full-adder
 * carry, which is why in-memory MAJ3/F-MAJ enables arithmetic, not
 * just AND/OR.
 */

#ifndef FRACDRAM_COMPUTE_ADDER_HH
#define FRACDRAM_COMPUTE_ADDER_HH

#include <cstdint>
#include <vector>

#include "compute/engine.hh"

namespace fracdram::compute
{

/**
 * A vector of unsigned integers stored bit-planar in DRAM.
 */
class PlanarVector
{
  public:
    /**
     * Allocate a @p width-bit planar vector on the engine.
     */
    PlanarVector(BitwiseEngine &engine, std::size_t width);

    /** Adopt existing plane handles (used by the in-DRAM operators). */
    PlanarVector(BitwiseEngine &engine, std::vector<Value> planes);

    /** Store host integers (one per lane; truncated to the width). */
    void store(const std::vector<std::uint64_t> &values);

    /** Read the lanes back as integers. */
    std::vector<std::uint64_t> load();

    /** Bit planes, LSB first. */
    const std::vector<Value> &planes() const { return planes_; }

    std::size_t width() const { return planes_.size(); }

    /** Release all planes back to the engine. */
    void release();

  private:
    BitwiseEngine *engine_;
    std::vector<Value> planes_;
};

/**
 * Bulk add: c = a + b over every lane, fully in-DRAM.
 *
 * @return a fresh planar vector of width max(a,b)+1 (carry out).
 */
PlanarVector addVectors(BitwiseEngine &engine, const PlanarVector &a,
                        const PlanarVector &b);

/**
 * Shift every lane left by @p amount bits (multiply by 2^amount).
 * Bit-planar layout makes this cheap: the planes are copied up and
 * the low planes are filled with in-DRAM zeros.
 */
PlanarVector shiftLeft(BitwiseEngine &engine, const PlanarVector &a,
                       std::size_t amount);

/**
 * Multiply every lane by a small unsigned constant via shift-and-add
 * (one in-DRAM addition per set bit of @p k beyond the first).
 */
PlanarVector mulConstant(BitwiseEngine &engine, const PlanarVector &a,
                         std::uint64_t k);

} // namespace fracdram::compute

#endif // FRACDRAM_COMPUTE_ADDER_HH
