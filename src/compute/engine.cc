#include "compute/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/maj3.hh"
#include "core/multi_row.hh"
#include "core/rowclone.hh"

namespace fracdram::compute
{

BitwiseEngine::BitwiseEngine(softmc::MemoryController &mc,
                             BankAddr bank)
    : mc_(mc), bank_(bank)
{
    const auto &profile = mc.chip().profile();
    useThreeRow_ = profile.supportsThreeRow;
    fatal_if(!useThreeRow_ &&
                 !(profile.supportsFourRow && profile.supportsFrac),
             "group %s supports no in-memory majority",
             sim::groupName(profile.group).c_str());

    if (useThreeRow_) {
        // ComputeDRAM's rows: ACT(1)-PRE-ACT(2) opens {0,1,2}.
        computeRows_ = {0, 1, 2};
    } else {
        fmajConfig_ = core::bestFMajConfig(profile.group);
        computeRows_ = core::fmajOperandRows(mc.chip(), fmajConfig_);
    }

    // Home rows live above the decoder's glitch window so staging
    // copies never open extra rows. Reserve two constant rows first.
    const RowAddr rows = mc.chip().dramParams().rowsPerBank();
    fatal_if(rows < 24, "bank too small for the compute engine");
    constZeroRow_ = 16;
    constOneRow_ = 17;
    mc_.fillRowVoltage(bank_, constZeroRow_, false);
    mc_.fillRowVoltage(bank_, constOneRow_, true);
    for (RowAddr r = 18; r < rows; ++r)
        freeRows_.push_back(r);
    // Allocate low rows first.
    std::reverse(freeRows_.begin(), freeRows_.end());
}

std::size_t
BitwiseEngine::lanes() const
{
    return mc_.chip().dramParams().colsPerRow;
}

RowAddr
BitwiseEngine::allocRow()
{
    fatal_if(freeRows_.empty(), "out of home rows");
    const RowAddr r = freeRows_.back();
    freeRows_.pop_back();
    return r;
}

Value
BitwiseEngine::alloc()
{
    Value v;
    v.pos = allocRow();
    v.neg = allocRow();
    return v;
}

void
BitwiseEngine::release(const Value &v)
{
    freeRows_.push_back(v.pos);
    freeRows_.push_back(v.neg);
}

void
BitwiseEngine::write(const Value &v, const BitVector &bits)
{
    BitVector inverted(bits.size(), true);
    inverted = inverted ^ bits;
    mc_.writeRowVoltage(bank_, v.pos, bits);
    mc_.writeRowVoltage(bank_, v.neg, inverted);
}

BitVector
BitwiseEngine::read(const Value &v)
{
    return mc_.readRowVoltage(bank_, v.pos);
}

void
BitwiseEngine::majIntoRow(RowAddr a, RowAddr b, RowAddr c, RowAddr out)
{
    ++majOps_;
    if (useThreeRow_) {
        core::rowCopy(mc_, bank_, a, computeRows_[0]);
        core::rowCopy(mc_, bank_, b, computeRows_[1]);
        core::rowCopy(mc_, bank_, c, computeRows_[2]);
        core::maj3InPlace(mc_, bank_, 1, 2);
        core::rowCopy(mc_, bank_, computeRows_[0], out);
        return;
    }
    core::fmajPrepareFracRow(mc_, bank_, fmajConfig_);
    core::rowCopy(mc_, bank_, a, computeRows_[0]);
    core::rowCopy(mc_, bank_, b, computeRows_[1]);
    core::rowCopy(mc_, bank_, c, computeRows_[2]);
    core::multiRowActivate(mc_, bank_, fmajConfig_.actFirst,
                           fmajConfig_.actSecond);
    core::rowCopy(mc_, bank_, computeRows_[0], out);
}

Value
BitwiseEngine::opMaj(const Value &a, const Value &b, const Value &c)
{
    Value out = alloc();
    // Majority is self-dual: MAJ(~a,~b,~c) = ~MAJ(a,b,c).
    majIntoRow(a.pos, b.pos, c.pos, out.pos);
    majIntoRow(a.neg, b.neg, c.neg, out.neg);
    return out;
}

Value
BitwiseEngine::opAnd(const Value &a, const Value &b)
{
    Value out = alloc();
    majIntoRow(a.pos, b.pos, constZeroRow_, out.pos);
    // De Morgan: ~(a & b) = ~a | ~b = MAJ(~a, ~b, 1).
    majIntoRow(a.neg, b.neg, constOneRow_, out.neg);
    return out;
}

Value
BitwiseEngine::opOr(const Value &a, const Value &b)
{
    Value out = alloc();
    majIntoRow(a.pos, b.pos, constOneRow_, out.pos);
    majIntoRow(a.neg, b.neg, constZeroRow_, out.neg);
    return out;
}

Value
BitwiseEngine::opNot(const Value &a) const
{
    return Value{a.neg, a.pos};
}

Value
BitwiseEngine::opXor(const Value &a, const Value &b)
{
    // a ^ b = (a & ~b) | (~a & b); the complement rail is the XNOR.
    const Value t1 = opAnd(a, opNot(b));
    const Value t2 = opAnd(opNot(a), b);
    const Value t3 = opAnd(a, b);
    const Value t4 = opAnd(opNot(a), opNot(b));
    Value out = alloc();
    majIntoRow(t1.pos, t2.pos, constOneRow_, out.pos);
    majIntoRow(t3.pos, t4.pos, constOneRow_, out.neg);
    release(t1);
    release(t2);
    release(t3);
    release(t4);
    return out;
}

Value
BitwiseEngine::opXnor(const Value &a, const Value &b)
{
    return opNot(opXor(a, b));
}

Value
BitwiseEngine::opCopy(const Value &a)
{
    Value out = alloc();
    // Stage through a compute row so home-to-home pairs can never
    // trip the decoder glitch.
    core::rowCopy(mc_, bank_, a.pos, computeRows_[0]);
    core::rowCopy(mc_, bank_, computeRows_[0], out.pos);
    core::rowCopy(mc_, bank_, a.neg, computeRows_[0]);
    core::rowCopy(mc_, bank_, computeRows_[0], out.neg);
    return out;
}

Cycles
BitwiseEngine::cyclesUsed() const
{
    return mc_.accountant().total();
}

} // namespace fracdram::compute
