/**
 * @file
 * Bulk bitwise compute engine on in-memory majority - the
 * ComputeDRAM-style runtime the paper's F-MAJ work extends to more
 * modules.
 *
 * Values are bit vectors living in DRAM rows ("one bit per column",
 * thousands of lanes wide). The engine keeps every value dual-rail
 * (the row and its complement), which makes NOT free and lets every
 * boolean operation run fully in-DRAM via De Morgan:
 *
 *   MAJ(a,b,c)     = charge-sharing majority (MAJ3 or F-MAJ)
 *   AND(a,b)       = MAJ(a, b, 0)
 *   OR(a,b)        = MAJ(a, b, 1)
 *   NOT(a)         = rail swap (zero cost)
 *   XOR/XNOR       = two ANDs + one OR on the rails
 *
 * Operands are staged from "home" rows into the reserved compute rows
 * with in-DRAM row copies and the result is copied back out - the
 * exact flow ComputeDRAM describes (and the source of the paper's
 * 29% F-MAJ overhead figure, which this engine reproduces at the
 * operation level).
 */

#ifndef FRACDRAM_COMPUTE_ENGINE_HH
#define FRACDRAM_COMPUTE_ENGINE_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "core/fmaj.hh"
#include "softmc/controller.hh"

namespace fracdram::compute
{

/**
 * A dual-rail value handle: the rows holding the value and its
 * complement (voltage domain).
 */
struct Value
{
    RowAddr pos = 0; //!< row holding the value
    RowAddr neg = 0; //!< row holding the complement
};

/**
 * Bulk bitwise engine over one bank of a majority-capable module.
 */
class BitwiseEngine
{
  public:
    /**
     * @param mc controller (enforcement off); the module must support
     *        an in-memory majority (three-row MAJ3 or F-MAJ)
     * @param bank bank whose first sub-array hosts the compute rows
     */
    explicit BitwiseEngine(softmc::MemoryController &mc,
                           BankAddr bank = 0);

    /** Lanes per value (bits per row). */
    std::size_t lanes() const;

    /** Home rows still available for alloc(). */
    std::size_t freeRows() const { return freeRows_.size(); }

    /** @name Value lifecycle */
    /// @{
    /** Allocate an uninitialized value (two home rows). */
    Value alloc();
    /** Release a value's rows. */
    void release(const Value &v);
    /** Write data (voltage domain) into a value. */
    void write(const Value &v, const BitVector &bits);
    /** Read a value back (non-destructive to the handle). */
    BitVector read(const Value &v);
    /// @}

    /** @name In-DRAM operations (results into fresh handles) */
    /// @{
    Value opMaj(const Value &a, const Value &b, const Value &c);
    Value opAnd(const Value &a, const Value &b);
    Value opOr(const Value &a, const Value &b);
    /** Free: swaps the rails; shares rows with the operand. */
    Value opNot(const Value &a) const;
    Value opXor(const Value &a, const Value &b);
    Value opXnor(const Value &a, const Value &b);
    /** In-DRAM copy into a fresh handle. */
    Value opCopy(const Value &a);
    /// @}

    /** Whether the original three-row MAJ3 backs the majority. */
    bool usesThreeRowMaj() const { return useThreeRow_; }

    /** Memory cycles consumed by engine operations so far. */
    Cycles cyclesUsed() const;

    /** In-DRAM majority operations issued so far. */
    std::size_t majOpsIssued() const { return majOps_; }

    softmc::MemoryController &controller() { return mc_; }

  private:
    /** Raw single-rail majority: stage three rows, op, copy out. */
    void majIntoRow(RowAddr a, RowAddr b, RowAddr c, RowAddr out);

    RowAddr allocRow();

    softmc::MemoryController &mc_;
    BankAddr bank_;
    bool useThreeRow_;
    core::FMajConfig fmajConfig_; //!< valid when !useThreeRow_
    std::vector<RowAddr> computeRows_; //!< operand rows of the op
    RowAddr constZeroRow_ = 0;
    RowAddr constOneRow_ = 0;
    std::vector<RowAddr> freeRows_;
    std::size_t majOps_ = 0;
};

} // namespace fracdram::compute

#endif // FRACDRAM_COMPUTE_ENGINE_HH
