#include "compute/reliability.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/maj3.hh"

namespace fracdram::compute
{

BitVector
LaneProfile::reliableLanes(double threshold) const
{
    BitVector mask(successRate.size());
    for (std::size_t i = 0; i < successRate.size(); ++i)
        mask.set(i, successRate[i] >= threshold);
    return mask;
}

std::size_t
LaneProfile::reliableCount(double threshold) const
{
    return reliableLanes(threshold).popcount();
}

LaneProfile
profileLanes(BitwiseEngine &engine, int trials, std::uint64_t seed)
{
    panic_if(trials < 1, "need at least one profiling trial");
    const std::size_t lanes = engine.lanes();
    Rng rng(mixSeed(seed, 0x1a9e5));

    const Value a = engine.alloc();
    const Value b = engine.alloc();
    const Value c = engine.alloc();
    std::vector<std::size_t> good(lanes, 0);

    for (int t = 0; t < trials; ++t) {
        BitVector av(lanes), bv(lanes), cv(lanes);
        for (std::size_t i = 0; i < lanes; ++i) {
            av.set(i, rng.chance(0.5));
            bv.set(i, rng.chance(0.5));
            cv.set(i, rng.chance(0.5));
        }
        engine.write(a, av);
        engine.write(b, bv);
        engine.write(c, cv);
        const Value r = engine.opMaj(a, b, c);
        const BitVector result = engine.read(r);
        engine.release(r);
        const BitVector expected = core::softwareMaj3(av, bv, cv);
        for (std::size_t i = 0; i < lanes; ++i)
            good[i] += result.get(i) == expected.get(i);
    }
    engine.release(a);
    engine.release(b);
    engine.release(c);

    LaneProfile profile;
    profile.successRate.resize(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        profile.successRate[i] = static_cast<double>(good[i]) /
                                 static_cast<double>(trials);
    }
    return profile;
}

BitVector
compactToLanes(const BitVector &data, const BitVector &lane_mask)
{
    panic_if(data.size() > lane_mask.popcount(),
             "data (%zu bits) exceeds reliable lanes (%zu)",
             data.size(), lane_mask.popcount());
    BitVector out(lane_mask.size(), false);
    std::size_t next = 0;
    for (std::size_t lane = 0;
         lane < lane_mask.size() && next < data.size(); ++lane) {
        if (lane_mask.get(lane))
            out.set(lane, data.get(next++));
    }
    return out;
}

BitVector
expandFromLanes(const BitVector &lanes, const BitVector &lane_mask,
                std::size_t logical_size)
{
    panic_if(lanes.size() != lane_mask.size(),
             "lane vector and mask sizes differ");
    BitVector out(logical_size);
    std::size_t next = 0;
    for (std::size_t lane = 0;
         lane < lane_mask.size() && next < logical_size; ++lane) {
        if (lane_mask.get(lane))
            out.set(next++, lanes.get(lane));
    }
    panic_if(next < logical_size,
             "mask has fewer lanes (%zu) than requested bits (%zu)",
             next, logical_size);
    return out;
}

} // namespace fracdram::compute
