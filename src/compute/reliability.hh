/**
 * @file
 * Lane-reliability profiling for the compute engine.
 *
 * The paper's Fig. 10 shows that some columns are flaky under
 * repeated in-memory majority. A deployment therefore profiles its
 * lanes once and maps data onto the reliable ones (exactly like the
 * paper picks best configurations per group). This header provides
 * the profiling pass and the host-side compact/expand helpers.
 */

#ifndef FRACDRAM_COMPUTE_RELIABILITY_HH
#define FRACDRAM_COMPUTE_RELIABILITY_HH

#include <vector>

#include "compute/engine.hh"

namespace fracdram::compute
{

/** Per-lane success statistics of repeated in-DRAM majorities. */
struct LaneProfile
{
    /** Success rate per lane over the profiling trials. */
    std::vector<double> successRate;

    /** Lanes meeting a success threshold (default: always correct). */
    BitVector reliableLanes(double threshold = 1.0) const;

    /** Count of lanes meeting the threshold. */
    std::size_t reliableCount(double threshold = 1.0) const;
};

/**
 * Profile the engine's lanes with @p trials random majority
 * operations (uses and releases three temporary values).
 */
LaneProfile profileLanes(BitwiseEngine &engine, int trials = 16,
                         std::uint64_t seed = 1);

/**
 * Pack @p data (one bit per *logical* position) onto the set lanes of
 * @p lane_mask: logical bit i lands on the i-th reliable lane.
 * Requires data.size() <= popcount(lane_mask).
 */
BitVector compactToLanes(const BitVector &data,
                         const BitVector &lane_mask);

/**
 * Inverse of compactToLanes: extract the bits on the set lanes of
 * @p lane_mask, in lane order, truncated to @p logical_size.
 */
BitVector expandFromLanes(const BitVector &lanes,
                          const BitVector &lane_mask,
                          std::size_t logical_size);

} // namespace fracdram::compute

#endif // FRACDRAM_COMPUTE_RELIABILITY_HH
