#include "core/fmaj.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "core/multi_row.hh"

namespace fracdram::core
{

FMajConfig
bestFMajConfig(sim::DramGroup group)
{
    // Fitted from the Fig. 9 coverage sweeps. Rows follow the paper:
    // {8,1} opens {0,1,8,9} on group B; {1,2} opens {0,1,2,3} on
    // groups C and D.
    FMajConfig cfg;
    switch (group) {
      case sim::DramGroup::B:
        cfg.actFirst = 8;
        cfg.actSecond = 1;
        cfg.fracRow = 1; // R2, the primary row of group B
        cfg.fracInitOnes = true;
        cfg.numFracs = 3;
        return cfg;
      case sim::DramGroup::C:
        cfg.actFirst = 1;
        cfg.actSecond = 2;
        cfg.fracRow = 1; // R1, the primary row of group C
        cfg.fracInitOnes = true;
        cfg.numFracs = 3;
        return cfg;
      case sim::DramGroup::D:
        cfg.actFirst = 1;
        cfg.actSecond = 2;
        cfg.fracRow = 3; // R4, the dominant implicit row of group D
        cfg.fracInitOnes = false;
        cfg.numFracs = 3;
        return cfg;
      case sim::DramGroup::M:
        // DDR4 extension: first-activated row dominates, like group C.
        cfg.actFirst = 1;
        cfg.actSecond = 2;
        cfg.fracRow = 1;
        cfg.fracInitOnes = true;
        cfg.numFracs = 3;
        return cfg;
      default:
        fatal("group %s cannot open four rows; F-MAJ unavailable",
              groupName(group).c_str());
    }
}

std::vector<RowAddr>
fmajOperandRows(const sim::DramChip &chip, const FMajConfig &cfg)
{
    const auto opened =
        plannedOpenedRows(chip, cfg.actFirst, cfg.actSecond);
    fatal_if(opened.size() != 4,
             "F-MAJ needs a four-row activation; pair (%u,%u) opens "
             "%zu row(s) on this module",
             cfg.actFirst, cfg.actSecond, opened.size());
    std::vector<RowAddr> rows;
    bool has_frac_row = false;
    for (const auto &o : opened) {
        if (o.row == cfg.fracRow)
            has_frac_row = true;
        else
            rows.push_back(o.row);
    }
    fatal_if(!has_frac_row,
             "fracRow %u is not among the opened rows", cfg.fracRow);
    std::sort(rows.begin(), rows.end());
    return rows;
}

void
fmajPrepareFracRow(softmc::MemoryController &mc, BankAddr bank,
                   const FMajConfig &cfg)
{
    // Initialization to a solid rail makes the fractional value even
    // across the row (Sec. VI-A1, step 2).
    mc.fillRowVoltage(bank, cfg.fracRow, cfg.fracInitOnes);
    if (cfg.numFracs > 0)
        frac(mc, bank, cfg.fracRow, cfg.numFracs);
}

BitVector
fmajWithPreparedFracRow(softmc::MemoryController &mc, BankAddr bank,
                        const FMajConfig &cfg,
                        const std::array<BitVector, 3> &operands)
{
    const auto rows = fmajOperandRows(mc.chip(), cfg);
    for (std::size_t i = 0; i < rows.size(); ++i)
        mc.writeRowVoltage(bank, rows[i], operands[i]);
    return multiRowActivate(mc, bank, cfg.actFirst, cfg.actSecond);
}

BitVector
fmaj(softmc::MemoryController &mc, BankAddr bank, const FMajConfig &cfg,
     const std::array<BitVector, 3> &operands)
{
    fmajPrepareFracRow(mc, bank, cfg);
    return fmajWithPreparedFracRow(mc, bank, cfg, operands);
}

} // namespace fracdram::core
