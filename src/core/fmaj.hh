/**
 * @file
 * F-MAJ (paper Sec. VI-A): majority-of-three built on a *four*-row
 * activation by parking a fractional value in one of the four rows.
 *
 * The fractional row sits near V_dd/2 and barely influences the
 * bit-line, so the sense amplifiers latch the majority of the other
 * three rows. This extends ComputeDRAM-style majority to modules that
 * can only open four rows (groups C, D and DDR4-like parts), and -
 * when the fractional value is parked in the activation's "primary"
 * row - makes the operation more symmetric and more reliable than
 * the original three-row MAJ3.
 */

#ifndef FRACDRAM_CORE_FMAJ_HH
#define FRACDRAM_CORE_FMAJ_HH

#include <array>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/chip.hh"
#include "sim/vendor.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * Configuration of one F-MAJ operation.
 */
struct FMajConfig
{
    RowAddr actFirst = 1;  //!< R1 of the activation sequence
    RowAddr actSecond = 2; //!< R2 of the activation sequence
    /** Which opened row holds the fractional value. */
    RowAddr fracRow = 0;
    /**
     * Initial fill of the fractional row before Frac: true = all ones
     * (fractional value approaches V_dd/2 from above).
     */
    bool fracInitOnes = true;
    /** Number of Frac operations to issue. */
    int numFracs = 2;
};

/**
 * Best known configuration per vendor group (fitted from the Fig. 9
 * sweeps; see bench_fig9_fmaj_coverage).
 */
FMajConfig bestFMajConfig(sim::DramGroup group);

/**
 * The three operand rows of a configuration: the opened rows minus
 * the fractional row, in ascending row order.
 */
std::vector<RowAddr> fmajOperandRows(const sim::DramChip &chip,
                                     const FMajConfig &cfg);

/**
 * Prepare the fractional row only (fill + Frac). Exposed separately
 * so sweeps can reuse one preparation across operand sets.
 */
void fmajPrepareFracRow(softmc::MemoryController &mc, BankAddr bank,
                        const FMajConfig &cfg);

/**
 * Full F-MAJ: prepare the fractional row, stage the three operands,
 * run the four-row activation.
 *
 * @param mc controller (enforcement must be off)
 * @param bank target bank
 * @param cfg configuration; the activation pair must open 4 rows
 * @param operands voltage-domain operands for the three non-frac
 *        rows, in ascending row order
 * @return voltage-domain majority bits
 */
BitVector fmaj(softmc::MemoryController &mc, BankAddr bank,
               const FMajConfig &cfg,
               const std::array<BitVector, 3> &operands);

/**
 * F-MAJ without re-preparing the fractional row (the caller already
 * ran fmajPrepareFracRow and has not destroyed the fractional value).
 */
BitVector fmajWithPreparedFracRow(softmc::MemoryController &mc,
                                  BankAddr bank, const FMajConfig &cfg,
                                  const std::array<BitVector, 3> &
                                      operands);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_FMAJ_HH
