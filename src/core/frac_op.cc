#include "core/frac_op.hh"

#include "common/logging.hh"

namespace fracdram::core
{

softmc::CommandSequence
buildFracSequence(BankAddr bank, RowAddr row, int count, Cycles t_rp)
{
    panic_if(count < 1, "Frac count must be >= 1, got %d", count);
    softmc::CommandSequence seq;
    // Step 1 (Fig. 3): make sure the bank is closed and the bit-lines
    // sit at V_dd/2.
    seq.pre(bank);
    seq.idle(t_rp - 1);
    for (int i = 0; i < count; ++i) {
        // Steps 2-3: ACT then PRE back-to-back interrupts the
        // activation before the sense amplifier enables.
        seq.act(bank, row);
        seq.pre(bank);
        // Step 4: wait for the PRECHARGE to finish before the next
        // Frac. Total: 2 command + 5 idle = 7 cycles per Frac.
        seq.idle(t_rp);
    }
    return seq;
}

void
frac(softmc::MemoryController &mc, BankAddr bank, RowAddr row, int count)
{
    fatal_if(mc.enforcesSpec(),
             "Frac violates tRAS; disable JEDEC enforcement first");
    mc.execute(buildFracSequence(bank, row, count), "frac");
}

} // namespace fracdram::core
