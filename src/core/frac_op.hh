/**
 * @file
 * The Frac primitive (paper Sec. III-A): store a fractional voltage in
 * an entire DRAM row by interrupting its activation.
 *
 * One Frac operation is ACTIVATE(row) immediately followed by
 * PRECHARGE; the precharge lands before the sense amplifier enables,
 * so the cells are disconnected while holding the (partial) charge-
 * sharing equilibrium - a voltage strictly between the rail they held
 * and V_dd/2. Issuing more Frac operations walks the voltage
 * geometrically toward V_dd/2.
 */

#ifndef FRACDRAM_CORE_FRAC_OP_HH
#define FRACDRAM_CORE_FRAC_OP_HH

#include "common/types.hh"
#include "softmc/command.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * Latency of one Frac operation: two command cycles plus five idle
 * cycles for the interrupting PRECHARGE to complete (Sec. III-A).
 */
inline constexpr Cycles fracOpCycles = 7;

/**
 * Build the command sequence for @p count back-to-back Frac
 * operations on one row. The sequence starts with a bank precharge so
 * the bit-lines are at V_dd/2 (step 1 of Fig. 3).
 *
 * @param bank target bank
 * @param row target row
 * @param count number of Frac operations (>= 1)
 * @param t_rp cycles to wait after each PRECHARGE
 */
softmc::CommandSequence buildFracSequence(BankAddr bank, RowAddr row,
                                          int count, Cycles t_rp = 5);

/**
 * Issue @p count Frac operations to a row.
 *
 * Deliberately violates tRAS (the activation is interrupted); the
 * controller must not be in spec-enforcing mode.
 */
void frac(softmc::MemoryController &mc, BankAddr bank, RowAddr row,
          int count = 1);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_FRAC_OP_HH
