#include "core/fracdram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "core/half_m.hh"
#include "core/maj3.hh"
#include "core/multi_row.hh"

namespace fracdram::core
{

FracDram::FracDram(sim::DramGroup group, std::uint64_t serial,
                   const sim::DramParams &params)
    : chip_(std::make_unique<sim::DramChip>(group, serial, params)),
      mc_(std::make_unique<softmc::MemoryController>(*chip_, false)),
      refresh_(std::make_unique<RefreshManager>(*mc_))
{
}

const sim::VendorProfile &
FracDram::profile() const
{
    return chip_->profile();
}

bool
FracDram::canFrac() const
{
    return profile().supportsFrac;
}

bool
FracDram::canThreeRowActivate() const
{
    return profile().supportsThreeRow;
}

bool
FracDram::canFourRowActivate() const
{
    return profile().supportsFourRow;
}

bool
FracDram::canMajority() const
{
    return canThreeRowActivate() ||
           (canFourRowActivate() && canFrac());
}

void
FracDram::frac(BankAddr bank, RowAddr row, int count)
{
    fatal_if(!canFrac(), "group %s drops out-of-spec sequences; Frac "
                         "is unavailable",
             groupName(profile().group).c_str());
    core::frac(*mc_, bank, row, count);
}

void
FracDram::storeHalfMasked(BankAddr bank, const BitVector &half_mask,
                          bool background)
{
    fatal_if(!canFourRowActivate(),
             "Half-m needs a four-row activation");
    const RowAddr r1 = 8, r2 = 1; // opens {0, 1, 8, 9}
    const auto opened = plannedOpenedRows(*chip_, r1, r2);
    halfM(*mc_, bank, r1, r2,
          halfMInitPatterns(opened, half_mask, background));
}

BitVector
FracDram::majority(BankAddr bank,
                   const std::array<BitVector, 3> &operands)
{
    if (canThreeRowActivate()) {
        // Original ComputeDRAM MAJ3: ACT(1)-PRE-ACT(2) opens {0,1,2}.
        const RowAddr r1 = 1, r2 = 2;
        const auto opened = plannedOpenedRows(*chip_, r1, r2);
        panic_if(opened.size() != 3, "expected a three-row activation");
        std::vector<RowAddr> rows;
        for (const auto &o : opened)
            rows.push_back(o.row);
        std::sort(rows.begin(), rows.end());
        std::map<RowAddr, BitVector> staged;
        for (std::size_t i = 0; i < rows.size(); ++i)
            staged.emplace(rows[i], operands[i]);
        return maj3(*mc_, bank, r1, r2, staged);
    }
    return majorityFMaj(bank, operands);
}

BitVector
FracDram::majorityFMaj(BankAddr bank,
                       const std::array<BitVector, 3> &operands)
{
    fatal_if(!canFourRowActivate() || !canFrac(),
             "F-MAJ needs Frac and a four-row activation");
    return fmaj(*mc_, bank, bestFMajConfig(profile().group), operands);
}

void
FracDram::writeRow(BankAddr bank, RowAddr row, const BitVector &bits)
{
    mc_->writeRow(bank, row, bits);
}

BitVector
FracDram::readRow(BankAddr bank, RowAddr row)
{
    return mc_->readRow(bank, row);
}

BitVector
FracDram::fracReadout(BankAddr bank, RowAddr row, int num_fracs)
{
    fatal_if(!canFrac(), "fracReadout needs Frac support");
    mc_->fillRowVoltage(bank, row, true);
    core::frac(*mc_, bank, row, num_fracs);
    return mc_->readRowVoltage(bank, row);
}

} // namespace fracdram::core
