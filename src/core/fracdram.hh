/**
 * @file
 * FracDram: the library facade. Owns a simulated module and its
 * SoftMC controller and exposes the paper's primitives and use-case
 * entry points behind one object. Examples and applications start
 * here; experiment harnesses typically reach for the lower layers.
 */

#ifndef FRACDRAM_CORE_FRACDRAM_HH
#define FRACDRAM_CORE_FRACDRAM_HH

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "core/fmaj.hh"
#include "core/refresh.hh"
#include "sim/chip.hh"
#include "sim/vendor.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * One FracDRAM-capable module with its controller.
 */
class FracDram
{
  public:
    /**
     * @param group vendor group to instantiate (Table I)
     * @param serial module serial (distinct silicon per value)
     * @param params geometry overrides
     */
    explicit FracDram(sim::DramGroup group, std::uint64_t serial = 1,
                      const sim::DramParams &params =
                          sim::DramParams{});

    /** @name Capability queries (Table I semantics) */
    /// @{
    /** Whether Frac stores fractional values on this module. */
    bool canFrac() const;
    /** Whether the module opens three rows (original MAJ3). */
    bool canThreeRowActivate() const;
    /** Whether the module opens four rows (Half-m, F-MAJ). */
    bool canFourRowActivate() const;
    /** Whether any in-memory majority operation is available. */
    bool canMajority() const;
    /// @}

    /** @name Primitives */
    /// @{
    /** Issue @p count Frac operations to a row (Sec. III-A). */
    void frac(BankAddr bank, RowAddr row, int count = 1);

    /**
     * Store Half values to masked bits (Sec. III-B). Columns selected
     * by @p half_mask end near V_dd/2; the others hold a weak copy of
     * @p background. Uses the paper's rows {8,1} -> {0,1,8,9}.
     */
    void storeHalfMasked(BankAddr bank, const BitVector &half_mask,
                         bool background);
    /// @}

    /** @name In-memory majority */
    /// @{
    /**
     * In-memory majority of three voltage-domain operands. Uses the
     * original three-row MAJ3 when available, otherwise F-MAJ on a
     * four-row activation (fatal if neither is supported).
     */
    BitVector majority(BankAddr bank,
                       const std::array<BitVector, 3> &operands);

    /** Force the F-MAJ path with this module's best configuration. */
    BitVector majorityFMaj(BankAddr bank,
                           const std::array<BitVector, 3> &operands);
    /// @}

    /** @name Host data path (JEDEC-compliant) */
    /// @{
    void writeRow(BankAddr bank, RowAddr row, const BitVector &bits);
    BitVector readRow(BankAddr bank, RowAddr row);
    /// @}

    /**
     * Generate a PUF-style fractional readout of a row: initialize to
     * all-high, issue @p num_fracs Frac operations, read the row back
     * (the sense amplifiers resolve ~V_dd/2 by their per-column
     * offsets). This is the paper's Sec. VI-B response primitive.
     */
    BitVector fracReadout(BankAddr bank, RowAddr row,
                          int num_fracs = 10);

    sim::DramChip &chip() { return *chip_; }
    softmc::MemoryController &controller() { return *mc_; }
    RefreshManager &refreshManager() { return *refresh_; }
    const sim::VendorProfile &profile() const;

  private:
    std::unique_ptr<sim::DramChip> chip_;
    std::unique_ptr<softmc::MemoryController> mc_;
    std::unique_ptr<RefreshManager> refresh_;
};

} // namespace fracdram::core

#endif // FRACDRAM_CORE_FRACDRAM_HH
