#include "core/half_m.hh"

#include "common/logging.hh"
#include "core/multi_row.hh"

namespace fracdram::core
{

void
halfM(softmc::MemoryController &mc, BankAddr bank, RowAddr r1,
      RowAddr r2, const std::map<RowAddr, BitVector> &inits)
{
    for (const auto &[row, bits] : inits)
        mc.writeRowVoltage(bank, row, bits);
    multiRowActivateInterrupted(mc, bank, r1, r2);
}

std::map<RowAddr, BitVector>
halfMInitPatterns(const std::vector<sim::OpenedRow> &opened,
                  const BitVector &half_mask, bool background)
{
    panic_if(opened.size() != 4,
             "Half-m needs a four-row activation, got %zu rows",
             opened.size());

    // The paper stores one to R1/R3 and zero to R2/R4 in Half columns.
    auto high_for = [](sim::RowRole role) {
        return role == sim::RowRole::FirstAct ||
               role == sim::RowRole::ImplicitAnd;
    };

    std::map<RowAddr, BitVector> inits;
    for (const auto &o : opened) {
        BitVector bits(half_mask.size());
        for (std::size_t c = 0; c < half_mask.size(); ++c)
            bits.set(c, half_mask.get(c) ? high_for(o.role)
                                         : background);
        inits.emplace(o.row, std::move(bits));
    }
    return inits;
}

} // namespace fracdram::core
