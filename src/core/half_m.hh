/**
 * @file
 * The Half-m primitive (paper Sec. III-B): store Half values on masked
 * bits of a row by interrupting a four-row activation.
 *
 * Four rows are opened by ACT(R1)-PRE-ACT(R2) (the decoder glitch) and
 * a trailing back-to-back PRECHARGE disconnects them before the sense
 * amplifiers fully recover the values. Columns whose four initial
 * values are two ones and two zeros end near V_dd/2 (a Half value);
 * all-ones / all-zeros columns end as "weak" ones / zeros.
 */

#ifndef FRACDRAM_CORE_HALF_M_HH
#define FRACDRAM_CORE_HALF_M_HH

#include <map>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/row_decoder.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * Stage initial values and run Half-m.
 *
 * @param mc controller (enforcement must be off)
 * @param bank target bank
 * @param r1 first activated row (e.g. 8)
 * @param r2 second activated row (e.g. 1)
 * @param inits voltage-domain initial data per row; the mask of Half
 *        vs weak-one vs weak-zero columns is whatever these patterns
 *        encode (two-high-two-low columns become Half values)
 */
void halfM(softmc::MemoryController &mc, BankAddr bank, RowAddr r1,
           RowAddr r2, const std::map<RowAddr, BitVector> &inits);

/**
 * Build the per-row initial patterns that generate a Half value in
 * the columns selected by @p half_mask and a weak copy of
 * @p background in the rest.
 *
 * Half columns get the checker assignment the paper uses (one in R1
 * and R3, zero in R2 and R4); other columns get @p background in all
 * four rows.
 *
 * @param opened the four opened rows (from plannedOpenedRows)
 * @param half_mask columns that should hold Half values
 * @param background value for non-masked columns
 * @return voltage-domain init per row address
 */
std::map<RowAddr, BitVector>
halfMInitPatterns(const std::vector<sim::OpenedRow> &opened,
                  const BitVector &half_mask, bool background);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_HALF_M_HH
