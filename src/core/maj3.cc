#include "core/maj3.hh"

#include "common/logging.hh"
#include "core/multi_row.hh"

namespace fracdram::core
{

BitVector
softwareMaj3(const BitVector &a, const BitVector &b, const BitVector &c)
{
    panic_if(a.size() != b.size() || b.size() != c.size(),
             "softwareMaj3: operand sizes differ");
    BitVector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const int ones = static_cast<int>(a.get(i)) +
                         static_cast<int>(b.get(i)) +
                         static_cast<int>(c.get(i));
        out.set(i, ones >= 2);
    }
    return out;
}

BitVector
maj3(softmc::MemoryController &mc, BankAddr bank, RowAddr r1, RowAddr r2,
     const std::map<RowAddr, BitVector> &operands)
{
    for (const auto &[row, bits] : operands)
        mc.writeRowVoltage(bank, row, bits);
    return maj3InPlace(mc, bank, r1, r2);
}

BitVector
maj3InPlace(softmc::MemoryController &mc, BankAddr bank, RowAddr r1,
            RowAddr r2)
{
    return multiRowActivate(mc, bank, r1, r2);
}

} // namespace fracdram::core
