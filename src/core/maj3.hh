/**
 * @file
 * ComputeDRAM-style in-memory majority-of-three (the paper's baseline
 * operation, Sec. II-D / VI-A).
 *
 * Three rows of a sub-array are opened simultaneously by the
 * out-of-spec sequence ACT(R1)-PRE-ACT(R2); the charge they share on
 * the bit-lines makes the sense amplifiers latch the majority of the
 * three stored values, which is then restored into all opened rows.
 *
 * All operands and results are in the *voltage* domain (bit=1 means
 * the cell physically holds a high level) - the paper's Sec. II-C
 * convention; the controller's voltage-domain helpers take care of
 * anti-cell rows.
 */

#ifndef FRACDRAM_CORE_MAJ3_HH
#define FRACDRAM_CORE_MAJ3_HH

#include <map>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/** Reference software majority-of-three (bitwise). */
BitVector softwareMaj3(const BitVector &a, const BitVector &b,
                       const BitVector &c);

/**
 * Stage operands onto rows and run the in-memory MAJ3.
 *
 * @param mc controller (JEDEC enforcement must be off)
 * @param bank target bank
 * @param r1 first activated row of the sequence
 * @param r2 second activated row of the sequence
 * @param operands voltage-domain data per row address; every row that
 *        the sequence opens and that appears here is written first
 * @return voltage-domain majority bits (also restored in the rows)
 */
BitVector maj3(softmc::MemoryController &mc, BankAddr bank, RowAddr r1,
               RowAddr r2,
               const std::map<RowAddr, BitVector> &operands);

/**
 * Run the in-memory MAJ3 on whatever the rows currently hold
 * (no operand staging).
 */
BitVector maj3InPlace(softmc::MemoryController &mc, BankAddr bank,
                      RowAddr r1, RowAddr r2);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_MAJ3_HH
