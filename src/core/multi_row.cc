#include "core/multi_row.hh"

#include "common/logging.hh"

namespace fracdram::core
{

std::vector<sim::OpenedRow>
plannedOpenedRows(const sim::DramChip &chip, RowAddr r1, RowAddr r2)
{
    if (chip.profile().ignoresOutOfSpecTiming) {
        // The second ACT is dropped by the timing checker; only R1
        // ends up open.
        return {{r1, sim::RowRole::FirstAct}};
    }
    return sim::glitchOpenedRows(chip.profile(), r1, r2,
                                 chip.dramParams().rowsPerSubarray);
}

softmc::CommandSequence
buildMultiRowSequence(BankAddr bank, RowAddr r1, RowAddr r2,
                      bool interrupted, Cycles t_rp)
{
    softmc::CommandSequence seq;
    seq.pre(bank);
    seq.idle(t_rp - 1);
    seq.act(bank, r1);
    seq.pre(bank);
    seq.act(bank, r2);
    if (interrupted) {
        // Half-m: interrupt before the sense amplifiers enable.
        seq.pre(bank);
        seq.idle(t_rp);
    } else {
        // Let the activation complete (sense + restore), read the
        // result out, then close.
        seq.idle(8);
        seq.read(bank);
        seq.idle(4);
        seq.pre(bank);
        seq.idle(t_rp);
    }
    return seq;
}

BitVector
multiRowActivate(softmc::MemoryController &mc, BankAddr bank, RowAddr r1,
                 RowAddr r2)
{
    fatal_if(mc.enforcesSpec(), "multi-row activation violates JEDEC "
                                "timing; disable enforcement first");
    auto result = mc.execute(buildMultiRowSequence(bank, r1, r2, false),
                             "multiRowActivate");
    panic_if(result.reads.size() != 1,
             "multiRowActivate expected one read");
    // The buffer holds logic bits relative to R2; convert back to the
    // physical (voltage) domain the charge sharing works in.
    return mc.toVoltageDomain(bank, r2, result.reads[0]);
}

void
multiRowActivateInterrupted(softmc::MemoryController &mc, BankAddr bank,
                            RowAddr r1, RowAddr r2)
{
    fatal_if(mc.enforcesSpec(), "multi-row activation violates JEDEC "
                                "timing; disable enforcement first");
    mc.execute(buildMultiRowSequence(bank, r1, r2, true),
               "multiRowActivateInterrupted");
}

} // namespace fracdram::core
