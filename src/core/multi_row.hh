/**
 * @file
 * Multi-row activation (paper Sec. II-D): the out-of-spec sequence
 * ACTIVATE(R1)-PRECHARGE-ACTIVATE(R2), issued back-to-back, that opens
 * several rows of a sub-array simultaneously. The full (sensed)
 * variant is the substrate of MAJ3/F-MAJ; the interrupted variant
 * (with a trailing back-to-back PRECHARGE) is the Half-m mechanism.
 */

#ifndef FRACDRAM_CORE_MULTI_ROW_HH
#define FRACDRAM_CORE_MULTI_ROW_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/chip.hh"
#include "sim/row_decoder.hh"
#include "softmc/command.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * Predict which rows ACT(r1)-PRE-ACT(r2) opens on a module.
 * A single-element result {r2} means the glitch does not fire.
 */
std::vector<sim::OpenedRow> plannedOpenedRows(const sim::DramChip &chip,
                                              RowAddr r1, RowAddr r2);

/**
 * Build ACT(r1)-PRE-ACT(r2), optionally with a trailing back-to-back
 * PRECHARGE that interrupts the multi-row activation (Half-m).
 *
 * @param bank target bank
 * @param r1 first row
 * @param r2 second row
 * @param interrupted append the trailing PRE (Half-m) when true
 * @param t_rp trailing precharge wait
 */
softmc::CommandSequence buildMultiRowSequence(BankAddr bank, RowAddr r1,
                                              RowAddr r2,
                                              bool interrupted,
                                              Cycles t_rp = 5);

/**
 * Run the full multi-row activation and return the charge-sharing
 * result in the voltage domain (bit=1 means bit-line sensed high).
 * The result is also restored into every opened row.
 */
BitVector multiRowActivate(softmc::MemoryController &mc, BankAddr bank,
                           RowAddr r1, RowAddr r2);

/**
 * Run the interrupted multi-row activation (the core of Half-m):
 * the opened cells keep fractional voltages, nothing is sensed.
 */
void multiRowActivateInterrupted(softmc::MemoryController &mc,
                                 BankAddr bank, RowAddr r1, RowAddr r2);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_MULTI_ROW_HH
