#include "core/refresh.hh"

#include "common/logging.hh"

namespace fracdram::core
{

RefreshManager::RefreshManager(softmc::MemoryController &mc,
                               Seconds interval)
    : mc_(mc), interval_(interval), lastRefresh_(mc.chip().now())
{
    panic_if(interval <= 0.0, "refresh interval must be positive");
}

Seconds
RefreshManager::sinceLast() const
{
    return mc_.chip().now() - lastRefresh_;
}

bool
RefreshManager::tick()
{
    if (suspended() || !due())
        return false;
    refreshNow();
    return true;
}

void
RefreshManager::refreshNow()
{
    mc_.refreshAll();
    lastRefresh_ = mc_.chip().now();
}

void
RefreshManager::suspend()
{
    ++suspendDepth_;
}

void
RefreshManager::resume()
{
    panic_if(suspendDepth_ == 0, "resume() without matching suspend()");
    --suspendDepth_;
    if (suspendDepth_ == 0 && due())
        refreshNow();
}

} // namespace fracdram::core
