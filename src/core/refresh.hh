/**
 * @file
 * Refresh management (paper Sec. III-C).
 *
 * Any row activation - including the internal ones REFRESH performs -
 * destroys a stored fractional value, so applications must hold
 * refresh off while fractional values are live, and the 64 ms refresh
 * interval bounds how long that is safe for the *normal* data stored
 * alongside. RefreshManager tracks the due time and supports the
 * suspend/resume discipline the paper describes.
 */

#ifndef FRACDRAM_CORE_REFRESH_HH
#define FRACDRAM_CORE_REFRESH_HH

#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * Tracks and issues periodic refresh for one module.
 */
class RefreshManager
{
  public:
    /**
     * @param mc controller of the module
     * @param interval refresh interval (DDR3: 64 ms per row)
     */
    explicit RefreshManager(softmc::MemoryController &mc,
                            Seconds interval = 0.064);

    /**
     * Issue a refresh if one is due and refresh is not suspended.
     * @return whether a refresh was issued
     */
    bool tick();

    /** Force a refresh now (regardless of the schedule). */
    void refreshNow();

    /**
     * Suspend refresh while fractional values are live. Nested calls
     * must be balanced with resume().
     */
    void suspend();

    /** Resume refresh; issues one immediately if it became overdue. */
    void resume();

    /** Whether refresh is currently suspended. */
    bool suspended() const { return suspendDepth_ > 0; }

    /** Seconds since the last issued refresh. */
    Seconds sinceLast() const;

    /** Whether the interval has elapsed since the last refresh. */
    bool due() const { return sinceLast() >= interval_; }

    /**
     * Whether normal data is at risk: refresh is suspended and the
     * interval has already been exceeded.
     */
    bool overdue() const { return suspended() && due(); }

    Seconds interval() const { return interval_; }

  private:
    softmc::MemoryController &mc_;
    Seconds interval_;
    Seconds lastRefresh_ = 0.0;
    int suspendDepth_ = 0;
};

} // namespace fracdram::core

#endif // FRACDRAM_CORE_REFRESH_HH
