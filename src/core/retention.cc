#include "core/retention.hh"

#include "common/logging.hh"

namespace fracdram::core
{

const std::vector<Seconds> &
RetentionBuckets::probeTimes()
{
    // "Dead immediately" is probed at one second; the rest follow the
    // paper's ranges.
    static const std::vector<Seconds> probes = {
        1.0, 10.0 * 60.0, 30.0 * 60.0, 60.0 * 60.0, 12.0 * 3600.0,
    };
    return probes;
}

std::size_t
RetentionBuckets::numBuckets()
{
    return probeTimes().size() + 1;
}

std::string
RetentionBuckets::label(std::size_t bucket)
{
    static const char *labels[] = {
        "0", "0-10min", "10-30min", "30-60min", "1-12h", ">12h",
    };
    panic_if(bucket >= numBuckets(), "bad bucket %zu", bucket);
    return labels[bucket];
}

RetentionProfiler::RetentionProfiler(softmc::MemoryController &mc,
                                     BankAddr bank, RowAddr row)
    : mc_(mc), bank_(bank), row_(row)
{
}

std::vector<std::size_t>
RetentionProfiler::profile(const std::function<void()> &prepare,
                           const std::vector<Seconds> &probes)
{
    panic_if(probes.empty(), "need at least one probe time");
    for (std::size_t i = 1; i < probes.size(); ++i) {
        panic_if(probes[i] <= probes[i - 1],
                 "probe times must be strictly increasing");
    }

    const std::size_t cols = mc_.chip().dramParams().colsPerRow;
    // Survived-all-probes bucket by default.
    std::vector<std::size_t> bucket(cols, probes.size());
    std::vector<bool> resolved(cols, false);

    for (std::size_t p = 0; p < probes.size(); ++p) {
        prepare();
        mc_.waitSeconds(probes[p]);
        const BitVector alive = mc_.readRowVoltage(bank_, row_);
        for (std::size_t c = 0; c < cols; ++c) {
            if (!resolved[c] && !alive.get(c)) {
                bucket[c] = p;
                resolved[c] = true;
            }
        }
    }
    return bucket;
}

} // namespace fracdram::core
