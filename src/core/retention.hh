/**
 * @file
 * Retention-time profiling (paper Sec. IV-B1 / V-A): the destructive
 * readout used to verify that Frac really lowered a cell's voltage.
 *
 * For each probe time t: prepare the row (store a pattern, optionally
 * Frac it), let the charge leak for t seconds with refresh paused,
 * then read the row back and record which bits survived. A cell's
 * retention bucket is the first probe at which it lost its data;
 * higher initial voltage implies a later bucket (monotonicity), which
 * is what makes retention a voltage probe.
 */

#ifndef FRACDRAM_CORE_RETENTION_HH
#define FRACDRAM_CORE_RETENTION_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * The paper's six retention ranges: 0, (0,10 min], (10,30 min],
 * (30,60 min], (1,12 h], > 12 h.
 */
struct RetentionBuckets
{
    /** Probe times (seconds) marking the bucket edges. */
    static const std::vector<Seconds> &probeTimes();

    /** Number of buckets (probes + 1 for "longer than all probes"). */
    static std::size_t numBuckets();

    /** Human-readable label of a bucket. */
    static std::string label(std::size_t bucket);
};

/**
 * Collects per-column retention buckets for one row.
 */
class RetentionProfiler
{
  public:
    /**
     * @param mc controller driving the module
     * @param bank bank of the profiled row
     * @param row profiled row
     */
    RetentionProfiler(softmc::MemoryController &mc, BankAddr bank,
                      RowAddr row);

    /**
     * Profile the row.
     *
     * @param prepare stores the pattern under test (all-high plus any
     *        Frac operations); called once per probe time
     * @param probes probe times in seconds, strictly increasing;
     *        defaults to RetentionBuckets::probeTimes()
     * @return per-column bucket index: i if the bit first died at
     *         probes[i], probes.size() if it survived every probe
     */
    std::vector<std::size_t>
    profile(const std::function<void()> &prepare,
            const std::vector<Seconds> &probes =
                RetentionBuckets::probeTimes());

  private:
    softmc::MemoryController &mc_;
    BankAddr bank_;
    RowAddr row_;
};

} // namespace fracdram::core

#endif // FRACDRAM_CORE_RETENTION_HH
