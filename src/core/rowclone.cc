#include "core/rowclone.hh"

#include "common/logging.hh"

namespace fracdram::core
{

softmc::CommandSequence
buildRowCopySequence(BankAddr bank, RowAddr src, RowAddr dst,
                     Cycles sa_enable, Cycles t_rp)
{
    softmc::CommandSequence seq;
    seq.pre(bank);
    seq.idle(t_rp - 1);
    seq.act(bank, src);
    // Wait until the sense amplifiers have latched the source data.
    seq.idle(sa_enable);
    // PRE then immediate ACT(dst): the still-driven bit-lines write
    // the source data into the destination cells.
    seq.pre(bank);
    seq.act(bank, dst);
    seq.idle(1);
    seq.pre(bank);
    seq.idle(t_rp);
    return seq;
}

void
rowCopy(softmc::MemoryController &mc, BankAddr bank, RowAddr src,
        RowAddr dst)
{
    fatal_if(mc.enforcesSpec(),
             "row copy violates tRAS/tRP; disable enforcement first");
    mc.execute(buildRowCopySequence(bank, src, dst), "rowCopy");
}

} // namespace fracdram::core
