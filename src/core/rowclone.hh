/**
 * @file
 * In-DRAM row copy (ComputeDRAM-style): activate the source row fully,
 * precharge, and re-activate the destination while the sense amps are
 * still driving the bit-lines. Used to stage MAJ3/F-MAJ operands and
 * to initialize rows before Frac (paper Sec. VI-A1).
 */

#ifndef FRACDRAM_CORE_ROWCLONE_HH
#define FRACDRAM_CORE_ROWCLONE_HH

#include "common/types.hh"
#include "softmc/command.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/** Latency of one in-DRAM row copy (ComputeDRAM reports 18 cycles). */
inline constexpr Cycles rowCopyCycles = 18;

/**
 * Build the row-copy sequence src -> dst within one bank.
 *
 * @param bank target bank
 * @param src source row (fully activated first)
 * @param dst destination row (latches the driven bit-lines)
 * @param sa_enable cycles after ACT at which the sense amps enable
 * @param t_rp trailing precharge wait
 */
softmc::CommandSequence buildRowCopySequence(BankAddr bank, RowAddr src,
                                             RowAddr dst,
                                             Cycles sa_enable = 3,
                                             Cycles t_rp = 5);

/**
 * Copy one row onto another inside the DRAM array (no data transfer
 * over the bus). Violates tRAS/tRP; enforcement must be off.
 *
 * @note On modules whose row decoder glitches for the (src, dst) pair
 *       the copy also lands in the implicitly opened rows - pick
 *       pairs outside the glitch window when that matters.
 */
void rowCopy(softmc::MemoryController &mc, BankAddr bank, RowAddr src,
             RowAddr dst);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_ROWCLONE_HH
