#include "core/ternary.hh"

#include "common/logging.hh"
#include "core/half_m.hh"
#include "core/multi_row.hh"
#include "core/rowclone.hh"

namespace fracdram::core
{

namespace
{

bool
rowHoldsHighForTrit(sim::RowRole role, int trit)
{
    switch (trit) {
      case 0:
        return false;
      case 2:
        return true;
      case 1:
        // The paper's checker assignment: ones in R1 and R3.
        return role == sim::RowRole::FirstAct ||
               role == sim::RowRole::ImplicitAnd;
      default:
        panic("trit out of range: %d", trit);
    }
}

} // namespace

TernaryStore::TernaryStore(softmc::MemoryController &mc, BankAddr bank,
                           RowAddr r1, RowAddr r2, RowAddr probe_row,
                           RowAddr backup_base)
    : mc_(mc), bank_(bank), r1_(r1), r2_(r2), probeRow_(probe_row),
      backupBase_(backup_base),
      opened_(plannedOpenedRows(mc.chip(), r1, r2)),
      usable_(mc.chip().dramParams().colsPerRow)
{
    fatal_if(opened_.size() != 4,
             "ternary storage needs a four-row activation");
    // The destructive readout probes with a *three*-row MAJ3 (rows
    // {R3, R2, probe}); decoders that always open power-of-two row
    // counts would drag a fourth, unrelated row into the probe.
    fatal_if(!mc.chip().profile().supportsThreeRow,
             "the MAJ3 readout needs three-row activation (group B)");
    for (const auto &o : opened_) {
        fatal_if(o.row == probe_row,
                 "probe row %u collides with the quadruple", probe_row);
        for (RowAddr b = 0; b < 4; ++b) {
            fatal_if(o.row == backup_base + b,
                     "backup rows collide with the quadruple");
        }
    }
}

void
TernaryStore::generateFromBackups()
{
    // Re-create the analog state from the binary backups: copy each
    // backup row onto its quadruple row in-DRAM, then interrupt the
    // four-row activation.
    for (std::size_t i = 0; i < opened_.size(); ++i)
        rowCopy(mc_, bank_, backupBase_ + static_cast<RowAddr>(i),
                opened_[i].row);
    multiRowActivateInterrupted(mc_, bank_, r1_, r2_);
}

void
TernaryStore::store(const std::vector<int> &trits)
{
    fatal_if(!profiled_, "profileColumns() must run before store()");
    fatal_if(trits.size() > capacity_,
             "payload of %zu trits exceeds capacity %zu", trits.size(),
             capacity_);
    const std::size_t cols = mc_.chip().dramParams().colsPerRow;

    // Expand the payload onto the usable columns.
    std::vector<int> column_trit(cols, 0);
    std::size_t next = 0;
    for (ColAddr c = 0; c < cols && next < trits.size(); ++c) {
        if (usable_.get(c))
            column_trit[c] = trits[next++];
    }

    // Write the four binary init patterns to the backup rows, then
    // generate the analog state.
    for (std::size_t i = 0; i < opened_.size(); ++i) {
        BitVector bits(cols);
        for (ColAddr c = 0; c < cols; ++c) {
            bits.set(c, rowHoldsHighForTrit(opened_[i].role,
                                            column_trit[c]));
        }
        mc_.writeRowVoltage(bank_,
                            backupBase_ + static_cast<RowAddr>(i),
                            bits);
    }
    generateFromBackups();
    storedTrits_ = trits.size();
    hasPayload_ = true;
}

std::vector<int>
TernaryStore::load()
{
    fatal_if(!hasPayload_, "nothing stored");
    // First probe destroys the analog state; re-generate in between.
    mc_.fillRowVoltage(bank_, probeRow_, true);
    const BitVector x1 =
        multiRowActivate(mc_, bank_, opened_[1].row, probeRow_);
    generateFromBackups();
    mc_.fillRowVoltage(bank_, probeRow_, false);
    const BitVector x2 =
        multiRowActivate(mc_, bank_, opened_[1].row, probeRow_);
    hasPayload_ = false;

    std::vector<int> out;
    out.reserve(storedTrits_);
    const std::size_t cols = mc_.chip().dramParams().colsPerRow;
    for (ColAddr c = 0; c < cols && out.size() < storedTrits_; ++c) {
        if (usable_.get(c))
            out.push_back(static_cast<int>(x1.get(c)) + x2.get(c));
    }
    return out;
}

void
TernaryStore::profileColumns(int trials)
{
    panic_if(trials < 1, "need at least one profiling trial");
    const std::size_t cols = mc_.chip().dramParams().colsPerRow;
    usable_.fill(true);

    // Start from every column and keep only those that decode all
    // three symbols correctly in every trial: the Half symbol filters
    // for a distinguishable mid-level (the paper's ~16%), the rail
    // symbols weed out columns that only decode "1" by per-trial
    // flakiness.
    profiled_ = true;
    capacity_ = cols;
    for (int t = 0; t < trials; ++t) {
        std::vector<int> pattern(capacity_);
        for (std::size_t i = 0; i < pattern.size(); ++i) {
            pattern[i] = t == 0 ? 1
                                : static_cast<int>(
                                      (i + static_cast<std::size_t>(
                                               t)) %
                                      3);
        }
        store(pattern);
        const auto back = load();
        BitVector next(cols);
        std::size_t idx = 0;
        for (ColAddr c = 0; c < cols; ++c) {
            if (usable_.get(c)) {
                next.set(c, back[idx] == pattern[idx]);
                ++idx;
            }
        }
        usable_ = next;
        capacity_ = usable_.popcount();
        fatal_if(capacity_ == 0,
                 "no distinguishable Half columns on this module");
    }
    hasPayload_ = false;
}

} // namespace fracdram::core
