/**
 * @file
 * Ternary storage on Half-m (paper Sec. VI-C): each usable column of
 * a row quadruple stores one trit {0, 1, 2} - rails for 0/2, a Half
 * value for 1.
 *
 * The paper is explicit that the readout mechanism "is not mature
 * yet": it needs four binary copies of the data (the MAJ3 probe
 * destroys the stored values, so they must be re-generated between
 * the two probes) and only the columns with a distinguishable Half
 * value - around 16% - can carry the middle symbol. TernaryStore
 * implements exactly that contract: a one-time profiling pass finds
 * the usable columns, store() keeps the four binary init patterns in
 * backup rows, and load() runs the two-probe readout with an
 * in-between re-generation.
 */

#ifndef FRACDRAM_CORE_TERNARY_HH
#define FRACDRAM_CORE_TERNARY_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/row_decoder.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/**
 * A ternary store over one sub-array's row quadruple.
 */
class TernaryStore
{
  public:
    /**
     * @param mc controller (enforcement must be off); the module must
     *        support four-row activation
     * @param bank bank to use
     * @param r1 first activated row (default 8: quadruple {0,1,8,9})
     * @param r2 second activated row
     * @param probe_row row used for the MAJ3 readout probes
     * @param backup_base first of four consecutive rows holding the
     *        binary init patterns between the two probes
     */
    TernaryStore(softmc::MemoryController &mc, BankAddr bank = 0,
                 RowAddr r1 = 8, RowAddr r2 = 1,
                 RowAddr probe_row = 2, RowAddr backup_base = 16);

    /**
     * One-time profiling: find the columns whose Half value is
     * distinguishable (decodes as 1) across @p trials repetitions.
     * Must be called before store()/load().
     */
    void profileColumns(int trials = 3);

    /** Columns usable for trits (profiling result). */
    const BitVector &usableColumns() const { return usable_; }

    /** Number of trits one store() can hold. */
    std::size_t capacityTrits() const { return capacity_; }

    /** Whether profiling has run. */
    bool profiled() const { return profiled_; }

    /**
     * Store a trit vector (size <= capacityTrits()). Trit i lands in
     * the i-th usable column; other columns carry no payload.
     */
    void store(const std::vector<int> &trits);

    /**
     * Destructive readout of the stored trits. Internally runs the
     * two MAJ3 probes with a re-generation from the backup rows in
     * between (the paper's four-copies overhead).
     */
    std::vector<int> load();

  private:
    /** Write init patterns for the current payload and run Half-m. */
    void generateFromBackups();

    softmc::MemoryController &mc_;
    BankAddr bank_;
    RowAddr r1_, r2_, probeRow_, backupBase_;
    std::vector<sim::OpenedRow> opened_;
    BitVector usable_;
    std::size_t capacity_ = 0;
    bool profiled_ = false;
    std::size_t storedTrits_ = 0;
    bool hasPayload_ = false;
};

} // namespace fracdram::core

#endif // FRACDRAM_CORE_TERNARY_HH
