#include "core/verify.hh"

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "core/multi_row.hh"

namespace fracdram::core
{

BitVector
FracVerifyResult::provenFractional() const
{
    panic_if(x1.size() != x2.size(), "X1/X2 size mismatch");
    BitVector out(x1.size());
    for (std::size_t c = 0; c < x1.size(); ++c)
        out.set(c, x1.get(c) && !x2.get(c));
    return out;
}

double
FracVerifyResult::provenFraction() const
{
    return provenFractional().hammingWeight();
}

std::vector<double>
FracVerifyResult::comboFractions() const
{
    panic_if(x1.size() != x2.size(), "X1/X2 size mismatch");
    std::vector<std::size_t> counts(4, 0);
    for (std::size_t c = 0; c < x1.size(); ++c) {
        const std::size_t idx = (x1.get(c) ? 0u : 2u) +
                                (x2.get(c) ? 0u : 1u);
        ++counts[idx];
    }
    std::vector<double> out(4);
    for (std::size_t i = 0; i < 4; ++i) {
        out[i] = x1.empty() ? 0.0
                            : static_cast<double>(counts[i]) /
                                  static_cast<double>(x1.size());
    }
    return out;
}

namespace
{

BitVector
probeOnce(softmc::MemoryController &mc, BankAddr bank,
          RowAddr act_first, RowAddr act_second,
          const std::vector<RowAddr> &frac_rows, RowAddr probe_row,
          int num_fracs, bool frac_init_ones, bool probe_value)
{
    for (const auto row : frac_rows) {
        mc.fillRowVoltage(bank, row, frac_init_ones);
        if (num_fracs > 0)
            frac(mc, bank, row, num_fracs);
    }
    mc.fillRowVoltage(bank, probe_row, probe_value);
    return multiRowActivate(mc, bank, act_first, act_second);
}

} // namespace

FracVerifyResult
maj3FracProbe(softmc::MemoryController &mc, BankAddr bank,
              RowAddr act_first, RowAddr act_second,
              const std::vector<RowAddr> &frac_rows, RowAddr probe_row,
              int num_fracs, bool frac_init_ones)
{
    panic_if(frac_rows.empty(), "need at least one fractional row");
    FracVerifyResult result;
    result.x1 = probeOnce(mc, bank, act_first, act_second, frac_rows,
                          probe_row, num_fracs, frac_init_ones, true);
    result.x2 = probeOnce(mc, bank, act_first, act_second, frac_rows,
                          probe_row, num_fracs, frac_init_ones, false);
    return result;
}

} // namespace fracdram::core
