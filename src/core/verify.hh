/**
 * @file
 * MAJ3-based fractional-value verification (paper Sec. IV-B2).
 *
 * Store the fractional value in two of three openable rows, put a
 * known probe value (first all ones, then all zeros) in the third,
 * and run MAJ3 twice. If the "fractional" rows actually held a rail
 * value, both results would equal that rail regardless of the probe;
 * observing X1=1 and X2=0 on a column proves its stored value is
 * neither rail - a fractional value near V_dd/2.
 */

#ifndef FRACDRAM_CORE_VERIFY_HH
#define FRACDRAM_CORE_VERIFY_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::core
{

/** The two MAJ3 probe results of the verification procedure. */
struct FracVerifyResult
{
    BitVector x1; //!< MAJ3 result with the probe row holding ones
    BitVector x2; //!< MAJ3 result with the probe row holding zeros

    /** Columns proven fractional: X1 high and X2 low. */
    BitVector provenFractional() const;

    /** Fraction of columns proven fractional. */
    double provenFraction() const;

    /**
     * Per-column counts of the four (X1, X2) combinations, in the
     * order (1,1), (1,0), (0,1), (0,0) - the bars of the paper's
     * Fig. 7.
     */
    std::vector<double> comboFractions() const;
};

/**
 * Run the verification procedure.
 *
 * @param mc controller (enforcement must be off)
 * @param bank target bank
 * @param act_first R1 of the MAJ3 sequence
 * @param act_second R2 of the MAJ3 sequence
 * @param frac_rows rows receiving the fractional value
 * @param probe_row row receiving the all-ones / all-zeros probe
 * @param num_fracs Frac operations per fractional row (0 = none, the
 *        baseline case)
 * @param frac_init_ones initial fill of the fractional rows
 */
FracVerifyResult maj3FracProbe(softmc::MemoryController &mc,
                               BankAddr bank, RowAddr act_first,
                               RowAddr act_second,
                               const std::vector<RowAddr> &frac_rows,
                               RowAddr probe_row, int num_fracs,
                               bool frac_init_ones);

} // namespace fracdram::core

#endif // FRACDRAM_CORE_VERIFY_HH
