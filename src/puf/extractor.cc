#include "puf/extractor.hh"

namespace fracdram::puf
{

BitVector
VonNeumannExtractor::extract(const BitVector &input)
{
    BitVector out;
    for (std::size_t i = 0; i + 1 < input.size(); i += 2) {
        const bool a = input.get(i);
        const bool b = input.get(i + 1);
        if (a != b)
            out.pushBack(a);
    }
    return out;
}

double
VonNeumannExtractor::expectedYield(double p)
{
    return p * (1.0 - p);
}

} // namespace fracdram::puf
