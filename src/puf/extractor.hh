/**
 * @file
 * Von Neumann randomness extractor (the whitening step the paper
 * applies before the NIST suite, Sec. VI-B2).
 *
 * Consecutive non-overlapping bit pairs are mapped 01 -> 0, 10 -> 1,
 * and 00/11 are discarded; the output is unbiased whenever the input
 * bits are independent, regardless of their bias.
 */

#ifndef FRACDRAM_PUF_EXTRACTOR_HH
#define FRACDRAM_PUF_EXTRACTOR_HH

#include "common/bitvec.hh"

namespace fracdram::puf
{

/**
 * Classic Von Neumann extractor.
 */
class VonNeumannExtractor
{
  public:
    /** Whiten a bit stream. Output length varies with the input. */
    static BitVector extract(const BitVector &input);

    /**
     * Expected output/input length ratio for an i.i.d. input with
     * one-probability @p p: p(1-p) output bits per input bit pair.
     */
    static double expectedYield(double p);
};

} // namespace fracdram::puf

#endif // FRACDRAM_PUF_EXTRACTOR_HH
