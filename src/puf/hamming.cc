#include "puf/hamming.hh"

#include "common/logging.hh"

namespace fracdram::puf
{

double
normalizedHammingDistance(const BitVector &a, const BitVector &b)
{
    panic_if(a.size() != b.size() || a.empty(),
             "normalizedHammingDistance: bad sizes %zu / %zu", a.size(),
             b.size());
    return static_cast<double>(a.hammingDistance(b)) /
           static_cast<double>(a.size());
}

std::vector<double>
HammingStudy::pairwiseDistances(const std::vector<BitVector> &responses)
{
    std::vector<double> out;
    for (std::size_t i = 0; i < responses.size(); ++i)
        for (std::size_t j = i + 1; j < responses.size(); ++j)
            out.push_back(
                normalizedHammingDistance(responses[i], responses[j]));
    return out;
}

std::vector<double>
HammingStudy::pairedDistances(const std::vector<BitVector> &a,
                              const std::vector<BitVector> &b)
{
    panic_if(a.size() != b.size(),
             "pairedDistances: set sizes differ (%zu vs %zu)", a.size(),
             b.size());
    std::vector<double> out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out.push_back(normalizedHammingDistance(a[i], b[i]));
    return out;
}

double
HammingStudy::meanHammingWeight(const std::vector<BitVector> &responses)
{
    if (responses.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : responses)
        sum += r.hammingWeight();
    return sum / static_cast<double>(responses.size());
}

} // namespace fracdram::puf
