/**
 * @file
 * Hamming-distance metrics for PUF evaluation (paper Sec. VI-B2).
 *
 * Intra-HD: distance between two responses of the *same* device to
 * the same challenge (ideally 0). Inter-HD: distance between
 * responses of *different* devices to the same challenge (ideally
 * 0.5). Hamming weight: fraction of ones in a response; groups whose
 * weight sits away from 0.5 show clustered inter-HDs.
 */

#ifndef FRACDRAM_PUF_HAMMING_HH
#define FRACDRAM_PUF_HAMMING_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/stats.hh"

namespace fracdram::puf
{

/** Normalized Hamming distance between two equal-length responses. */
double normalizedHammingDistance(const BitVector &a, const BitVector &b);

/**
 * Pairwise statistics over a set of responses to the same challenge.
 */
struct HammingStudy
{
    /**
     * All pairwise normalized distances within @p responses.
     */
    static std::vector<double>
    pairwiseDistances(const std::vector<BitVector> &responses);

    /**
     * Distances between corresponding responses of two sets (same
     * challenge order); used for cross-environment intra-HD.
     */
    static std::vector<double>
    pairedDistances(const std::vector<BitVector> &a,
                    const std::vector<BitVector> &b);

    /** Mean Hamming weight of a response set. */
    static double meanHammingWeight(
        const std::vector<BitVector> &responses);
};

} // namespace fracdram::puf

#endif // FRACDRAM_PUF_HAMMING_HH
