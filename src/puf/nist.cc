#include "puf/nist.hh"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace fracdram::puf::nist
{

bool
TestResult::passed(double alpha) const
{
    if (!applicable)
        return true;
    for (const double p : pValues)
        if (p < alpha)
            return false;
    return true;
}

double
TestResult::minP() const
{
    double m = 1.0;
    for (const double p : pValues)
        m = std::min(m, p);
    return m;
}

namespace
{

double
bitSign(bool b)
{
    return b ? 1.0 : -1.0;
}

TestResult
notApplicable(const char *name)
{
    TestResult r;
    r.name = name;
    r.applicable = false;
    return r;
}

} // namespace

TestResult
frequency(const BitVector &bits)
{
    TestResult r;
    r.name = "frequency";
    const std::size_t n = bits.size();
    if (n < 100)
        return notApplicable("frequency");
    const double s =
        2.0 * static_cast<double>(bits.popcount()) -
        static_cast<double>(n);
    const double s_obs = std::fabs(s) / std::sqrt(static_cast<double>(n));
    r.pValues.push_back(erfcSafe(s_obs / std::sqrt(2.0)));
    return r;
}

TestResult
blockFrequency(const BitVector &bits, std::size_t block)
{
    TestResult r;
    r.name = "block-frequency";
    const std::size_t n = bits.size();
    const std::size_t num_blocks = n / block;
    if (num_blocks < 1)
        return notApplicable("block-frequency");
    double chi2 = 0.0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        std::size_t ones = 0;
        for (std::size_t i = 0; i < block; ++i)
            ones += bits.get(b * block + i);
        const double pi = static_cast<double>(ones) /
                          static_cast<double>(block);
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * static_cast<double>(block);
    r.pValues.push_back(
        igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0));
    return r;
}

TestResult
runs(const BitVector &bits)
{
    TestResult r;
    r.name = "runs";
    const std::size_t n = bits.size();
    if (n < 100)
        return notApplicable("runs");
    const double pi = bits.hammingWeight();
    // Pre-test: the frequency test must be passable.
    if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) {
        r.pValues.push_back(0.0);
        return r;
    }
    std::size_t v = 1;
    for (std::size_t i = 1; i < n; ++i)
        v += bits.get(i) != bits.get(i - 1);
    const double nn = static_cast<double>(n);
    const double num =
        std::fabs(static_cast<double>(v) - 2.0 * nn * pi * (1.0 - pi));
    const double den =
        2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
    r.pValues.push_back(erfcSafe(num / den));
    return r;
}

TestResult
longestRunOfOnes(const BitVector &bits)
{
    TestResult r;
    r.name = "longest-run";
    const std::size_t n = bits.size();
    if (n < 128)
        return notApplicable("longest-run");

    std::size_t m;                //!< block length
    std::vector<double> pi;       //!< class probabilities
    std::vector<std::size_t> vcls; //!< class boundaries (longest run)
    if (n < 6272) {
        m = 8;
        vcls = {1, 2, 3, 4};
        pi = {0.2148, 0.3672, 0.2305, 0.1875};
    } else if (n < 750000) {
        m = 128;
        vcls = {4, 5, 6, 7, 8, 9};
        pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    } else {
        m = 10000;
        vcls = {10, 11, 12, 13, 14, 15, 16};
        pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    }
    const std::size_t num_blocks = n / m;
    std::vector<std::size_t> nu(vcls.size(), 0);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        std::size_t longest = 0, run = 0;
        for (std::size_t i = 0; i < m; ++i) {
            if (bits.get(b * m + i)) {
                ++run;
                longest = std::max(longest, run);
            } else {
                run = 0;
            }
        }
        std::size_t cls = vcls.size() - 1;
        for (std::size_t k = 0; k < vcls.size(); ++k) {
            if (longest <= vcls[k]) {
                cls = k;
                break;
            }
        }
        ++nu[cls];
    }
    double chi2 = 0.0;
    for (std::size_t k = 0; k < vcls.size(); ++k) {
        const double expect =
            static_cast<double>(num_blocks) * pi[k];
        const double d = static_cast<double>(nu[k]) - expect;
        chi2 += d * d / expect;
    }
    r.pValues.push_back(
        igamc(static_cast<double>(vcls.size() - 1) / 2.0, chi2 / 2.0));
    return r;
}

namespace
{

/** Rank of a bit matrix over GF(2); rows are 64-bit limb vectors. */
std::size_t
gf2Rank(std::vector<std::uint64_t> rows, std::size_t ncols)
{
    std::size_t rank = 0;
    for (std::size_t col = 0; col < ncols && rank < rows.size(); ++col) {
        const std::uint64_t mask = std::uint64_t{1} << col;
        std::size_t pivot = rank;
        while (pivot < rows.size() && !(rows[pivot] & mask))
            ++pivot;
        if (pivot == rows.size())
            continue;
        std::swap(rows[rank], rows[pivot]);
        for (std::size_t i = 0; i < rows.size(); ++i)
            if (i != rank && (rows[i] & mask))
                rows[i] ^= rows[rank];
        ++rank;
    }
    return rank;
}

} // namespace

TestResult
binaryMatrixRank(const BitVector &bits)
{
    TestResult r;
    r.name = "matrix-rank";
    constexpr std::size_t m = 32;
    const std::size_t n = bits.size();
    const std::size_t num_matrices = n / (m * m);
    if (num_matrices < 38)
        return notApplicable("matrix-rank");

    std::size_t full = 0, minus1 = 0;
    for (std::size_t mat = 0; mat < num_matrices; ++mat) {
        std::vector<std::uint64_t> rows(m, 0);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j)
                if (bits.get(mat * m * m + i * m + j))
                    rows[i] |= std::uint64_t{1} << j;
        const std::size_t rank = gf2Rank(std::move(rows), m);
        if (rank == m)
            ++full;
        else if (rank == m - 1)
            ++minus1;
    }
    const double nmat = static_cast<double>(num_matrices);
    const double p_full = 0.2888, p_m1 = 0.5776, p_rest = 0.1336;
    const double rest =
        nmat - static_cast<double>(full) - static_cast<double>(minus1);
    double chi2 = 0.0;
    chi2 += std::pow(static_cast<double>(full) - p_full * nmat, 2) /
            (p_full * nmat);
    chi2 += std::pow(static_cast<double>(minus1) - p_m1 * nmat, 2) /
            (p_m1 * nmat);
    chi2 += std::pow(rest - p_rest * nmat, 2) / (p_rest * nmat);
    r.pValues.push_back(std::exp(-chi2 / 2.0));
    return r;
}

namespace
{

/** In-place iterative radix-2 FFT. Size must be a power of two. */
void
fft(std::vector<std::complex<double>> &a)
{
    const std::size_t n = a.size();
    panic_if(n == 0 || (n & (n - 1)) != 0, "FFT size must be 2^k");
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = -2.0 * M_PI / static_cast<double>(len);
        const std::complex<double> wl(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const auto u = a[i + k];
                const auto v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wl;
            }
        }
    }
}

} // namespace

TestResult
discreteFourierTransform(const BitVector &bits)
{
    TestResult r;
    r.name = "dft";
    // Truncate to the largest power of two for the radix-2 FFT.
    std::size_t n = 1;
    while (n * 2 <= bits.size())
        n *= 2;
    if (n < 1024)
        return notApplicable("dft");

    std::vector<std::complex<double>> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = bitSign(bits.get(i));
    fft(x);

    const double nn = static_cast<double>(n);
    const double threshold = std::sqrt(std::log(1.0 / 0.05) * nn);
    std::size_t below = 0;
    for (std::size_t i = 0; i < n / 2; ++i)
        below += std::abs(x[i]) < threshold;
    const double n0 = 0.95 * nn / 2.0;
    const double n1 = static_cast<double>(below);
    const double d =
        (n1 - n0) / std::sqrt(nn * 0.95 * 0.05 / 4.0);
    r.pValues.push_back(erfcSafe(std::fabs(d) / std::sqrt(2.0)));
    return r;
}

std::vector<BitVector>
aperiodicTemplates(std::size_t m, std::size_t count)
{
    // A template B is aperiodic when no proper shift of B matches
    // itself (it cannot overlap with itself in the stream).
    auto aperiodic = [m](std::uint32_t pattern) {
        for (std::size_t shift = 1; shift < m; ++shift) {
            bool match = true;
            for (std::size_t i = 0; i + shift < m; ++i) {
                const bool a = (pattern >> i) & 1;
                const bool b = (pattern >> (i + shift)) & 1;
                if (a != b) {
                    match = false;
                    break;
                }
            }
            if (match)
                return false;
        }
        return true;
    };
    std::vector<BitVector> out;
    for (std::uint32_t pat = 0;
         pat < (std::uint32_t{1} << m) && out.size() < count; ++pat) {
        if (!aperiodic(pat))
            continue;
        BitVector t(m);
        for (std::size_t i = 0; i < m; ++i)
            t.set(i, (pat >> i) & 1);
        out.push_back(std::move(t));
    }
    return out;
}

TestResult
nonOverlappingTemplate(const BitVector &bits, std::size_t template_len,
                       std::size_t num_templates)
{
    TestResult r;
    r.name = "non-overlapping-template";
    const std::size_t n = bits.size();
    constexpr std::size_t num_blocks = 8;
    const std::size_t block = n / num_blocks;
    if (block < template_len * 10)
        return notApplicable("non-overlapping-template");

    const auto templates = aperiodicTemplates(template_len,
                                              num_templates);
    const double mm = static_cast<double>(block);
    const double m = static_cast<double>(template_len);
    const double mu =
        (mm - m + 1.0) / std::pow(2.0, m);
    const double sigma2 =
        mm * (1.0 / std::pow(2.0, m) -
              (2.0 * m - 1.0) / std::pow(2.0, 2.0 * m));

    // Bucket every in-block position by its template_len-bit window
    // value in one rolling pass; each template then walks only its
    // own (sparse, ascending) candidate list. The counting semantics
    // - per-block ascending scan, skip template_len positions after a
    // hit - are unchanged, so the chi-square inputs are identical to
    // the naive per-template scan.
    const std::size_t npat = std::size_t{1} << template_len;
    std::vector<std::vector<std::uint32_t>> buckets(npat);
    std::uint32_t win = 0;
    for (std::size_t k = 1; k < template_len; ++k)
        win |= static_cast<std::uint32_t>(bits.get(k - 1)) << (k - 1);
    for (std::size_t i = 0; i + template_len <= num_blocks * block;
         ++i) {
        win = (win >> 1) |
              (static_cast<std::uint32_t>(
                   bits.get(i + template_len - 1))
               << (template_len - 1));
        if (i % block + template_len <= block)
            buckets[win].push_back(static_cast<std::uint32_t>(i));
    }

    std::vector<std::size_t> hits(num_blocks);
    for (const auto &tpl : templates) {
        std::uint32_t pat = 0;
        for (std::size_t k = 0; k < template_len; ++k)
            pat |= static_cast<std::uint32_t>(tpl.get(k)) << k;
        hits.assign(num_blocks, 0);
        std::size_t cur_b = num_blocks; // skip state resets per block
        std::size_t next_allowed = 0;
        for (const std::uint32_t pos : buckets[pat]) {
            const std::size_t b = pos / block;
            if (b != cur_b) {
                cur_b = b;
                next_allowed = 0;
            }
            if (pos < next_allowed)
                continue;
            ++hits[b];
            next_allowed = pos + template_len;
        }
        double chi2 = 0.0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
            const double d = static_cast<double>(hits[b]) - mu;
            chi2 += d * d / sigma2;
        }
        r.pValues.push_back(
            igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0));
    }
    return r;
}

TestResult
overlappingTemplate(const BitVector &bits, std::size_t template_len)
{
    TestResult r;
    r.name = "overlapping-template";
    const std::size_t n = bits.size();
    constexpr std::size_t block = 1032;
    constexpr std::size_t k = 5;
    const std::size_t num_blocks = n / block;
    if (num_blocks < 100)
        return notApplicable("overlapping-template");

    // SP 800-22 probabilities for m=9, M=1032.
    const double pi[k + 1] = {0.364091, 0.185659, 0.139381,
                              0.100571, 0.070432, 0.139865};
    std::vector<std::size_t> nu(k + 1, 0);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i + template_len <= block; ++i) {
            bool match = true;
            for (std::size_t j = 0; j < template_len; ++j) {
                if (!bits.get(b * block + i + j)) { // all-ones template
                    match = false;
                    break;
                }
            }
            hits += match;
        }
        ++nu[std::min(hits, k)];
    }
    double chi2 = 0.0;
    for (std::size_t i = 0; i <= k; ++i) {
        const double expect =
            static_cast<double>(num_blocks) * pi[i];
        const double d = static_cast<double>(nu[i]) - expect;
        chi2 += d * d / expect;
    }
    r.pValues.push_back(igamc(static_cast<double>(k) / 2.0, chi2 / 2.0));
    return r;
}

TestResult
universal(const BitVector &bits)
{
    TestResult r;
    r.name = "universal";
    const std::size_t n = bits.size();

    // SP 800-22 table: expected value and variance of the per-block
    // log2 distance, indexed by L.
    struct Row
    {
        std::size_t minN;
        std::size_t l;
        double expected;
        double variance;
    };
    static const Row table[] = {
        {387840, 6, 5.2177052, 2.954},
        {904960, 7, 6.1962507, 3.125},
        {2068480, 8, 7.1836656, 3.238},
        {4654080, 9, 8.1764248, 3.311},
        {10342400, 10, 9.1723243, 3.356},
    };
    std::size_t l = 0;
    double expected = 0.0, variance = 0.0;
    for (const auto &row : table) {
        if (n >= row.minN) {
            l = row.l;
            expected = row.expected;
            variance = row.variance;
        }
    }
    if (l == 0)
        return notApplicable("universal");

    const std::size_t q = 10u << l; // 10 * 2^L initialization blocks
    const std::size_t num_blocks = n / l;
    if (num_blocks <= q)
        return notApplicable("universal");
    const std::size_t kk = num_blocks - q;

    std::vector<std::size_t> last_seen(std::size_t{1} << l, 0);
    auto block_value = [&](std::size_t b) {
        std::size_t v = 0;
        for (std::size_t i = 0; i < l; ++i)
            v = (v << 1) | bits.get(b * l + i);
        return v;
    };
    for (std::size_t b = 0; b < q; ++b)
        last_seen[block_value(b)] = b + 1;
    double sum = 0.0;
    for (std::size_t b = q; b < num_blocks; ++b) {
        const std::size_t v = block_value(b);
        sum += std::log2(static_cast<double>(b + 1 - last_seen[v]));
        last_seen[v] = b + 1;
    }
    const double fn = sum / static_cast<double>(kk);
    // Finite-size correction factor of SP 800-22.
    const double c =
        0.7 - 0.8 / static_cast<double>(l) +
        (4.0 + 32.0 / static_cast<double>(l)) *
            std::pow(static_cast<double>(kk),
                     -3.0 / static_cast<double>(l)) /
            15.0;
    const double sigma =
        c * std::sqrt(variance / static_cast<double>(kk));
    r.pValues.push_back(
        erfcSafe(std::fabs(fn - expected) / (std::sqrt(2.0) * sigma)));
    return r;
}

namespace
{

/**
 * Berlekamp-Massey linear complexity of a GF(2) sequence, word
 * parallel. Polynomials live as bit sets (bit j of word j/64 is the
 * coefficient of x^j); the discrepancy d = s[i] ^ XOR_j c[j]&s[i-j]
 * becomes the parity of (c >> 1) AND a reversed window w whose bit k
 * is s[i-1-k]. BM keeps deg(c) <= l, so folding over all words equals
 * the scalar j = 1..l sum.
 */
std::size_t
berlekampMassey(const std::uint64_t *s, std::size_t n)
{
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> c(words, 0), b(words, 0), t(words, 0);
    std::vector<std::uint64_t> w(words, 0);
    c[0] = 1;
    b[0] = 1;
    std::size_t l = 0;
    std::size_t m_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t si = (s[i >> 6] >> (i & 63)) & 1;
        std::uint64_t acc = 0;
        for (std::size_t k = 0; k < words; ++k) {
            const std::uint64_t down =
                (c[k] >> 1) |
                (k + 1 < words ? c[k + 1] << 63 : std::uint64_t{0});
            acc ^= down & w[k];
        }
        const std::uint64_t d =
            si ^ static_cast<std::uint64_t>(
                     __builtin_parityll(acc));
        if (d) {
            t = c;
            const std::size_t shift = i - m_idx;
            const std::size_t q = shift >> 6;
            const std::size_t rs = shift & 63;
            for (std::size_t k = words; k-- > q;) {
                std::uint64_t add = b[k - q] << rs;
                if (rs && k - q > 0)
                    add |= b[k - q - 1] >> (64 - rs);
                c[k] ^= add;
            }
            if (2 * l <= i) {
                l = i + 1 - l;
                m_idx = i;
                b.swap(t);
            }
        }
        for (std::size_t k = words; k-- > 1;)
            w[k] = (w[k] << 1) | (w[k - 1] >> 63);
        w[0] = (w[0] << 1) | si;
    }
    return l;
}

/** Copy bits [start, start + len) into bit-0-aligned words. */
void
extractBits(const BitVector &bits, std::size_t start, std::size_t len,
            std::uint64_t *out)
{
    const std::uint64_t *w = bits.words();
    const std::size_t q = start >> 6;
    const std::size_t rs = start & 63;
    const std::size_t out_words = (len + 63) / 64;
    for (std::size_t k = 0; k < out_words; ++k) {
        std::uint64_t v = w[q + k] >> rs;
        if (rs && q + k + 1 < bits.numWords())
            v |= w[q + k + 1] << (64 - rs);
        out[k] = v;
    }
    const std::size_t tail = len & 63;
    if (tail)
        out[out_words - 1] &= (std::uint64_t{1} << tail) - 1;
}

} // namespace

TestResult
linearComplexity(const BitVector &bits, std::size_t block)
{
    TestResult r;
    r.name = "linear-complexity";
    const std::size_t n = bits.size();
    const std::size_t num_blocks = n / block;
    if (num_blocks < 200)
        return notApplicable("linear-complexity");

    constexpr std::size_t k = 6;
    const double pi[k + 1] = {0.010417, 0.03125, 0.125, 0.5,
                              0.25, 0.0625, 0.020833};
    const double mm = static_cast<double>(block);
    const double mu =
        mm / 2.0 + (9.0 + (block % 2 ? -1.0 : 1.0)) / 36.0 -
        (mm / 3.0 + 2.0 / 9.0) / std::pow(2.0, mm);

    std::vector<std::size_t> nu(k + 1, 0);
    std::vector<std::uint64_t> s((block + 63) / 64);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        extractBits(bits, b * block, block, s.data());
        const double l =
            static_cast<double>(berlekampMassey(s.data(), block));
        const double sign = (block % 2) ? -1.0 : 1.0;
        const double t = sign * (l - mu) + 2.0 / 9.0;
        std::size_t cls;
        if (t <= -2.5)
            cls = 0;
        else if (t <= -1.5)
            cls = 1;
        else if (t <= -0.5)
            cls = 2;
        else if (t <= 0.5)
            cls = 3;
        else if (t <= 1.5)
            cls = 4;
        else if (t <= 2.5)
            cls = 5;
        else
            cls = 6;
        ++nu[cls];
    }
    double chi2 = 0.0;
    for (std::size_t i = 0; i <= k; ++i) {
        const double expect =
            static_cast<double>(num_blocks) * pi[i];
        const double d = static_cast<double>(nu[i]) - expect;
        chi2 += d * d / expect;
    }
    r.pValues.push_back(igamc(static_cast<double>(k) / 2.0, chi2 / 2.0));
    return r;
}

namespace
{

/** psi^2_m statistic of the serial test. */
double
psiSquared(const BitVector &bits, std::size_t m)
{
    if (m == 0)
        return 0.0;
    const std::size_t n = bits.size();
    std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
    const std::uint32_t mask = (std::uint32_t{1} << m) - 1;
    std::uint32_t v = 0;
    // Prime the window with the first m-1 bits (with wraparound later).
    for (std::size_t i = 0; i < m - 1; ++i)
        v = ((v << 1) | bits.get(i)) & mask;
    for (std::size_t i = m - 1; i < n + m - 1; ++i) {
        v = ((v << 1) | bits.get(i % n)) & mask;
        ++counts[v];
    }
    double sum = 0.0;
    for (const auto c : counts)
        sum += static_cast<double>(c) * static_cast<double>(c);
    const double nn = static_cast<double>(n);
    return sum * std::pow(2.0, static_cast<double>(m)) / nn - nn;
}

} // namespace

TestResult
serial(const BitVector &bits, std::size_t m)
{
    TestResult r;
    r.name = "serial";
    if (bits.size() < (std::size_t{1} << (m + 2)))
        return notApplicable("serial");
    const double psi_m = psiSquared(bits, m);
    const double psi_m1 = psiSquared(bits, m - 1);
    const double psi_m2 = psiSquared(bits, m - 2);
    const double d1 = psi_m - psi_m1;
    const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    r.pValues.push_back(
        igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0));
    r.pValues.push_back(
        igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0));
    return r;
}

TestResult
approximateEntropy(const BitVector &bits, std::size_t m)
{
    TestResult r;
    r.name = "approximate-entropy";
    const std::size_t n = bits.size();
    if (n < (std::size_t{1} << (m + 5)))
        return notApplicable("approximate-entropy");

    auto phi = [&bits, n](std::size_t mm) {
        if (mm == 0)
            return 0.0;
        std::vector<std::uint32_t> counts(std::size_t{1} << mm, 0);
        const std::uint32_t mask = (std::uint32_t{1} << mm) - 1;
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < mm - 1; ++i)
            v = ((v << 1) | bits.get(i)) & mask;
        for (std::size_t i = mm - 1; i < n + mm - 1; ++i) {
            v = ((v << 1) | bits.get(i % n)) & mask;
            ++counts[v];
        }
        double sum = 0.0;
        const double nn = static_cast<double>(n);
        for (const auto c : counts) {
            if (c) {
                const double p = static_cast<double>(c) / nn;
                sum += p * std::log(p);
            }
        }
        return sum;
    };

    const double ap_en = phi(m) - phi(m + 1);
    const double chi2 =
        2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
    r.pValues.push_back(
        igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0));
    return r;
}

TestResult
cumulativeSums(const BitVector &bits)
{
    TestResult r;
    r.name = "cumulative-sums";
    const std::size_t n = bits.size();
    if (n < 100)
        return notApplicable("cumulative-sums");

    auto p_value = [n](double z) {
        const double nn = static_cast<double>(n);
        const double sqn = std::sqrt(nn);
        double sum1 = 0.0, sum2 = 0.0;
        const long k_lo1 =
            static_cast<long>(std::floor((-nn / z + 1.0) / 4.0));
        const long k_hi1 =
            static_cast<long>(std::floor((nn / z - 1.0) / 4.0));
        for (long k = k_lo1; k <= k_hi1; ++k) {
            const double kk = static_cast<double>(k);
            sum1 += normalCdf((4.0 * kk + 1.0) * z / sqn) -
                    normalCdf((4.0 * kk - 1.0) * z / sqn);
        }
        const long k_lo2 =
            static_cast<long>(std::floor((-nn / z - 3.0) / 4.0));
        const long k_hi2 =
            static_cast<long>(std::floor((nn / z - 1.0) / 4.0));
        for (long k = k_lo2; k <= k_hi2; ++k) {
            const double kk = static_cast<double>(k);
            sum2 += normalCdf((4.0 * kk + 3.0) * z / sqn) -
                    normalCdf((4.0 * kk + 1.0) * z / sqn);
        }
        return 1.0 - sum1 + sum2;
    };

    // Forward and backward modes.
    for (const bool forward : {true, false}) {
        double s = 0.0, zmax = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t idx = forward ? i : n - 1 - i;
            s += bitSign(bits.get(idx));
            zmax = std::max(zmax, std::fabs(s));
        }
        r.pValues.push_back(p_value(zmax));
    }
    return r;
}

namespace
{

/** Zero-crossing cycles of the +/-1 random walk. */
std::vector<std::vector<long>>
walkCycles(const BitVector &bits)
{
    std::vector<std::vector<long>> cycles;
    std::vector<long> cycle;
    long s = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        s += bits.get(i) ? 1 : -1;
        cycle.push_back(s);
        if (s == 0) {
            cycles.push_back(std::move(cycle));
            cycle.clear();
        }
    }
    if (!cycle.empty()) {
        cycle.push_back(0); // walk forced back to zero at the end
        cycles.push_back(std::move(cycle));
    }
    return cycles;
}

} // namespace

TestResult
randomExcursions(const BitVector &bits)
{
    TestResult r;
    r.name = "random-excursions";
    const auto cycles = walkCycles(bits);
    const double j = static_cast<double>(cycles.size());
    if (cycles.size() < 500)
        return notApplicable("random-excursions");

    // pi_k(x): probability of exactly k visits to state x per cycle.
    auto pi = [](long x, std::size_t k) {
        const double ax = std::fabs(static_cast<double>(x));
        if (k == 0)
            return 1.0 - 1.0 / (2.0 * ax);
        const double base = 1.0 - 1.0 / (2.0 * ax);
        const double p1 = 1.0 / (4.0 * ax * ax);
        if (k < 5)
            return p1 * std::pow(base, static_cast<double>(k - 1));
        // k >= 5 bucket
        return (1.0 / (2.0 * ax)) *
               std::pow(base, 4.0);
    };

    const long states[] = {-4, -3, -2, -1, 1, 2, 3, 4};
    for (const long x : states) {
        std::vector<std::size_t> nu(6, 0);
        for (const auto &cycle : cycles) {
            std::size_t visits = 0;
            for (const long s : cycle)
                visits += s == x;
            ++nu[std::min<std::size_t>(visits, 5)];
        }
        double chi2 = 0.0;
        for (std::size_t k = 0; k < 6; ++k) {
            const double expect = j * pi(x, k);
            const double d = static_cast<double>(nu[k]) - expect;
            chi2 += d * d / expect;
        }
        r.pValues.push_back(igamc(5.0 / 2.0, chi2 / 2.0));
    }
    return r;
}

TestResult
randomExcursionsVariant(const BitVector &bits)
{
    TestResult r;
    r.name = "random-excursions-variant";
    const auto cycles = walkCycles(bits);
    const double j = static_cast<double>(cycles.size());
    if (cycles.size() < 500)
        return notApplicable("random-excursions-variant");

    for (long x = -9; x <= 9; ++x) {
        if (x == 0)
            continue;
        double xi = 0.0;
        for (const auto &cycle : cycles)
            for (const long s : cycle)
                xi += s == x;
        const double ax = std::fabs(static_cast<double>(x));
        // SP 800-22: p = erfc(|xi - J| / sqrt(2 J (4|x| - 2))).
        const double denom = std::sqrt(2.0 * j * (4.0 * ax - 2.0));
        r.pValues.push_back(erfcSafe(std::fabs(xi - j) / denom));
    }
    return r;
}

std::vector<TestResult>
runAll(const BitVector &bits)
{
    return {
        frequency(bits),
        blockFrequency(bits),
        runs(bits),
        longestRunOfOnes(bits),
        binaryMatrixRank(bits),
        discreteFourierTransform(bits),
        nonOverlappingTemplate(bits),
        overlappingTemplate(bits),
        universal(bits),
        linearComplexity(bits),
        serial(bits),
        approximateEntropy(bits),
        cumulativeSums(bits),
        randomExcursions(bits),
        randomExcursionsVariant(bits),
    };
}

bool
allPassed(const std::vector<TestResult> &results, double alpha)
{
    for (const auto &r : results)
        if (!r.passed(alpha))
            return false;
    return true;
}

} // namespace fracdram::puf::nist
