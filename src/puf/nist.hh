/**
 * @file
 * NIST SP 800-22 statistical test suite (all 15 tests), implemented
 * from scratch for the paper's randomness row (Sec. VI-B2: one
 * million whitened PUF bits per module pass all 15 tests).
 *
 * Each test returns one or more p-values; a stream passes a test at
 * significance alpha (default 0.01) when every p-value is >= alpha.
 * Tests that need more structure than the stream provides (e.g. too
 * few zero-crossing cycles for the random-excursions tests) report
 * themselves as not applicable rather than failing.
 */

#ifndef FRACDRAM_PUF_NIST_HH
#define FRACDRAM_PUF_NIST_HH

#include <string>
#include <vector>

#include "common/bitvec.hh"

namespace fracdram::puf::nist
{

/** Outcome of one SP 800-22 test. */
struct TestResult
{
    std::string name;
    std::vector<double> pValues;
    bool applicable = true;

    /** Whether every p-value clears the significance level. */
    bool passed(double alpha = 0.01) const;

    /** Smallest p-value (1.0 when empty). */
    double minP() const;
};

/** @name The fifteen SP 800-22 tests */
/// @{
TestResult frequency(const BitVector &bits);
TestResult blockFrequency(const BitVector &bits, std::size_t block = 128);
TestResult runs(const BitVector &bits);
TestResult longestRunOfOnes(const BitVector &bits);
TestResult binaryMatrixRank(const BitVector &bits);
TestResult discreteFourierTransform(const BitVector &bits);
TestResult nonOverlappingTemplate(const BitVector &bits,
                                  std::size_t template_len = 9,
                                  std::size_t num_templates = 8);
TestResult overlappingTemplate(const BitVector &bits,
                               std::size_t template_len = 9);
TestResult universal(const BitVector &bits);
TestResult linearComplexity(const BitVector &bits,
                            std::size_t block = 500);
TestResult serial(const BitVector &bits, std::size_t m = 16);
TestResult approximateEntropy(const BitVector &bits, std::size_t m = 10);
TestResult cumulativeSums(const BitVector &bits);
TestResult randomExcursions(const BitVector &bits);
TestResult randomExcursionsVariant(const BitVector &bits);
/// @}

/** Run the full suite in SP 800-22 order. */
std::vector<TestResult> runAll(const BitVector &bits);

/** Whether every applicable test in @p results passed. */
bool allPassed(const std::vector<TestResult> &results,
               double alpha = 0.01);

/**
 * Generate the first @p count aperiodic templates of length @p m
 * (used by the non-overlapping template test).
 */
std::vector<BitVector> aperiodicTemplates(std::size_t m,
                                          std::size_t count);

} // namespace fracdram::puf::nist

#endif // FRACDRAM_PUF_NIST_HH
