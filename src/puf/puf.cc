#include "puf/puf.hh"

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "core/rowclone.hh"
#include "telemetry/metrics.hh"

namespace fracdram::puf
{

namespace
{

/** FracPUF pipeline counters. */
struct PufCounters
{
    telemetry::CounterId evaluations;
    telemetry::HistogramId evaluateNs;

    PufCounters()
    {
        auto &m = telemetry::Metrics::instance();
        evaluations = m.counter("puf.evaluations");
        evaluateNs = m.histogram("puf.evaluate_ns");
    }
};

const PufCounters &
pufCounters()
{
    static const PufCounters c;
    return c;
}

} // namespace

FracPuf::FracPuf(softmc::MemoryController &mc, int num_fracs)
    : mc_(mc), numFracs_(num_fracs)
{
    panic_if(num_fracs < 1, "PUF needs at least one Frac operation");
    fatal_if(!mc.chip().profile().supportsFrac,
             "group %s cannot Frac; no PUF on this module",
             sim::groupName(mc.chip().group()).c_str());
}

RowAddr
FracPuf::reservedOnesRow() const
{
    return mc_.chip().dramParams().rowsPerBank() - 1;
}

void
FracPuf::setUseInDramInit(bool use)
{
    useInDramInit_ = use;
    if (use) {
        onesRowReady_.assign(mc_.chip().dramParams().numBanks, false);
    }
}

BitVector
FracPuf::evaluate(const Challenge &challenge)
{
    const auto &pc = pufCounters();
    telemetry::count(pc.evaluations);
    const telemetry::ScopedTimer timer(pc.evaluateNs);
    // Initialize the segment to all ones - either one in-DRAM row
    // copy from a reserved all-ones row (the paper's 88-cycle
    // preparation) or a plain bus write - then drive the cells
    // toward V_dd/2 and read out.
    if (useInDramInit_) {
        const RowAddr src = reservedOnesRow();
        panic_if(challenge.row == src,
                 "challenge row collides with the reserved ones row");
        if (!onesRowReady_.at(challenge.bank)) {
            mc_.fillRowVoltage(challenge.bank, src, true);
            onesRowReady_[challenge.bank] = true;
        }
        core::rowCopy(mc_, challenge.bank, src, challenge.row);
    } else {
        mc_.fillRowVoltage(challenge.bank, challenge.row, true);
    }
    core::frac(mc_, challenge.bank, challenge.row, numFracs_);
    BitVector response =
        mc_.readRowVoltage(challenge.bank, challenge.row);
    if (discardAfterEvaluate_)
        mc_.chip().bank(challenge.bank).discardRow(challenge.row);
    return response;
}

std::vector<BitVector>
FracPuf::evaluateAll(const std::vector<Challenge> &challenges)
{
    std::vector<BitVector> out;
    out.reserve(challenges.size());
    for (const auto &c : challenges)
        out.push_back(evaluate(c));
    return out;
}

std::vector<Challenge>
FracPuf::makeChallenges(std::size_t count) const
{
    const auto &params = mc_.chip().dramParams();
    // The last row of each bank is reserved for the in-DRAM all-ones
    // source (setUseInDramInit).
    const RowAddr usable_rows = params.rowsPerBank() - 1;
    panic_if(count > std::size_t{params.numBanks} * usable_rows,
             "more challenges than rows");
    std::vector<Challenge> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Challenge c;
        c.bank = static_cast<BankAddr>(i % params.numBanks);
        c.row = static_cast<RowAddr>((i / params.numBanks) %
                                     usable_rows);
        out.push_back(c);
    }
    return out;
}

Cycles
FracPuf::preparationCycles() const
{
    return core::rowCopyCycles +
           static_cast<Cycles>(numFracs_) * core::fracOpCycles;
}

Cycles
FracPuf::evaluationCycles() const
{
    return preparationCycles() + mc_.readRowCycles();
}

} // namespace fracdram::puf
