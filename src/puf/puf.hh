/**
 * @file
 * The Frac-based Physically Unclonable Function (paper Sec. VI-B).
 *
 * Challenge: a memory segment (bank + row; the paper fixes the length
 * to one 8 KB row). Response: the data read out after initializing
 * the segment to all ones and issuing ten Frac operations - the cell
 * voltage lands near V_dd/2 and each column's sense amplifier resolves
 * it by its manufacturing offset, which is unique per device and
 * stable across supply voltage and temperature (the CODIC property,
 * achieved here without any DRAM modification).
 */

#ifndef FRACDRAM_PUF_PUF_HH
#define FRACDRAM_PUF_PUF_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::puf
{

/** A PUF challenge: which memory segment to evaluate. */
struct Challenge
{
    BankAddr bank = 0;
    RowAddr row = 0;

    bool operator==(const Challenge &o) const
    {
        return bank == o.bank && row == o.row;
    }
};

/**
 * Frac-based PUF over one module.
 */
class FracPuf
{
  public:
    /**
     * @param mc controller of the module (enforcement must be off)
     * @param num_fracs Frac operations per evaluation (paper: 10)
     */
    explicit FracPuf(softmc::MemoryController &mc, int num_fracs = 10);

    /** Evaluate one challenge-response pair. */
    BitVector evaluate(const Challenge &challenge);

    /** Evaluate a whole challenge set, in order. */
    std::vector<BitVector>
    evaluateAll(const std::vector<Challenge> &challenges);

    /**
     * Build the standard challenge set: @p count distinct rows spread
     * over the module's banks.
     */
    std::vector<Challenge> makeChallenges(std::size_t count) const;

    /**
     * Evaluation latency in memory cycles: row initialization (one
     * in-DRAM copy), the Frac operations, and the row readout
     * (the paper reports 88 preparation cycles + readout = 1.5 us,
     * or 0.7 us with an optimized controller).
     */
    Cycles evaluationCycles() const;

    /** Preparation-only part of evaluationCycles(). */
    Cycles preparationCycles() const;

    int numFracs() const { return numFracs_; }

    /**
     * Drop the evaluated row's simulator storage after each readout.
     * Purely a memory optimization for large challenge sweeps; the
     * row's *contents* are destroyed by the evaluation either way.
     */
    void setDiscardAfterEvaluate(bool discard)
    {
        discardAfterEvaluate_ = discard;
    }

    /**
     * Initialize the challenge row with an in-DRAM copy from a
     * reserved all-ones row (the paper's 88-cycle preparation: one
     * row copy + ten Fracs) instead of a bus write. The reserved row
     * is the last row of each bank; challenges must avoid it.
     */
    void setUseInDramInit(bool use);

    /** Whether in-DRAM initialization is active. */
    bool usesInDramInit() const { return useInDramInit_; }

  private:
    RowAddr reservedOnesRow() const;

    softmc::MemoryController &mc_;
    int numFracs_;
    bool discardAfterEvaluate_ = false;
    bool useInDramInit_ = false;
    std::vector<bool> onesRowReady_; //!< per bank
};

} // namespace fracdram::puf

#endif // FRACDRAM_PUF_PUF_HH
