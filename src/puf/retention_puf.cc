#include "puf/retention_puf.hh"

#include "common/logging.hh"

namespace fracdram::puf
{

RetentionPuf::RetentionPuf(softmc::MemoryController &mc,
                           Seconds decay_window)
    : mc_(mc), decayWindow_(decay_window)
{
    panic_if(decay_window <= 0.0, "decay window must be positive");
}

BitVector
RetentionPuf::evaluate(const Challenge &challenge)
{
    mc_.fillRowVoltage(challenge.bank, challenge.row, true);
    // Refresh stays off for the whole window (the scheme's cost).
    mc_.waitSeconds(decayWindow_);
    const BitVector alive =
        mc_.readRowVoltage(challenge.bank, challenge.row);
    BitVector decayed(alive.size(), true);
    return decayed ^ alive;
}

} // namespace fracdram::puf
