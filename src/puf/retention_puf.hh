/**
 * @file
 * Retention-failure DRAM PUF - the *prior-work baseline* the paper
 * compares against (Sec. VI-B1: "past DRAM-based PUFs have several
 * drawbacks such as long evaluation time [and] sensitivity to
 * environmental changes").
 *
 * The signature is the bitmap of cells that lose their data within a
 * fixed decay window with refresh paused (Keller'14 / D-PUF /
 * Xiong'16 style). Evaluation inherently takes the full decay window
 * (tens of seconds), and because leakage is strongly
 * temperature-dependent the set of decayed cells shifts with
 * temperature - both weaknesses the Frac-PUF avoids.
 */

#ifndef FRACDRAM_PUF_RETENTION_PUF_HH
#define FRACDRAM_PUF_RETENTION_PUF_HH

#include "common/bitvec.hh"
#include "common/types.hh"
#include "puf/puf.hh"
#include "softmc/controller.hh"

namespace fracdram::puf
{

/**
 * Retention-failure PUF over one module (baseline design).
 */
class RetentionPuf
{
  public:
    /**
     * @param mc controller of the module
     * @param decay_window seconds of refresh-paused decay per
     *        evaluation (typical prior work: 60-120 s)
     */
    explicit RetentionPuf(softmc::MemoryController &mc,
                          Seconds decay_window = 120.0);

    /**
     * Evaluate one challenge: write all ones, pause for the decay
     * window, read back; response bit = 1 where the cell decayed.
     */
    BitVector evaluate(const Challenge &challenge);

    /** Wall-clock evaluation time (dominated by the decay window). */
    Seconds evaluationSeconds() const { return decayWindow_; }

    Seconds decayWindow() const { return decayWindow_; }

  private:
    softmc::MemoryController &mc_;
    Seconds decayWindow_;
};

} // namespace fracdram::puf

#endif // FRACDRAM_PUF_RETENTION_PUF_HH
