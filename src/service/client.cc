#include "service/client.hh"

#include "common/logging.hh"
#include "service/net.hh"

namespace fracdram::service
{

namespace
{

bool
fail(std::string *err, std::string what)
{
    if (err != nullptr)
        *err = std::move(what);
    return false;
}

} // namespace

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), seq_(other.seq_),
      reader_(std::move(other.reader_)),
      rdbuf_(std::move(other.rdbuf_))
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        seq_ = other.seq_;
        reader_ = std::move(other.reader_);
        rdbuf_ = std::move(other.rdbuf_);
        other.fd_ = -1;
    }
    return *this;
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string *err)
{
    close();
    fd_ = connectTcp(host, port, err);
    if (fd_ < 0)
        return false;
    reader_ = FrameReader{};
    rdbuf_.resize(64 * 1024);
    return true;
}

void
Client::close()
{
    closeFd(fd_);
    fd_ = -1;
}

std::uint16_t
Client::nextSeq()
{
    return ++seq_;
}

bool
Client::send(const Request &req, std::string *err)
{
    if (fd_ < 0)
        return fail(err, "not connected");
    const auto framed = frame(encodeRequest(req));
    return writeAll(fd_, framed.data(), framed.size(), err);
}

bool
Client::recv(Response &resp, std::string *err, int timeout_ms)
{
    if (fd_ < 0)
        return fail(err, "not connected");
    std::vector<std::uint8_t> payload;
    while (true) {
        if (reader_.next(payload)) {
            std::string derr;
            if (!decodeResponse(payload.data(), payload.size(), resp,
                                &derr))
                return fail(err, "bad response: " + derr);
            return true;
        }
        if (!reader_.error().empty())
            return fail(err, reader_.error());
        const int r = waitReadable(fd_, timeout_ms);
        if (r < 0)
            return fail(err, "poll failed");
        if (r == 0)
            return fail(err, "timed out waiting for a response");
        const long n = readSome(fd_, rdbuf_.data(), rdbuf_.size());
        if (n == 0)
            return fail(err, "server closed the connection");
        if (n < 0)
            return fail(err, "read failed");
        reader_.feed(rdbuf_.data(), static_cast<std::size_t>(n));
    }
}

bool
Client::call(Request req, Response &resp, std::string *err)
{
    if (req.seq == 0)
        req.seq = nextSeq();
    if (!send(req, err) || !recv(resp, err))
        return false;
    if (resp.seq != req.seq)
        return fail(err,
                    strprintf("seq mismatch: sent %u, got %u",
                              req.seq, resp.seq));
    return true;
}

bool
Client::getEntropy(std::uint32_t n_bytes, bool raw,
                   std::vector<std::uint8_t> &out, Status &status,
                   std::string *err)
{
    Request req;
    req.type = MsgType::GetEntropy;
    req.flags = raw ? kFlagRawEntropy : 0;
    req.nBytes = n_bytes;
    Response resp;
    if (!call(req, resp, err))
        return false;
    status = resp.status;
    if (status == Status::Ok) {
        if (resp.data.size() != n_bytes)
            return fail(err, strprintf("asked for %u bytes, got %zu",
                                       n_bytes, resp.data.size()));
        out = std::move(resp.data);
    } else if (err != nullptr) {
        *err = resp.text;
    }
    return true;
}

bool
Client::getDeviceEntropy(std::uint32_t device, std::uint32_t n_bytes,
                         bool raw, std::vector<std::uint8_t> &out,
                         Status &status, std::string *err)
{
    Request req;
    req.type = MsgType::GetEntropy;
    req.flags = static_cast<std::uint8_t>(
        kFlagDeviceId | (raw ? kFlagRawEntropy : 0));
    req.device = device;
    req.nBytes = n_bytes;
    Response resp;
    if (!call(req, resp, err))
        return false;
    status = resp.status;
    if (status == Status::Ok) {
        if (resp.data.size() != n_bytes)
            return fail(err, strprintf("asked for %u bytes, got %zu",
                                       n_bytes, resp.data.size()));
        out = std::move(resp.data);
    } else if (err != nullptr) {
        *err = resp.text;
    }
    return true;
}

bool
Client::pufEnroll(std::uint32_t device, std::uint32_t bank,
                  std::uint32_t row, BitVector &bits, Status &status,
                  std::string *err)
{
    Request req;
    req.type = MsgType::PufEnroll;
    req.device = device;
    req.bank = bank;
    req.row = row;
    Response resp;
    if (!call(req, resp, err))
        return false;
    status = resp.status;
    if (status == Status::Ok)
        bits = std::move(resp.bits);
    else if (err != nullptr)
        *err = resp.text;
    return true;
}

bool
Client::pufResponse(std::uint32_t device, std::uint32_t bank,
                    std::uint32_t row, BitVector &bits,
                    std::uint32_t &hamming, Status &status,
                    std::string *err)
{
    Request req;
    req.type = MsgType::PufResponse;
    req.device = device;
    req.bank = bank;
    req.row = row;
    Response resp;
    if (!call(req, resp, err))
        return false;
    status = resp.status;
    if (status == Status::Ok) {
        bits = std::move(resp.bits);
        hamming = resp.hamming;
    } else if (err != nullptr) {
        *err = resp.text;
    }
    return true;
}

bool
Client::health(std::string &json, std::string *err)
{
    Request req;
    req.type = MsgType::Health;
    Response resp;
    if (!call(req, resp, err))
        return false;
    if (resp.status != Status::Ok)
        return fail(err, "HEALTH returned " +
                             std::string(statusName(resp.status)));
    json = std::move(resp.text);
    return true;
}

bool
Client::stats(std::string &json, std::string *err)
{
    Request req;
    req.type = MsgType::Stats;
    Response resp;
    if (!call(req, resp, err))
        return false;
    if (resp.status != Status::Ok)
        return fail(err, "STATS returned " +
                             std::string(statusName(resp.status)));
    json = std::move(resp.text);
    return true;
}

} // namespace fracdram::service
