/**
 * @file
 * Blocking client for the FracDRAM serving daemon. Two layers:
 *
 *  - send()/recv(): raw framed request/response exchange, usable for
 *    pipelining (the load generator keeps a window of outstanding
 *    requests; the server guarantees in-order responses), and
 *  - call() plus typed conveniences (getEntropy, pufEnroll,
 *    pufResponse, health, stats) for one-at-a-time use.
 *
 * Not thread-safe: one Client per thread.
 */

#ifndef FRACDRAM_SERVICE_CLIENT_HH
#define FRACDRAM_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/proto.hh"

namespace fracdram::service
{

class Client
{
  public:
    Client() = default;
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** @return false with @p err set on failure */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string *err);

    bool connected() const { return fd_ >= 0; }
    void close();
    int fd() const { return fd_; }

    /** @name Pipelining layer */
    /// @{
    /** Frame and send one request (assigns seq when @p req.seq==0
     *  and autoSeq is on; see setAutoSeq). */
    bool send(const Request &req, std::string *err);

    /**
     * Block until the next response frame arrives.
     * @param timeout_ms per-wait ceiling (<=0 waits forever)
     * @return false on timeout/EOF/protocol error
     */
    bool recv(Response &resp, std::string *err, int timeout_ms = -1);
    /// @}

    /** One request, one response (checks the seq echo). */
    bool call(Request req, Response &resp, std::string *err);

    /** @name Typed conveniences (status out-param; Ok fills data) */
    /// @{
    bool getEntropy(std::uint32_t n_bytes, bool raw,
                    std::vector<std::uint8_t> &out, Status &status,
                    std::string *err);
    /** Fleet-mode entropy from an explicit device (kFlagDeviceId). */
    bool getDeviceEntropy(std::uint32_t device, std::uint32_t n_bytes,
                          bool raw, std::vector<std::uint8_t> &out,
                          Status &status, std::string *err);
    bool pufEnroll(std::uint32_t device, std::uint32_t bank,
                   std::uint32_t row, BitVector &bits, Status &status,
                   std::string *err);
    bool pufResponse(std::uint32_t device, std::uint32_t bank,
                     std::uint32_t row, BitVector &bits,
                     std::uint32_t &hamming, Status &status,
                     std::string *err);
    bool health(std::string &json, std::string *err);
    bool stats(std::string &json, std::string *err);
    /// @}

  private:
    std::uint16_t nextSeq();

    int fd_ = -1;
    std::uint16_t seq_ = 0;
    FrameReader reader_;
    std::vector<std::uint8_t> rdbuf_;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_CLIENT_HH
