#include "service/fleet.hh"

#include <algorithm>

namespace fracdram::fleet
{

bool
deviceSupportsFrac(std::uint32_t id)
{
    return sim::vendorProfile(deviceGroup(id)).supportsFrac;
}

bool
deviceSupportsQuac(std::uint32_t id)
{
    return sim::vendorProfile(deviceGroup(id)).supportsFourRow;
}

std::uint32_t
steerToCapable(std::uint32_t id)
{
    if (deviceSupportsQuac(id))
        return id;
    static const std::vector<sim::DramGroup> capable =
        sim::fourRowCapableGroups();
    const std::uint32_t chip = deviceChip(id);
    return makeDeviceId(capable[chip % capable.size()], chip);
}

std::uint64_t
fleetHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
HashRing::addNode(int node)
{
    ring_.reserve(ring_.size() + vnodesPerNode_);
    for (int v = 0; v < vnodesPerNode_; ++v) {
        // Mix node and vnode into one ring point; the second hash
        // round decorrelates neighboring (node, vnode) pairs.
        const std::uint64_t h = fleetHash(
            fleetHash(static_cast<std::uint64_t>(node) << 32 |
                      static_cast<std::uint32_t>(v)) ^
            0x66726163ULL);
        ring_.push_back({h, node});
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash < b.hash ||
                         (a.hash == b.hash && a.node < b.node);
              });
}

} // namespace fracdram::fleet
