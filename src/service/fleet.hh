/**
 * @file
 * Fleet-mode building blocks shared by the daemon's device registry
 * and the fracdram_router tool (see DESIGN.md §5j).
 *
 * A fleet device id packs the paper's population coordinates into the
 * protocol's u32 device field: the vendor group (Table I letter) in
 * the top byte, the chip index within the group below. Legacy PUF
 * device ids (small integers, group byte 0) land in group A, so a v2
 * client keeps working against a fleet daemon.
 *
 * The HashRing is the router's placement function: every daemon owns
 * kVnodesPerNode points on a 64-bit ring, a device id hashes to a
 * point, and its primary owner is the first live daemon clockwise
 * from there. Virtual nodes keep the per-daemon share within a few
 * percent of uniform, and the clockwise-walk ownership rule means a
 * dead daemon's keys spill onto its successors without remapping
 * anything else.
 */

#ifndef FRACDRAM_SERVICE_FLEET_HH
#define FRACDRAM_SERVICE_FLEET_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/vendor.hh"

namespace fracdram::fleet
{

/** Chip-index bits of a device id (low 24). */
inline constexpr std::uint32_t kChipMask = 0x00FFFFFFu;

/** Vendor groups a device id's top byte is reduced into (A..N). */
inline constexpr std::uint32_t kNumGroups = 14;

/**
 * Serial offset of registry-materialized devices. Keeps fleet device
 * serials disjoint from the per-shard default devices (serialBase +
 * shard index) on every daemon, and makes serial a pure function of
 * (serialBase, device id) - two daemons with the same serialBase
 * materialize bit-identical silicon for the same device id, which is
 * what lets the router fail a PUF key over to its replica owner.
 */
inline constexpr std::uint64_t kDeviceSerialOffset = 0x100000;

/** Pack a (vendor group, chip index) pair into a wire device id. */
constexpr std::uint32_t
makeDeviceId(sim::DramGroup group, std::uint32_t chip)
{
    return (static_cast<std::uint32_t>(group) << 24) |
           (chip & kChipMask);
}

/**
 * Vendor group of a device id. Total over all u32 values: group
 * bytes beyond N wrap modulo kNumGroups, so arbitrary legacy device
 * ids still resolve to a real profile instead of an error.
 */
constexpr sim::DramGroup
deviceGroup(std::uint32_t id)
{
    return static_cast<sim::DramGroup>((id >> 24) % kNumGroups);
}

/** Chip index of a device id within its vendor group. */
constexpr std::uint32_t
deviceChip(std::uint32_t id)
{
    return id & kChipMask;
}

/**
 * Whether the device's vendor group can execute Frac ops (the PUF
 * substrate). Groups with command-timing checkers (J, K, L, N)
 * silently drop the out-of-spec sequences, so PUF work on them must
 * be answered with Status::Capability - never attempted (FracPuf
 * refuses to even construct on such a chip).
 */
bool deviceSupportsFrac(std::uint32_t id);

/**
 * Whether the group can do the four-row activation QUAC-TRNG needs
 * (Table I: fewer groups than Frac - A and E-I do Frac but open only
 * one or two rows). Gates device-addressed GET_ENTROPY.
 */
bool deviceSupportsQuac(std::uint32_t id);

/**
 * Rewrite a QUAC-incapable device id onto a four-row-capable vendor
 * group, keeping the chip index. Deterministic, so every router maps
 * the same incapable id to the same capable device. Ids that are
 * already capable come back unchanged. Entropy-only: a PUF key's
 * device is its identity and must not be rewritten.
 */
std::uint32_t steerToCapable(std::uint32_t id);

/** splitmix64 - the ring's point hash (fast, well mixed, stable). */
std::uint64_t fleetHash(std::uint64_t x);

/**
 * Consistent-hash ring with virtual nodes. Nodes are small dense
 * ints (the router's backend indices). Build once; liveness is a
 * per-lookup predicate so ejection/re-admission never rebuilds the
 * ring (and therefore never remaps keys owned by healthy nodes).
 */
class HashRing
{
  public:
    explicit HashRing(int vnodes_per_node = 64)
        : vnodesPerNode_(vnodes_per_node)
    {
    }

    /** Insert @p node's virtual nodes (call once per node). */
    void addNode(int node);

    bool empty() const { return ring_.empty(); }
    std::size_t points() const { return ring_.size(); }

    /**
     * Primary owner of @p key among nodes where @p alive returns
     * true; -1 when none are. @tparam Alive bool(int node).
     */
    template <typename Alive>
    int
    owner(std::uint32_t key, Alive &&alive) const
    {
        int primary = -1;
        walk(key, [&](int node) {
            if (!alive(node))
                return true; // keep walking
            primary = node;
            return false;
        });
        return primary;
    }

    /**
     * Primary and first *distinct* live successor (the replica
     * owner). Either slot is -1 when no such node exists.
     */
    template <typename Alive>
    std::pair<int, int>
    owners(std::uint32_t key, Alive &&alive) const
    {
        int primary = -1, secondary = -1;
        walk(key, [&](int node) {
            if (!alive(node))
                return true;
            if (primary < 0) {
                primary = node;
                return true;
            }
            if (node != primary) {
                secondary = node;
                return false;
            }
            return true;
        });
        return {primary, secondary};
    }

  private:
    struct Point
    {
        std::uint64_t hash;
        int node;
    };

    /**
     * Clockwise walk from @p key's point. @p visit returns false to
     * stop; every ring point is visited at most once.
     */
    template <typename Visit>
    void
    walk(std::uint32_t key, Visit &&visit) const
    {
        if (ring_.empty())
            return;
        const std::uint64_t h = fleetHash(key);
        std::size_t lo = 0, hi = ring_.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (ring_[mid].hash < h)
                lo = mid + 1;
            else
                hi = mid;
        }
        for (std::size_t i = 0; i < ring_.size(); ++i) {
            const Point &p = ring_[(lo + i) % ring_.size()];
            if (!visit(p.node))
                return;
        }
    }

    std::vector<Point> ring_; //!< sorted by hash
    int vnodesPerNode_;
};

} // namespace fracdram::fleet

#endif // FRACDRAM_SERVICE_FLEET_HH
