#include "service/flightrec.hh"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <chrono>

#include "common/logging.hh"
#include "common/simd/simd.hh"
#include "service/reqtrace.hh"
#include "service/server.hh"
#include "telemetry/report.hh"
#include "telemetry/timeseries.hh"

namespace fracdram::service
{

namespace
{

/** The one recorder whose handlers are installed (see hh). */
std::atomic<FlightRecorder *> g_fatalRecorder{nullptr};

extern "C" void
fatalSignalTrampoline(int sig)
{
    FlightRecorder *rec =
        g_fatalRecorder.load(std::memory_order_acquire);
    if (rec)
        rec->writeFatalDump(sig);
    // Default disposition takes over: the process still dies with
    // the original signal (and core dump), the black box just got
    // written on the way down.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

std::int64_t
wallMsNow()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

/** Async-signal-safe unsigned itoa into @p buf; returns digit count. */
std::size_t
safeUtoa(unsigned v, char *buf)
{
    char tmp[16];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = tmp[n - 1 - i];
    return n;
}

} // namespace

FlightRecorder::FlightRecorder(const FlightRecorderConfig &cfg,
                               Server &server)
    : cfg_(cfg), server_(server),
      fatalSlots_(std::make_unique<FatalSlot[]>(2))
{
    std::snprintf(fatalPath_, sizeof(fatalPath_),
                  "%s/postmortem-fatal.json",
                  cfg_.dir.empty() ? "." : cfg_.dir.c_str());
}

FlightRecorder::~FlightRecorder()
{
    FlightRecorder *self = this;
    g_fatalRecorder.compare_exchange_strong(self, nullptr);
}

std::string
FlightRecorder::renderBundle(const std::string &reason,
                             const std::string &detail,
                             std::size_t trace_count,
                             std::size_t history_points,
                             bool open_ended) const
{
    const auto &scfg = server_.cfg_;
    std::string out;
    out.reserve(64 * 1024);
    out += strprintf("{\"reason\":\"%s\",\"detail\":\"%s\","
                     "\"ts_ms\":%lld,\"pid\":%d",
                     jsonEscape(reason).c_str(),
                     jsonEscape(detail).c_str(),
                     static_cast<long long>(wallMsNow()),
                     static_cast<int>(::getpid()));

    out += strprintf(
        ",\"build\":{\"isa\":\"%s\",\"port\":%u,\"metrics_port\":%u,"
        "\"reactors\":%zu,\"shards\":%zu,\"queue_capacity\":%zu,"
        "\"max_connections\":%zu,\"slo_p99_us\":%llu,"
        "\"history_resolution_ms\":%d,\"trace_ring_capacity\":%zu}",
        jsonEscape(simd::describeIsa()).c_str(), server_.port_,
        server_.metricsPort(), server_.reactors_.size(),
        server_.shards_.size(), scfg.shard.queueCapacity,
        scfg.maxConnections,
        static_cast<unsigned long long>(scfg.sloP99Us),
        scfg.historyResMs, scfg.traceRingCapacity);

    // The full phase legend, so a bundle is self-describing even if
    // every reactor happens to be in the same phase.
    out += ",\"phase_names\":[";
    for (int p = 0; p < kNumReactorPhases; ++p)
        out += strprintf("%s\"%s\"", p ? "," : "",
                         reactorPhaseName(p));
    out += ']';

    out += ",\"reactors\":[";
    for (std::size_t i = 0; i < server_.reactors_.size(); ++i) {
        const auto &r = *server_.reactors_[i];
        out += strprintf("%s{\"index\":%d,\"phase\":\"%s\","
                         "\"heartbeat\":%llu,\"conns\":%zu}",
                         i ? "," : "", r.index(),
                         reactorPhaseName(r.phaseNow()),
                         static_cast<unsigned long long>(r.heartbeat()),
                         r.connCount());
    }
    out += ']';

    out += ",\"queue_depths\":[";
    for (std::size_t i = 0; i < server_.shards_.size(); ++i)
        out += strprintf("%s%zu", i ? "," : "",
                         server_.shards_[i]->queueDepth());
    out += ']';

    if (const Watchdog *wd = server_.watchdog()) {
        out += strprintf(
            ",\"watchdog\":{\"healthy\":%s,\"p99_us\":%llu,"
            "\"breached_windows\":%llu,\"flips\":%llu,"
            "\"stalled_reactors\":%llu,\"stall_events\":%llu}",
            wd->healthy() ? "true" : "false",
            static_cast<unsigned long long>(wd->lastP99Us()),
            static_cast<unsigned long long>(wd->breachedWindows()),
            static_cast<unsigned long long>(wd->flips()),
            static_cast<unsigned long long>(wd->stalledReactors()),
            static_cast<unsigned long long>(wd->stallEvents()));
    } else {
        out += ",\"watchdog\":null";
    }

    out += ",\"traces\":";
    out += renderTimelinesJson(server_.traceRing_.lastN(trace_count));

    out += ",\"history\":";
    if (server_.history_ && history_points > 0)
        out += server_.history_->renderAllJson("service.",
                                               history_points);
    else
        out += "null";

    out += ",\"metrics\":";
    out += telemetry::renderMetricsJson(
        telemetry::Metrics::instance().snapshot());

    // Open-ended bundles stop right before the final key so the
    // signal handler can append `<n>}` with no formatting at all.
    out += open_ended ? ",\"signal\":" : "}";
    if (!open_ended)
        out += '\n';
    return out;
}

std::string
FlightRecorder::renderPostmortemJson(const std::string &reason,
                                     const std::string &detail) const
{
    return renderBundle(reason, detail, cfg_.traceCount,
                        cfg_.historyPoints, false);
}

std::string
FlightRecorder::dump(const std::string &reason,
                     const std::string &detail)
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    const std::string body = renderPostmortemJson(reason, detail);
    const std::string path =
        strprintf("%s/postmortem-%lld.json",
                  cfg_.dir.empty() ? "." : cfg_.dir.c_str(),
                  static_cast<long long>(wallMsNow()));
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("component=flightrec cannot write %s", path.c_str());
        return "";
    }
    const std::size_t n =
        std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    if (n != body.size()) {
        warn("component=flightrec short write to %s", path.c_str());
        return "";
    }
    lastDumpPath_ = path;
    ++dumps_;
    inform("component=flightrec postmortem written: %s (reason=%s, "
           "%zu bytes)",
           path.c_str(), reason.c_str(), body.size());
    return path;
}

std::string
FlightRecorder::lastDumpPath() const
{
    std::lock_guard<std::mutex> lock(dumpMutex_);
    return lastDumpPath_;
}

void
FlightRecorder::refreshFatalBuffer()
{
    // Trimmed bundle: a crash artifact wants the last minute, not the
    // full window, and it must fit the fixed slot.
    std::string body =
        renderBundle("fatal_signal", "pre-serialized black box", 64,
                     60, true);
    if (body.size() > kFatalCapacity - 16) {
        // Degrade rather than truncate: an oversized bundle without
        // history still beats invalid JSON.
        body = renderBundle("fatal_signal",
                            "pre-serialized black box (trimmed)", 16,
                            0, true);
        if (body.size() > kFatalCapacity - 16)
            return; // keep the previous (valid) buffer
    }
    const int cur = fatalCur_.load(std::memory_order_relaxed);
    const int next = cur == 0 ? 1 : 0;
    FatalSlot &slot = fatalSlots_[next];
    std::memcpy(slot.data, body.data(), body.size());
    slot.len = body.size();
    fatalCur_.store(next, std::memory_order_release);
}

void
FlightRecorder::installFatalHandlers()
{
    FlightRecorder *expected = nullptr;
    if (!g_fatalRecorder.compare_exchange_strong(expected, this)) {
        if (expected != this)
            warn("component=flightrec fatal handlers already owned "
                 "by another recorder; not installing");
        return;
    }
    handlersInstalled_ = true;
    struct sigaction sa = {};
    sa.sa_handler = fatalSignalTrampoline;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the trampoline restores SIG_DFL itself after
    // the dump, which also covers a second fault *inside* the
    // handler re-entering with default disposition... the write path
    // is open/write/close on preformatted bytes, nothing else.
    sa.sa_flags = 0;
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS})
        ::sigaction(sig, &sa, nullptr);
    inform("component=flightrec fatal handlers installed "
           "(SIGSEGV/SIGABRT/SIGBUS -> %s)",
           fatalPath_);
}

void
FlightRecorder::writeFatalDump(int sig) noexcept
{
    // Async-signal-safe: open/write/close plus integer formatting on
    // a preformatted buffer. No locks, no allocation, no stdio.
    const int cur = fatalCur_.load(std::memory_order_acquire);
    if (cur < 0)
        return;
    const FatalSlot &slot = fatalSlots_[cur];
    const int fd = ::open(fatalPath_, O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return;
    std::size_t off = 0;
    while (off < slot.len) {
        const ssize_t n =
            ::write(fd, slot.data + off, slot.len - off);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    char tail[24];
    std::size_t tn = safeUtoa(static_cast<unsigned>(sig), tail);
    tail[tn++] = '}';
    tail[tn++] = '\n';
    [[maybe_unused]] const ssize_t wn = ::write(fd, tail, tn);
    ::close(fd);
}

} // namespace fracdram::service
