/**
 * @file
 * Black-box flight recorder: when something goes wrong - watchdog SLO
 * breach, reactor stall, operator SIGQUIT, or a fatal signal - dump
 * one `postmortem-<ts>.json` bundle with everything a human needs to
 * reconstruct the failure after the process is gone:
 *
 *   - recent request timelines from the reqtrace ring,
 *   - the in-process metrics history window (per-tick req/s, p99,
 *     queue depths - see telemetry/timeseries.hh),
 *   - per-reactor loop state: phase, heartbeat, connection count,
 *     plus the loop-lag/turn histograms inside the full metrics dump,
 *   - build/ISA/config identification.
 *
 * Two dump paths with very different constraints (DESIGN.md §5i):
 *
 * **Cooperative dumps** (SLO breach, stall, SIGQUIT) run on a normal
 * thread: render fresh JSON, write `postmortem-<epoch_ms>.json`.
 *
 * **Fatal dumps** (SIGSEGV/SIGABRT/SIGBUS) run inside a signal
 * handler where allocation, locks, and formatted I/O are all
 * forbidden. The recorder therefore keeps a *pre-serialized* bundle:
 * every metrics-history tick re-renders a trimmed postmortem into one
 * of two fixed buffers and publishes it with an atomic index; the
 * handler only open()s a precomputed path, write()s the published
 * buffer, appends the signal number with a hand-rolled itoa, and
 * re-raises. The crash artifact is at most one history tick stale,
 * and the handler touches no heap and takes no lock.
 */

#ifndef FRACDRAM_SERVICE_FLIGHTREC_HH
#define FRACDRAM_SERVICE_FLIGHTREC_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace fracdram::service
{

class Server;

struct FlightRecorderConfig
{
    std::string dir = ".";         //!< where bundles land
    std::size_t traceCount = 256;  //!< timelines per bundle
    std::size_t historyPoints = 300; //!< history ticks per bundle
};

class FlightRecorder
{
  public:
    FlightRecorder(const FlightRecorderConfig &cfg, Server &server);
    ~FlightRecorder();
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Write a postmortem bundle now (cooperative path). Serialized by
     * a mutex; safe from any thread except a signal handler.
     * @return the path written, "" on failure
     */
    std::string dump(const std::string &reason,
                     const std::string &detail);

    /** The full bundle as a JSON string (dump() minus the file). */
    std::string renderPostmortemJson(const std::string &reason,
                                     const std::string &detail) const;

    /**
     * Re-render the trimmed fatal-signal bundle into the spare buffer
     * and publish it. Called from the metrics-history onSample hook
     * once per tick; cheap enough for 1s cadence.
     */
    void refreshFatalBuffer();

    /**
     * Install SIGSEGV/SIGABRT/SIGBUS handlers that write the
     * pre-serialized bundle to `<dir>/postmortem-fatal.json`, then
     * restore the default disposition and re-raise. Process-global:
     * only one recorder may install (later calls are ignored with a
     * warning). Call refreshFatalBuffer() at least once first or the
     * handler has nothing to write.
     */
    void installFatalHandlers();

    /** Signal-handler body; public only for the handler trampoline. */
    void writeFatalDump(int sig) noexcept;

    std::string lastDumpPath() const;
    std::uint64_t dumps() const { return dumps_; }
    const FlightRecorderConfig &config() const { return cfg_; }

  private:
    std::string renderBundle(const std::string &reason,
                             const std::string &detail,
                             std::size_t trace_count,
                             std::size_t history_points,
                             bool open_ended) const;

    const FlightRecorderConfig cfg_;
    Server &server_;

    mutable std::mutex dumpMutex_; //!< serializes cooperative dumps
    std::string lastDumpPath_;
    std::atomic<std::uint64_t> dumps_{0};

    /**
     * Double-buffered fatal bundle. Fixed capacity, written by the
     * refresh thread into the slot fatalCur_ does NOT point at, then
     * published with a release store; the handler reads fatalCur_
     * with acquire and writes that slot's bytes. The buffer ends with
     * `,"signal":` so the handler can complete the JSON without any
     * formatting machinery.
     */
    static constexpr std::size_t kFatalCapacity = 1 << 20;
    struct FatalSlot
    {
        std::size_t len = 0;
        char data[kFatalCapacity];
    };
    std::unique_ptr<FatalSlot[]> fatalSlots_; //!< [2]
    std::atomic<int> fatalCur_{-1};
    char fatalPath_[512] = {0}; //!< precomputed, C string
    bool handlersInstalled_ = false;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_FLIGHTREC_HH
