#include "service/http.hh"

#include <cstdlib>
#include <sys/socket.h>

#include "common/logging.hh"
#include "service/net.hh"

namespace fracdram::service
{

namespace
{

// A request line plus a screenful of headers; anything longer is not
// a scraper and gets dropped.
constexpr std::size_t kMaxHeaderBytes = 4096;
constexpr int kIoTimeoutMs = 2000;

const char *
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 503:
        return "Service Unavailable";
    }
    return "Internal Server Error";
}

std::string
renderResponse(const HttpResponse &resp)
{
    std::string out = strprintf(
        "HTTP/1.0 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        resp.status, statusText(resp.status), resp.contentType.c_str(),
        resp.body.size());
    out += resp.body;
    return out;
}

} // namespace

std::string
queryParam(const std::string &query, const std::string &key)
{
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == key)
            return pair.substr(eq + 1);
        if (eq == std::string::npos && pair == key)
            return "";
        pos = amp + 1;
    }
    return "";
}

void
HttpServer::route(const std::string &path, Handler handler)
{
    routes_[path] = std::move(handler);
}

bool
HttpServer::start(std::uint16_t port, std::string *err)
{
    listenFd_ = listenTcp(port, err);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    stop_ = false;
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!thread_.joinable())
        return;
    stop_ = true;
    // The loop polls the listen fd with a timeout, so closing it here
    // (after the flag) just accelerates the wakeup.
    shutdownRead(listenFd_);
    thread_.join();
    closeFd(listenFd_);
    listenFd_ = -1;
}

void
HttpServer::loop()
{
    while (!stop_) {
        const int r = waitReadable(listenFd_, 200);
        if (stop_)
            break;
        if (r < 0)
            break;
        if (r == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setNoDelay(fd);
        setSendTimeout(fd, kIoTimeoutMs);
        serveOne(fd);
        closeFd(fd);
    }
}

void
HttpServer::serveOne(int fd)
{
    // Read until the blank line ending the header block (we ignore
    // the headers themselves - GET has no body).
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos) {
        if (head.size() > kMaxHeaderBytes)
            return;
        if (waitReadable(fd, kIoTimeoutMs) != 1)
            return;
        char buf[1024];
        const long n = readSome(fd, buf, sizeof(buf));
        if (n <= 0)
            return;
        head.append(buf, static_cast<std::size_t>(n));
    }

    HttpResponse resp;
    const std::size_t eol = head.find_first_of("\r\n");
    const std::string line = head.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
        resp = {405, "text/plain; charset=utf-8", "GET only\n"};
    } else {
        HttpRequest req;
        const std::string target =
            line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t qm = target.find('?');
        req.path = target.substr(0, qm);
        if (qm != std::string::npos)
            req.query = target.substr(qm + 1);
        const auto it = routes_.find(req.path);
        if (it == routes_.end()) {
            resp = {404, "text/plain; charset=utf-8", "not found\n"};
        } else {
            resp = it->second(req);
        }
    }

    const std::string wire = renderResponse(resp);
    std::string err;
    writeAll(fd, wire.data(), wire.size(), &err);
    ++served_;
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &target, HttpResult &out, std::string *err)
{
    const int fd = connectTcp(host, port, err);
    if (fd < 0)
        return false;
    setSendTimeout(fd, kIoTimeoutMs);
    const std::string req = strprintf(
        "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n", target.c_str(),
        host.c_str());
    if (!writeAll(fd, req.data(), req.size(), err)) {
        closeFd(fd);
        return false;
    }
    std::string raw;
    for (;;) {
        if (waitReadable(fd, kIoTimeoutMs) != 1)
            break;
        char buf[4096];
        const long n = readSome(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    closeFd(fd);

    // "HTTP/1.0 200 OK\r\n...\r\n\r\nbody"
    if (raw.compare(0, 5, "HTTP/") != 0) {
        if (err != nullptr)
            *err = "malformed HTTP response";
        return false;
    }
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > raw.size()) {
        if (err != nullptr)
            *err = "malformed HTTP status line";
        return false;
    }
    out.status = std::atoi(raw.c_str() + sp + 1);
    std::size_t body = raw.find("\r\n\r\n");
    if (body != std::string::npos) {
        out.body = raw.substr(body + 4);
    } else if ((body = raw.find("\n\n")) != std::string::npos) {
        out.body = raw.substr(body + 2);
    } else {
        out.body.clear();
    }
    return true;
}

} // namespace fracdram::service
