#include "service/http.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <list>
#include <poll.h>
#include <sys/socket.h>
#include <vector>

#include "common/logging.hh"
#include "service/net.hh"

namespace fracdram::service
{

namespace
{

// A request line plus a screenful of headers; anything longer is not
// a scraper and gets dropped.
constexpr std::size_t kMaxHeaderBytes = 4096;
constexpr int kIoTimeoutMs = 2000;

// Concurrent scraper connections; excess connects are closed
// immediately (a scraper retries, an fd-exhaustion attack does not
// get to hold descriptors).
constexpr std::size_t kMaxHttpConns = 32;

using HttpClock = std::chrono::steady_clock;

const char *
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 503:
        return "Service Unavailable";
    }
    return "Internal Server Error";
}

std::string
renderResponse(const HttpResponse &resp)
{
    std::string out = strprintf(
        "HTTP/1.0 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        resp.status, statusText(resp.status), resp.contentType.c_str(),
        resp.body.size());
    out += resp.body;
    return out;
}

} // namespace

std::string
queryParam(const std::string &query, const std::string &key)
{
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == key)
            return pair.substr(eq + 1);
        if (eq == std::string::npos && pair == key)
            return "";
        pos = amp + 1;
    }
    return "";
}

/**
 * One in-flight scraper connection. Reading until the header block
 * ends, then writing the rendered response; `deadline` bounds the
 * whole exchange, so neither a trickled request nor an unread
 * response can hold the fd past kIoTimeoutMs.
 */
struct HttpServer::HttpConn
{
    int fd = -1;
    std::string in;
    std::string out; //!< empty while still reading the request
    std::size_t outPos = 0;
    HttpClock::time_point deadline;

    bool writing() const { return !out.empty(); }
};

void
HttpServer::route(const std::string &path, Handler handler)
{
    routes_[path] = std::move(handler);
}

bool
HttpServer::start(std::uint16_t port, std::string *err)
{
    listenFd_ = listenTcp(port, err);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    setNonBlocking(listenFd_);
    stop_ = false;
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!thread_.joinable())
        return;
    stop_ = true;
    // The loop polls with a timeout, so closing the listen fd here
    // (after the flag) just accelerates the wakeup.
    shutdownRead(listenFd_);
    thread_.join();
    closeFd(listenFd_);
    listenFd_ = -1;
}

HttpResponse
HttpServer::buildResponse(const std::string &head) const
{
    const std::size_t eol = head.find_first_of("\r\n");
    const std::string line = head.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos
                                ? std::string::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return {400, "text/plain; charset=utf-8", "bad request\n"};
    if (line.substr(0, sp1) != "GET")
        return {405, "text/plain; charset=utf-8", "GET only\n"};
    HttpRequest req;
    const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qm = target.find('?');
    req.path = target.substr(0, qm);
    if (qm != std::string::npos)
        req.query = target.substr(qm + 1);
    const auto it = routes_.find(req.path);
    if (it == routes_.end())
        return {404, "text/plain; charset=utf-8", "not found\n"};
    return it->second(req);
}

void
HttpServer::loop()
{
    std::list<HttpConn> conns;
    std::vector<pollfd> pfds;
    char buf[4096];
    while (!stop_) {
        pfds.clear();
        pfds.push_back({listenFd_, POLLIN, 0});
        for (const HttpConn &c : conns)
            pfds.push_back(
                {c.fd,
                 static_cast<short>(c.writing() ? POLLOUT : POLLIN),
                 0});
        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 200);
        if (stop_)
            break;
        if (rc < 0 && errno != EINTR)
            break;

        if ((pfds[0].revents & POLLIN) != 0) {
            int fd;
            while ((fd = ::accept(listenFd_, nullptr, nullptr)) >=
                   0) {
                if (conns.size() >= kMaxHttpConns) {
                    closeFd(fd);
                    continue;
                }
                setNoDelay(fd);
                setNonBlocking(fd);
                conns.push_back(
                    {fd,
                     {},
                     {},
                     0,
                     HttpClock::now() +
                         std::chrono::milliseconds(kIoTimeoutMs)});
            }
        }

        const auto now = HttpClock::now();
        std::size_t pi = 1;
        for (auto it = conns.begin(); it != conns.end();) {
            HttpConn &c = *it;
            const short revents =
                pi < pfds.size() ? pfds[pi].revents : 0;
            ++pi;
            bool dead = false;
            if (!c.writing() && (revents & (POLLIN | POLLHUP)) != 0) {
                const long n = readSome(c.fd, buf, sizeof(buf));
                if (n > 0) {
                    c.in.append(buf, static_cast<std::size_t>(n));
                    if (c.in.size() > kMaxHeaderBytes) {
                        dead = true;
                    } else if (c.in.find("\r\n\r\n") !=
                                   std::string::npos ||
                               c.in.find("\n\n") !=
                                   std::string::npos) {
                        c.out = renderResponse(buildResponse(c.in));
                    }
                } else if (n == 0 ||
                           (errno != EAGAIN &&
                            errno != EWOULDBLOCK)) {
                    dead = true;
                }
            }
            if (!dead && c.writing() &&
                (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
                const long w = writeSome(c.fd, c.out.data() + c.outPos,
                                         c.out.size() - c.outPos);
                if (w < 0) {
                    dead = true;
                } else {
                    c.outPos += static_cast<std::size_t>(w);
                    if (c.outPos == c.out.size()) {
                        ++served_;
                        dead = true; // done: HTTP/1.0, no keep-alive
                    }
                }
            }
            // The overall deadline is the wedge-proofing: a scraper
            // that connects and never reads (or never finishes its
            // request) is cut loose here while others keep going.
            if (!dead && now >= c.deadline)
                dead = true;
            if (dead) {
                closeFd(c.fd);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (HttpConn &c : conns)
        closeFd(c.fd);
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &target, HttpResult &out, std::string *err)
{
    const int fd = connectTcp(host, port, err);
    if (fd < 0)
        return false;
    setSendTimeout(fd, kIoTimeoutMs);
    const std::string req = strprintf(
        "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n", target.c_str(),
        host.c_str());
    if (!writeAll(fd, req.data(), req.size(), err)) {
        closeFd(fd);
        return false;
    }
    std::string raw;
    for (;;) {
        if (waitReadable(fd, kIoTimeoutMs) != 1)
            break;
        char buf[4096];
        const long n = readSome(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    closeFd(fd);

    // "HTTP/1.0 200 OK\r\n...\r\n\r\nbody"
    if (raw.compare(0, 5, "HTTP/") != 0) {
        if (err != nullptr)
            *err = "malformed HTTP response";
        return false;
    }
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > raw.size()) {
        if (err != nullptr)
            *err = "malformed HTTP status line";
        return false;
    }
    out.status = std::atoi(raw.c_str() + sp + 1);
    std::size_t body = raw.find("\r\n\r\n");
    if (body != std::string::npos) {
        out.body = raw.substr(body + 4);
    } else if ((body = raw.find("\n\n")) != std::string::npos) {
        out.body = raw.substr(body + 2);
    } else {
        out.body.clear();
    }
    return true;
}

} // namespace fracdram::service
