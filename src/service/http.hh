/**
 * @file
 * A deliberately tiny HTTP/1.0 responder for the daemon's
 * observability endpoints (/metrics, /healthz, /varz). It is NOT a
 * general web server: GET only, no keep-alive, no chunked encoding,
 * exact-path routing, a handful of non-blocking connections
 * poll-multiplexed on a single thread. That is exactly what a
 * Prometheus scraper or `curl` needs, and it keeps the attack/bug
 * surface near zero - a stuck or slow scraper can never back-pressure
 * the serving data path (separate thread, lock-free handoff) and can
 * never wedge the responder either: every connection carries an
 * overall deadline, so a peer that connects and never reads (or
 * trickles its request) is dropped while other scrapers keep being
 * answered.
 *
 * The matching httpGet() client helper exists so fracdram_top, the
 * load generator and the tests can scrape without curl.
 */

#ifndef FRACDRAM_SERVICE_HTTP_HH
#define FRACDRAM_SERVICE_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace fracdram::service
{

/** One parsed GET request ("/varz?trace=64" -> path + query). */
struct HttpRequest
{
    std::string path;  //!< target up to '?'
    std::string query; //!< after '?', empty when absent
};

/** Value of `key=value` in a query string ("" when absent). */
std::string queryParam(const std::string &query, const std::string &key);

struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer() { stop(); }
    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register @p handler for exact path @p path (before start()). */
    void route(const std::string &path, Handler handler);

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the serving
     * thread. @return false with @p err set on bind failure.
     */
    bool start(std::uint16_t port, std::string *err);

    /** Port actually bound (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Join the serving thread and close the socket; idempotent. */
    void stop();

    std::uint64_t requestsServed() const { return served_; }

  private:
    struct HttpConn;

    void loop();
    HttpResponse buildResponse(const std::string &head) const;

    std::map<std::string, Handler> routes_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> served_{0};
};

/** Status + body of one httpGet() exchange. */
struct HttpResult
{
    int status = 0;
    std::string body;
};

/**
 * Blocking one-shot GET of @p target from @p host:@p port.
 * @return false with @p err set on connect/transport failure;
 *         non-200 statuses are returned in @p out, not errors.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &target, HttpResult &out,
             std::string *err);

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_HTTP_HH
