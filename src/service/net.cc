#include "service/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <sched.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"

namespace fracdram::service
{

namespace
{

bool
fail(std::string *err, const char *what)
{
    if (err != nullptr)
        *err = strprintf("%s: %s", what, std::strerror(errno));
    return false;
}

} // namespace

int
listenTcp(std::uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        fail(err, "socket");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fail(err, "bind");
        closeFd(fd);
        return -1;
    }
    // Deep backlog: a connection storm (the 10k-conn smoke) must not
    // overflow the SYN queue while the reactors drain the accepts.
    // The kernel clamps this to net.core.somaxconn.
    if (::listen(fd, 4096) != 0) {
        fail(err, "listen");
        closeFd(fd);
        return -1;
    }
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
connectTcp(const std::string &host, std::uint16_t port,
           std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        fail(err, "socket");
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err != nullptr)
            *err = strprintf("bad host address '%s'", host.c_str());
        closeFd(fd);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        fail(err, "connect");
        closeFd(fd);
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

void
setNoDelay(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
setSendTimeout(int fd, int timeout_ms)
{
    if (timeout_ms <= 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
shutdownRead(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RD);
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

namespace
{

int
waitEvent(int fd, short ev, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = ev;
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        return -1;
    if (rc == 0)
        return 0;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0)
        return -1;
    // POLLHUP with pending bytes still reads; let read() see EOF.
    return 1;
}

} // namespace

int
waitReadable(int fd, int timeout_ms)
{
    return waitEvent(fd, POLLIN, timeout_ms);
}

int
waitWritable(int fd, int timeout_ms)
{
    return waitEvent(fd, POLLOUT, timeout_ms);
}

bool
writeAll(int fd, const void *data, std::size_t len, std::string *err)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        // send + MSG_NOSIGNAL instead of write: a peer that hung up
        // must surface as EPIPE, not kill the process with SIGPIPE.
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN here means SO_SNDTIMEO expired: the peer has
            // not drained its receive window for the whole timeout.
            // Treat it as dead rather than blocking the writer.
            return fail(err, (errno == EAGAIN || errno == EWOULDBLOCK)
                                 ? "write (send timeout)"
                                 : "write");
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

long
readSome(int fd, void *buf, std::size_t len)
{
    ssize_t n;
    do {
        n = ::read(fd, buf, len);
    } while (n < 0 && errno == EINTR);
    return n;
}

long
writeSome(int fd, const void *data, std::size_t len)
{
    ssize_t n;
    do {
        n = ::send(fd, data, len, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0)
        return (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : -1;
    return n;
}

long
writevSome(int fd, const struct iovec *iov, int iovcnt)
{
    msghdr msg{};
    msg.msg_iov = const_cast<struct iovec *>(iov);
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n;
    do {
        // sendmsg instead of writev for MSG_NOSIGNAL (see writeAll).
        n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0)
        return (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : -1;
    return n;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

void
pinThisThreadToCpu(int cpu)
{
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 2 || cpu < 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu) % cores, &set);
    // Best effort: a cpuset-restricted container may reject the mask.
    (void)::pthread_setaffinity_np(::pthread_self(), sizeof(set),
                                   &set);
}

} // namespace fracdram::service
