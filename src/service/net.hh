/**
 * @file
 * Thin POSIX socket helpers shared by the server, the client library
 * and the load generator: loopback listen/connect, partial-write-safe
 * writeAll, EINTR-safe reads, and poll-based readiness waits. All
 * functions report errors through an out-parameter string instead of
 * errno so call sites can log one coherent line.
 */

#ifndef FRACDRAM_SERVICE_NET_HH
#define FRACDRAM_SERVICE_NET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/uio.h>

namespace fracdram::service
{

/**
 * Bind and listen on 127.0.0.1:@p port (port 0 picks an ephemeral
 * port; read it back with boundPort()).
 * @return the listening fd, or -1 with @p err set
 */
int listenTcp(std::uint16_t port, std::string *err);

/** Port a bound socket ended up on (0 on failure). */
std::uint16_t boundPort(int fd);

/**
 * Blocking connect to @p host:@p port.
 * @return the connected fd, or -1 with @p err set
 */
int connectTcp(const std::string &host, std::uint16_t port,
               std::string *err);

/** Disable Nagle (small request/response frames). */
void setNoDelay(int fd);

/**
 * SO_SNDTIMEO: bound every send(2) on @p fd to @p timeout_ms so a
 * peer that stops reading cannot park a writer thread forever.
 * writeAll() treats the resulting EAGAIN as a dead peer.
 */
void setSendTimeout(int fd, int timeout_ms);

/**
 * shutdown(2) the read side only: wakes a thread blocked in
 * read/poll (it sees EOF) while leaving the write side open so
 * responses already owed to the peer can still be delivered; a
 * stalled send is bounded by SO_SNDTIMEO instead.
 */
void shutdownRead(int fd);

/** O_NONBLOCK: reads/writes return EAGAIN instead of blocking. */
void setNonBlocking(int fd);

/**
 * Wait until @p fd is readable.
 * @return 1 readable, 0 timeout, -1 error/hangup
 */
int waitReadable(int fd, int timeout_ms);

/**
 * Wait until @p fd is writable.
 * @return 1 writable, 0 timeout, -1 error/hangup
 */
int waitWritable(int fd, int timeout_ms);

/** Write all @p len bytes (loops over partial writes and EINTR). */
bool writeAll(int fd, const void *data, std::size_t len,
              std::string *err);

/**
 * One read(2), retrying EINTR.
 * @return bytes read, 0 on EOF, -1 on error
 */
long readSome(int fd, void *buf, std::size_t len);

/**
 * One non-blocking send(2) with MSG_NOSIGNAL, retrying EINTR.
 * @return bytes written, 0 when the socket buffer is full (EAGAIN),
 *         -1 on a dead peer or hard error
 */
long writeSome(int fd, const void *data, std::size_t len);

/**
 * One gathering write (sendmsg + MSG_NOSIGNAL, retrying EINTR) - the
 * reactor's batched-response flush.
 * @return bytes written, 0 when the socket buffer is full (EAGAIN),
 *         -1 on a dead peer or hard error
 */
long writevSome(int fd, const struct iovec *iov, int iovcnt);

/** close(2), ignoring EINTR (idempotent on -1). */
void closeFd(int fd);

/**
 * Pin the calling thread to CPU @p cpu modulo the machine's core
 * count. No-op on single-core machines and on affinity errors -
 * pinning is a throughput hint, never a correctness requirement.
 */
void pinThisThreadToCpu(int cpu);

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_NET_HH
