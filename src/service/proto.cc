#include "service/proto.hh"

#include <cstring>

#include "common/logging.hh"

namespace fracdram::service
{

namespace
{

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/** Bounds-checked little-endian cursor over a payload. */
struct Cursor
{
    const std::uint8_t *p;
    std::size_t left;

    bool u8(std::uint8_t &v)
    {
        if (left < 1)
            return false;
        v = p[0];
        ++p;
        --left;
        return true;
    }
    bool u16(std::uint16_t &v)
    {
        if (left < 2)
            return false;
        v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
        p += 2;
        left -= 2;
        return true;
    }
    bool u32(std::uint32_t &v)
    {
        if (left < 4)
            return false;
        v = static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
        p += 4;
        left -= 4;
        return true;
    }
    bool u64(std::uint64_t &v)
    {
        if (left < 8)
            return false;
        v = 0;
        for (int j = 0; j < 8; ++j)
            v |= static_cast<std::uint64_t>(p[j]) << (j * 8);
        p += 8;
        left -= 8;
        return true;
    }
    bool bytes(const std::uint8_t *&v, std::size_t n)
    {
        if (left < n)
            return false;
        v = p;
        p += n;
        left -= n;
        return true;
    }
};

bool
fail(std::string *err, const char *what)
{
    if (err != nullptr)
        *err = what;
    return false;
}

bool
validRequestType(std::uint8_t t)
{
    return t >= static_cast<std::uint8_t>(MsgType::GetEntropy) &&
           t <= static_cast<std::uint8_t>(MsgType::Stats);
}

} // namespace

const char *
msgTypeName(MsgType t)
{
    switch (t) {
    case MsgType::GetEntropy:
        return "GET_ENTROPY";
    case MsgType::PufEnroll:
        return "PUF_ENROLL";
    case MsgType::PufResponse:
        return "PUF_RESPONSE";
    case MsgType::Health:
        return "HEALTH";
    case MsgType::Stats:
        return "STATS";
    }
    return "UNKNOWN";
}

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "OK";
    case Status::Busy:
        return "BUSY";
    case Status::Error:
        return "ERROR";
    case Status::RateLimited:
        return "RATE_LIMITED";
    case Status::Capability:
        return "CAPABILITY";
    }
    return "UNKNOWN";
}

std::vector<std::uint8_t>
encodeRequest(const Request &req)
{
    std::vector<std::uint8_t> out;
    out.reserve(16);
    out.push_back(static_cast<std::uint8_t>(req.type));
    out.push_back(req.flags);
    putU16(out, req.seq);
    if (req.flags & kFlagRequestId)
        putU64(out, req.requestId);
    switch (req.type) {
    case MsgType::GetEntropy:
        if (req.flags & kFlagDeviceId)
            putU32(out, req.device);
        putU32(out, req.nBytes);
        break;
    case MsgType::PufEnroll:
    case MsgType::PufResponse:
        putU32(out, req.device);
        putU32(out, req.bank);
        putU32(out, req.row);
        break;
    case MsgType::Health:
    case MsgType::Stats:
        break;
    }
    return out;
}

namespace
{

/** Append the payload bytes of @p resp (no length prefix). */
void
appendResponsePayload(std::vector<std::uint8_t> &out,
                      const Response &resp)
{
    out.push_back(static_cast<std::uint8_t>(resp.type) | kResponseBit);
    out.push_back(resp.flags);
    putU16(out, resp.seq);
    if (resp.flags & kFlagRequestId)
        putU64(out, resp.requestId);
    out.push_back(static_cast<std::uint8_t>(resp.status));
    if (resp.status != Status::Ok) {
        putU32(out, static_cast<std::uint32_t>(resp.text.size()));
        out.insert(out.end(), resp.text.begin(), resp.text.end());
        return;
    }
    switch (resp.type) {
    case MsgType::GetEntropy:
        putU32(out, static_cast<std::uint32_t>(resp.data.size()));
        out.insert(out.end(), resp.data.begin(), resp.data.end());
        break;
    case MsgType::PufEnroll:
    case MsgType::PufResponse: {
        putU32(out, static_cast<std::uint32_t>(resp.bits.size()));
        const auto packed = packBits(resp.bits);
        out.insert(out.end(), packed.begin(), packed.end());
        putU32(out, resp.hamming);
        break;
    }
    case MsgType::Health:
    case MsgType::Stats:
        putU32(out, static_cast<std::uint32_t>(resp.text.size()));
        out.insert(out.end(), resp.text.begin(), resp.text.end());
        break;
    }
}

} // namespace

std::vector<std::uint8_t>
encodeResponse(const Response &resp)
{
    std::vector<std::uint8_t> out;
    out.reserve(16 + resp.data.size() + resp.text.size() +
                resp.bits.size() / 8);
    appendResponsePayload(out, resp);
    return out;
}

void
appendResponseFrame(std::vector<std::uint8_t> &out,
                    const Response &resp)
{
    const std::size_t len_at = out.size();
    putU32(out, 0); // patched below
    const std::size_t start = out.size();
    appendResponsePayload(out, resp);
    const std::size_t n = out.size() - start;
    panic_if(n > kMaxFrameBytes,
             "frame payload %zu exceeds the %zu-byte ceiling", n,
             kMaxFrameBytes);
    out[len_at + 0] = static_cast<std::uint8_t>(n & 0xff);
    out[len_at + 1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
    out[len_at + 2] = static_cast<std::uint8_t>((n >> 16) & 0xff);
    out[len_at + 3] = static_cast<std::uint8_t>((n >> 24) & 0xff);
}

void
appendEntropyOkFrame(std::vector<std::uint8_t> &out,
                     const Request &req, const std::uint8_t *data,
                     std::size_t n)
{
    const bool with_id = (req.flags & kFlagRequestId) != 0;
    const std::size_t payload =
        1 + 1 + 2 + (with_id ? 8u : 0u) + 1 + 4 + n;
    panic_if(payload > kMaxFrameBytes,
             "frame payload %zu exceeds the %zu-byte ceiling",
             payload, kMaxFrameBytes);
    out.reserve(out.size() + 4 + payload);
    putU32(out, static_cast<std::uint32_t>(payload));
    out.push_back(static_cast<std::uint8_t>(MsgType::GetEntropy) |
                  kResponseBit);
    out.push_back(with_id ? kFlagRequestId : std::uint8_t{0});
    putU16(out, req.seq);
    if (with_id)
        putU64(out, req.requestId);
    out.push_back(static_cast<std::uint8_t>(Status::Ok));
    putU32(out, static_cast<std::uint32_t>(n));
    out.insert(out.end(), data, data + n);
}

bool
decodeRequest(const std::uint8_t *payload, std::size_t len,
              Request &out, std::string *err)
{
    Cursor c{payload, len};
    std::uint8_t type = 0;
    if (!c.u8(type) || !c.u8(out.flags) || !c.u16(out.seq))
        return fail(err, "truncated request header");
    if (!validRequestType(type))
        return fail(err, "unknown request type");
    out.type = static_cast<MsgType>(type);
    out.requestId = 0;
    if ((out.flags & kFlagRequestId) && !c.u64(out.requestId))
        return fail(err, "truncated request id");
    switch (out.type) {
    case MsgType::GetEntropy:
        if ((out.flags & kFlagDeviceId) && !c.u32(out.device))
            return fail(err, "truncated GET_ENTROPY device id");
        if (!c.u32(out.nBytes))
            return fail(err, "truncated GET_ENTROPY body");
        break;
    case MsgType::PufEnroll:
    case MsgType::PufResponse:
        if (out.flags & kFlagDeviceId)
            return fail(err, "DEVICE_ID flag on a non-entropy request");
        if (!c.u32(out.device) || !c.u32(out.bank) || !c.u32(out.row))
            return fail(err, "truncated PUF body");
        break;
    case MsgType::Health:
    case MsgType::Stats:
        if (out.flags & kFlagDeviceId)
            return fail(err, "DEVICE_ID flag on a non-entropy request");
        break;
    }
    if (c.left != 0)
        return fail(err, "trailing bytes after request body");
    return true;
}

bool
decodeResponse(const std::uint8_t *payload, std::size_t len,
               Response &out, std::string *err)
{
    Cursor c{payload, len};
    std::uint8_t type = 0, status = 0;
    if (!c.u8(type) || !c.u8(out.flags) || !c.u16(out.seq))
        return fail(err, "truncated response header");
    out.requestId = 0;
    if ((out.flags & kFlagRequestId) && !c.u64(out.requestId))
        return fail(err, "truncated request id");
    if (!c.u8(status))
        return fail(err, "truncated response header");
    if ((type & kResponseBit) == 0)
        return fail(err, "response bit missing");
    type = static_cast<std::uint8_t>(type & ~kResponseBit);
    if (!validRequestType(type))
        return fail(err, "unknown response type");
    if (status > static_cast<std::uint8_t>(Status::Capability))
        return fail(err, "unknown status");
    if (out.flags & kFlagDeviceId)
        return fail(err, "DEVICE_ID flag on a response");
    out.type = static_cast<MsgType>(type);
    out.status = static_cast<Status>(status);
    out.data.clear();
    out.bits = BitVector{};
    out.hamming = kNoHamming;
    out.text.clear();

    if (out.status != Status::Ok) {
        std::uint32_t n = 0;
        const std::uint8_t *msg = nullptr;
        if (!c.u32(n) || !c.bytes(msg, n))
            return fail(err, "truncated error message");
        out.text.assign(reinterpret_cast<const char *>(msg), n);
        if (c.left != 0)
            return fail(err, "trailing bytes after error message");
        return true;
    }

    switch (out.type) {
    case MsgType::GetEntropy: {
        std::uint32_t n = 0;
        const std::uint8_t *bytes = nullptr;
        if (!c.u32(n) || !c.bytes(bytes, n))
            return fail(err, "truncated entropy payload");
        out.data.assign(bytes, bytes + n);
        break;
    }
    case MsgType::PufEnroll:
    case MsgType::PufResponse: {
        std::uint32_t n_bits = 0;
        const std::uint8_t *bytes = nullptr;
        if (!c.u32(n_bits))
            return fail(err, "truncated PUF payload");
        const std::size_t n_bytes = (n_bits + 7) / 8;
        if (!c.bytes(bytes, n_bytes) || !c.u32(out.hamming))
            return fail(err, "truncated PUF payload");
        out.bits = unpackBits(bytes, n_bits);
        break;
    }
    case MsgType::Health:
    case MsgType::Stats: {
        std::uint32_t n = 0;
        const std::uint8_t *bytes = nullptr;
        if (!c.u32(n) || !c.bytes(bytes, n))
            return fail(err, "truncated JSON payload");
        out.text.assign(reinterpret_cast<const char *>(bytes), n);
        break;
    }
    }
    if (c.left != 0)
        return fail(err, "trailing bytes after response body");
    return true;
}

std::vector<std::uint8_t>
frame(const std::vector<std::uint8_t> &payload)
{
    panic_if(payload.size() > kMaxFrameBytes,
             "frame payload %zu exceeds the %zu-byte ceiling",
             payload.size(), kMaxFrameBytes);
    std::vector<std::uint8_t> out;
    out.reserve(4 + payload.size());
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::vector<std::uint8_t>
packBits(const BitVector &bits)
{
    const std::size_t n_bytes = (bits.size() + 7) / 8;
    std::vector<std::uint8_t> out(n_bytes);
    const std::uint64_t *words = bits.words();
    for (std::size_t j = 0; j < n_bytes; ++j)
        out[j] = static_cast<std::uint8_t>(words[j / 8] >>
                                           ((j % 8) * 8));
    return out;
}

BitVector
unpackBits(const std::uint8_t *bytes, std::size_t n_bits)
{
    BitVector out(n_bits);
    std::uint64_t *words = out.mutableWords();
    for (std::size_t j = 0; j < (n_bits + 7) / 8; ++j)
        words[j / 8] |= static_cast<std::uint64_t>(bytes[j])
                        << ((j % 8) * 8);
    // The tail byte may carry garbage past n_bits; BitVector's
    // contract keeps those zero.
    if (n_bits % 64 != 0 && n_bits != 0)
        words[(n_bits - 1) / 64] &=
            (~std::uint64_t{0}) >> (64 - n_bits % 64);
    return out;
}

bool
FrameReader::feed(const std::uint8_t *data, std::size_t len)
{
    if (!error_.empty())
        return false;
    // Compact the consumed prefix before growing the buffer.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
    return true;
}

bool
FrameReader::next(std::vector<std::uint8_t> &payload)
{
    if (!error_.empty())
        return false;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return false;
    const std::uint8_t *p = buf_.data() + pos_;
    const std::uint32_t n = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
    if (n > maxFrame_) {
        error_ = strprintf("frame of %u bytes exceeds the %zu-byte "
                           "ceiling",
                           n, maxFrame_);
        return false;
    }
    if (avail < 4 + static_cast<std::size_t>(n))
        return false;
    payload.assign(p + 4, p + 4 + n);
    pos_ += 4 + static_cast<std::size_t>(n);
    return true;
}

} // namespace fracdram::service
