/**
 * @file
 * Wire protocol of the FracDRAM serving daemon.
 *
 * Frames are length-prefixed:
 *
 *     u32le payload_len | payload
 *     payload = u8 type | u8 flags | u16le seq [| u64le request_id] | body
 *
 * The sequence number is chosen by the client and echoed verbatim in
 * the response, so clients may pipeline many requests on one
 * connection; the server guarantees responses arrive in request
 * order. Response types are the request type with the high bit set.
 *
 * Protocol version 2 adds end-to-end request tracing: when the
 * REQUEST_ID flag bit is set, a client-chosen u64 request id follows
 * the header (requests *and* responses - the server echoes it), and
 * the daemon records per-stage timings for that request. The flag
 * doubles as the version marker, so v1 frames (flag clear) decode
 * unchanged and v1 servers reject v2 frames as trailing garbage
 * instead of misparsing them.
 *
 * Protocol version 3 adds fleet addressing: when the DEVICE_ID flag
 * bit is set on a GET_ENTROPY request, a u32 device id (vendor group
 * in the top byte, chip index below - see service/fleet.hh) precedes
 * n_bytes and the daemon serves the request from that simulated
 * device instead of the shard's default one. The flag is only valid
 * on GET_ENTROPY requests (PUF frames always carry a device id, and
 * responses never carry the flag), so every accepted frame still has
 * exactly one encoding and v2 frames decode byte-identically.
 *
 * Request bodies:
 *   GET_ENTROPY      [u32le device iff DEVICE_ID flag] u32le n_bytes
 *   PUF_ENROLL       u32le device | u32le bank | u32le row
 *   PUF_RESPONSE     u32le device | u32le bank | u32le row
 *   HEALTH, STATS    (empty)
 *
 * Response bodies start with a u8 status. On any non-OK status the
 * rest is `u32le len | message`. On OK:
 *   GET_ENTROPY      u32le n | n random bytes
 *   PUF_*            u32le n_bits | packed bits | u32le hamming
 *                    (hamming = distance to the enrolled reference,
 *                    kNoHamming when nothing is enrolled)
 *   HEALTH, STATS    u32le len | JSON text
 *
 * Decoding is strict: truncated or over-long bodies, unknown types,
 * and frames above kMaxFrameBytes are rejected (the fuzz round-trip
 * test in tests/test_service_proto.cc leans on this).
 */

#ifndef FRACDRAM_SERVICE_PROTO_HH
#define FRACDRAM_SERVICE_PROTO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hh"

namespace fracdram::service
{

/** Hard ceiling on one frame's payload bytes (DoS guard). */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Response bit of the type byte. */
inline constexpr std::uint8_t kResponseBit = 0x80;

/** GET_ENTROPY flag: raw QUAC stream, bypassing the DRBG pool. */
inline constexpr std::uint8_t kFlagRawEntropy = 0x01;

/**
 * GET_ENTROPY flag: the body carries an explicit u32le device id
 * before n_bytes (v3, fleet mode). Rejected on every other request
 * type and never set on responses, so each accepted frame keeps a
 * single canonical encoding.
 */
inline constexpr std::uint8_t kFlagDeviceId = 0x02;

/**
 * Frame carries a u64le request id right after the header (v2). The
 * id is encoded iff this bit is set, so v1 frames are unchanged and
 * encode(decode(bytes)) == bytes holds for every accepted frame.
 */
inline constexpr std::uint8_t kFlagRequestId = 0x80;

/** Highest protocol revision this build speaks. */
inline constexpr std::uint8_t kProtoVersion = 3;

/** PUF hamming field when no reference is enrolled. */
inline constexpr std::uint32_t kNoHamming = 0xFFFFFFFFu;

enum class MsgType : std::uint8_t
{
    GetEntropy = 0x01,
    PufEnroll = 0x02,
    PufResponse = 0x03,
    Health = 0x04,
    Stats = 0x05,
};

enum class Status : std::uint8_t
{
    Ok = 0,
    Busy = 1,        //!< shard queue full (backpressure)
    Error = 2,       //!< malformed or unsatisfiable request
    RateLimited = 3, //!< per-connection token bucket empty
    Capability = 4,  //!< device's vendor group cannot do Frac/QUAC
};

/** Human-readable names (logs, loadgen output). */
const char *msgTypeName(MsgType t);
const char *statusName(Status s);

/** A decoded request frame. */
struct Request
{
    MsgType type = MsgType::Health;
    std::uint8_t flags = 0;
    std::uint16_t seq = 0;
    std::uint64_t requestId = 0; //!< on the wire iff kFlagRequestId
    std::uint32_t nBytes = 0;    //!< GET_ENTROPY
    std::uint32_t device = 0;    //!< PUF_*, GET_ENTROPY + DEVICE_ID
    std::uint32_t bank = 0;      //!< PUF_*
    std::uint32_t row = 0;       //!< PUF_*

    bool operator==(const Request &o) const
    {
        return type == o.type && flags == o.flags && seq == o.seq &&
               requestId == o.requestId && nBytes == o.nBytes &&
               device == o.device && bank == o.bank && row == o.row;
    }
};

/** A decoded response frame. */
struct Response
{
    MsgType type = MsgType::Health; //!< request type (high bit clear)
    std::uint8_t flags = 0;
    std::uint16_t seq = 0;
    std::uint64_t requestId = 0; //!< on the wire iff kFlagRequestId
    Status status = Status::Ok;
    std::vector<std::uint8_t> data; //!< GET_ENTROPY payload
    BitVector bits;                 //!< PUF_* payload
    std::uint32_t hamming = kNoHamming; //!< PUF_* payload
    std::string text; //!< HEALTH/STATS JSON, or non-OK message

    /**
     * Wall-clock stage stamps carried alongside the response inside
     * the daemon (never serialized): enqueue -> dequeue -> generate
     * start/end. The connection thread turns them into the traced
     * request's queue_wait / batch / generate spans.
     */
    struct Stamps
    {
        std::uint64_t enqueueNs = 0;
        std::uint64_t dequeueNs = 0;
        std::uint64_t genStartNs = 0;
        std::uint64_t genEndNs = 0;
    };
    Stamps stamps;
};

/** Echo a traced request's id (and its flag bit) into the response. */
inline void
echoRequestId(Response &resp, const Request &req)
{
    if (req.flags & kFlagRequestId) {
        resp.flags |= kFlagRequestId;
        resp.requestId = req.requestId;
    }
}

/** @name Frame payload encode / decode (length prefix excluded) */
/// @{
std::vector<std::uint8_t> encodeRequest(const Request &req);
std::vector<std::uint8_t> encodeResponse(const Response &resp);

/** @return false and set @p err on any malformed payload. */
bool decodeRequest(const std::uint8_t *payload, std::size_t len,
                   Request &out, std::string *err = nullptr);
bool decodeResponse(const std::uint8_t *payload, std::size_t len,
                    Response &out, std::string *err = nullptr);
/// @}

/** Prepend the u32le length prefix to a payload. */
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t> &payload);

/**
 * Append `u32le len | payload` for @p resp directly onto @p out.
 * Identical bytes to frame(encodeResponse(resp)) without the two
 * intermediate allocations - the reactor encodes straight into its
 * per-connection batched write buffer on the hot path.
 */
void appendResponseFrame(std::vector<std::uint8_t> &out,
                         const Response &resp);

/**
 * Append the frame of an OK GET_ENTROPY response answering @p req
 * with @p n bytes at @p data - byte-identical to building the
 * Response (seq/requestId echoed per echoRequestId) and calling
 * appendResponseFrame, but with no Response object and a single copy
 * of the entropy bytes. The reactor's pool fast path lives on this.
 */
void appendEntropyOkFrame(std::vector<std::uint8_t> &out,
                          const Request &req,
                          const std::uint8_t *data, std::size_t n);

/** @name Bit packing (BitVector <-> byte image, bit i -> byte i/8) */
/// @{
std::vector<std::uint8_t> packBits(const BitVector &bits);
BitVector unpackBits(const std::uint8_t *bytes, std::size_t n_bits);
/// @}

/**
 * Incremental frame splitter. Feed bytes as they arrive from a
 * socket (partial reads are fine); complete payloads pop out of
 * next(). Oversized length prefixes poison the reader - the
 * connection cannot be resynchronized and must be closed.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t max_frame = kMaxFrameBytes)
        : maxFrame_(max_frame)
    {
    }

    /** Append @p len bytes. @return false once poisoned. */
    bool feed(const std::uint8_t *data, std::size_t len);

    /** Pop the next complete payload. @return false when none. */
    bool next(std::vector<std::uint8_t> &payload);

    /** Non-empty once poisoned by an oversized frame. */
    const std::string &error() const { return error_; }

    /** Bytes currently buffered (tests). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::size_t maxFrame_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0; //!< consumed prefix of buf_
    std::string error_;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_PROTO_HH
