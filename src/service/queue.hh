/**
 * @file
 * Bounded multi-producer single-consumer queue - the backpressure
 * primitive of the shard pool. Producers (connection threads) never
 * block: tryPush() fails immediately when the queue is full, which
 * the server surfaces as BUSY. The consumer (the shard worker) pops
 * with a timeout so it can notice shutdown, and drains whatever is
 * left after close() so in-flight requests still get answers during
 * a graceful drain.
 */

#ifndef FRACDRAM_SERVICE_QUEUE_HH
#define FRACDRAM_SERVICE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

namespace fracdram::service
{

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
    }

    /** @return false when full or closed (the item is untouched). */
    bool tryPush(T &&item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Pop one item, waiting up to @p timeout.
     * @return false on timeout, or when closed and drained
     */
    bool pop(T &out, std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, timeout,
                     [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Pop without waiting (the batching path). */
    bool tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Reject further pushes and wake the consumer. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_QUEUE_HH
