#include "service/reactor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "service/net.hh"
#include "service/server.hh"
#include "telemetry/trace.hh"

namespace fracdram::service
{

namespace
{

/** Per-connection write queue chunk size (frames never split). */
constexpr std::size_t kChunkBytes = 64 * 1024;

/** iovecs per writev - deep queues drain over a few calls. */
constexpr int kMaxIov = 8;

/** Housekeeping cadence (idle scan, write-stall scan). */
constexpr std::uint64_t kTickNs = 100'000'000ull;

struct ConnCounters
{
    telemetry::CounterId accepted, rejected, rateLimited, badFrames;
    telemetry::CounterId jobs, entropyBytes, poolHits, poolRefills;
    telemetry::CounterId logSuppressed;
    telemetry::HistogramId writeBatch, requestNs;

    ConnCounters()
    {
        auto &m = telemetry::Metrics::instance();
        accepted = m.counter("service.conn_accepted");
        rejected = m.counter("service.conn_rejected");
        rateLimited = m.counter("service.rate_limited");
        badFrames = m.counter("service.bad_frames");
        // WARNs swallowed by warnTick(); renders as
        // fracdram_log_suppressed_total so flood suppression is
        // itself visible in /metrics.
        logSuppressed = m.counter("log.suppressed");
        // Same interned names the shards use: a request answered
        // from the reactor pool is still a served job.
        jobs = m.counter("service.jobs");
        entropyBytes = m.counter("service.entropy_bytes");
        poolHits = m.counter("service.pool_hits");
        poolRefills = m.counter("service.pool_refills");
        writeBatch = m.histogram("service.write_batch_frames");
        requestNs = m.histogram("service.request_ns");
    }
};

/**
 * Bulk size of one reactor-pool refill job. Clamped to the shard's
 * per-request entropy cap (a refill is an ordinary GET_ENTROPY job).
 */
constexpr std::size_t kPoolChunk = 256 * 1024;

const ConnCounters &
connCounters()
{
    static const ConnCounters c;
    return c;
}

/** Monotonic clock for timeouts (independent of telemetry). */
std::uint64_t
monoNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Gate for rate-limited WARNs: true at most once per @p period_ns
 * per @p gate, no matter how many threads hit it. Flood conditions
 * (connection cap, garbage frames) log one line with totals, not one
 * line per event.
 */
bool
warnTick(std::atomic<std::uint64_t> &gate,
         std::uint64_t period_ns = 5'000'000'000ull)
{
    const std::uint64_t now = monoNs();
    std::uint64_t last = gate.load(std::memory_order_relaxed);
    return (last == 0 || now - last >= period_ns) &&
           gate.compare_exchange_strong(last, now);
}

/**
 * Per-connection request rate limiter. Refills continuously, holds
 * up to one second of burst. Single-threaded (owned by one reactor).
 */
class TokenBucket
{
  public:
    explicit TokenBucket(double rate_per_sec)
        : rate_(rate_per_sec), tokens_(rate_per_sec),
          last_(std::chrono::steady_clock::now())
    {
    }

    bool active() const { return rate_ > 0.0; }

    bool allow()
    {
        const auto now = std::chrono::steady_clock::now();
        const double dt =
            std::chrono::duration<double>(now - last_).count();
        last_ = now;
        tokens_ = std::min(rate_, tokens_ + dt * rate_);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

  private:
    double rate_;
    double tokens_;
    std::chrono::steady_clock::time_point last_;
};

Response
quickResponse(const Request &req, Status status, std::string text)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = status;
    resp.text = std::move(text);
    echoRequestId(resp, req);
    return resp;
}

/** Turn a completed timeline into pid-3 Chrome trace lanes. */
void
emitRequestSpans(const RequestTimeline &t)
{
    const auto span = [&t](const char *stage, std::uint64_t a,
                           std::uint64_t b) {
        if (b > a && a > 0)
            telemetry::traceRequestSpan(stage, t.requestId, a, b - a);
    };
    if (t.shard >= 0) {
        span("parse", t.recvNs, t.enqueueNs);
        span("queue_wait", t.enqueueNs, t.dequeueNs);
        span("batch", t.dequeueNs, t.genStartNs);
        span("generate", t.genStartNs, t.genEndNs);
        span("write", t.genEndNs, t.writeNs);
    } else {
        span("parse", t.recvNs, t.writeNs);
    }
}

} // namespace

const char *
reactorPhaseName(int phase)
{
    switch (static_cast<ReactorPhase>(phase)) {
    case ReactorPhase::Idle:
        return "idle";
    case ReactorPhase::Accept:
        return "accept";
    case ReactorPhase::Read:
        return "read";
    case ReactorPhase::Dispatch:
        return "shard-dispatch";
    case ReactorPhase::Write:
        return "writev";
    case ReactorPhase::Control:
        return "control";
    case ReactorPhase::Tick:
        return "tick";
    }
    return "?";
}

/**
 * One connection, touched only by its owning reactor thread. The
 * pending window holds one Slot per decoded frame in arrival order;
 * baseSeq is the absolute index of pending.front(), so a completion
 * for absolute index a lands in pending[a - baseSeq] (u32 arithmetic,
 * wrap-safe). Only the ready prefix is encoded into outq.
 */
struct Reactor::Conn
{
    struct Slot
    {
        Response resp;
        std::uint64_t recvNs = 0; //!< frame decoded (traced requests)
        int shard = -1;           //!< -1: answered inline
        bool ready = false;
    };

    explicit Conn(double rate_per_sec) : bucket(rate_per_sec) {}

    int fd = -1;
    std::uint32_t id = 0;
    FrameReader reader;
    TokenBucket bucket;
    std::deque<Slot> pending;
    std::uint32_t baseSeq = 0; //!< absolute index of pending.front()
    std::uint32_t nextSeq = 0; //!< absolute index of the next frame
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t outPos = 0;   //!< consumed bytes of outq.front()
    std::size_t outBytes = 0; //!< total unflushed bytes
    std::vector<RequestTimeline> traced; //!< encoded, not yet stamped
    std::uint64_t lastActiveNs = 0;
    std::uint64_t stallSinceNs = 0; //!< first EAGAIN, 0 = no stall
    std::size_t framesSinceFlush = 0;
    bool wantWrite = false; //!< EPOLLOUT currently armed
    bool readClosed = false;
};

Reactor::Reactor(Server &server, int index, int pin_cpu,
                 int listen_fd)
    : server_(server), index_(index), pinCpu_(pin_cpu),
      listenFd_(listen_fd), rdbuf_(64 * 1024)
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    fatal_if(epollFd_ < 0, "epoll_create1: %s", std::strerror(errno));
    eventFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    fatal_if(eventFd_ < 0, "eventfd: %s", std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = eventFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &ev);
    if (listenFd_ >= 0) {
        setNonBlocking(listenFd_);
        ev.data.fd = listenFd_;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    }
    auto &m = telemetry::Metrics::instance();
    connsGauge_ = m.gauge(strprintf("service.reactor%d.conns", index));
    heartbeatGauge_ =
        m.gauge(strprintf("service.reactor%d.heartbeat", index));
    phaseGauge_ = m.gauge(strprintf("service.reactor%d.phase", index));
    turnHist_ =
        m.histogram(strprintf("service.reactor%d.turn_ns", index));
    lagHist_ =
        m.histogram(strprintf("service.reactor%d.loop_lag_ns", index));

    // Test hook for the stall detector: "<index>:<ms>" freezes that
    // reactor's loop for ms milliseconds when it adopts its first
    // connection (see adoptLocal). Never set outside tests/CI.
    if (const char *spec = std::getenv("FRACDRAM_TEST_FREEZE_REACTOR")) {
        int idx = -1, ms = 0;
        if (std::sscanf(spec, "%d:%d", &idx, &ms) == 2 &&
            idx == index_ && ms > 0) {
            freezeMs_ = ms;
            freezeArmed_ = true;
            warn("component=reactor%d TEST freeze hook armed: first "
                 "adopted connection stalls the loop for %dms",
                 index_, ms);
        }
    }
}

void
Reactor::setPhase(ReactorPhase p)
{
    // Two relaxed stores; the watchdog and flight recorder read the
    // gauge (snapshot path) or phase_ (direct accessor) from their
    // own threads. Exactness across the race is not required - a
    // *stuck* loop stops changing phase, which is the case we built
    // this for.
    phase_.store(static_cast<int>(p), std::memory_order_relaxed);
    telemetry::setGauge(phaseGauge_, static_cast<int>(p));
}

Reactor::~Reactor()
{
    join();
    for (auto &kv : conns_)
        closeFd(kv.second->fd);
    closeFd(eventFd_);
    closeFd(epollFd_);
}

void
Reactor::start()
{
    thread_ = std::thread(&Reactor::run, this);
}

void
Reactor::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Reactor::requestDrain()
{
    draining_.store(true, std::memory_order_release);
    wake();
}

void
Reactor::adopt(int fd)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        adopted_.push_back(fd);
    }
    wake(); // adopts are rare; always waking keeps them prompt
}

void
Reactor::onResponse(std::uint64_t token, Response &&resp)
{
    bool was_empty;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        was_empty = completions_.empty();
        completions_.push_back({token, std::move(resp)});
    }
    // One eventfd write per empty -> non-empty transition: a shard
    // finishing a 64-job batch wakes the reactor once, not 64 times.
    if (was_empty)
        wake();
}

void
Reactor::wake()
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(eventFd_, &one, sizeof(one));
}

void
Reactor::run()
{
    if (pinCpu_ >= 0)
        pinThisThreadToCpu(pinCpu_);
    epoll_event evs[64];
    lastTickNs_ = monoNs();
    while (true) {
        if (draining_.load(std::memory_order_acquire))
            beginDrain();
        if (drainStarted_ && conns_.empty())
            break;
        setPhase(ReactorPhase::Idle);
        const int n =
            ::epoll_wait(epollFd_, evs, 64, drainStarted_ ? 50 : 100);
        // One turn = everything between two epoll_wait calls. The
        // heartbeat advances even on timeout turns (at least every
        // 100ms), so a frozen heartbeat always means a stuck loop.
        heartbeat_.fetch_add(1, std::memory_order_relaxed);
        telemetry::setGauge(
            heartbeatGauge_,
            static_cast<std::int64_t>(
                heartbeat_.load(std::memory_order_relaxed)));
        const std::uint64_t turn_start = monoNs();
        // Connection events first, control fds second: a close during
        // this batch must not let a just-accepted connection reuse
        // the fd and alias a stale event.
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == eventFd_ || fd == listenFd_)
                continue;
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue; // closed earlier in this batch
            Conn *conn = it->second.get();
            if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
                closeConn(conn);
                continue;
            }
            if ((evs[i].events & EPOLLIN) != 0) {
                setPhase(ReactorPhase::Read);
                handleReadable(conn);
            }
            if ((evs[i].events & EPOLLOUT) != 0) {
                it = conns_.find(fd);
                if (it != conns_.end()) {
                    setPhase(ReactorPhase::Write);
                    pumpConn(it->second.get());
                }
            }
        }
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == eventFd_) {
                setPhase(ReactorPhase::Control);
                handleWake();
            } else if (fd == listenFd_ && !drainStarted_) {
                setPhase(ReactorPhase::Accept);
                handleAccept();
            }
        }
        const std::uint64_t now = monoNs();
        if (now - lastTickNs_ >= kTickNs) {
            // Lateness beyond the 100ms cadence is loop lag: time the
            // loop spent working (or stuck) instead of ticking.
            const std::uint64_t late = now - lastTickNs_ - kTickNs;
            telemetry::observe(lagHist_, late);
            lastTickNs_ = now;
            setPhase(ReactorPhase::Tick);
            tick(now);
        }
        // Busy turns only: at 10Hz an idle loop would drown the
        // histogram in near-zero samples.
        if (n > 0)
            telemetry::observe(turnHist_, monoNs() - turn_start);
    }
    setPhase(ReactorPhase::Idle);
    telemetry::setGauge(connsGauge_, 0);
}

void
Reactor::handleWake()
{
    std::uint64_t v;
    [[maybe_unused]] const auto r = ::read(eventFd_, &v, sizeof(v));
    std::vector<Completion> done;
    std::vector<int> fds;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        done.swap(completions_);
        fds.swap(adopted_);
    }
    for (const int fd : fds)
        adoptLocal(fd);
    // Route everything first, then pump each touched connection once:
    // one writev flushes the whole completion batch per connection.
    std::vector<Conn *> touched;
    for (Completion &c : done) {
        if (static_cast<std::uint32_t>(c.token >> 32) == 0) {
            onPoolRefill(c.token, std::move(c.resp));
            continue;
        }
        const auto it = connsById_.find(
            static_cast<std::uint32_t>(c.token >> 32));
        if (it == connsById_.end())
            continue; // connection died with jobs in flight
        Conn *conn = it->second;
        const std::uint32_t rel =
            static_cast<std::uint32_t>(c.token) - conn->baseSeq;
        if (rel >= conn->pending.size())
            continue; // stale token
        Conn::Slot &slot = conn->pending[rel];
        slot.resp = std::move(c.resp);
        slot.ready = true;
        if (std::find(touched.begin(), touched.end(), conn) ==
            touched.end())
            touched.push_back(conn);
    }
    for (Conn *conn : touched)
        pumpConn(conn);
}

void
Reactor::handleAccept()
{
    const auto &cfg = server_.cfg_;
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            break; // EAGAIN, or a transient accept error
        setNoDelay(fd);
        // Count live connections against the cap at accept time so a
        // storm cannot overshoot while handoffs are in flight.
        if (server_.liveConns_.load(std::memory_order_relaxed) >=
            cfg.maxConnections) {
            // Tell the client why before hanging up. The socket is
            // fresh, so this one small frame cannot block.
            Request synthetic;
            synthetic.type = MsgType::Health;
            std::vector<std::uint8_t> out;
            appendResponseFrame(out,
                                quickResponse(synthetic, Status::Busy,
                                              "connection limit "
                                              "reached"));
            writeAll(fd, out.data(), out.size(), nullptr);
            closeFd(fd);
            ++server_.rejected_;
            telemetry::count(connCounters().rejected);
            static std::atomic<std::uint64_t> gate{0};
            if (warnTick(gate)) {
                warn("component=server connection limit (%zu) "
                     "reached; rejecting with BUSY (%llu rejected "
                     "so far)",
                     static_cast<std::size_t>(cfg.maxConnections),
                     static_cast<unsigned long long>(
                         server_.rejected_.load()));
            } else {
                telemetry::count(connCounters().logSuppressed);
            }
            continue;
        }
        server_.liveConns_.fetch_add(1, std::memory_order_relaxed);
        ++server_.accepted_;
        telemetry::count(connCounters().accepted);
        setNonBlocking(fd);
        Reactor *target =
            server_.reactors_[acceptRr_++ % server_.reactors_.size()]
                .get();
        if (target == this)
            adoptLocal(fd);
        else
            target->adopt(fd);
        debug_log("service: accepted connection fd=%d -> reactor %d",
                  fd, target->index());
    }
}

void
Reactor::adoptLocal(int fd)
{
    if (drainStarted_) {
        closeFd(fd);
        server_.liveConns_.fetch_sub(1, std::memory_order_relaxed);
        return;
    }
    if (freezeArmed_) {
        // Test hook: stall the loop mid-phase so CI can prove the
        // watchdog's stall detector fires and names this reactor.
        freezeArmed_ = false;
        warn("component=reactor%d TEST freeze hook firing: sleeping "
             "%dms on the loop thread",
             index_, freezeMs_);
        const timespec ts = {freezeMs_ / 1000,
                             (freezeMs_ % 1000) * 1'000'000L};
        ::nanosleep(&ts, nullptr);
    }
    auto conn =
        std::make_unique<Conn>(server_.cfg_.rateLimitPerConn);
    conn->fd = fd;
    conn->id = nextConnId_++;
    conn->lastActiveNs = monoNs();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    connsById_[conn->id] = conn.get();
    conns_[fd] = std::move(conn);
    connCount_.store(conns_.size(), std::memory_order_relaxed);
    telemetry::setGauge(connsGauge_,
                        static_cast<std::int64_t>(conns_.size()));
}

void
Reactor::beginDrain()
{
    if (drainStarted_)
        return;
    drainStarted_ = true;
    if (listenFd_ >= 0)
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    // Read-side shutdown only: the client sees EOF, but responses
    // already owed (queued on shards or in outq) still go out. A
    // stalled writer is bounded by writeTimeoutMs, not forever.
    std::vector<Conn *> all;
    all.reserve(conns_.size());
    for (auto &kv : conns_)
        all.push_back(kv.second.get());
    for (Conn *conn : all) {
        shutdownRead(conn->fd);
        if (!conn->readClosed) {
            conn->readClosed = true;
            epoll_event ev{};
            ev.events = conn->wantWrite ? unsigned{EPOLLOUT} : 0u;
            ev.data.fd = conn->fd;
            ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
        }
        pumpConn(conn); // closes immediately when nothing is owed
    }
}

void
Reactor::handleReadable(Conn *conn)
{
    if (conn->readClosed)
        return;
    // One read per turn; level-triggered epoll re-arms when more
    // bytes are waiting, which keeps one firehose connection from
    // starving the rest of this reactor's conns.
    const long n = readSome(conn->fd, rdbuf_.data(), rdbuf_.size());
    if (n < 0) {
        closeConn(conn);
        return;
    }
    if (n == 0) {
        // EOF. Stop reading (a level-triggered EOF fires forever) but
        // finish writing whatever is still owed before closing.
        conn->readClosed = true;
        epoll_event ev{};
        ev.events = conn->wantWrite ? unsigned{EPOLLOUT} : 0u;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
        pumpConn(conn);
        return;
    }
    conn->lastActiveNs = monoNs();
    conn->reader.feed(rdbuf_.data(), static_cast<std::size_t>(n));
    // One entropy shard per read batch, not per frame: a pipelined
    // window dispatched whole lands as one big shard batch (one
    // worker wakeup, one coalesced generate()) instead of scattering
    // single jobs across every shard.
    readShard_ = server_.rr_.fetch_add(1, std::memory_order_relaxed) %
                 server_.shards_.size();
    setPhase(ReactorPhase::Dispatch);
    while (!conn->readClosed && conn->reader.next(rdpayload_))
        dispatchFrame(conn, rdpayload_);
    if (!conn->reader.error().empty() && !conn->readClosed) {
        // Oversized frame poisoned the reader: answer, then hang up -
        // the stream cannot be trusted to stay aligned.
        telemetry::count(connCounters().badFrames);
        Request synthetic;
        synthetic.type = MsgType::Health;
        conn->pending.emplace_back();
        Conn::Slot &slot = conn->pending.back();
        slot.resp = quickResponse(synthetic, Status::Error,
                                  conn->reader.error());
        slot.ready = true;
        ++conn->nextSeq;
        conn->readClosed = true;
        epoll_event ev{};
        ev.events = conn->wantWrite ? unsigned{EPOLLOUT} : 0u;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    setPhase(ReactorPhase::Write);
    pumpConn(conn);
}

void
Reactor::dispatchFrame(Conn *conn,
                       const std::vector<std::uint8_t> &payload)
{
    const auto &cc = connCounters();
    const std::uint64_t recv_ns =
        telemetry::enabled() ? telemetry::nowNs() : 0;
    Request req;
    std::string err;
    const auto push_inline = [&](Response &&resp) {
        conn->pending.emplace_back();
        Conn::Slot &slot = conn->pending.back();
        slot.resp = std::move(resp);
        slot.recvNs = recv_ns;
        slot.ready = true;
        ++conn->nextSeq;
    };
    if (!decodeRequest(payload.data(), payload.size(), req, &err)) {
        // Undecodable frame: answer, then hang up - the stream cannot
        // be trusted to stay aligned.
        telemetry::count(cc.badFrames);
        static std::atomic<std::uint64_t> gate{0};
        if (warnTick(gate)) {
            warn("component=server undecodable frame on fd=%d (%s); "
                 "closing connection",
                 conn->fd, err.c_str());
        } else {
            telemetry::count(cc.logSuppressed);
        }
        Request synthetic;
        synthetic.type = MsgType::Health;
        if (payload.size() >= 4)
            synthetic.seq = static_cast<std::uint16_t>(
                payload[2] | (payload[3] << 8));
        push_inline(quickResponse(synthetic, Status::Error, err));
        conn->readClosed = true;
        epoll_event ev{};
        ev.events = conn->wantWrite ? unsigned{EPOLLOUT} : 0u;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
        return;
    }
    if (req.type == MsgType::Health) {
        push_inline(
            quickResponse(req, Status::Ok, server_.healthJson()));
        return;
    }
    if (req.type == MsgType::Stats) {
        push_inline(
            quickResponse(req, Status::Ok, server_.statsJson()));
        return;
    }
    if (conn->bucket.active() && !conn->bucket.allow()) {
        telemetry::count(cc.rateLimited);
        push_inline(quickResponse(req, Status::RateLimited,
                                  "per-connection rate limit"));
        return;
    }
    if (req.type == MsgType::GetEntropy &&
        serveEntropyFromPool(conn, req, recv_ns))
        return;
    // Device-addressed entropy routes like PUF (device affinity, so
    // one device's state lives on exactly one shard); anonymous
    // entropy round-robins over the shards' default devices.
    const std::size_t shard_idx =
        req.type == MsgType::GetEntropy &&
                (req.flags & kFlagDeviceId) == 0
            ? readShard_
            : req.device % server_.shards_.size();
    conn->pending.emplace_back();
    Conn::Slot &slot = conn->pending.back();
    slot.recvNs = recv_ns;
    slot.shard = static_cast<int>(shard_idx);
    const std::uint32_t abs = conn->nextSeq++;
    Job job;
    job.req = req;
    job.sink = this;
    job.token = (static_cast<std::uint64_t>(conn->id) << 32) | abs;
    if (!server_.shards_[shard_idx]->submit(std::move(job))) {
        slot.resp =
            quickResponse(req, Status::Busy, "shard queue full");
        slot.shard = -1;
        slot.ready = true;
    }
}

bool
Reactor::serveEntropyFromPool(Conn *conn, const Request &req,
                              std::uint64_t recv_ns)
{
    if ((req.flags & kFlagRawEntropy) != 0)
        return false; // raw mode is device-rate-limited by design
    if ((req.flags & kFlagDeviceId) != 0)
        return false; // the pool is default-device DRBG stream only
    const std::size_t n = req.nBytes;
    if (n > server_.cfg_.shard.maxEntropyBytes)
        return false; // let the shard own the too-large error
    if (pool_.size() - poolPos_ < n) {
        maybeRefillPool(); // miss: shard answers this one, pool warms
        return false;
    }
    const auto &cc = connCounters();
    const bool traced =
        telemetry::enabled() && (req.flags & kFlagRequestId) != 0;
    if (conn->pending.empty()) {
        // Empty window: this response leaves in order by
        // construction, so encode straight into the write queue - no
        // Slot, no Response, one copy of the entropy bytes. In a
        // pool-warm pipelined burst every frame takes this branch
        // (the window drains as fast as it would fill).
        if (conn->outq.empty() ||
            conn->outq.back().size() >= kChunkBytes) {
            conn->outq.emplace_back();
            conn->outq.back().reserve(kChunkBytes + 512);
        }
        auto &chunk = conn->outq.back();
        const std::size_t before = chunk.size();
        appendEntropyOkFrame(chunk, req, pool_.data() + poolPos_, n);
        conn->outBytes += chunk.size() - before;
        ++conn->framesSinceFlush;
        ++conn->nextSeq;
        ++conn->baseSeq; // the window never held this frame
        poolPos_ += n;
        if (traced) {
            const std::uint64_t now = telemetry::nowNs();
            RequestTimeline t;
            t.requestId = req.requestId;
            t.type = static_cast<std::uint8_t>(MsgType::GetEntropy);
            t.status = static_cast<std::uint8_t>(Status::Ok);
            t.shard = poolShard_;
            t.recvNs = recv_ns;
            t.enqueueNs = now;
            t.dequeueNs = now;
            t.genStartNs = now;
            t.genEndNs = now;
            conn->traced.push_back(t);
        }
        telemetry::count(cc.jobs);
        telemetry::count(cc.poolHits);
        telemetry::count(cc.entropyBytes, n);
        maybeRefillPool();
        return true;
    }
    conn->pending.emplace_back();
    Conn::Slot &slot = conn->pending.back();
    ++conn->nextSeq;
    Response &resp = slot.resp;
    resp.type = MsgType::GetEntropy;
    resp.seq = req.seq;
    resp.status = Status::Ok;
    resp.data.assign(pool_.begin() + static_cast<long>(poolPos_),
                     pool_.begin() + static_cast<long>(poolPos_ + n));
    poolPos_ += n;
    echoRequestId(resp, req);
    slot.recvNs = recv_ns;
    slot.shard = poolShard_; //!< DRBG owner: a real stage attribution
    slot.ready = true;
    telemetry::count(cc.jobs);
    telemetry::count(cc.poolHits);
    telemetry::count(cc.entropyBytes, n);
    if (traced) {
        // A pool hit never queues and never generates; the stage
        // stamps collapse to one instant, which keeps the timeline
        // monotonic and makes the fast path self-identifying in
        // /varz (queue_wait == generate == 0).
        const std::uint64_t now = telemetry::nowNs();
        resp.stamps.enqueueNs = now;
        resp.stamps.dequeueNs = now;
        resp.stamps.genStartNs = now;
        resp.stamps.genEndNs = now;
    }
    maybeRefillPool();
    return true;
}

void
Reactor::maybeRefillPool()
{
    const std::size_t chunk = std::min(
        kPoolChunk,
        static_cast<std::size_t>(server_.cfg_.shard.maxEntropyBytes));
    if (refillInFlight_ || chunk == 0 ||
        pool_.size() - poolPos_ >= chunk)
        return;
    const std::size_t shard_idx =
        server_.rr_.fetch_add(1, std::memory_order_relaxed) %
        server_.shards_.size();
    Job job;
    job.req.type = MsgType::GetEntropy;
    job.req.nBytes = static_cast<std::uint32_t>(chunk);
    job.sink = this;
    // Connection ids start at 1, so the id-0 namespace addresses the
    // pool; the low bits carry the producing shard for attribution.
    job.token = shard_idx;
    if (server_.shards_[shard_idx]->submit(std::move(job)))
        refillInFlight_ = true;
    // A full queue just means the refill waits for the next hit.
}

void
Reactor::onPoolRefill(std::uint64_t token, Response &&resp)
{
    refillInFlight_ = false;
    if (resp.status != Status::Ok)
        return; // saturated shard: the pool refills on a later hit
    telemetry::count(connCounters().poolRefills);
    poolShard_ = static_cast<int>(token);
    if (poolPos_ > 0) {
        pool_.erase(pool_.begin(),
                    pool_.begin() + static_cast<long>(poolPos_));
        poolPos_ = 0;
    }
    pool_.insert(pool_.end(), resp.data.begin(), resp.data.end());
}

bool
Reactor::encodeReady(Conn *conn)
{
    bool any = false;
    while (!conn->pending.empty() && conn->pending.front().ready) {
        Conn::Slot &slot = conn->pending.front();
        if (conn->outq.empty() ||
            conn->outq.back().size() >= kChunkBytes) {
            conn->outq.emplace_back();
            conn->outq.back().reserve(kChunkBytes + 512);
        }
        auto &chunk = conn->outq.back();
        const std::size_t before = chunk.size();
        appendResponseFrame(chunk, slot.resp);
        conn->outBytes += chunk.size() - before;
        ++conn->framesSinceFlush;
        if (telemetry::enabled() &&
            (slot.resp.flags & kFlagRequestId) != 0) {
            RequestTimeline t;
            t.requestId = slot.resp.requestId;
            t.type = static_cast<std::uint8_t>(slot.resp.type);
            t.status = static_cast<std::uint8_t>(slot.resp.status);
            t.shard = slot.shard;
            t.recvNs = slot.recvNs;
            t.enqueueNs = slot.resp.stamps.enqueueNs;
            t.dequeueNs = slot.resp.stamps.dequeueNs;
            t.genStartNs = slot.resp.stamps.genStartNs;
            t.genEndNs = slot.resp.stamps.genEndNs;
            conn->traced.push_back(t);
        }
        conn->pending.pop_front();
        ++conn->baseSeq;
        any = true;
    }
    return any;
}

bool
Reactor::flushConn(Conn *conn)
{
    while (!conn->outq.empty()) {
        iovec iov[kMaxIov];
        int niov = 0;
        std::size_t pos = conn->outPos;
        for (const auto &chunk : conn->outq) {
            iov[niov].iov_base =
                const_cast<std::uint8_t *>(chunk.data()) + pos;
            iov[niov].iov_len = chunk.size() - pos;
            pos = 0;
            if (++niov == kMaxIov)
                break;
        }
        const long w = writevSome(conn->fd, iov, niov);
        if (w < 0) {
            closeConn(conn);
            return false;
        }
        if (w == 0) {
            // Kernel buffer full: remember when the stall began so
            // tick() can kill a peer that stopped reading, and let
            // EPOLLOUT resume the flush.
            if (conn->stallSinceNs == 0)
                conn->stallSinceNs = monoNs();
            updateWriteInterest(conn);
            return true;
        }
        conn->stallSinceNs = 0;
        conn->outBytes -= static_cast<std::size_t>(w);
        std::size_t left = static_cast<std::size_t>(w);
        while (left > 0) {
            auto &front = conn->outq.front();
            const std::size_t avail = front.size() - conn->outPos;
            if (left < avail) {
                conn->outPos += left;
                left = 0;
            } else {
                left -= avail;
                conn->outq.pop_front();
                conn->outPos = 0;
            }
        }
    }
    conn->stallSinceNs = 0;
    updateWriteInterest(conn);
    return true;
}

void
Reactor::updateWriteInterest(Conn *conn)
{
    const bool want = !conn->outq.empty();
    if (want == conn->wantWrite)
        return;
    conn->wantWrite = want;
    epoll_event ev{};
    ev.events = (conn->readClosed ? 0u : unsigned{EPOLLIN}) |
                (want ? unsigned{EPOLLOUT} : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void
Reactor::pumpConn(Conn *conn)
{
    encodeReady(conn);
    if (conn->framesSinceFlush > 0) {
        telemetry::observe(connCounters().writeBatch,
                           conn->framesSinceFlush);
        conn->framesSinceFlush = 0;
    }
    if (!conn->outq.empty() && !flushConn(conn))
        return; // connection died (its traced batch dies with it)
    if (!conn->traced.empty()) {
        // One stamp for the whole batch: the requests left the
        // daemon together in one writev call.
        const std::uint64_t write_ns = telemetry::nowNs();
        const auto &cc = connCounters();
        for (RequestTimeline &t : conn->traced) {
            t.writeNs = write_ns;
            telemetry::observe(cc.requestNs, write_ns > t.recvNs
                                                 ? write_ns - t.recvNs
                                                 : 0);
            server_.traceRing_.push(t);
            emitRequestSpans(t);
        }
        conn->traced.clear();
    }
    if (conn->readClosed && conn->pending.empty() &&
        conn->outq.empty())
        closeConn(conn);
}

void
Reactor::closeConn(Conn *conn)
{
    const int fd = conn->fd;
    debug_log("service: closing connection fd=%d", fd);
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    connsById_.erase(conn->id);
    conns_.erase(fd); // destroys conn
    server_.liveConns_.fetch_sub(1, std::memory_order_relaxed);
    connCount_.store(conns_.size(), std::memory_order_relaxed);
    telemetry::setGauge(connsGauge_,
                        static_cast<std::int64_t>(conns_.size()));
}

void
Reactor::tick(std::uint64_t now_ns)
{
    const auto &cfg = server_.cfg_;
    std::vector<Conn *> doomed;
    for (auto &kv : conns_) {
        Conn *conn = kv.second.get();
        if (cfg.writeTimeoutMs > 0 && conn->stallSinceNs != 0 &&
            now_ns - conn->stallSinceNs >=
                static_cast<std::uint64_t>(cfg.writeTimeoutMs) *
                    1'000'000ull) {
            // Peer stopped reading with responses owed: drop it (the
            // non-blocking replacement for SO_SNDTIMEO).
            doomed.push_back(conn);
            continue;
        }
        if (!conn->readClosed && cfg.idleTimeoutMs > 0 &&
            conn->pending.empty() && conn->outq.empty() &&
            now_ns - conn->lastActiveNs >=
                static_cast<std::uint64_t>(cfg.idleTimeoutMs) *
                    1'000'000ull)
            doomed.push_back(conn);
    }
    for (Conn *conn : doomed)
        closeConn(conn);
}

} // namespace fracdram::service
