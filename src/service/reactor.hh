/**
 * @file
 * One event-loop thread of the serving daemon (see server.hh for the
 * full threading model). A reactor owns:
 *
 *   - an epoll instance watching its connections (and, on reactor 0,
 *     the listen socket - accepts happen on the loop, no dedicated
 *     accept thread),
 *   - an eventfd other threads use to wake it: the accepting reactor
 *     hands off adopted connections, shard workers post completions,
 *     and stop() posts the drain request,
 *   - every connection assigned to it, each with a FrameReader, a
 *     token bucket, an ordered pending-response window and a batched
 *     write queue flushed with one writev per loop turn.
 *
 * The pipelining contract (responses leave in request order per
 * connection) is kept by the pending window: frame k of a connection
 * occupies slot k; shard completions arrive out of order, are routed
 * by their 64-bit token (connection id | absolute frame index) into
 * the slot, and only the ready *prefix* of the window is encoded and
 * flushed. Completions carry no allocation and no futex on the hot
 * path - the shard worker appends to the reactor's completion vector
 * and writes the eventfd only on the empty -> non-empty transition.
 *
 * Nothing here is shared between reactors except the accept handoff;
 * all per-connection state is touched only by the owning loop thread.
 */

#ifndef FRACDRAM_SERVICE_REACTOR_HH
#define FRACDRAM_SERVICE_REACTOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/proto.hh"
#include "service/shard.hh"
#include "telemetry/metrics.hh"

namespace fracdram::service
{

class Server;

/**
 * Loop phases a reactor publishes while it works (gauge
 * `service.reactorN.phase`). The watchdog's stall detector reads the
 * phase of a reactor whose heartbeat froze, so a postmortem can say
 * *where* the loop is stuck, not just that it is.
 */
enum class ReactorPhase : int
{
    Idle = 0, //!< blocked in epoll_wait
    Accept,   //!< accepting / handing off new connections
    Read,     //!< draining a readable socket
    Dispatch, //!< decoding frames / submitting shard jobs
    Write,    //!< encoding responses / writev flush
    Control,  //!< eventfd drain (completions, adoptions)
    Tick,     //!< housekeeping scan (idle/stall timeouts)
};

constexpr int kNumReactorPhases = 7;

/** Stable lowercase name of a published phase value ("?" if bogus). */
const char *reactorPhaseName(int phase);

class Reactor final : public ResponseSink
{
  public:
    /**
     * @param server  owning daemon (config, shards, trace ring)
     * @param index   reactor number (0 accepts)
     * @param pin_cpu CPU to pin the loop thread to, -1 = no pinning
     * @param listen_fd the listen socket (reactor 0), else -1
     */
    Reactor(Server &server, int index, int pin_cpu, int listen_fd);
    ~Reactor();

    void start();
    void join();

    /**
     * Begin the graceful drain: stop accepting, shut the read side of
     * every connection, answer everything in flight, then exit the
     * loop. Callable from any thread; idempotent.
     */
    void requestDrain();

    /**
     * Take ownership of an accepted, non-blocking socket. Called by
     * the accepting reactor's loop thread (round-robin handoff).
     */
    void adopt(int fd);

    /** ResponseSink: called by shard workers, routes by token. */
    void onResponse(std::uint64_t token, Response &&resp) override;

    /** Live connections owned by this reactor (loop-published). */
    std::size_t connCount() const
    {
        return connCount_.load(std::memory_order_relaxed);
    }

    int index() const { return index_; }

    /** Loop turns completed so far (any-thread read; stall probe). */
    std::uint64_t heartbeat() const
    {
        return heartbeat_.load(std::memory_order_relaxed);
    }

    /** Phase the loop is currently in (any-thread read). */
    int phaseNow() const
    {
        return phase_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn;
    struct Completion
    {
        std::uint64_t token;
        Response resp;
    };

    void run();
    void wake();
    void handleWake();
    void handleAccept();
    void adoptLocal(int fd);
    void beginDrain();
    void handleReadable(Conn *conn);
    void dispatchFrame(Conn *conn, const std::vector<std::uint8_t> &payload);
    bool serveEntropyFromPool(Conn *conn, const Request &req,
                              std::uint64_t recv_ns);
    void maybeRefillPool();
    void onPoolRefill(std::uint64_t token, Response &&resp);
    void pumpConn(Conn *conn);
    bool encodeReady(Conn *conn);
    bool flushConn(Conn *conn);
    void updateWriteInterest(Conn *conn);
    void closeConn(Conn *conn);
    void tick(std::uint64_t now_ns);
    void setPhase(ReactorPhase p);

    Server &server_;
    const int index_;
    const int pinCpu_;
    const int listenFd_; //!< -1 on non-accepting reactors
    int epollFd_ = -1;
    int eventFd_ = -1;
    std::thread thread_;

    /** @name Cross-thread inboxes (guarded by mutex_) */
    /// @{
    std::mutex mutex_;
    std::vector<Completion> completions_;
    std::vector<int> adopted_;
    /// @}
    std::atomic<bool> draining_{false};
    bool drainStarted_ = false;

    /** @name Loop-thread-only state */
    /// @{
    std::unordered_map<int, std::unique_ptr<Conn>> conns_; //!< by fd
    std::unordered_map<std::uint32_t, Conn *> connsById_;
    std::uint32_t nextConnId_ = 1;
    std::uint64_t acceptRr_ = 0; //!< handoff round-robin (reactor 0)
    std::uint64_t lastTickNs_ = 0;
    std::vector<std::uint8_t> rdbuf_;
    std::vector<std::uint8_t> rdpayload_; //!< frame scratch (reused)
    std::size_t readShard_ = 0; //!< entropy shard for this read batch

    /**
     * @name Reactor-local conditioned-entropy pool
     * Conditioned GET_ENTROPY is DRBG output; the shards own the
     * DRBGs, but a request does not need a cross-thread round trip
     * per 32 bytes. The reactor keeps a slice of DRBG stream fetched
     * from the shards in bulk (one refill job per kPoolChunk bytes,
     * round-robin over shards so every DRBG keeps reseeding from its
     * QUAC device) and answers pool hits inline. Raw mode and pool
     * misses still take the shard path.
     */
    /// @{
    std::vector<std::uint8_t> pool_;
    std::size_t poolPos_ = 0;
    int poolShard_ = 0; //!< shard whose DRBG filled the current pool
    bool refillInFlight_ = false;
    /// @}
    /// @}

    std::atomic<std::size_t> connCount_{0};
    telemetry::GaugeId connsGauge_;

    /**
     * @name Loop forensics (see DESIGN.md §5i)
     * heartbeat_ bumps once per loop turn (epoll_wait returns at
     * least every 100ms even idle, so a frozen heartbeat means a
     * stuck loop, not an idle one); phase_ names what the loop is
     * doing right now. Both are mirrored into gauges so the watchdog
     * and the flight recorder read them from ordinary snapshots.
     */
    /// @{
    std::atomic<std::uint64_t> heartbeat_{0};
    std::atomic<int> phase_{0};
    telemetry::GaugeId heartbeatGauge_;
    telemetry::GaugeId phaseGauge_;
    telemetry::HistogramId turnHist_; //!< busy-turn duration, ns
    telemetry::HistogramId lagHist_;  //!< tick lateness beyond 100ms
    int freezeMs_ = 0; //!< FRACDRAM_TEST_FREEZE_REACTOR test hook
    bool freezeArmed_ = false;
    /// @}
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_REACTOR_HH
