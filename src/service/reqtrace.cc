#include "service/reqtrace.hh"

#include "common/logging.hh"
#include "service/proto.hh"

namespace fracdram::service
{

namespace
{

std::uint64_t
satSub(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

void
RequestTraceRing::push(const RequestTimeline &t)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(t);
    } else {
        ring_[pushed_ % capacity_] = t;
    }
    ++pushed_;
}

std::vector<RequestTimeline>
RequestTraceRing::lastN(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t have = ring_.size();
    const std::size_t take = n < have ? n : have;
    std::vector<RequestTimeline> out;
    out.reserve(take);
    // Oldest of the window first. Before the first wrap the ring is
    // already in push order; afterwards pushed_ % capacity_ is the
    // oldest slot.
    const std::size_t start =
        have < capacity_ ? have - take
                         : (pushed_ + capacity_ - take) % capacity_;
    for (std::size_t i = 0; i < take; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

std::size_t
RequestTraceRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::string
renderTimelinesJson(const std::vector<RequestTimeline> &ts)
{
    std::string out = "[";
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const RequestTimeline &t = ts[i];
        const bool inline_req = t.shard < 0;
        const std::uint64_t parse =
            satSub(inline_req ? t.writeNs : t.enqueueNs, t.recvNs);
        out += i == 0 ? "\n" : ",\n";
        out += strprintf(
            "  {\"id\": %llu, \"type\": \"%s\", \"status\": \"%s\", "
            "\"shard\": %d, \"parse_ns\": %llu, "
            "\"queue_wait_ns\": %llu, \"batch_ns\": %llu, "
            "\"generate_ns\": %llu, \"write_ns\": %llu, "
            "\"total_ns\": %llu}",
            static_cast<unsigned long long>(t.requestId),
            msgTypeName(static_cast<MsgType>(t.type)),
            statusName(static_cast<Status>(t.status)), t.shard,
            static_cast<unsigned long long>(parse),
            static_cast<unsigned long long>(
                satSub(t.dequeueNs, t.enqueueNs)),
            static_cast<unsigned long long>(
                satSub(t.genStartNs, t.dequeueNs)),
            static_cast<unsigned long long>(
                satSub(t.genEndNs, t.genStartNs)),
            static_cast<unsigned long long>(
                satSub(t.writeNs,
                       inline_req ? t.recvNs + parse : t.genEndNs)),
            static_cast<unsigned long long>(
                satSub(t.writeNs, t.recvNs)));
    }
    out += "\n]";
    return out;
}

} // namespace fracdram::service
