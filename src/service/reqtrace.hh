/**
 * @file
 * Bounded in-memory ring of per-request timelines.
 *
 * When a client sets kFlagRequestId, the daemon stamps every stage
 * the request passes through - frame decoded, enqueued on a shard,
 * dequeued by the worker, generation start/end, response written -
 * and the connection thread pushes the completed timeline here. The
 * ring keeps the last N timelines (default 1024); /varz?trace=N
 * dumps the most recent N as JSON, and each completed request also
 * lands in the Chrome trace sink as a per-request lane (pid 3), so
 * "where did this slow request spend its time" is answerable without
 * any external tracing infrastructure.
 *
 * Push is one mutex + a few stores; timelines only exist for traced
 * requests, so untraced traffic never touches the ring at all.
 */

#ifndef FRACDRAM_SERVICE_REQTRACE_HH
#define FRACDRAM_SERVICE_REQTRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fracdram::service
{

/** Wall-clock stamps of one traced request's life, all from nowNs(). */
struct RequestTimeline
{
    std::uint64_t requestId = 0;
    std::uint8_t type = 0;    //!< MsgType
    std::uint8_t status = 0;  //!< Status
    int shard = -1;           //!< -1: answered inline (HEALTH/STATS)
    std::uint64_t recvNs = 0;     //!< frame decoded
    std::uint64_t enqueueNs = 0;  //!< submitted to the shard queue
    std::uint64_t dequeueNs = 0;  //!< worker picked the batch up
    std::uint64_t genStartNs = 0; //!< device work started
    std::uint64_t genEndNs = 0;   //!< device work finished
    std::uint64_t writeNs = 0;    //!< response bytes handed to send()
};

class RequestTraceRing
{
  public:
    explicit RequestTraceRing(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    void push(const RequestTimeline &t);

    /** Most recent min(@p n, stored) timelines, oldest first. */
    std::vector<RequestTimeline> lastN(std::size_t n) const;

    /** Timelines currently held (<= capacity). */
    std::size_t size() const;

    /** Lifetime pushes (ring overwrites don't forget). */
    std::uint64_t totalPushed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pushed_;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<RequestTimeline> ring_;
    std::uint64_t pushed_ = 0;
};

/**
 * JSON array of the most recent @p n timelines with per-stage
 * durations in nanoseconds (parse / queue_wait / batch / generate /
 * write / total). Inline requests report zero for the shard stages.
 */
std::string renderTimelinesJson(const std::vector<RequestTimeline> &ts);

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_REQTRACE_HH
