#include "service/router.hh"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "service/net.hh"
#include "telemetry/prom.hh"

namespace fracdram::fleet
{

using service::decodeRequest;
using service::encodeRequest;
using service::encodeResponse;
using service::FrameReader;
using service::kFlagDeviceId;
using service::MsgType;
using service::Request;
using service::Response;
using service::Status;

namespace
{

std::uint64_t
monoNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Append `u32le len | payload` onto @p out. */
void
appendFramed(std::vector<std::uint8_t> &out,
             const std::vector<std::uint8_t> &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    const std::size_t at = out.size();
    out.resize(at + 4 + payload.size());
    std::uint8_t *p = out.data() + at;
    p[0] = static_cast<std::uint8_t>(n & 0xff);
    p[1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
    p[2] = static_cast<std::uint8_t>((n >> 16) & 0xff);
    p[3] = static_cast<std::uint8_t>((n >> 24) & 0xff);
    std::memcpy(p + 4, payload.data(), payload.size());
}

/**
 * True when @p payload is an OK PUF_RESPONSE carrying the
 * no-reference hamming sentinel - the answer of a device that
 * evaluated the challenge but holds no enrolled reference (e.g. a
 * re-admitted daemon restarted blank). Cheap sentinel pre-filter
 * first; full decode only to rule out error-text false positives.
 */
bool
lacksReference(const std::vector<std::uint8_t> &payload)
{
    const std::size_t n = payload.size();
    if (n < 4 || payload[n - 4] != 0xff || payload[n - 3] != 0xff ||
        payload[n - 2] != 0xff || payload[n - 1] != 0xff)
        return false;
    service::Response resp;
    if (!service::decodeResponse(payload.data(), n, resp, nullptr))
        return false;
    return resp.type == MsgType::PufResponse &&
           resp.status == Status::Ok &&
           resp.hamming == service::kNoHamming;
}

/** Response payload answering @p req with @p status / @p text. */
std::vector<std::uint8_t>
responsePayload(const Request &req, Status status, std::string text)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = status;
    resp.text = std::move(text);
    service::echoRequestId(resp, req);
    return encodeResponse(resp);
}

} // namespace

Router::Router(const RouterConfig &cfg)
    : cfg_(cfg), ring_(cfg.vnodes)
{
    auto &m = telemetry::Metrics::instance();
    forwardedCtr_ = m.counter("router.forwarded");
    replicatedCtr_ = m.counter("router.replicated");
    failedOverCtr_ = m.counter("router.failed_over");
    steeredCtr_ = m.counter("router.steered");
    capabilityCtr_ = m.counter("router.capability");
    ejectionsCtr_ = m.counter("router.ejections");
    readmissionsCtr_ = m.counter("router.readmissions");
    acceptedCtr_ = m.counter("router.conn_accepted");
    badFramesCtr_ = m.counter("router.bad_frames");
    readThroughCtr_ = m.counter("router.verify_read_through");
    connsGauge_ = m.gauge("router.connections");
    for (std::size_t i = 0; i < cfg.backends.size(); ++i) {
        auto b = std::make_unique<Backend>();
        b->addr = cfg.backends[i];
        b->upGauge = m.gauge(strprintf("router.backend%zu.up", i));
        backends_.push_back(std::move(b));
        ring_.addNode(static_cast<int>(i));
    }
}

Router::~Router()
{
    stop();
}

bool
Router::start(std::string *err)
{
    if (backends_.empty()) {
        if (err != nullptr)
            *err = "router needs at least one backend";
        return false;
    }
    listenFd_ = service::listenTcp(cfg_.port, err);
    if (listenFd_ < 0)
        return false;
    port_ = service::boundPort(listenFd_);
    service::setNonBlocking(listenFd_);
    epollFd_ = ::epoll_create1(0);
    eventFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (epollFd_ < 0 || eventFd_ < 0) {
        if (err != nullptr)
            *err = "epoll/eventfd setup failed";
        return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = eventFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &ev);
    rdbuf_.resize(64 * 1024);
    startNs_ = monoNs();

    // Connect what answers now; the prober re-admits the rest when
    // they come up, so a router may start before its daemons.
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        std::string cerr;
        if (!connectBackend(i, &cerr))
            warn("component=router backend %zu (%s:%u) not connected "
                 "at startup: %s",
                 i, backends_[i]->addr.host.c_str(),
                 backends_[i]->addr.port, cerr.c_str());
    }

    if (cfg_.metricsPort >= 0) {
        http_ = std::make_unique<service::HttpServer>();
        http_->route("/metrics", [this](const service::HttpRequest &) {
            service::HttpResponse resp;
            resp.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            resp.body = aggregateMetrics();
            return resp;
        });
        http_->route("/fleet", [this](const service::HttpRequest &) {
            service::HttpResponse resp;
            resp.contentType = "application/json";
            resp.body = fleetJson();
            return resp;
        });
        http_->route("/healthz", [this](const service::HttpRequest &) {
            service::HttpResponse resp;
            std::size_t up = 0;
            for (const auto &b : backends_)
                up += b->up.load(std::memory_order_relaxed) ? 1 : 0;
            if (up == 0) {
                resp.status = 503;
                resp.body = "unhealthy: no live backend\n";
            } else {
                resp.body = "ok\n";
            }
            return resp;
        });
        if (!http_->start(
                static_cast<std::uint16_t>(cfg_.metricsPort), err))
            return false;
    }

    loopThread_ = std::thread(&Router::loop, this);
    proberThread_ = std::thread(&Router::proberLoop, this);
    running_ = true;
    return true;
}

void
Router::stop()
{
    if (!running_)
        return;
    draining_.store(true, std::memory_order_release);
    wakeLoop();
    loopThread_.join();
    stopProber_.store(true, std::memory_order_release);
    proberThread_.join();
    if (http_)
        http_->stop();
    running_ = false;
}

void
Router::wakeLoop()
{
    if (eventFd_ >= 0) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const auto n =
            ::write(eventFd_, &one, sizeof(one));
    }
}

bool
Router::backendUp(std::size_t i) const
{
    return i < backends_.size() &&
           backends_[i]->up.load(std::memory_order_relaxed);
}

bool
Router::backendAlive(int bi) const
{
    const Backend &b = *backends_[static_cast<std::size_t>(bi)];
    return b.fd >= 0 && b.up.load(std::memory_order_relaxed);
}

bool
Router::connectBackend(std::size_t bi, std::string *err)
{
    Backend &b = *backends_[bi];
    const int fd = service::connectTcp(b.addr.host, b.addr.port, err);
    if (fd < 0)
        return false;
    service::setNoDelay(fd);
    service::setNonBlocking(fd);
    b.fd = fd;
    b.reader = FrameReader();
    b.outbuf.clear();
    b.outpos = 0;
    b.wantWrite = false;
    b.up.store(true, std::memory_order_relaxed);
    telemetry::setGauge(b.upGauge, 1);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    backendByFd_[fd] = bi;
    return true;
}

void
Router::failBackend(std::size_t bi, const char *why)
{
    Backend &b = *backends_[bi];
    if (b.fd >= 0) {
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, b.fd, nullptr);
        backendByFd_.erase(b.fd);
        service::closeFd(b.fd);
        b.fd = -1;
    }
    b.outbuf.clear();
    b.outpos = 0;
    b.wantWrite = false;
    b.reader = FrameReader();
    const bool was_up = b.up.exchange(false, std::memory_order_relaxed);
    telemetry::setGauge(b.upGauge, 0);
    b.probeOks.store(0, std::memory_order_relaxed);
    if (was_up) {
        ejections_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(ejectionsCtr_);
        warn("component=router backend %zu (%s:%u) ejected: %s "
             "(inflight=%zu re-routed)",
             bi, b.addr.host.c_str(), b.addr.port, why,
             b.inflight.size());
    }

    // Re-route the lost window through the ring (excluding the dead
    // node via the aliveness filter) before any client sees an error.
    std::deque<Pending> orphans;
    orphans.swap(b.inflight);
    for (Pending &p : orphans) {
        if (p.connId == 0)
            continue; // replica write; the primary still answers
        int np = -1;
        if (p.retriesLeft > 0) {
            np = p.hasKey
                     ? ring_.owner(p.key,
                                   [this](int n) {
                                       return backendAlive(n);
                                   })
                     : pickRoundRobin();
        }
        if (np >= 0) {
            --p.retriesLeft;
            backends_[static_cast<std::size_t>(np)]
                ->failedOver.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(failedOverCtr_);
            // Canonical encoding regenerates the original frame
            // byte for byte from the decoded request.
            const auto frame = encodeRequest(p.req);
            sendToBackend(static_cast<std::size_t>(np), std::move(p),
                          frame);
            continue;
        }
        completeSlot(p.connId, p.absIdx,
                     responsePayload(p.req, Status::Error,
                                     "backend lost mid-request"));
    }
}

int
Router::pickRoundRobin()
{
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        const std::size_t n = (rr_++) % backends_.size();
        if (backendAlive(static_cast<int>(n)))
            return static_cast<int>(n);
    }
    return -1;
}

void
Router::sendToBackend(std::size_t bi, Pending &&p,
                      const std::vector<std::uint8_t> &frame)
{
    Backend &b = *backends_[bi];
    appendFramed(b.outbuf, frame);
    b.inflight.push_back(std::move(p));
    // Published (atomic + telemetry) in one batch by flushPending();
    // two shared-counter updates per frame would be the single
    // largest per-request cost left on this path.
    ++b.fwdPending;
    if (!b.dirty) {
        b.dirty = true;
        dirtyBackends_.push_back(bi);
    }
}

void
Router::flushBackend(std::size_t bi)
{
    Backend &b = *backends_[bi];
    if (b.fd < 0)
        return;
    while (b.outpos < b.outbuf.size()) {
        const long n = service::writeSome(
            b.fd, b.outbuf.data() + b.outpos,
            b.outbuf.size() - b.outpos);
        if (n < 0) {
            failBackend(bi, "write failed");
            return;
        }
        if (n == 0)
            break; // socket buffer full; EPOLLOUT continues
        b.outpos += static_cast<std::size_t>(n);
    }
    if (b.outpos >= b.outbuf.size()) {
        b.outbuf.clear();
        b.outpos = 0;
    }
    const bool want = !b.outbuf.empty();
    if (want != b.wantWrite) {
        b.wantWrite = want;
        epoll_event ev{};
        ev.events = EPOLLIN | (want ? unsigned{EPOLLOUT} : 0u);
        ev.data.fd = b.fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, b.fd, &ev);
    }
}

void
Router::handleBackendReadable(std::size_t bi)
{
    Backend &b = *backends_[bi];
    if (b.fd < 0)
        return;
    const long n = service::readSome(b.fd, rdbuf_.data(),
                                     rdbuf_.size());
    if (n <= 0) {
        failBackend(bi, n == 0 ? "connection closed" : "read failed");
        return;
    }
    if (!b.reader.feed(rdbuf_.data(), static_cast<std::size_t>(n))) {
        failBackend(bi, "oversized response frame");
        return;
    }
    std::vector<std::uint8_t> payload;
    while (b.reader.next(payload)) {
        if (b.inflight.empty()) {
            failBackend(bi, "unsolicited response");
            return;
        }
        Pending p = std::move(b.inflight.front());
        b.inflight.pop_front();
        if (p.connId == 0)
            continue; // replica enrollment ack
        if (p.retriesLeft > 0 && p.hasKey &&
            p.req.type == MsgType::PufResponse &&
            lacksReference(payload)) {
            // Verify read-through: this owner evaluated the
            // challenge but holds no enrolled reference (typically a
            // re-admitted daemon that restarted blank). The key's
            // other owner may still hold it - replication wrote the
            // enrollment to both - so retry there once instead of
            // surfacing the blank answer.
            const auto owners = ring_.owners(
                p.key, [this](int n) { return backendAlive(n); });
            int alt = -1;
            if (owners.first >= 0 &&
                static_cast<std::size_t>(owners.first) != bi)
                alt = owners.first;
            else if (owners.second >= 0 &&
                     static_cast<std::size_t>(owners.second) != bi)
                alt = owners.second;
            if (alt >= 0) {
                --p.retriesLeft;
                telemetry::count(readThroughCtr_);
                const auto frame = encodeRequest(p.req);
                sendToBackend(static_cast<std::size_t>(alt),
                              std::move(p), frame);
                payload.clear();
                continue;
            }
        }
        completeSlot(p.connId, p.absIdx, std::move(payload));
        // In-order completions never move the buffer out, so its
        // capacity is reused across the whole burst.
        payload.clear();
    }
}

void
Router::completeSlot(std::uint32_t conn_id, std::uint32_t abs_idx,
                     std::vector<std::uint8_t> &&payload)
{
    const auto it = connsById_.find(conn_id);
    if (it == connsById_.end())
        return; // client went away while the request was upstream
    RConn *conn = it->second;
    if (abs_idx < conn->base)
        return;
    const std::size_t off = abs_idx - conn->base;
    if (off >= conn->window.size())
        return;
    if (off == 0) {
        // In-order completion (the only case with a single live
        // backend): skip the slot copy and append straight to the
        // out-buffer, then drain any buffered successors it unblocks.
        appendFramed(conn->outbuf, payload);
        conn->window.pop_front();
        ++conn->base;
        while (!conn->window.empty() && conn->window.front().ready) {
            appendFramed(conn->outbuf, conn->window.front().payload);
            conn->window.pop_front();
            ++conn->base;
        }
        markConnDirty(conn);
        return;
    }
    Slot &slot = conn->window[off];
    slot.payload = std::move(payload);
    slot.ready = true;
    markConnDirty(conn);
}

void
Router::markConnDirty(RConn *conn)
{
    if (conn->dirty)
        return;
    conn->dirty = true;
    dirtyConns_.push_back(conn->id);
}

void
Router::flushPending()
{
    // Backends first: flushing one can fail it, which re-routes its
    // inflight work (growing dirtyBackends_) and completes slots
    // (growing dirtyConns_); index loops absorb both.
    for (std::size_t i = 0; i < dirtyBackends_.size(); ++i) {
        Backend &b = *backends_[dirtyBackends_[i]];
        b.dirty = false;
        if (b.fwdPending != 0) {
            b.forwarded.fetch_add(b.fwdPending,
                                  std::memory_order_relaxed);
            telemetry::count(forwardedCtr_, b.fwdPending);
            b.fwdPending = 0;
        }
        if (b.fd >= 0)
            flushBackend(dirtyBackends_[i]);
    }
    dirtyBackends_.clear();
    for (std::size_t i = 0; i < dirtyConns_.size(); ++i) {
        const auto it = connsById_.find(dirtyConns_[i]);
        if (it == connsById_.end())
            continue; // closed since it was marked
        it->second->dirty = false;
        pumpConn(it->second);
    }
    dirtyConns_.clear();
}

void
Router::handleAccept()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: drained
        }
        if (conns_.size() >= cfg_.maxConnections) {
            service::closeFd(fd);
            continue;
        }
        service::setNoDelay(fd);
        service::setNonBlocking(fd);
        auto conn = std::make_unique<RConn>();
        conn->fd = fd;
        conn->id = nextConnId_++;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
        connsById_[conn->id] = conn.get();
        conns_[fd] = std::move(conn);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(acceptedCtr_);
        liveConns_.store(conns_.size(), std::memory_order_relaxed);
        telemetry::setGauge(connsGauge_,
                            static_cast<std::int64_t>(conns_.size()));
    }
}

void
Router::handleClientReadable(RConn *conn)
{
    if (conn->readClosed)
        return;
    const long n = service::readSome(conn->fd, rdbuf_.data(),
                                     rdbuf_.size());
    if (n < 0) {
        closeConn(conn);
        return;
    }
    if (n == 0) {
        conn->readClosed = true;
        updateWriteInterest(conn->fd, conn->wantWrite, false);
        pumpConn(conn);
        return;
    }
    if (!conn->reader.feed(rdbuf_.data(),
                           static_cast<std::size_t>(n))) {
        telemetry::count(badFramesCtr_);
        closeConn(conn);
        return;
    }
    // next() assigns into the same vector, so a whole burst of
    // frames reuses one buffer; dispatchFrame never takes the bytes.
    std::vector<std::uint8_t> payload;
    while (!conn->readClosed && conn->reader.next(payload))
        dispatchFrame(conn, payload);
    pumpConn(conn);
}

void
Router::inlineResponse(RConn *conn, const Request &req, Status status,
                       std::string text)
{
    conn->window.emplace_back();
    Slot &slot = conn->window.back();
    slot.payload = responsePayload(req, status, std::move(text));
    slot.ready = true;
    ++conn->next;
}

void
Router::dispatchFrame(RConn *conn,
                      const std::vector<std::uint8_t> &payload)
{
    Request req;
    std::string err;
    if (!decodeRequest(payload.data(), payload.size(), req, &err)) {
        telemetry::count(badFramesCtr_);
        Request synthetic;
        synthetic.type = MsgType::Health;
        if (payload.size() >= 4)
            synthetic.seq = static_cast<std::uint16_t>(
                payload[2] | (payload[3] << 8));
        inlineResponse(conn, synthetic, Status::Error, err);
        conn->readClosed = true;
        updateWriteInterest(conn->fd, conn->wantWrite, false);
        return;
    }
    if (req.type == MsgType::Health) {
        inlineResponse(conn, req, Status::Ok, fleetJson());
        return;
    }
    if (req.type == MsgType::Stats) {
        inlineResponse(conn, req, Status::Ok, fleetJson());
        return;
    }

    bool has_key = false;
    std::uint32_t key = 0;
    bool rewritten = false;
    if (req.type == MsgType::GetEntropy) {
        if ((req.flags & kFlagDeviceId) != 0) {
            if (!deviceSupportsQuac(req.device)) {
                if (cfg_.steerIncapable) {
                    // Steer the work to a capable device: entropy has
                    // no device identity the client can observe, so
                    // the rewrite is invisible (and deterministic, so
                    // the stream still comes from one device).
                    req.device = steerToCapable(req.device);
                    rewritten = true;
                    steered_.fetch_add(1, std::memory_order_relaxed);
                    telemetry::count(steeredCtr_);
                } else {
                    capability_.fetch_add(1,
                                          std::memory_order_relaxed);
                    telemetry::count(capabilityCtr_);
                    inlineResponse(
                        conn, req, Status::Capability,
                        strprintf("device %u is in a vendor group "
                                  "that cannot do the four-row "
                                  "activation QUAC-TRNG needs",
                                  req.device));
                    return;
                }
            }
            has_key = true;
            key = req.device;
        }
    } else {
        // PUF work: the device *is* the identity, so incapable
        // groups get a typed CAPABILITY answer instead of steering.
        if (!deviceSupportsFrac(req.device)) {
            capability_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(capabilityCtr_);
            inlineResponse(
                conn, req, Status::Capability,
                strprintf("device %u is in a vendor group whose "
                          "timing checkers drop the out-of-spec "
                          "Frac sequence",
                          req.device));
            return;
        }
        has_key = true;
        key = req.device;
    }

    int primary = -1, secondary = -1;
    if (has_key) {
        const auto owners = ring_.owners(
            key, [this](int n) { return backendAlive(n); });
        primary = owners.first;
        secondary = owners.second;
    } else {
        primary = pickRoundRobin();
    }
    if (primary < 0) {
        inlineResponse(conn, req, Status::Error,
                       "no healthy backend");
        return;
    }

    Pending p;
    p.connId = conn->id;
    p.absIdx = conn->next++;
    conn->window.emplace_back();
    p.hasKey = has_key;
    p.key = key;
    p.req = req;
    p.deadlineNs =
        nowNs_ +
        static_cast<std::uint64_t>(cfg_.upstreamTimeoutMs) * 1'000'000;
    // A steered request needs a rewritten frame; everything else
    // forwards the client's bytes untouched (the length prefix is
    // written by sendToBackend).
    std::vector<std::uint8_t> steered_frame;
    if (rewritten)
        steered_frame = encodeRequest(req);
    const std::vector<std::uint8_t> &frame =
        rewritten ? steered_frame : payload;

    // Replicate enrollment to the ring successor before the primary
    // write so a primary that dies mid-batch cannot leave the key
    // un-replicated; the replica's response is discarded.
    if (req.type == MsgType::PufEnroll && cfg_.replicateEnroll &&
        secondary >= 0) {
        Pending rep;
        rep.connId = 0;
        rep.hasKey = true;
        rep.key = key;
        rep.retriesLeft = 0;
        rep.req = req;
        rep.deadlineNs = p.deadlineNs;
        backends_[static_cast<std::size_t>(secondary)]
            ->replicated.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(replicatedCtr_);
        sendToBackend(static_cast<std::size_t>(secondary),
                      std::move(rep), frame);
    }
    sendToBackend(static_cast<std::size_t>(primary), std::move(p),
                  frame);
}

void
Router::pumpConn(RConn *conn)
{
    while (!conn->window.empty() && conn->window.front().ready) {
        appendFramed(conn->outbuf, conn->window.front().payload);
        conn->window.pop_front();
        ++conn->base;
    }
    if (!flushConn(conn))
        return;
    if (conn->readClosed && conn->window.empty() &&
        conn->outpos >= conn->outbuf.size())
        closeConn(conn);
}

bool
Router::flushConn(RConn *conn)
{
    while (conn->outpos < conn->outbuf.size()) {
        const long n = service::writeSome(
            conn->fd, conn->outbuf.data() + conn->outpos,
            conn->outbuf.size() - conn->outpos);
        if (n < 0) {
            closeConn(conn);
            return false;
        }
        if (n == 0)
            break;
        conn->outpos += static_cast<std::size_t>(n);
    }
    if (conn->outpos >= conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->outpos = 0;
    }
    const bool want = !conn->outbuf.empty();
    if (want != conn->wantWrite) {
        conn->wantWrite = want;
        updateWriteInterest(conn->fd, want, !conn->readClosed);
    }
    return true;
}

void
Router::updateWriteInterest(int fd, bool want, bool want_read)
{
    epoll_event ev{};
    ev.events = (want_read ? unsigned{EPOLLIN} : 0u) |
                (want ? unsigned{EPOLLOUT} : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
}

void
Router::closeConn(RConn *conn)
{
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    connsById_.erase(conn->id);
    const int fd = conn->fd;
    service::closeFd(fd);
    conns_.erase(fd); // frees conn
    liveConns_.store(conns_.size(), std::memory_order_relaxed);
    telemetry::setGauge(connsGauge_,
                        static_cast<std::int64_t>(conns_.size()));
}

void
Router::applyBackendCommands()
{
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (b.wantEject.exchange(false, std::memory_order_relaxed)) {
            if (b.up.load(std::memory_order_relaxed))
                failBackend(i, "health probes failing");
        }
        if (b.wantReadmit.exchange(false,
                                   std::memory_order_relaxed)) {
            if (!b.up.load(std::memory_order_relaxed)) {
                std::string err;
                if (connectBackend(i, &err)) {
                    readmissions_.fetch_add(
                        1, std::memory_order_relaxed);
                    telemetry::count(readmissionsCtr_);
                    warn("component=router backend %zu (%s:%u) "
                         "re-admitted after %d healthy probes",
                         i, b.addr.host.c_str(), b.addr.port,
                         cfg_.readmitAfter);
                } else {
                    b.probeOks.store(0, std::memory_order_relaxed);
                }
            }
        }
    }
}

void
Router::tick(std::uint64_t now_ns)
{
    if (now_ns - lastTickNs_ < 50'000'000)
        return;
    lastTickNs_ = now_ns;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (b.fd >= 0 && !b.inflight.empty() &&
            now_ns > b.inflight.front().deadlineNs)
            failBackend(i, "upstream response timeout");
    }
}

void
Router::loop()
{
    std::vector<epoll_event> events(64);
    bool drain_started = false;
    while (true) {
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   100);
        const std::uint64_t now = monoNs();
        nowNs_ = now;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const std::uint32_t mask = events[i].events;
            if (fd == eventFd_) {
                std::uint64_t drainv = 0;
                [[maybe_unused]] const auto r =
                    ::read(eventFd_, &drainv, sizeof(drainv));
                continue;
            }
            if (fd == listenFd_) {
                handleAccept();
                continue;
            }
            const auto bit = backendByFd_.find(fd);
            if (bit != backendByFd_.end()) {
                const std::size_t bi = bit->second;
                if (mask & (EPOLLERR | EPOLLHUP)) {
                    failBackend(bi, "connection error");
                    continue;
                }
                if (mask & EPOLLIN)
                    handleBackendReadable(bi);
                if ((mask & EPOLLOUT) &&
                    backends_[bi]->fd == fd)
                    flushBackend(bi);
                continue;
            }
            const auto cit = conns_.find(fd);
            if (cit == conns_.end())
                continue;
            RConn *conn = cit->second.get();
            if (mask & (EPOLLERR | EPOLLHUP)) {
                closeConn(conn);
                continue;
            }
            if (mask & EPOLLIN)
                handleClientReadable(conn);
            if ((mask & EPOLLOUT) && conns_.count(fd))
                pumpConn(conn);
        }
        applyBackendCommands();
        tick(now);
        flushPending();
        if (draining_.load(std::memory_order_acquire)) {
            if (!drain_started) {
                drain_started = true;
                drainDeadlineNs_ = now + 3'000'000'000ULL;
                ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_,
                            nullptr);
                std::vector<RConn *> all;
                all.reserve(conns_.size());
                for (auto &kv : conns_)
                    all.push_back(kv.second.get());
                for (RConn *conn : all) {
                    service::shutdownRead(conn->fd);
                    conn->readClosed = true;
                    updateWriteInterest(conn->fd, conn->wantWrite,
                                        false);
                    pumpConn(conn);
                }
            }
            bool busy = false;
            for (const auto &kv : conns_) {
                const RConn &c = *kv.second;
                if (!c.window.empty() ||
                    c.outpos < c.outbuf.size()) {
                    busy = true;
                    break;
                }
            }
            if (!busy || now > drainDeadlineNs_)
                break;
        }
    }
    // Teardown on the loop thread so fds are closed exactly once.
    std::vector<RConn *> rest;
    rest.reserve(conns_.size());
    for (auto &kv : conns_)
        rest.push_back(kv.second.get());
    for (RConn *conn : rest)
        closeConn(conn);
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (b.fd >= 0) {
            service::closeFd(b.fd);
            b.fd = -1;
        }
    }
    service::closeFd(listenFd_);
    listenFd_ = -1;
    service::closeFd(eventFd_);
    eventFd_ = -1;
    service::closeFd(epollFd_);
    epollFd_ = -1;
}

bool
Router::probeBackend(std::size_t bi)
{
    Backend &b = *backends_[bi];
    if (b.addr.metricsPort != 0) {
        service::HttpResult res;
        std::string err;
        if (!service::httpGet(b.addr.host, b.addr.metricsPort,
                              "/healthz", res, &err))
            return false;
        // A watchdog-unhealthy daemon answers 503: treat it exactly
        // like a dead one so SLO breaches also eject.
        return res.status == 200;
    }
    // No metrics port: fall back to a TCP liveness probe.
    std::string err;
    const int fd = service::connectTcp(b.addr.host, b.addr.port, &err);
    if (fd < 0)
        return false;
    service::closeFd(fd);
    return true;
}

void
Router::proberLoop()
{
    while (!stopProber_.load(std::memory_order_acquire)) {
        for (std::size_t i = 0; i < backends_.size(); ++i) {
            Backend &b = *backends_[i];
            const bool ok = probeBackend(i);
            if (ok) {
                b.probeFails.store(0, std::memory_order_relaxed);
                const int oks =
                    b.probeOks.fetch_add(1,
                                         std::memory_order_relaxed) +
                    1;
                if (!b.up.load(std::memory_order_relaxed) &&
                    oks >= cfg_.readmitAfter) {
                    b.wantReadmit.store(true,
                                        std::memory_order_relaxed);
                    wakeLoop();
                }
            } else {
                b.probeOks.store(0, std::memory_order_relaxed);
                const int fails =
                    b.probeFails.fetch_add(
                        1, std::memory_order_relaxed) +
                    1;
                if (b.up.load(std::memory_order_relaxed) &&
                    fails >= cfg_.ejectAfter) {
                    b.wantEject.store(true,
                                      std::memory_order_relaxed);
                    wakeLoop();
                }
            }
        }
        for (int slept = 0;
             slept < cfg_.probeIntervalMs &&
             !stopProber_.load(std::memory_order_acquire);
             slept += 10) {
            const timespec ts = {0, 10'000'000};
            ::nanosleep(&ts, nullptr);
        }
    }
}

std::string
Router::fleetJson() const
{
    std::ostringstream os;
    os << "{\"status\": \"" << (running_ ? "ok" : "stopped")
       << "\", \"role\": \"router\", \"vnodes_per_backend\": "
       << cfg_.vnodes << ", \"replication\": "
       << (cfg_.replicateEnroll ? "true" : "false")
       << ", \"uptime_s\": " << (monoNs() - startNs_) / 1'000'000'000
       << ", \"connections\": "
       << liveConns_.load(std::memory_order_relaxed)
       << ", \"accepted\": "
       << accepted_.load(std::memory_order_relaxed)
       << ", \"steered\": "
       << steered_.load(std::memory_order_relaxed)
       << ", \"capability_rejected\": "
       << capability_.load(std::memory_order_relaxed)
       << ", \"ejections\": "
       << ejections_.load(std::memory_order_relaxed)
       << ", \"readmissions\": "
       << readmissions_.load(std::memory_order_relaxed)
       << ", \"backends\": [";
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        const Backend &b = *backends_[i];
        if (i > 0)
            os << ", ";
        os << "{\"host\": \"" << b.addr.host
           << "\", \"port\": " << b.addr.port
           << ", \"metrics_port\": " << b.addr.metricsPort
           << ", \"state\": \""
           << (b.up.load(std::memory_order_relaxed) ? "up"
                                                    : "ejected")
           << "\", \"forwarded\": "
           << b.forwarded.load(std::memory_order_relaxed)
           << ", \"replicated\": "
           << b.replicated.load(std::memory_order_relaxed)
           << ", \"failed_over\": "
           << b.failedOver.load(std::memory_order_relaxed) << "}";
    }
    os << "]}";
    return os.str();
}

std::string
Router::aggregateMetrics() const
{
    std::string out = telemetry::renderProm(
        telemetry::Metrics::instance().snapshot());

    // Scrape every live backend and sum series by full
    // `name{labels}` key. Counters add; cumulative histogram buckets
    // add bucket-wise; gauges come out as fleet sums (documented in
    // DESIGN.md §5j). The first scrape's comment lines carry the
    // HELP/TYPE metadata.
    std::vector<std::string> bodies;
    std::size_t scraped = 0;
    for (const auto &b : backends_) {
        if (b->addr.metricsPort == 0 ||
            !b->up.load(std::memory_order_relaxed))
            continue;
        service::HttpResult res;
        std::string err;
        if (!service::httpGet(b->addr.host, b->addr.metricsPort,
                              "/metrics", res, &err) ||
            res.status != 200)
            continue;
        bodies.push_back(std::move(res.body));
        ++scraped;
    }
    out += strprintf("# fleet aggregate over %zu backend scrape(s)\n",
                     scraped);
    if (bodies.empty())
        return out;

    std::unordered_map<std::string, double> sums;
    std::vector<std::string> order; //!< first-seen series order
    for (const std::string &body : bodies) {
        std::size_t pos = 0;
        while (pos < body.size()) {
            std::size_t eol = body.find('\n', pos);
            if (eol == std::string::npos)
                eol = body.size();
            const std::string line = body.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty() || line[0] == '#')
                continue;
            const std::size_t sp = line.rfind(' ');
            if (sp == std::string::npos)
                continue;
            const std::string key = line.substr(0, sp);
            const double val = std::strtod(line.c_str() + sp + 1,
                                           nullptr);
            const auto it = sums.find(key);
            if (it == sums.end()) {
                sums.emplace(key, val);
                order.push_back(key);
            } else {
                it->second += val;
            }
        }
    }
    // Emit the first body's comments in place so the aggregate keeps
    // its HELP/TYPE structure, then the summed series in first-seen
    // order.
    std::size_t pos = 0;
    const std::string &tmpl = bodies.front();
    std::vector<std::string> comments;
    while (pos < tmpl.size()) {
        std::size_t eol = tmpl.find('\n', pos);
        if (eol == std::string::npos)
            eol = tmpl.size();
        const std::string line = tmpl.substr(pos, eol - pos);
        pos = eol + 1;
        if (!line.empty() && line[0] == '#')
            comments.push_back(line);
    }
    for (const std::string &c : comments)
        out += c + "\n";
    for (const std::string &key : order) {
        const double v = sums[key];
        if (v == std::floor(v) && std::fabs(v) < 9e15)
            out += key + " " +
                   strprintf("%lld", static_cast<long long>(v)) + "\n";
        else
            out += key + " " + strprintf("%.17g", v) + "\n";
    }
    return out;
}

} // namespace fracdram::fleet
