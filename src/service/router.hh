/**
 * @file
 * fracdram_router core: the fleet's level-2 tier (DESIGN.md §5j). A
 * single epoll event loop - the same share-nothing reactor shape as
 * the daemon's - terminates client connections speaking the daemon
 * wire protocol and fans the frames out over N daemon processes:
 *
 *  - placement: device-addressed work (PUF frames, GET_ENTROPY with
 *    kFlagDeviceId) routes by consistent hashing on the device id
 *    (fleet::HashRing, virtual nodes); anonymous entropy
 *    round-robins over the healthy daemons,
 *  - replication: PUF_ENROLL is additionally written to the key's
 *    first distinct ring successor, so the reference survives the
 *    primary owner's death (the replica's response is discarded -
 *    same-serial daemons materialize bit-identical devices, so both
 *    references verify). A PUF_RESPONSE answered with the
 *    no-reference sentinel (an owner restarted blank) is retried
 *    once at the key's other owner before the client sees it,
 *  - capability: work addressed to a vendor group that drops
 *    out-of-spec timing (J/K/L/N) is steered to a Frac-capable
 *    device (entropy - deterministic rewrite, invisible to the
 *    client) or answered with a typed CAPABILITY status (PUF, whose
 *    identity is the device) - never forwarded to time out,
 *  - health: a prober thread walks the daemons' /healthz endpoints
 *    (watchdog 503s count as failures); ejectAfter consecutive
 *    failures ejects a daemon from the ring walk, readmitAfter
 *    consecutive successes re-admits it (hysteresis, so a flapping
 *    daemon cannot thrash placement). A dead data connection ejects
 *    immediately, and its in-flight requests are re-routed once via
 *    the ring before the client would see an error,
 *  - observability: /metrics serves the router's own families plus
 *    the per-family sum of every healthy daemon's scrape, /fleet the
 *    topology JSON; client HEALTH/STATS frames are answered inline.
 *
 * Per-backend ordering does the response matching: each daemon
 * answers its one upstream connection in request order, so a FIFO of
 * in-flight descriptors per backend maps responses back to client
 * window slots without any id rewriting - the client's frame bytes
 * are forwarded verbatim (seq echo included) unless steering had to
 * rewrite the device id.
 */

#ifndef FRACDRAM_SERVICE_ROUTER_HH
#define FRACDRAM_SERVICE_ROUTER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/fleet.hh"
#include "service/http.hh"
#include "service/proto.hh"
#include "telemetry/metrics.hh"

namespace fracdram::fleet
{

using service::FrameReader;
using service::Request;
using service::Status;

/** One daemon the router fronts. */
struct BackendAddr
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        //!< data (frame protocol) port
    std::uint16_t metricsPort = 0; //!< /healthz + /metrics; 0 = none
};

struct RouterConfig
{
    std::uint16_t port = 0; //!< client listen port; 0 = ephemeral
    int metricsPort = -1;   //!< router HTTP; -1 = off, 0 = ephemeral
    std::vector<BackendAddr> backends;
    int vnodes = 64;             //!< ring points per backend
    bool replicateEnroll = true; //!< PUF_ENROLL to ring successor
    bool steerIncapable = true;  //!< rewrite J/K/L/N entropy ids
    int probeIntervalMs = 250;
    int ejectAfter = 3;   //!< consecutive probe failures to eject
    int readmitAfter = 2; //!< consecutive successes to re-admit
    int upstreamTimeoutMs = 5000; //!< per-request backend deadline
    std::size_t maxConnections = 256;
};

class Router
{
  public:
    explicit Router(const RouterConfig &cfg);
    ~Router();

    /** @return false with @p err when nothing can be started. */
    bool start(std::string *err);

    /** Graceful drain: stop accepting, answer the in-flight window,
     *  then stop the loop, prober and HTTP tier. Idempotent. */
    void stop();

    std::uint16_t port() const { return port_; }
    std::uint16_t metricsPort() const
    {
        return http_ ? http_->port() : 0;
    }
    bool running() const { return running_; }

    /** @name Introspection (any thread; tests, /fleet) */
    /// @{
    std::size_t numBackends() const { return backends_.size(); }
    bool backendUp(std::size_t i) const;
    std::uint64_t ejections() const
    {
        return ejections_.load(std::memory_order_relaxed);
    }
    std::uint64_t readmissions() const
    {
        return readmissions_.load(std::memory_order_relaxed);
    }
    std::string fleetJson() const;
    /** /metrics body: own families + healthy-backend aggregate. */
    std::string aggregateMetrics() const;
    /// @}

  private:
    /**
     * One queued-for-backend request awaiting its response. The
     * frame bytes are not retained: the protocol's encoding is
     * canonical (encode(decode(x)) == x), so a re-route after a
     * backend death regenerates the identical frame from the decoded
     * request. That keeps the forward hot path allocation-free.
     */
    struct Pending
    {
        std::uint32_t connId = 0; //!< 0 = replica write (discard)
        std::uint32_t absIdx = 0; //!< client window slot
        bool hasKey = false;
        std::uint32_t key = 0;
        int retriesLeft = 1; //!< ring re-routes on backend death
        Request req;         //!< decoded request, for resend
        std::uint64_t deadlineNs = 0;
    };

    /** Loop + prober state of one backend. */
    struct Backend
    {
        BackendAddr addr;
        // Loop-thread-only:
        int fd = -1;
        FrameReader reader;
        std::deque<Pending> inflight;
        std::vector<std::uint8_t> outbuf;
        std::size_t outpos = 0;
        bool wantWrite = false;
        bool dirty = false; //!< queued in dirtyBackends_
        //! Forwards not yet published to `forwarded`/telemetry;
        //! flushed per loop turn so the hot path touches no atomics.
        std::uint32_t fwdPending = 0;
        // Shared:
        std::atomic<bool> up{false};
        std::atomic<bool> wantEject{false};
        std::atomic<bool> wantReadmit{false};
        std::atomic<int> probeFails{0};
        std::atomic<int> probeOks{0};
        std::atomic<std::uint64_t> forwarded{0};
        std::atomic<std::uint64_t> replicated{0};
        std::atomic<std::uint64_t> failedOver{0};
        telemetry::GaugeId upGauge;
    };

    /** One ordered response slot of a client connection. */
    struct Slot
    {
        std::vector<std::uint8_t> payload; //!< response frame payload
        bool ready = false;
    };

    struct RConn
    {
        int fd = -1;
        std::uint32_t id = 0;
        FrameReader reader;
        std::deque<Slot> window;
        std::uint32_t base = 0; //!< abs index of window.front()
        std::uint32_t next = 0; //!< abs index of the next frame
        std::vector<std::uint8_t> outbuf;
        std::size_t outpos = 0;
        bool wantWrite = false;
        bool readClosed = false;
        bool dirty = false; //!< queued in dirtyConns_
    };

    void loop();
    void wakeLoop();
    void handleAccept();
    void handleClientReadable(RConn *conn);
    void handleBackendReadable(std::size_t bi);
    void dispatchFrame(RConn *conn,
                       const std::vector<std::uint8_t> &payload);
    void inlineResponse(RConn *conn, const Request &req, Status status,
                        std::string text);
    void completeSlot(std::uint32_t conn_id, std::uint32_t abs_idx,
                      std::vector<std::uint8_t> &&payload);
    void sendToBackend(std::size_t bi, Pending &&p,
                       const std::vector<std::uint8_t> &frame);
    bool connectBackend(std::size_t bi, std::string *err);
    void failBackend(std::size_t bi, const char *why);
    void applyBackendCommands();
    int pickRoundRobin();
    bool backendAlive(int bi) const;
    void pumpConn(RConn *conn);
    bool flushConn(RConn *conn);
    void flushBackend(std::size_t bi);
    void markConnDirty(RConn *conn);
    void flushPending();
    void updateWriteInterest(int fd, bool want, bool want_read);
    void closeConn(RConn *conn);
    void tick(std::uint64_t now_ns);
    void proberLoop();
    bool probeBackend(std::size_t bi);
    std::string healthJsonLocked() const;

    const RouterConfig cfg_;
    HashRing ring_;
    std::vector<std::unique_ptr<Backend>> backends_;
    std::unique_ptr<service::HttpServer> http_;
    std::thread loopThread_;
    std::thread proberThread_;
    int listenFd_ = -1;
    int epollFd_ = -1;
    int eventFd_ = -1;
    std::uint16_t port_ = 0;
    bool running_ = false;
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopProber_{false};
    std::uint64_t startNs_ = 0;

    /** @name Loop-thread-only state */
    /// @{
    std::unordered_map<int, std::unique_ptr<RConn>> conns_; //!< by fd
    std::unordered_map<std::uint32_t, RConn *> connsById_;
    std::unordered_map<int, std::size_t> backendByFd_;
    std::uint32_t nextConnId_ = 1;
    std::uint64_t rr_ = 0; //!< anonymous-entropy round-robin
    std::uint64_t nowNs_ = 0; //!< refreshed once per loop turn
    std::uint64_t lastTickNs_ = 0;
    std::uint64_t drainDeadlineNs_ = 0;
    std::vector<std::uint8_t> rdbuf_;
    // Deferred-flush queues: forwarding and completion only append
    // to out-buffers and mark the owner dirty; flushPending() does
    // one write pass per loop turn, so a burst of frames costs one
    // syscall per peer instead of one per frame.
    std::vector<std::size_t> dirtyBackends_;
    std::vector<std::uint32_t> dirtyConns_; //!< by conn id
    /// @}

    /** @name Any-thread counters (mirrored into telemetry) */
    /// @{
    std::atomic<std::uint64_t> ejections_{0};
    std::atomic<std::uint64_t> readmissions_{0};
    std::atomic<std::uint64_t> steered_{0};
    std::atomic<std::uint64_t> capability_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::size_t> liveConns_{0};
    /// @}

    /** @name Telemetry ids (interned at construction) */
    /// @{
    telemetry::CounterId forwardedCtr_, replicatedCtr_,
        failedOverCtr_, steeredCtr_, capabilityCtr_, ejectionsCtr_,
        readmissionsCtr_, acceptedCtr_, badFramesCtr_,
        readThroughCtr_;
    telemetry::GaugeId connsGauge_;
    /// @}
};

} // namespace fracdram::fleet

#endif // FRACDRAM_SERVICE_ROUTER_HH
