#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sys/socket.h>

#include "common/logging.hh"
#include "service/net.hh"
#include "telemetry/prom.hh"
#include "telemetry/report.hh"
#include "telemetry/trace.hh"

namespace fracdram::service
{

namespace
{

struct ConnCounters
{
    telemetry::CounterId accepted, rejected, rateLimited, badFrames;
    telemetry::HistogramId writeBatch, requestNs;

    ConnCounters()
    {
        auto &m = telemetry::Metrics::instance();
        accepted = m.counter("service.conn_accepted");
        rejected = m.counter("service.conn_rejected");
        rateLimited = m.counter("service.rate_limited");
        badFrames = m.counter("service.bad_frames");
        writeBatch = m.histogram("service.write_batch_frames");
        requestNs = m.histogram("service.request_ns");
    }
};

const ConnCounters &
connCounters()
{
    static const ConnCounters c;
    return c;
}

/**
 * Gate for rate-limited WARNs: true at most once per @p period_ns
 * per @p gate, no matter how many threads hit it. Flood conditions
 * (connection cap, garbage frames) log one line with totals, not one
 * line per event.
 */
bool
warnTick(std::atomic<std::uint64_t> &gate,
         std::uint64_t period_ns = 5'000'000'000ull)
{
    const std::uint64_t now = telemetry::nowNs();
    std::uint64_t last = gate.load(std::memory_order_relaxed);
    return (last == 0 || now - last >= period_ns) &&
           gate.compare_exchange_strong(last, now);
}

/**
 * Per-connection request rate limiter. Refills continuously, holds
 * up to one second of burst. Single-threaded (owned by one
 * connection thread).
 */
class TokenBucket
{
  public:
    explicit TokenBucket(double rate_per_sec)
        : rate_(rate_per_sec), tokens_(rate_per_sec),
          last_(std::chrono::steady_clock::now())
    {
    }

    bool active() const { return rate_ > 0.0; }

    bool allow()
    {
        const auto now = std::chrono::steady_clock::now();
        const double dt =
            std::chrono::duration<double>(now - last_).count();
        last_ = now;
        tokens_ = std::min(rate_, tokens_ + dt * rate_);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

  private:
    double rate_;
    double tokens_;
    std::chrono::steady_clock::time_point last_;
};

/** A response slot that is either ready or waiting on a shard. */
struct PendingResponse
{
    bool ready = false;
    Response resp;
    std::future<Response> future;
    std::uint64_t recvNs = 0; //!< frame decoded (traced requests)
    int shard = -1;           //!< -1: answered inline
};

Response
quickResponse(const Request &req, Status status, std::string text)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = status;
    resp.text = std::move(text);
    echoRequestId(resp, req);
    return resp;
}

/** Turn a completed timeline into pid-3 Chrome trace lanes. */
void
emitRequestSpans(const RequestTimeline &t)
{
    const auto span = [&t](const char *stage, std::uint64_t a,
                           std::uint64_t b) {
        if (b > a && a > 0)
            telemetry::traceRequestSpan(stage, t.requestId, a, b - a);
    };
    if (t.shard >= 0) {
        span("parse", t.recvNs, t.enqueueNs);
        span("queue_wait", t.enqueueNs, t.dequeueNs);
        span("batch", t.dequeueNs, t.genStartNs);
        span("generate", t.genStartNs, t.genEndNs);
        span("write", t.genEndNs, t.writeNs);
    } else {
        span("parse", t.recvNs, t.writeNs);
    }
}

} // namespace

Server::Server(const ServerConfig &cfg)
    : cfg_(cfg), traceRing_(cfg.traceRingCapacity)
{
    fatal_if(cfg_.numShards < 1, "server needs at least one shard "
                                 "(got %d)",
             cfg_.numShards);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    panic_if(running_, "server started twice");
    listenFd_ = listenTcp(cfg_.port, err);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    startNs_ = telemetry::nowNs();
    shards_.reserve(static_cast<std::size_t>(cfg_.numShards));
    for (int i = 0; i < cfg_.numShards; ++i) {
        shards_.push_back(std::make_unique<Shard>(i, cfg_.shard));
        shards_.back()->start();
    }
    if (!startObservability(err)) {
        for (auto &shard : shards_)
            shard->drainAndStop();
        shards_.clear();
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    acceptThread_ = std::thread(&Server::acceptLoop, this);
    running_ = true;
    inform("service: listening on 127.0.0.1:%u (%d shards, queue "
           "capacity %zu, batch %zu)",
           port_, cfg_.numShards, cfg_.shard.queueCapacity,
           cfg_.shard.maxBatchJobs);
    return true;
}

bool
Server::startObservability(std::string *err)
{
    if (cfg_.sloP99Us > 0) {
        WatchdogConfig wcfg;
        wcfg.sloP99Us = cfg_.sloP99Us;
        wcfg.intervalMs = cfg_.watchdogIntervalMs;
        watchdog_ = std::make_unique<Watchdog>(wcfg);
        watchdog_->start();
    }
    if (cfg_.metricsPort < 0)
        return true;
    http_ = std::make_unique<HttpServer>();
    http_->route("/metrics", [](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType =
            "text/plain; version=0.0.4; charset=utf-8";
        resp.body = telemetry::renderProm(
            telemetry::Metrics::instance().snapshot());
        return resp;
    });
    http_->route("/healthz",
                 [this](const HttpRequest &) { return handleHealthz(); });
    http_->route("/varz",
                 [this](const HttpRequest &r) { return handleVarz(r); });
    if (!http_->start(static_cast<std::uint16_t>(cfg_.metricsPort),
                      err)) {
        http_.reset();
        if (watchdog_)
            watchdog_->stop();
        watchdog_.reset();
        return false;
    }
    inform("service: component=exporter observability on "
           "127.0.0.1:%u (/metrics, /healthz, /varz)",
           http_->port());
    return true;
}

HttpResponse
Server::handleHealthz() const
{
    const bool burning = watchdog_ && !watchdog_->healthy();
    HttpResponse resp;
    if (burning) {
        resp.status = 503;
        resp.body = strprintf(
            "unhealthy: slo breach (windowed p99=%lluus > "
            "slo=%lluus)\n",
            static_cast<unsigned long long>(watchdog_->lastP99Us()),
            static_cast<unsigned long long>(cfg_.sloP99Us));
    } else {
        resp.body = "ok\n";
    }
    return resp;
}

HttpResponse
Server::handleVarz(const HttpRequest &req) const
{
    std::string body = "{\n  \"health\": " + healthJson();
    if (watchdog_) {
        body += strprintf(
            ",\n  \"watchdog\": {\"healthy\": %s, "
            "\"p99_us\": %llu, \"slo_p99_us\": %llu, "
            "\"breached_windows\": %llu, \"flips\": %llu}",
            watchdog_->healthy() ? "true" : "false",
            static_cast<unsigned long long>(watchdog_->lastP99Us()),
            static_cast<unsigned long long>(cfg_.sloP99Us),
            static_cast<unsigned long long>(
                watchdog_->breachedWindows()),
            static_cast<unsigned long long>(watchdog_->flips()));
    }
    body += strprintf(",\n  \"trace_ring\": {\"capacity\": %zu, "
                      "\"stored\": %zu, \"total\": %llu}",
                      traceRing_.capacity(), traceRing_.size(),
                      static_cast<unsigned long long>(
                          traceRing_.totalPushed()));
    const std::string n_str = queryParam(req.query, "trace");
    if (!n_str.empty()) {
        const long n = std::atol(n_str.c_str());
        if (n > 0) {
            body += ",\n  \"requests\": ";
            body += renderTimelinesJson(
                traceRing_.lastN(static_cast<std::size_t>(n)));
        }
    }
    body += ",\n  \"metrics\": " + statsJson();
    body += "\n}\n";
    HttpResponse resp;
    resp.contentType = "application/json";
    resp.body = std::move(body);
    return resp;
}

void
Server::stop()
{
    if (!running_)
        return;
    running_ = false;
    inform("service: draining");
    stop_.store(true, std::memory_order_relaxed);
    if (acceptThread_.joinable())
        acceptThread_.join();
    closeFd(listenFd_);
    listenFd_ = -1;
    // Wake connection threads parked in read so the join below is
    // prompt; read-side only, because responses already owed to the
    // peer must still go out (the drain contract). A send stalled on
    // a peer that stopped reading is bounded by SO_SNDTIMEO. Safe
    // against the threads themselves: conn fds are closed only
    // after join, by the reaper.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &c : conns_)
            if (!c->done.load(std::memory_order_acquire))
                shutdownRead(c->fd);
    }
    // Connection threads notice stop_ within one poll interval,
    // finish their in-flight batch (shards still run) and exit.
    joinAllConns();
    // Now nothing can submit; serve what is queued and stop.
    for (auto &shard : shards_)
        shard->drainAndStop();
    // Observability goes last so a scrape during the drain still
    // answers (reporting "draining").
    if (http_)
        http_->stop();
    if (watchdog_)
        watchdog_->stop();
    inform("service: drained (served %llu connections)",
           static_cast<unsigned long long>(accepted_.load()));
}

std::size_t
Server::activeConnections() const
{
    std::lock_guard<std::mutex> lock(connMutex_);
    std::size_t n = 0;
    for (const auto &c : conns_)
        if (!c->done.load(std::memory_order_acquire))
            ++n;
    return n;
}

std::size_t
Server::shardQueueDepth(int shard) const
{
    panic_if(shard < 0 ||
                 shard >= static_cast<int>(shards_.size()),
             "shard %d out of range", shard);
    return shards_[static_cast<std::size_t>(shard)]->queueDepth();
}

void
Server::reapFinishedConns()
{
    std::list<std::unique_ptr<Conn>> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                finished.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &c : finished) {
        c->thread.join();
        closeFd(c->fd);
    }
}

void
Server::joinAllConns()
{
    // Joining MUST happen outside connMutex_: a connection thread
    // still serving HEALTH takes the same mutex in
    // activeConnections(), and joining it with the lock held would
    // deadlock the shutdown path.
    std::list<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(conns_);
    }
    for (auto &c : conns) {
        if (c->thread.joinable())
            c->thread.join();
        closeFd(c->fd);
    }
}

void
Server::acceptLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        reapFinishedConns();
        const int r = waitReadable(listenFd_, 200);
        if (r <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setNoDelay(fd);
        setSendTimeout(fd, cfg_.writeTimeoutMs);
        // Count only live connections against the cap: a burst of
        // short-lived clients leaves finished-but-unreaped entries
        // in conns_ that must not eat capacity.
        const bool full =
            activeConnections() >= cfg_.maxConnections;
        if (full) {
            // Tell the client why before hanging up.
            Request synthetic;
            synthetic.type = MsgType::Health;
            const auto payload = encodeResponse(quickResponse(
                synthetic, Status::Busy, "connection limit reached"));
            const auto framed = frame(payload);
            writeAll(fd, framed.data(), framed.size(), nullptr);
            closeFd(fd);
            ++rejected_;
            telemetry::count(connCounters().rejected);
            static std::atomic<std::uint64_t> gate{0};
            if (warnTick(gate)) {
                warn("component=server connection limit (%zu) "
                     "reached; rejecting with BUSY (%llu rejected "
                     "so far)",
                     static_cast<std::size_t>(cfg_.maxConnections),
                     static_cast<unsigned long long>(
                         rejected_.load()));
            }
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            conns_.push_back(std::move(conn));
        }
        raw->thread = std::thread(&Server::connLoop, this, raw);
        ++accepted_;
        telemetry::count(connCounters().accepted);
        debug_log("service: accepted connection fd=%d", fd);
    }
}

void
Server::connLoop(Conn *conn)
{
    const auto &cc = connCounters();
    FrameReader reader;
    TokenBucket bucket(cfg_.rateLimitPerConn);
    std::vector<std::uint8_t> rdbuf(64 * 1024);
    std::vector<std::uint8_t> payload;
    std::vector<PendingResponse> pending;
    auto last_activity = std::chrono::steady_clock::now();
    bool closing = false;

    while (!closing && !stop_.load(std::memory_order_relaxed)) {
        const int r = waitReadable(conn->fd, 200);
        if (r < 0)
            break;
        if (r == 0) {
            const auto idle = std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() -
                                  last_activity)
                                  .count();
            if (cfg_.idleTimeoutMs > 0 && idle >= cfg_.idleTimeoutMs)
                break;
            continue;
        }
        const long n = readSome(conn->fd, rdbuf.data(), rdbuf.size());
        if (n <= 0)
            break;
        last_activity = std::chrono::steady_clock::now();
        reader.feed(rdbuf.data(), static_cast<std::size_t>(n));

        pending.clear();
        while (reader.next(payload)) {
            Request req;
            std::string err;
            const std::uint64_t recv_ns =
                telemetry::enabled() ? telemetry::nowNs() : 0;
            if (!decodeRequest(payload.data(), payload.size(), req,
                               &err)) {
                // Undecodable frame: answer, then hang up - the
                // stream cannot be trusted to stay aligned.
                telemetry::count(cc.badFrames);
                static std::atomic<std::uint64_t> gate{0};
                if (warnTick(gate)) {
                    warn("component=server undecodable frame on "
                         "fd=%d (%s); closing connection",
                         conn->fd, err.c_str());
                }
                Request synthetic;
                synthetic.type = MsgType::Health;
                if (payload.size() >= 4)
                    synthetic.seq = static_cast<std::uint16_t>(
                        payload[2] | (payload[3] << 8));
                pending.push_back(
                    {true,
                     quickResponse(synthetic, Status::Error, err),
                     {}});
                closing = true;
                break;
            }
            if (req.type == MsgType::Health) {
                pending.push_back(
                    {true,
                     quickResponse(req, Status::Ok, healthJson()),
                     {},
                     recv_ns});
                continue;
            }
            if (req.type == MsgType::Stats) {
                pending.push_back(
                    {true, quickResponse(req, Status::Ok, statsJson()),
                     {},
                     recv_ns});
                continue;
            }
            if (bucket.active() && !bucket.allow()) {
                telemetry::count(cc.rateLimited);
                pending.push_back(
                    {true,
                     quickResponse(req, Status::RateLimited,
                                   "per-connection rate limit"),
                     {},
                     recv_ns});
                continue;
            }
            const std::size_t shard_idx =
                req.type == MsgType::GetEntropy
                    ? rr_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()
                    : req.device % shards_.size();
            Job job;
            job.req = req;
            std::future<Response> fut = job.done.get_future();
            if (!shards_[shard_idx]->submit(std::move(job))) {
                pending.push_back(
                    {true,
                     quickResponse(req, Status::Busy,
                                   "shard queue full"),
                     {},
                     recv_ns});
                continue;
            }
            PendingResponse p;
            p.future = std::move(fut);
            p.recvNs = recv_ns;
            p.shard = static_cast<int>(shard_idx);
            pending.push_back(std::move(p));
        }
        if (!reader.error().empty()) {
            telemetry::count(cc.badFrames);
            Request synthetic;
            synthetic.type = MsgType::Health;
            pending.push_back(
                {true,
                 quickResponse(synthetic, Status::Error,
                               reader.error()),
                 {}});
            closing = true;
        }
        if (pending.empty())
            continue;

        // One write per batch, responses in request order.
        telemetry::observe(cc.writeBatch, pending.size());
        std::vector<std::uint8_t> out;
        std::vector<RequestTimeline> traced;
        for (auto &p : pending) {
            const Response resp =
                p.ready ? std::move(p.resp) : p.future.get();
            const auto pl = encodeResponse(resp);
            const auto framed = frame(pl);
            out.insert(out.end(), framed.begin(), framed.end());
            if (telemetry::enabled() &&
                (resp.flags & kFlagRequestId)) {
                RequestTimeline t;
                t.requestId = resp.requestId;
                t.type = static_cast<std::uint8_t>(resp.type);
                t.status = static_cast<std::uint8_t>(resp.status);
                t.shard = p.shard;
                t.recvNs = p.recvNs;
                t.enqueueNs = resp.stamps.enqueueNs;
                t.dequeueNs = resp.stamps.dequeueNs;
                t.genStartNs = resp.stamps.genStartNs;
                t.genEndNs = resp.stamps.genEndNs;
                traced.push_back(t);
            }
        }
        const bool wrote =
            writeAll(conn->fd, out.data(), out.size(), nullptr);
        if (!traced.empty()) {
            // One stamp for the whole batch: the requests left the
            // daemon together in one write call.
            const std::uint64_t write_ns = telemetry::nowNs();
            for (RequestTimeline &t : traced) {
                t.writeNs = write_ns;
                telemetry::observe(cc.requestNs,
                                   write_ns > t.recvNs
                                       ? write_ns - t.recvNs
                                       : 0);
                traceRing_.push(t);
                emitRequestSpans(t);
            }
        }
        if (!wrote)
            break;
    }
    debug_log("service: closing connection fd=%d", conn->fd);
    // The fd is closed by whoever joins this thread (reaper or
    // stop()), never here: stop() may concurrently shutdown() it,
    // which must not race with a close/reuse of the descriptor.
    conn->done.store(true, std::memory_order_release);
}

std::string
Server::healthJson() const
{
    std::string depths;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i > 0)
            depths += ", ";
        depths += std::to_string(shards_[i]->queueDepth());
    }
    const double uptime_s =
        static_cast<double>(telemetry::nowNs() - startNs_) * 1e-9;
    return strprintf(
        "{\"status\": \"%s\", \"shards\": %zu, \"uptime_s\": %.3f, "
        "\"connections\": %zu, \"accepted\": %llu, "
        "\"rejected\": %llu, \"queue_depths\": [%s], "
        "\"queue_capacity\": %zu}",
        stop_.load(std::memory_order_relaxed) ? "draining" : "ok",
        shards_.size(), uptime_s, activeConnections(),
        static_cast<unsigned long long>(accepted_.load()),
        static_cast<unsigned long long>(rejected_.load()),
        depths.c_str(), cfg_.shard.queueCapacity);
}

std::string
Server::statsJson() const
{
    if (!telemetry::enabled())
        return "{\"telemetry\": \"disabled\"}";
    return telemetry::renderMetricsJson(
        telemetry::Metrics::instance().snapshot());
}

} // namespace fracdram::service
