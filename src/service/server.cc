#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <sys/socket.h>

#include "common/logging.hh"
#include "service/net.hh"
#include "telemetry/report.hh"

namespace fracdram::service
{

namespace
{

struct ConnCounters
{
    telemetry::CounterId accepted, rejected, rateLimited, badFrames;
    telemetry::HistogramId writeBatch;

    ConnCounters()
    {
        auto &m = telemetry::Metrics::instance();
        accepted = m.counter("service.conn_accepted");
        rejected = m.counter("service.conn_rejected");
        rateLimited = m.counter("service.rate_limited");
        badFrames = m.counter("service.bad_frames");
        writeBatch = m.histogram("service.write_batch_frames");
    }
};

const ConnCounters &
connCounters()
{
    static const ConnCounters c;
    return c;
}

/**
 * Per-connection request rate limiter. Refills continuously, holds
 * up to one second of burst. Single-threaded (owned by one
 * connection thread).
 */
class TokenBucket
{
  public:
    explicit TokenBucket(double rate_per_sec)
        : rate_(rate_per_sec), tokens_(rate_per_sec),
          last_(std::chrono::steady_clock::now())
    {
    }

    bool active() const { return rate_ > 0.0; }

    bool allow()
    {
        const auto now = std::chrono::steady_clock::now();
        const double dt =
            std::chrono::duration<double>(now - last_).count();
        last_ = now;
        tokens_ = std::min(rate_, tokens_ + dt * rate_);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

  private:
    double rate_;
    double tokens_;
    std::chrono::steady_clock::time_point last_;
};

/** A response slot that is either ready or waiting on a shard. */
struct PendingResponse
{
    bool ready = false;
    Response resp;
    std::future<Response> future;
};

Response
quickResponse(const Request &req, Status status, std::string text)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = status;
    resp.text = std::move(text);
    return resp;
}

} // namespace

Server::Server(const ServerConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg_.numShards < 1, "server needs at least one shard "
                                 "(got %d)",
             cfg_.numShards);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    panic_if(running_, "server started twice");
    listenFd_ = listenTcp(cfg_.port, err);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    startNs_ = telemetry::nowNs();
    shards_.reserve(static_cast<std::size_t>(cfg_.numShards));
    for (int i = 0; i < cfg_.numShards; ++i) {
        shards_.push_back(std::make_unique<Shard>(i, cfg_.shard));
        shards_.back()->start();
    }
    acceptThread_ = std::thread(&Server::acceptLoop, this);
    running_ = true;
    inform("service: listening on 127.0.0.1:%u (%d shards, queue "
           "capacity %zu, batch %zu)",
           port_, cfg_.numShards, cfg_.shard.queueCapacity,
           cfg_.shard.maxBatchJobs);
    return true;
}

void
Server::stop()
{
    if (!running_)
        return;
    running_ = false;
    inform("service: draining");
    stop_.store(true, std::memory_order_relaxed);
    if (acceptThread_.joinable())
        acceptThread_.join();
    closeFd(listenFd_);
    listenFd_ = -1;
    // Wake connection threads parked in read so the join below is
    // prompt; read-side only, because responses already owed to the
    // peer must still go out (the drain contract). A send stalled on
    // a peer that stopped reading is bounded by SO_SNDTIMEO. Safe
    // against the threads themselves: conn fds are closed only
    // after join, by the reaper.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &c : conns_)
            if (!c->done.load(std::memory_order_acquire))
                shutdownRead(c->fd);
    }
    // Connection threads notice stop_ within one poll interval,
    // finish their in-flight batch (shards still run) and exit.
    joinAllConns();
    // Now nothing can submit; serve what is queued and stop.
    for (auto &shard : shards_)
        shard->drainAndStop();
    inform("service: drained (served %llu connections)",
           static_cast<unsigned long long>(accepted_.load()));
}

std::size_t
Server::activeConnections() const
{
    std::lock_guard<std::mutex> lock(connMutex_);
    std::size_t n = 0;
    for (const auto &c : conns_)
        if (!c->done.load(std::memory_order_acquire))
            ++n;
    return n;
}

std::size_t
Server::shardQueueDepth(int shard) const
{
    panic_if(shard < 0 ||
                 shard >= static_cast<int>(shards_.size()),
             "shard %d out of range", shard);
    return shards_[static_cast<std::size_t>(shard)]->queueDepth();
}

void
Server::reapFinishedConns()
{
    std::list<std::unique_ptr<Conn>> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                finished.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &c : finished) {
        c->thread.join();
        closeFd(c->fd);
    }
}

void
Server::joinAllConns()
{
    // Joining MUST happen outside connMutex_: a connection thread
    // still serving HEALTH takes the same mutex in
    // activeConnections(), and joining it with the lock held would
    // deadlock the shutdown path.
    std::list<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(conns_);
    }
    for (auto &c : conns) {
        if (c->thread.joinable())
            c->thread.join();
        closeFd(c->fd);
    }
}

void
Server::acceptLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        reapFinishedConns();
        const int r = waitReadable(listenFd_, 200);
        if (r <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setNoDelay(fd);
        setSendTimeout(fd, cfg_.writeTimeoutMs);
        // Count only live connections against the cap: a burst of
        // short-lived clients leaves finished-but-unreaped entries
        // in conns_ that must not eat capacity.
        const bool full =
            activeConnections() >= cfg_.maxConnections;
        if (full) {
            // Tell the client why before hanging up.
            Request synthetic;
            synthetic.type = MsgType::Health;
            const auto payload = encodeResponse(quickResponse(
                synthetic, Status::Busy, "connection limit reached"));
            const auto framed = frame(payload);
            writeAll(fd, framed.data(), framed.size(), nullptr);
            closeFd(fd);
            ++rejected_;
            telemetry::count(connCounters().rejected);
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            conns_.push_back(std::move(conn));
        }
        raw->thread = std::thread(&Server::connLoop, this, raw);
        ++accepted_;
        telemetry::count(connCounters().accepted);
        debug_log("service: accepted connection fd=%d", fd);
    }
}

void
Server::connLoop(Conn *conn)
{
    const auto &cc = connCounters();
    FrameReader reader;
    TokenBucket bucket(cfg_.rateLimitPerConn);
    std::vector<std::uint8_t> rdbuf(64 * 1024);
    std::vector<std::uint8_t> payload;
    std::vector<PendingResponse> pending;
    auto last_activity = std::chrono::steady_clock::now();
    bool closing = false;

    while (!closing && !stop_.load(std::memory_order_relaxed)) {
        const int r = waitReadable(conn->fd, 200);
        if (r < 0)
            break;
        if (r == 0) {
            const auto idle = std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() -
                                  last_activity)
                                  .count();
            if (cfg_.idleTimeoutMs > 0 && idle >= cfg_.idleTimeoutMs)
                break;
            continue;
        }
        const long n = readSome(conn->fd, rdbuf.data(), rdbuf.size());
        if (n <= 0)
            break;
        last_activity = std::chrono::steady_clock::now();
        reader.feed(rdbuf.data(), static_cast<std::size_t>(n));

        pending.clear();
        while (reader.next(payload)) {
            Request req;
            std::string err;
            if (!decodeRequest(payload.data(), payload.size(), req,
                               &err)) {
                // Undecodable frame: answer, then hang up - the
                // stream cannot be trusted to stay aligned.
                telemetry::count(cc.badFrames);
                Request synthetic;
                synthetic.type = MsgType::Health;
                if (payload.size() >= 4)
                    synthetic.seq = static_cast<std::uint16_t>(
                        payload[2] | (payload[3] << 8));
                pending.push_back(
                    {true,
                     quickResponse(synthetic, Status::Error, err),
                     {}});
                closing = true;
                break;
            }
            if (req.type == MsgType::Health) {
                pending.push_back(
                    {true,
                     quickResponse(req, Status::Ok, healthJson()),
                     {}});
                continue;
            }
            if (req.type == MsgType::Stats) {
                pending.push_back(
                    {true, quickResponse(req, Status::Ok, statsJson()),
                     {}});
                continue;
            }
            if (bucket.active() && !bucket.allow()) {
                telemetry::count(cc.rateLimited);
                pending.push_back(
                    {true,
                     quickResponse(req, Status::RateLimited,
                                   "per-connection rate limit"),
                     {}});
                continue;
            }
            const std::size_t shard_idx =
                req.type == MsgType::GetEntropy
                    ? rr_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()
                    : req.device % shards_.size();
            Job job;
            job.req = req;
            std::future<Response> fut = job.done.get_future();
            if (!shards_[shard_idx]->submit(std::move(job))) {
                pending.push_back(
                    {true,
                     quickResponse(req, Status::Busy,
                                   "shard queue full"),
                     {}});
                continue;
            }
            PendingResponse p;
            p.future = std::move(fut);
            pending.push_back(std::move(p));
        }
        if (!reader.error().empty()) {
            telemetry::count(cc.badFrames);
            Request synthetic;
            synthetic.type = MsgType::Health;
            pending.push_back(
                {true,
                 quickResponse(synthetic, Status::Error,
                               reader.error()),
                 {}});
            closing = true;
        }
        if (pending.empty())
            continue;

        // One write per batch, responses in request order.
        telemetry::observe(cc.writeBatch, pending.size());
        std::vector<std::uint8_t> out;
        for (auto &p : pending) {
            const Response resp =
                p.ready ? std::move(p.resp) : p.future.get();
            const auto pl = encodeResponse(resp);
            const auto framed = frame(pl);
            out.insert(out.end(), framed.begin(), framed.end());
        }
        if (!writeAll(conn->fd, out.data(), out.size(), nullptr))
            break;
    }
    debug_log("service: closing connection fd=%d", conn->fd);
    // The fd is closed by whoever joins this thread (reaper or
    // stop()), never here: stop() may concurrently shutdown() it,
    // which must not race with a close/reuse of the descriptor.
    conn->done.store(true, std::memory_order_release);
}

std::string
Server::healthJson() const
{
    std::string depths;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i > 0)
            depths += ", ";
        depths += std::to_string(shards_[i]->queueDepth());
    }
    const double uptime_s =
        static_cast<double>(telemetry::nowNs() - startNs_) * 1e-9;
    return strprintf(
        "{\"status\": \"%s\", \"shards\": %zu, \"uptime_s\": %.3f, "
        "\"connections\": %zu, \"accepted\": %llu, "
        "\"rejected\": %llu, \"queue_depths\": [%s], "
        "\"queue_capacity\": %zu}",
        stop_.load(std::memory_order_relaxed) ? "draining" : "ok",
        shards_.size(), uptime_s, activeConnections(),
        static_cast<unsigned long long>(accepted_.load()),
        static_cast<unsigned long long>(rejected_.load()),
        depths.c_str(), cfg_.shard.queueCapacity);
}

std::string
Server::statsJson() const
{
    if (!telemetry::enabled())
        return "{\"telemetry\": \"disabled\"}";
    return telemetry::renderMetricsJson(
        telemetry::Metrics::instance().snapshot());
}

} // namespace fracdram::service
