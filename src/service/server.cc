#include "service/server.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"
#include "service/net.hh"
#include "telemetry/prom.hh"
#include "telemetry/report.hh"

namespace fracdram::service
{

namespace
{

/** 0 -> min(shards, cores); never more loops than either. */
int
resolveReactors(int requested, int num_shards)
{
    if (requested > 0)
        return requested;
    const int cores = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    return std::max(1, std::min(num_shards, cores));
}

} // namespace

Server::Server(const ServerConfig &cfg)
    : cfg_(cfg), traceRing_(cfg.traceRingCapacity)
{
    fatal_if(cfg_.numShards < 1, "server needs at least one shard "
                                 "(got %d)",
             cfg_.numShards);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    panic_if(running_, "server started twice");
    listenFd_ = listenTcp(cfg_.port, err);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    startNs_ = telemetry::nowNs();

    const int n_reactors =
        resolveReactors(cfg_.numReactors, cfg_.numShards);
    ShardConfig shard_cfg = cfg_.shard;
    // Reactors take cores [0, R), shard workers [R, R + S).
    shard_cfg.pinCpuBase = cfg_.pinThreads ? n_reactors : -1;
    shards_.reserve(static_cast<std::size_t>(cfg_.numShards));
    for (int i = 0; i < cfg_.numShards; ++i) {
        shards_.push_back(std::make_unique<Shard>(i, shard_cfg));
        shards_.back()->start();
    }
    if (!startObservability(err)) {
        for (auto &shard : shards_)
            shard->drainAndStop();
        shards_.clear();
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    // All reactors must exist before any starts: reactor 0 hands
    // accepted connections to its peers round-robin.
    reactors_.reserve(static_cast<std::size_t>(n_reactors));
    for (int i = 0; i < n_reactors; ++i)
        reactors_.push_back(std::make_unique<Reactor>(
            *this, i, cfg_.pinThreads ? i : -1,
            i == 0 ? listenFd_ : -1));
    for (auto &reactor : reactors_)
        reactor->start();
    if (history_)
        history_->start();
    if (flightrec_)
        flightrec_->installFatalHandlers();
    running_ = true;
    inform("service: listening on 127.0.0.1:%u (%d reactors, %d "
           "shards, queue capacity %zu, batch %zu)",
           port_, n_reactors, cfg_.numShards,
           cfg_.shard.queueCapacity, cfg_.shard.maxBatchJobs);
    return true;
}

bool
Server::startObservability(std::string *err)
{
    // The history ring exists whenever something can consume it: the
    // HTTP /history endpoint or the flight recorder. It is created
    // here but started in start() only after the reactors exist -
    // its onSample hook re-serializes the fatal buffer, which walks
    // the reactor list.
    const bool want_history =
        cfg_.historyResMs > 0 &&
        (cfg_.metricsPort >= 0 || !cfg_.postmortemDir.empty());
    if (want_history) {
        telemetry::HistoryConfig hcfg;
        hcfg.resolutionMs = cfg_.historyResMs;
        hcfg.capacityPoints = cfg_.historyPoints;
        if (!cfg_.postmortemDir.empty())
            hcfg.onSample = [this] {
                if (flightrec_)
                    flightrec_->refreshFatalBuffer();
            };
        history_ =
            std::make_unique<telemetry::MetricsHistory>(hcfg);
    }
    if (!cfg_.postmortemDir.empty()) {
        FlightRecorderConfig fcfg;
        fcfg.dir = cfg_.postmortemDir;
        fcfg.traceCount = cfg_.traceRingCapacity < 256
                              ? cfg_.traceRingCapacity
                              : 256;
        fcfg.historyPoints = cfg_.historyPoints;
        flightrec_ = std::make_unique<FlightRecorder>(fcfg, *this);
    }
    // The watchdog also runs SLO-less when a flight recorder wants
    // its stall detector driving dumps.
    if (cfg_.sloP99Us > 0 || flightrec_) {
        WatchdogConfig wcfg;
        wcfg.sloP99Us = cfg_.sloP99Us;
        wcfg.intervalMs = cfg_.watchdogIntervalMs;
        wcfg.stallIntervals = cfg_.stallIntervals;
        if (flightrec_)
            wcfg.onIncident = [this](const std::string &reason,
                                     const std::string &detail) {
                flightrec_->dump(reason, detail);
            };
        watchdog_ = std::make_unique<Watchdog>(wcfg);
        watchdog_->start();
    }
    if (cfg_.metricsPort < 0)
        return true;
    http_ = std::make_unique<HttpServer>();
    http_->route("/metrics", [](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType =
            "text/plain; version=0.0.4; charset=utf-8";
        resp.body = telemetry::renderProm(
            telemetry::Metrics::instance().snapshot());
        return resp;
    });
    http_->route("/healthz",
                 [this](const HttpRequest &) { return handleHealthz(); });
    http_->route("/varz",
                 [this](const HttpRequest &r) { return handleVarz(r); });
    if (history_)
        http_->route("/history", [this](const HttpRequest &r) {
            return handleHistory(r);
        });
    if (!http_->start(static_cast<std::uint16_t>(cfg_.metricsPort),
                      err)) {
        http_.reset();
        if (watchdog_)
            watchdog_->stop();
        watchdog_.reset();
        flightrec_.reset();
        history_.reset();
        return false;
    }
    inform("service: component=exporter observability on "
           "127.0.0.1:%u (/metrics, /healthz, /varz%s)",
           http_->port(), history_ ? ", /history" : "");
    return true;
}

HttpResponse
Server::handleHistory(const HttpRequest &req) const
{
    HttpResponse resp;
    resp.contentType = "application/json";
    const std::string metric = queryParam(req.query, "metric");
    if (metric.empty()) {
        // Discovery: no metric parameter lists every series.
        resp.body = history_->namesJson();
        return resp;
    }
    std::size_t points = 120;
    const std::string n_str = queryParam(req.query, "points");
    if (!n_str.empty()) {
        const long n = std::atol(n_str.c_str());
        if (n > 0)
            points = static_cast<std::size_t>(n);
    }
    resp.body = history_->queryJson(metric, points);
    return resp;
}

HttpResponse
Server::handleHealthz() const
{
    const bool burning = watchdog_ && !watchdog_->healthy();
    HttpResponse resp;
    if (burning) {
        resp.status = 503;
        resp.body = strprintf(
            "unhealthy: slo breach (windowed p99=%lluus > "
            "slo=%lluus)\n",
            static_cast<unsigned long long>(watchdog_->lastP99Us()),
            static_cast<unsigned long long>(cfg_.sloP99Us));
    } else {
        resp.body = "ok\n";
    }
    return resp;
}

HttpResponse
Server::handleVarz(const HttpRequest &req) const
{
    std::string body = "{\n  \"health\": " + healthJson();
    if (watchdog_) {
        body += strprintf(
            ",\n  \"watchdog\": {\"healthy\": %s, "
            "\"p99_us\": %llu, \"slo_p99_us\": %llu, "
            "\"breached_windows\": %llu, \"flips\": %llu}",
            watchdog_->healthy() ? "true" : "false",
            static_cast<unsigned long long>(watchdog_->lastP99Us()),
            static_cast<unsigned long long>(cfg_.sloP99Us),
            static_cast<unsigned long long>(
                watchdog_->breachedWindows()),
            static_cast<unsigned long long>(watchdog_->flips()));
    }
    body += strprintf(",\n  \"trace_ring\": {\"capacity\": %zu, "
                      "\"stored\": %zu, \"total\": %llu}",
                      traceRing_.capacity(), traceRing_.size(),
                      static_cast<unsigned long long>(
                          traceRing_.totalPushed()));
    const std::string n_str = queryParam(req.query, "trace");
    if (!n_str.empty()) {
        const long n = std::atol(n_str.c_str());
        if (n > 0) {
            body += ",\n  \"requests\": ";
            body += renderTimelinesJson(
                traceRing_.lastN(static_cast<std::size_t>(n)));
        }
    }
    body += ",\n  \"metrics\": " + statsJson();
    body += "\n}\n";
    HttpResponse resp;
    resp.contentType = "application/json";
    resp.body = std::move(body);
    return resp;
}

void
Server::stop()
{
    if (!running_)
        return;
    running_ = false;
    inform("service: draining");
    stop_.store(true, std::memory_order_relaxed);
    // Reactors stop accepting, shut the read side of every
    // connection, answer every job already queued on the shards
    // (completions still flow back through the eventfd), flush, and
    // exit once their last connection is closed.
    for (auto &reactor : reactors_)
        reactor->requestDrain();
    for (auto &reactor : reactors_)
        reactor->join();
    closeFd(listenFd_);
    listenFd_ = -1;
    // Nothing can submit anymore; drain the shard queues (they are
    // empty - every job was answered before the reactors exited) and
    // join the workers. Reactor objects outlive this call, so a
    // stray completion from the final batch lands in a dead inbox
    // instead of a freed one.
    for (auto &shard : shards_)
        shard->drainAndStop();
    // Observability goes last so a scrape during the drain still
    // answers (reporting "draining").
    if (http_)
        http_->stop();
    if (watchdog_)
        watchdog_->stop();
    // History after the watchdog: an incident fired during the drain
    // still dumps with its history window attached.
    if (history_)
        history_->stop();
    inform("service: drained (served %llu connections)",
           static_cast<unsigned long long>(accepted_.load()));
}

std::size_t
Server::shardQueueDepth(int shard) const
{
    panic_if(shard < 0 ||
                 shard >= static_cast<int>(shards_.size()),
             "shard %d out of range", shard);
    return shards_[static_cast<std::size_t>(shard)]->queueDepth();
}

std::string
Server::healthJson() const
{
    std::string depths;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i > 0)
            depths += ", ";
        depths += std::to_string(shards_[i]->queueDepth());
    }
    const double uptime_s =
        static_cast<double>(telemetry::nowNs() - startNs_) * 1e-9;
    return strprintf(
        "{\"status\": \"%s\", \"shards\": %zu, \"reactors\": %zu, "
        "\"uptime_s\": %.3f, "
        "\"connections\": %zu, \"accepted\": %llu, "
        "\"rejected\": %llu, \"queue_depths\": [%s], "
        "\"queue_capacity\": %zu}",
        stop_.load(std::memory_order_relaxed) ? "draining" : "ok",
        shards_.size(), reactors_.size(), uptime_s,
        activeConnections(),
        static_cast<unsigned long long>(accepted_.load()),
        static_cast<unsigned long long>(rejected_.load()),
        depths.c_str(), cfg_.shard.queueCapacity);
}

std::string
Server::statsJson() const
{
    if (!telemetry::enabled())
        return "{\"telemetry\": \"disabled\"}";
    return telemetry::renderMetricsJson(
        telemetry::Metrics::instance().snapshot());
}

} // namespace fracdram::service
