/**
 * @file
 * The FracDRAM serving daemon core: a loopback TCP listener in front
 * of a pool of device shards (see shard.hh).
 *
 * Threading model (see reactor.hh for the event-loop details):
 *   - N reactor threads, each an epoll loop owning a slice of the
 *     connections; reactor 0 also owns the listen socket and hands
 *     accepted connections out round-robin (no accept thread, no
 *     thread per connection),
 *   - one worker thread per shard.
 *
 * Reactors parse every complete frame out of each read, dispatch the
 * shardable ones (entropy round-robins over shards, PUF routes by
 * device id so enrollments stay on their module), answer
 * HEALTH/STATS inline, and write responses in request order with one
 * writev per connection per loop turn - a pipelining client pays the
 * syscall and wakeup cost once per batch, not once per request.
 * Shard completions return to the owning reactor through an
 * eventfd-woken completion queue; out-of-order completions wait in a
 * per-connection ordered window so the pipelining contract holds.
 *
 * Backpressure is end-to-end: shard queues are bounded (full -> BUSY
 * response immediately), per-connection token buckets cap the
 * request rate (-> RATE_LIMITED), idle connections are closed after
 * idleTimeoutMs, and a peer that stops reading is dropped once its
 * write queue has stalled for writeTimeoutMs. stop() drains
 * gracefully: no new connections (read-side shutdown(2) wakes the
 * peers with EOF; the write side stays open so owed responses still
 * go out), every queued job is still answered, then shards stop.
 *
 * When pinning is enabled reactors take cores [0, R) and shard
 * workers cores [R, R + S) (modulo the machine), so the two thread
 * classes stop migrating across each other under load.
 */

#ifndef FRACDRAM_SERVICE_SERVER_HH
#define FRACDRAM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/flightrec.hh"
#include "service/http.hh"
#include "service/reactor.hh"
#include "service/reqtrace.hh"
#include "service/shard.hh"
#include "service/watchdog.hh"
#include "telemetry/timeseries.hh"

namespace fracdram::service
{

struct ServerConfig
{
    std::uint16_t port = 0; //!< 0 = pick an ephemeral port
    int numShards = 4;
    ShardConfig shard;

    /**
     * Event-loop threads. 0 = auto: min(numShards, hardware cores),
     * at least 1 - more reactors than cores just adds contention.
     */
    int numReactors = 0;

    /** Pin reactors/shards to cores (no-op on single-core hosts). */
    bool pinThreads = true;

    std::size_t maxConnections = 64;
    double rateLimitPerConn = 0.0; //!< requests/s per conn; 0 = off
    int idleTimeoutMs = 60000;
    int writeTimeoutMs = 5000; //!< max write-queue stall; 0 = off

    /** @name Observability (see DESIGN.md, "Live observability") */
    /// @{
    int metricsPort = -1; //!< HTTP endpoints; -1 = off, 0 = ephemeral
    std::uint64_t sloP99Us = 0; //!< watchdog SLO; 0 = never unhealthy
    int watchdogIntervalMs = 1000;
    std::size_t traceRingCapacity = 1024; //!< request timelines kept
    /// @}

    /** @name Forensics (see DESIGN.md §5i) */
    /// @{
    /** Metrics-history tick; 0 disables the ring and /history. The
     *  ring only runs when something can consume it (HTTP endpoints
     *  or a postmortem dir). */
    int historyResMs = 1000;
    std::size_t historyPoints = 300; //!< ring capacity (default 5min)
    /** Postmortem bundle directory; "" = flight recorder off. Also
     *  arms the watchdog's reactor-stall detector even without an
     *  SLO. */
    std::string postmortemDir;
    int stallIntervals = 3; //!< watchdog samples before "stalled"
    /// @}
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();

    /**
     * Bind, start the shard pool and the reactors.
     * @return false with @p err set when the listen socket fails
     */
    bool start(std::string *err);

    /** Port actually bound (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Graceful drain; idempotent, called by the destructor too. */
    void stop();

    bool running() const { return running_; }

    /** @name Introspection (tests, HEALTH handler) */
    /// @{
    std::size_t activeConnections() const
    {
        return liveConns_.load(std::memory_order_relaxed);
    }
    std::uint64_t acceptedConnections() const { return accepted_; }
    std::uint64_t rejectedConnections() const { return rejected_; }
    std::size_t shardQueueDepth(int shard) const;
    int numReactors() const
    {
        return static_cast<int>(reactors_.size());
    }
    const ServerConfig &config() const { return cfg_; }

    /** HTTP observability port (0 when metricsPort was -1). */
    std::uint16_t metricsPort() const
    {
        return http_ ? http_->port() : 0;
    }
    /** nullptr when no SLO was configured. */
    const Watchdog *watchdog() const { return watchdog_.get(); }
    Watchdog *watchdog() { return watchdog_.get(); }
    const RequestTraceRing &traceRing() const { return traceRing_; }
    /** nullptr when historyResMs is 0 or nothing consumes it. */
    telemetry::MetricsHistory *history() { return history_.get(); }
    const telemetry::MetricsHistory *history() const
    {
        return history_.get();
    }
    /** nullptr when no postmortemDir was configured. */
    FlightRecorder *flightRecorder() { return flightrec_.get(); }
    const FlightRecorder *flightRecorder() const
    {
        return flightrec_.get();
    }
    /// @}

  private:
    friend class Reactor;
    friend class FlightRecorder;

    std::string healthJson() const;
    std::string statsJson() const;
    bool startObservability(std::string *err);
    HttpResponse handleHealthz() const;
    HttpResponse handleVarz(const HttpRequest &req) const;
    HttpResponse handleHistory(const HttpRequest &req) const;

    const ServerConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<Reactor>> reactors_;
    std::unique_ptr<HttpServer> http_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<telemetry::MetricsHistory> history_;
    std::unique_ptr<FlightRecorder> flightrec_;
    RequestTraceRing traceRing_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    bool running_ = false;
    std::atomic<std::uint64_t> rr_{0}; //!< entropy round-robin
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::size_t> liveConns_{0};
    std::uint64_t startNs_ = 0;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_SERVER_HH
