/**
 * @file
 * The FracDRAM serving daemon core: a loopback TCP listener in front
 * of a pool of device shards (see shard.hh).
 *
 * Threading model:
 *   - one accept thread (also reaps finished connection threads),
 *   - one thread per live connection (bounded by maxConnections;
 *     excess connections get a BUSY frame and are closed),
 *   - one worker thread per shard.
 *
 * Connection threads parse every complete frame out of each read,
 * dispatch the shardable ones (entropy round-robins over shards, PUF
 * routes by device id so enrollments stay on their module), answer
 * HEALTH/STATS inline, and then write all responses of the batch in
 * request order with a single write call - so a pipelining client
 * pays the syscall and wakeup cost once per batch, not once per
 * request.
 *
 * Backpressure is end-to-end: shard queues are bounded (full -> BUSY
 * response immediately), per-connection token buckets cap the
 * request rate (-> RATE_LIMITED), idle connections are closed after
 * idleTimeoutMs, and writes carry an SO_SNDTIMEO so a peer that
 * stops reading is dropped instead of parking its thread in send().
 * stop() drains gracefully: no new connections (blocked reads are
 * woken by a read-side shutdown(2); the write side stays open so
 * owed responses still go out), every queued job is still answered,
 * then shards stop. Connection fds are closed only after their
 * thread is joined, so stop() can shutdown() them race-free.
 */

#ifndef FRACDRAM_SERVICE_SERVER_HH
#define FRACDRAM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/http.hh"
#include "service/reqtrace.hh"
#include "service/shard.hh"
#include "service/watchdog.hh"

namespace fracdram::service
{

struct ServerConfig
{
    std::uint16_t port = 0; //!< 0 = pick an ephemeral port
    int numShards = 4;
    ShardConfig shard;
    std::size_t maxConnections = 64;
    double rateLimitPerConn = 0.0; //!< requests/s per conn; 0 = off
    int idleTimeoutMs = 60000;
    int writeTimeoutMs = 5000; //!< SO_SNDTIMEO per conn; 0 = off

    /** @name Observability (see DESIGN.md, "Live observability") */
    /// @{
    int metricsPort = -1; //!< HTTP endpoints; -1 = off, 0 = ephemeral
    std::uint64_t sloP99Us = 0; //!< watchdog SLO; 0 = never unhealthy
    int watchdogIntervalMs = 1000;
    std::size_t traceRingCapacity = 1024; //!< request timelines kept
    /// @}
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();

    /**
     * Bind, start the shard pool and the accept loop.
     * @return false with @p err set when the listen socket fails
     */
    bool start(std::string *err);

    /** Port actually bound (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Graceful drain; idempotent, called by the destructor too. */
    void stop();

    bool running() const { return running_; }

    /** @name Introspection (tests, HEALTH handler) */
    /// @{
    std::size_t activeConnections() const;
    std::uint64_t acceptedConnections() const { return accepted_; }
    std::uint64_t rejectedConnections() const { return rejected_; }
    std::size_t shardQueueDepth(int shard) const;
    const ServerConfig &config() const { return cfg_; }

    /** HTTP observability port (0 when metricsPort was -1). */
    std::uint16_t metricsPort() const
    {
        return http_ ? http_->port() : 0;
    }
    /** nullptr when no SLO was configured. */
    const Watchdog *watchdog() const { return watchdog_.get(); }
    Watchdog *watchdog() { return watchdog_.get(); }
    const RequestTraceRing &traceRing() const { return traceRing_; }
    /// @}

  private:
    struct Conn
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void connLoop(Conn *conn);
    void reapFinishedConns();
    void joinAllConns();
    std::string healthJson() const;
    std::string statsJson() const;
    bool startObservability(std::string *err);
    HttpResponse handleHealthz() const;
    HttpResponse handleVarz(const HttpRequest &req) const;

    const ServerConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<HttpServer> http_;
    std::unique_ptr<Watchdog> watchdog_;
    RequestTraceRing traceRing_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stop_{false};
    bool running_ = false;
    std::atomic<std::uint64_t> rr_{0}; //!< entropy round-robin
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::uint64_t startNs_ = 0;

    mutable std::mutex connMutex_;
    std::list<std::unique_ptr<Conn>> conns_;
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_SERVER_HH
