#include "service/shard.hh"

#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "common/sha256.hh"
#include "puf/puf.hh"
#include "service/net.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "trng/quac_trng.hh"

namespace fracdram::service
{

namespace
{

/** Pool-wide counters (shard-indexed metrics are interned per shard). */
struct ServiceCounters
{
    telemetry::CounterId jobs, entropyBytes, rawBits, reseeds,
        pufEvals, busy;
    telemetry::HistogramId batchBits, queueWaitNs, reseedNs,
        poolRefillNs;

    ServiceCounters()
    {
        auto &m = telemetry::Metrics::instance();
        jobs = m.counter("service.jobs");
        entropyBytes = m.counter("service.entropy_bytes");
        rawBits = m.counter("service.raw_bits");
        reseeds = m.counter("service.reseeds");
        pufEvals = m.counter("service.puf_evals");
        busy = m.counter("service.busy");
        batchBits = m.histogram("service.batch_bits");
        queueWaitNs = m.histogram("service.queue_wait_ns");
        reseedNs = m.histogram("service.reseed_ns");
        poolRefillNs = m.histogram("service.pool_refill_ns");
    }
};

const ServiceCounters &
counters()
{
    static const ServiceCounters c;
    return c;
}

/** Per-request ceiling on raw-mode entropy: one raw request costs
 *  real QUAC sampling time (~microseconds per bit), so large raw
 *  asks would capture a shard for seconds. */
constexpr std::size_t kMaxRawBytes = 4096;

} // namespace

Shard::Shard(int index, const ShardConfig &cfg)
    : index_(index), cfg_(cfg), queue_(cfg.queueCapacity)
{
    auto &m = telemetry::Metrics::instance();
    queueDepthGauge_ =
        m.gauge(strprintf("service.shard%d.queue_depth", index));
    batchJobsHist_ =
        m.histogram(strprintf("service.shard%d.batch_jobs", index));
}

Shard::~Shard()
{
    drainAndStop();
}

void
Shard::start()
{
    panic_if(started_, "shard %d started twice", index_);
    started_ = true;
    worker_ = std::thread(&Shard::run, this);
}

void
Shard::drainAndStop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    queue_.close();
    worker_.join();
}

bool
Shard::submit(Job &&job)
{
    if (telemetry::enabled())
        job.enqueueNs = telemetry::nowNs();
    if (!queue_.tryPush(std::move(job))) {
        telemetry::count(counters().busy);
        return false;
    }
    telemetry::setGauge(queueDepthGauge_,
                        static_cast<std::int64_t>(queue_.size()));
    return true;
}

void
Shard::run()
{
    if (cfg_.pinCpuBase >= 0)
        pinThisThreadToCpu(cfg_.pinCpuBase + index_);
    // Build the device here so every byte of device state is born on
    // the worker thread and never touched by anyone else.
    sim::DramParams params = sim::isDdr4(cfg_.group)
                                 ? sim::DramParams::ddr4()
                                 : sim::DramParams{};
    params.colsPerRow = cfg_.colsPerRow;
    chip_ = std::make_unique<sim::DramChip>(
        cfg_.group, cfg_.serialBase + static_cast<std::uint64_t>(index_),
        params);
    mc_ = std::make_unique<softmc::MemoryController>(*chip_, false);
    trng_ = std::make_unique<trng::QuacTrng>(*mc_);
    puf_ = std::make_unique<puf::FracPuf>(*mc_, cfg_.numFracs);
    reseed();

    std::vector<Job> batch;
    Job job;
    using namespace std::chrono_literals;
    while (true) {
        if (!queue_.pop(job, 200ms)) {
            if (queue_.closed())
                break; // closed *and* drained
            continue;
        }
        batch.clear();
        batch.push_back(std::move(job));
        while (batch.size() < cfg_.maxBatchJobs && queue_.tryPop(job))
            batch.push_back(std::move(job));
        telemetry::setGauge(queueDepthGauge_,
                            static_cast<std::int64_t>(queue_.size()));
        telemetry::observe(batchJobsHist_, batch.size());
        process(batch);
    }
    telemetry::setGauge(queueDepthGauge_, 0);
}

Response
Shard::entropyError(const Request &req) const
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = Status::Error;
    const bool raw = (req.flags & kFlagRawEntropy) != 0;
    const std::size_t limit =
        raw ? kMaxRawBytes : cfg_.maxEntropyBytes;
    resp.text = strprintf("entropy request of %u bytes exceeds the "
                          "%zu-byte limit",
                          req.nBytes, limit);
    return resp;
}

void
Shard::process(std::vector<Job> &batch)
{
    const auto &sc = counters();
    const bool telem = telemetry::enabled();
    const std::uint64_t now = telem ? telemetry::nowNs() : 0;

    // First pass: classify, validate, and sum the entropy demand so
    // all conditioned requests share one pool refill and all raw
    // requests share one generate() call.
    std::size_t cond_bytes = 0, raw_bits = 0;
    for (const Job &j : batch) {
        if (telem && j.enqueueNs != 0)
            telemetry::observe(sc.queueWaitNs, now - j.enqueueNs);
        if (j.req.type != MsgType::GetEntropy)
            continue;
        const bool raw = (j.req.flags & kFlagRawEntropy) != 0;
        if (raw && j.req.nBytes <= kMaxRawBytes)
            raw_bits += std::size_t{j.req.nBytes} * 8;
        else if (!raw && j.req.nBytes <= cfg_.maxEntropyBytes)
            cond_bytes += j.req.nBytes;
    }
    if (telem)
        telemetry::observe(sc.batchBits,
                           cond_bytes * 8 + raw_bits);

    // The entropy work of the whole batch happens in this window, so
    // every entropy job of the batch shares these generate stamps.
    const std::uint64_t gen_start = telem ? telemetry::nowNs() : 0;
    if (cond_bytes > 0)
        refillPool(cond_bytes);
    std::vector<std::uint8_t> raw_bytes;
    if (raw_bits > 0) {
        raw_bytes = packBits(trng_->generate(raw_bits));
        telemetry::count(sc.rawBits, raw_bits);
    }
    const std::uint64_t gen_end = telem ? telemetry::nowNs() : 0;
    std::size_t raw_pos = 0;

    for (Job &j : batch) {
        telemetry::count(sc.jobs);
        Response resp;
        resp.type = j.req.type;
        resp.seq = j.req.seq;
        switch (j.req.type) {
        case MsgType::GetEntropy: {
            const bool raw = (j.req.flags & kFlagRawEntropy) != 0;
            const std::size_t n = j.req.nBytes;
            if ((raw && n > kMaxRawBytes) ||
                (!raw && n > cfg_.maxEntropyBytes)) {
                resp = entropyError(j.req);
                break;
            }
            if (raw) {
                resp.data.assign(raw_bytes.begin() +
                                     static_cast<std::ptrdiff_t>(raw_pos),
                                 raw_bytes.begin() +
                                     static_cast<std::ptrdiff_t>(raw_pos + n));
                raw_pos += n;
            } else {
                resp.data.assign(
                    pool_.begin() + static_cast<std::ptrdiff_t>(poolPos_),
                    pool_.begin() +
                        static_cast<std::ptrdiff_t>(poolPos_ + n));
                poolPos_ += n;
            }
            telemetry::count(sc.entropyBytes, n);
            resp.stamps.genStartNs = gen_start;
            resp.stamps.genEndNs = gen_end;
            break;
        }
        case MsgType::PufEnroll:
        case MsgType::PufResponse: {
            const std::uint64_t t0 = telem ? telemetry::nowNs() : 0;
            resp = handlePuf(j.req);
            resp.stamps.genStartNs = t0;
            resp.stamps.genEndNs = telem ? telemetry::nowNs() : 0;
            break;
        }
        case MsgType::Health:
        case MsgType::Stats:
            // The server answers these inline; a shard seeing one is
            // a dispatch bug, not a client error.
            resp.status = Status::Error;
            resp.text = "internal: request not shardable";
            break;
        }
        resp.stamps.enqueueNs = j.enqueueNs;
        resp.stamps.dequeueNs = now;
        echoRequestId(resp, j.req);
        j.sink->onResponse(j.token, std::move(resp));
    }
}

Response
Shard::handlePuf(const Request &req)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    const auto &params = chip_->dramParams();
    if (req.bank >= params.numBanks ||
        req.row >= params.rowsPerBank()) {
        resp.status = Status::Error;
        resp.text = strprintf("challenge (bank %u, row %u) outside "
                              "the %u x %u module",
                              req.bank, req.row, params.numBanks,
                              params.rowsPerBank());
        return resp;
    }
    const auto key = std::make_tuple(req.device, req.bank, req.row);
    if (req.type == MsgType::PufEnroll &&
        enrolled_.size() >= cfg_.maxEnrollments &&
        enrolled_.find(key) == enrolled_.end()) {
        // device is client-chosen, so without a cap the reference
        // store is an unauthenticated memory-exhaustion vector.
        resp.status = Status::Error;
        resp.text = strprintf("enrollment table full (%zu "
                              "references); re-enrolling an existing "
                              "(device, bank, row) is still allowed",
                              cfg_.maxEnrollments);
        return resp;
    }
    telemetry::count(counters().pufEvals);
    const puf::Challenge ch{req.bank, req.row};
    resp.bits = puf_->evaluate(ch);
    if (req.type == MsgType::PufEnroll) {
        enrolled_[key] = resp.bits;
        resp.hamming = 0;
    } else {
        const auto it = enrolled_.find(key);
        resp.hamming =
            (it != enrolled_.end() &&
             it->second.size() == resp.bits.size())
                ? static_cast<std::uint32_t>(
                      resp.bits.hammingDistance(it->second))
                : kNoHamming;
    }
    return resp;
}

void
Shard::refillPool(std::size_t need_bytes)
{
    std::size_t avail = pool_.size() - poolPos_;
    if (avail >= need_bytes)
        return;
    const auto &sc = counters();
    const telemetry::ScopedTimer timer(sc.poolRefillNs);
    // Compact the consumed prefix, then append DRBG blocks.
    pool_.erase(pool_.begin(),
                pool_.begin() + static_cast<std::ptrdiff_t>(poolPos_));
    poolPos_ = 0;
    // Each DRBG output block is SHA256(key || counter_le): a 40-byte
    // message, i.e. exactly one pre-padded compression block. The
    // blocks are independent, so they batch through the multi-way
    // SHA tier; a batch never crosses the reseed boundary, keeping
    // the byte stream and reseed schedule identical to the one-by-one
    // loop this replaces.
    constexpr std::size_t kBatch = 32;
    std::uint8_t msgs[kBatch * 64];
    Sha256::Digest out[kBatch];
    while (avail < need_bytes) {
        if (drbgSinceReseed_ >= cfg_.reseedBytes)
            reseed();
        const std::size_t want = (need_bytes - avail + 31) / 32;
        const std::size_t until_reseed =
            (cfg_.reseedBytes - drbgSinceReseed_ + 31) / 32;
        const std::size_t k =
            std::min(kBatch, std::min(want, until_reseed));
        for (std::size_t b = 0; b < k; ++b) {
            std::uint8_t *blk = msgs + 64 * b;
            std::memcpy(blk, drbgKey_.data(), drbgKey_.size());
            const std::uint64_t ctr = drbgCounter_ + b;
            for (int i = 0; i < 8; ++i)
                blk[32 + i] =
                    static_cast<std::uint8_t>(ctr >> (8 * i));
            blk[40] = 0x80; // padding: terminator, zeros, then the
            std::memset(blk + 41, 0, 15); // 64-bit bit length (320)
            std::memset(blk + 56, 0, 6);
            blk[62] = 0x01;
            blk[63] = 0x40;
        }
        Sha256::hashSingleBlocks(msgs, k, out);
        for (std::size_t b = 0; b < k; ++b)
            pool_.insert(pool_.end(), out[b].begin(), out[b].end());
        drbgCounter_ += k;
        drbgSinceReseed_ += 32 * k;
        avail += 32 * k;
    }
}

void
Shard::reseed()
{
    const auto &sc = counters();
    const telemetry::ScopedTimer timer(sc.reseedNs);
    const BitVector seed = trng_->generate(256);
    const auto bytes = packBits(seed);
    panic_if(bytes.size() != drbgKey_.size(),
             "DRBG seed is %zu bytes, expected %zu", bytes.size(),
             drbgKey_.size());
    std::memcpy(drbgKey_.data(), bytes.data(), drbgKey_.size());
    drbgSinceReseed_ = 0;
    telemetry::count(sc.reseeds);
}

} // namespace fracdram::service
