#include "service/shard.hh"

#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "common/sha256.hh"
#include "puf/puf.hh"
#include "service/fleet.hh"
#include "service/net.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "trng/quac_trng.hh"

namespace fracdram::service
{

namespace
{

/** Pool-wide counters (shard-indexed metrics are interned per shard). */
struct ServiceCounters
{
    telemetry::CounterId jobs, entropyBytes, rawBits, reseeds,
        pufEvals, busy, deviceFaults, deviceEvictions, capability;
    telemetry::HistogramId batchBits, queueWaitNs, reseedNs,
        poolRefillNs;

    ServiceCounters()
    {
        auto &m = telemetry::Metrics::instance();
        jobs = m.counter("service.jobs");
        entropyBytes = m.counter("service.entropy_bytes");
        rawBits = m.counter("service.raw_bits");
        reseeds = m.counter("service.reseeds");
        pufEvals = m.counter("service.puf_evals");
        busy = m.counter("service.busy");
        deviceFaults = m.counter("service.device_faults");
        deviceEvictions = m.counter("service.device_evictions");
        capability = m.counter("service.capability");
        batchBits = m.histogram("service.batch_bits");
        queueWaitNs = m.histogram("service.queue_wait_ns");
        reseedNs = m.histogram("service.reseed_ns");
        poolRefillNs = m.histogram("service.pool_refill_ns");
    }
};

const ServiceCounters &
counters()
{
    static const ServiceCounters c;
    return c;
}

/** Per-request ceiling on raw-mode entropy: one raw request costs
 *  real QUAC sampling time (~microseconds per bit), so large raw
 *  asks would capture a shard for seconds. */
constexpr std::size_t kMaxRawBytes = 4096;

/** Whether an entropy request addresses a registry device. */
bool
hasDeviceId(const Request &req)
{
    return (req.flags & kFlagDeviceId) != 0;
}

} // namespace

Shard::Shard(int index, const ShardConfig &cfg)
    : index_(index), cfg_(cfg), queue_(cfg.queueCapacity)
{
    auto &m = telemetry::Metrics::instance();
    queueDepthGauge_ =
        m.gauge(strprintf("service.shard%d.queue_depth", index));
    residentGauge_ =
        m.gauge(strprintf("service.shard%d.resident_devices", index));
    batchJobsHist_ =
        m.histogram(strprintf("service.shard%d.batch_jobs", index));
}

Shard::~Shard()
{
    drainAndStop();
}

void
Shard::start()
{
    panic_if(started_, "shard %d started twice", index_);
    started_ = true;
    worker_ = std::thread(&Shard::run, this);
}

void
Shard::drainAndStop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    queue_.close();
    worker_.join();
}

bool
Shard::submit(Job &&job)
{
    if (telemetry::enabled())
        job.enqueueNs = telemetry::nowNs();
    if (!queue_.tryPush(std::move(job))) {
        telemetry::count(counters().busy);
        return false;
    }
    telemetry::setGauge(queueDepthGauge_,
                        static_cast<std::int64_t>(queue_.size()));
    return true;
}

void
Shard::buildDevice(DeviceState &dev, sim::DramGroup group,
                   std::uint64_t serial)
{
    sim::DramParams params = sim::isDdr4(group)
                                 ? sim::DramParams::ddr4()
                                 : sim::DramParams{};
    params.colsPerRow = cfg_.colsPerRow;
    dev.chip = std::make_unique<sim::DramChip>(group, serial, params);
    dev.mc = std::make_unique<softmc::MemoryController>(*dev.chip,
                                                        false);
    // Capability is per-operation: QUAC-TRNG needs the four-row
    // activation, the PUF only needs Frac. Build each engine only
    // where the vendor group supports it (both would fatal in their
    // constructors otherwise); process() gates requests so a missing
    // engine is never dereferenced.
    const auto &prof = sim::vendorProfile(group);
    if (prof.supportsFourRow)
        dev.trng = std::make_unique<trng::QuacTrng>(*dev.mc);
    if (prof.supportsFrac)
        dev.puf = std::make_unique<puf::FracPuf>(*dev.mc,
                                                 cfg_.numFracs);
}

bool
Shard::evictOne()
{
    DeviceState *victim = nullptr;
    for (auto &[id, dev] : registry_) {
        if (!dev.resident() || dev.lastBatch == batchEpoch_)
            continue;
        if (!victim || dev.lastUsedTick < victim->lastUsedTick)
            victim = &dev;
    }
    if (!victim)
        return false;
    // Destroy in reverse construction order; the light half of the
    // DeviceState (DRBG, pool, enrollments) stays untouched.
    victim->puf.reset();
    victim->trng.reset();
    victim->mc.reset();
    victim->chip.reset();
    --resident_;
    telemetry::count(counters().deviceEvictions);
    evictionsPub_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

Shard::DeviceState *
Shard::resolveDevice(std::uint32_t id)
{
    DeviceState &dev = registry_[id];
    dev.lastUsedTick = ++opTick_;
    dev.lastBatch = batchEpoch_;
    if (!dev.resident()) {
        while (resident_ >= cfg_.maxResidentDevices && evictOne()) {
        }
        buildDevice(dev, fleet::deviceGroup(id),
                    cfg_.serialBase + fleet::kDeviceSerialOffset + id);
        ++resident_;
        telemetry::count(counters().deviceFaults);
        faultsPub_.fetch_add(1, std::memory_order_relaxed);
    }
    publishRegistry();
    return &dev;
}

void
Shard::publishRegistry()
{
    residentPub_.store(resident_, std::memory_order_relaxed);
    telemetry::setGauge(residentGauge_,
                        static_cast<std::int64_t>(resident_));
}

void
Shard::run()
{
    if (cfg_.pinCpuBase >= 0)
        pinThisThreadToCpu(cfg_.pinCpuBase + index_);
    // Build the default device here so every byte of device state is
    // born on the worker thread and never touched by anyone else.
    buildDevice(default_, cfg_.group,
                cfg_.serialBase + static_cast<std::uint64_t>(index_));
    reseed(default_);

    std::vector<Job> batch;
    Job job;
    using namespace std::chrono_literals;
    while (true) {
        if (!queue_.pop(job, 200ms)) {
            if (queue_.closed())
                break; // closed *and* drained
            continue;
        }
        batch.clear();
        batch.push_back(std::move(job));
        while (batch.size() < cfg_.maxBatchJobs && queue_.tryPop(job))
            batch.push_back(std::move(job));
        telemetry::setGauge(queueDepthGauge_,
                            static_cast<std::int64_t>(queue_.size()));
        telemetry::observe(batchJobsHist_, batch.size());
        process(batch);
    }
    telemetry::setGauge(queueDepthGauge_, 0);
}

Response
Shard::entropyError(const Request &req) const
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = Status::Error;
    const bool raw = (req.flags & kFlagRawEntropy) != 0;
    const std::size_t limit =
        raw ? kMaxRawBytes : cfg_.maxEntropyBytes;
    resp.text = strprintf("entropy request of %u bytes exceeds the "
                          "%zu-byte limit",
                          req.nBytes, limit);
    return resp;
}

Response
Shard::capabilityError(const Request &req) const
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.status = Status::Capability;
    const char *why =
        req.type == MsgType::GetEntropy
            ? "cannot do the four-row activation QUAC-TRNG needs"
            : "has command-timing checkers that drop the "
              "out-of-spec Frac sequence";
    resp.text = strprintf(
        "device %u is in vendor group %s, which %s", req.device,
        sim::groupName(fleet::deviceGroup(req.device)).c_str(), why);
    telemetry::count(counters().capability);
    return resp;
}

void
Shard::process(std::vector<Job> &batch)
{
    const auto &sc = counters();
    const bool telem = telemetry::enabled();
    const std::uint64_t now = telem ? telemetry::nowNs() : 0;
    ++batchEpoch_;

    // First pass: classify, validate, resolve devices and sum the
    // entropy demand per device, so each device's conditioned
    // requests share one pool refill and its raw requests share one
    // generate() call.
    std::vector<DevWork> work;
    std::vector<DeviceState *> resolved(batch.size(), nullptr);
    auto workFor = [&work](DeviceState *dev) -> DevWork & {
        for (DevWork &w : work)
            if (w.dev == dev)
                return w;
        work.push_back(DevWork{});
        work.back().dev = dev;
        return work.back();
    };
    std::size_t total_bits = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Job &j = batch[i];
        if (telem && j.enqueueNs != 0)
            telemetry::observe(sc.queueWaitNs, now - j.enqueueNs);
        if (j.req.type != MsgType::GetEntropy)
            continue;
        const bool raw = (j.req.flags & kFlagRawEntropy) != 0;
        const bool size_ok = raw ? j.req.nBytes <= kMaxRawBytes
                                 : j.req.nBytes <= cfg_.maxEntropyBytes;
        if (!size_ok)
            continue;
        if (hasDeviceId(j.req) &&
            !fleet::deviceSupportsQuac(j.req.device))
            continue; // answered with Status::Capability below
        DeviceState *dev = hasDeviceId(j.req)
                               ? resolveDevice(j.req.device)
                               : &default_;
        resolved[i] = dev;
        DevWork &w = workFor(dev);
        if (raw) {
            w.rawBits += std::size_t{j.req.nBytes} * 8;
            total_bits += std::size_t{j.req.nBytes} * 8;
        } else {
            w.condBytes += j.req.nBytes;
            total_bits += std::size_t{j.req.nBytes} * 8;
        }
    }
    if (telem)
        telemetry::observe(sc.batchBits, total_bits);

    // The entropy work of the whole batch happens in this window, so
    // every entropy job of the batch shares these generate stamps.
    const std::uint64_t gen_start = telem ? telemetry::nowNs() : 0;
    for (DevWork &w : work) {
        if (w.condBytes > 0)
            refillPool(*w.dev, w.condBytes);
        if (w.rawBits > 0) {
            w.rawBytes = packBits(w.dev->trng->generate(w.rawBits));
            telemetry::count(sc.rawBits, w.rawBits);
        }
    }
    const std::uint64_t gen_end = telem ? telemetry::nowNs() : 0;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        Job &j = batch[i];
        telemetry::count(sc.jobs);
        Response resp;
        resp.type = j.req.type;
        resp.seq = j.req.seq;
        switch (j.req.type) {
        case MsgType::GetEntropy: {
            const bool raw = (j.req.flags & kFlagRawEntropy) != 0;
            const std::size_t n = j.req.nBytes;
            if ((raw && n > kMaxRawBytes) ||
                (!raw && n > cfg_.maxEntropyBytes)) {
                resp = entropyError(j.req);
                break;
            }
            if (!resolved[i]) {
                resp = capabilityError(j.req);
                break;
            }
            DevWork &w = workFor(resolved[i]);
            DeviceState &dev = *w.dev;
            if (raw) {
                resp.data.assign(
                    w.rawBytes.begin() +
                        static_cast<std::ptrdiff_t>(w.rawPos),
                    w.rawBytes.begin() +
                        static_cast<std::ptrdiff_t>(w.rawPos + n));
                w.rawPos += n;
            } else {
                resp.data.assign(
                    dev.pool.begin() +
                        static_cast<std::ptrdiff_t>(dev.poolPos),
                    dev.pool.begin() +
                        static_cast<std::ptrdiff_t>(dev.poolPos + n));
                dev.poolPos += n;
            }
            telemetry::count(sc.entropyBytes, n);
            resp.stamps.genStartNs = gen_start;
            resp.stamps.genEndNs = gen_end;
            break;
        }
        case MsgType::PufEnroll:
        case MsgType::PufResponse: {
            const std::uint64_t t0 = telem ? telemetry::nowNs() : 0;
            resp = handlePuf(j.req);
            resp.stamps.genStartNs = t0;
            resp.stamps.genEndNs = telem ? telemetry::nowNs() : 0;
            break;
        }
        case MsgType::Health:
        case MsgType::Stats:
            // The server answers these inline; a shard seeing one is
            // a dispatch bug, not a client error.
            resp.status = Status::Error;
            resp.text = "internal: request not shardable";
            break;
        }
        resp.stamps.enqueueNs = j.enqueueNs;
        resp.stamps.dequeueNs = now;
        echoRequestId(resp, j.req);
        j.sink->onResponse(j.token, std::move(resp));
    }
}

Response
Shard::handlePuf(const Request &req)
{
    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    if (!fleet::deviceSupportsFrac(req.device))
        return capabilityError(req);
    DeviceState &dev = *resolveDevice(req.device);
    const auto &params = dev.chip->dramParams();
    if (req.bank >= params.numBanks ||
        req.row >= params.rowsPerBank()) {
        resp.status = Status::Error;
        resp.text = strprintf("challenge (bank %u, row %u) outside "
                              "the %u x %u module",
                              req.bank, req.row, params.numBanks,
                              params.rowsPerBank());
        return resp;
    }
    const auto key = std::make_pair(req.bank, req.row);
    const bool have = dev.enrolled.find(key) != dev.enrolled.end();
    if (req.type == MsgType::PufEnroll &&
        enrolledTotal_ >= cfg_.maxEnrollments && !have) {
        // device is client-chosen, so without a cap the reference
        // store is an unauthenticated memory-exhaustion vector. The
        // cap is shard-wide across all registry devices.
        resp.status = Status::Error;
        resp.text = strprintf("enrollment table full (%zu "
                              "references); re-enrolling an existing "
                              "(device, bank, row) is still allowed",
                              cfg_.maxEnrollments);
        return resp;
    }
    telemetry::count(counters().pufEvals);
    const puf::Challenge ch{req.bank, req.row};
    resp.bits = dev.puf->evaluate(ch);
    if (req.type == MsgType::PufEnroll) {
        if (!have)
            ++enrolledTotal_;
        dev.enrolled[key] = resp.bits;
        resp.hamming = 0;
    } else {
        const auto it = dev.enrolled.find(key);
        resp.hamming =
            (it != dev.enrolled.end() &&
             it->second.size() == resp.bits.size())
                ? static_cast<std::uint32_t>(
                      resp.bits.hammingDistance(it->second))
                : kNoHamming;
    }
    return resp;
}

void
Shard::refillPool(DeviceState &dev, std::size_t need_bytes)
{
    std::size_t avail = dev.pool.size() - dev.poolPos;
    if (avail >= need_bytes)
        return;
    const auto &sc = counters();
    const telemetry::ScopedTimer timer(sc.poolRefillNs);
    if (!dev.drbgSeeded)
        reseed(dev);
    // Compact the consumed prefix, then append DRBG blocks.
    dev.pool.erase(dev.pool.begin(),
                   dev.pool.begin() +
                       static_cast<std::ptrdiff_t>(dev.poolPos));
    dev.poolPos = 0;
    // Each DRBG output block is SHA256(key || counter_le): a 40-byte
    // message, i.e. exactly one pre-padded compression block. The
    // blocks are independent, so they batch through the multi-way
    // SHA tier; a batch never crosses the reseed boundary, keeping
    // the byte stream and reseed schedule identical to the one-by-one
    // loop this replaces.
    constexpr std::size_t kBatch = 32;
    std::uint8_t msgs[kBatch * 64];
    Sha256::Digest out[kBatch];
    while (avail < need_bytes) {
        if (dev.drbgSinceReseed >= cfg_.reseedBytes)
            reseed(dev);
        const std::size_t want = (need_bytes - avail + 31) / 32;
        const std::size_t until_reseed =
            (cfg_.reseedBytes - dev.drbgSinceReseed + 31) / 32;
        const std::size_t k =
            std::min(kBatch, std::min(want, until_reseed));
        for (std::size_t b = 0; b < k; ++b) {
            std::uint8_t *blk = msgs + 64 * b;
            std::memcpy(blk, dev.drbgKey.data(), dev.drbgKey.size());
            const std::uint64_t ctr = dev.drbgCounter + b;
            for (int i = 0; i < 8; ++i)
                blk[32 + i] =
                    static_cast<std::uint8_t>(ctr >> (8 * i));
            blk[40] = 0x80; // padding: terminator, zeros, then the
            std::memset(blk + 41, 0, 15); // 64-bit bit length (320)
            std::memset(blk + 56, 0, 6);
            blk[62] = 0x01;
            blk[63] = 0x40;
        }
        Sha256::hashSingleBlocks(msgs, k, out);
        for (std::size_t b = 0; b < k; ++b)
            dev.pool.insert(dev.pool.end(), out[b].begin(),
                            out[b].end());
        dev.drbgCounter += k;
        dev.drbgSinceReseed += 32 * k;
        avail += 32 * k;
    }
}

void
Shard::reseed(DeviceState &dev)
{
    const auto &sc = counters();
    const telemetry::ScopedTimer timer(sc.reseedNs);
    panic_if(!dev.trng,
             "DRBG reseed on a device whose vendor group %s cannot "
             "run QUAC-TRNG (four-row activation)",
             sim::groupName(dev.chip->group()).c_str());
    const BitVector seed = dev.trng->generate(256);
    const auto bytes = packBits(seed);
    panic_if(bytes.size() != dev.drbgKey.size(),
             "DRBG seed is %zu bytes, expected %zu", bytes.size(),
             dev.drbgKey.size());
    std::memcpy(dev.drbgKey.data(), bytes.data(), dev.drbgKey.size());
    dev.drbgSinceReseed = 0;
    dev.drbgSeeded = true;
    telemetry::count(sc.reseeds);
}

} // namespace fracdram::service
