/**
 * @file
 * One shard of the serving pool: a registry of simulated devices
 * (DramChip + MemoryController + QuacTrng + FracPuf each) owned by a
 * single worker thread, fed through a bounded MPSC queue. No state
 * is shared between shards, and nothing but the worker thread ever
 * touches a device - the concurrency story is "share nothing,
 * communicate by queue", which keeps the whole request path
 * TSan-clean by construction.
 *
 * Fleet mode (DESIGN.md §5j) makes the worker device-multiplexed
 * instead of device-pinned: requests carrying a device id (PUF
 * frames always, GET_ENTROPY under kFlagDeviceId) resolve through a
 * registry keyed by fleet device id. Devices materialize lazily on
 * first request and live in a bounded LRU cache - eviction drops
 * only the heavy simulated silicon (chip/controller/TRNG/PUF), while
 * the light per-device state (DRBG key/counter/pool, PUF enrollment
 * references) persists, so a refault is invisible: the DRBG stream
 * continues where it left off and enrolled references still verify.
 * Requests without a device id keep hitting the shard's default
 * device, which lives outside the registry and is never evicted, so
 * a v2 client sees the exact pre-fleet behavior.
 *
 * Entropy is served from a per-device pool: a SHA-256 counter-mode
 * DRBG seeded (and periodically reseeded) from the device's
 * QUAC-TRNG. Raw-mode requests bypass the pool and stream
 * conditioned QUAC output directly; the worker coalesces each
 * batch's entropy demand per device into one refill or generate()
 * call, which is the request-batching lever the daemon's throughput
 * rests on.
 */

#ifndef FRACDRAM_SERVICE_SHARD_HH
#define FRACDRAM_SERVICE_SHARD_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/proto.hh"
#include "service/queue.hh"
#include "sim/vendor.hh"
#include "telemetry/metrics.hh"

namespace fracdram::sim
{
class DramChip;
}
namespace fracdram::softmc
{
class MemoryController;
}
namespace fracdram::trng
{
class QuacTrng;
}
namespace fracdram::puf
{
class FracPuf;
}

namespace fracdram::service
{

/** Tunables of one shard (shared by the whole pool). */
struct ShardConfig
{
    sim::DramGroup group = sim::DramGroup::B;
    std::uint64_t serialBase = 1000; //!< shard i gets serialBase + i
    std::uint32_t colsPerRow = 1024;
    std::size_t queueCapacity = 1024; //!< backpressure bound
    std::size_t maxBatchJobs = 64;    //!< jobs coalesced per wakeup
    std::size_t maxEntropyBytes = 65536; //!< per GET_ENTROPY request
    std::size_t reseedBytes = 4u << 20;  //!< DRBG bytes per reseed
    int numFracs = 10;                   //!< Frac ops per PUF eval
    std::size_t maxEnrollments = 4096;   //!< PUF references kept/shard

    /**
     * Resident-device cap of the fleet registry (the default device
     * is pinned and not counted). A batch touching more devices than
     * this may exceed the cap transiently - devices used by the
     * in-flight batch are never evicted under it.
     */
    std::size_t maxResidentDevices = 64;

    /**
     * CPU pinning: shard i pins its worker to core
     * (pinCpuBase + i) % cores. -1 disables pinning (the default for
     * bare Shard users; Server sets it so shards land on the cores
     * after the reactors).
     */
    int pinCpuBase = -1;
};

/**
 * Where a finished job's response goes. The shard worker calls
 * onResponse() exactly once per job, from its own thread, with the
 * opaque token the submitter attached - the reactor uses it to route
 * the response back to the owning connection's ordered slot without
 * any allocation or futex on the completion path (the promise/future
 * pair this replaced cost one allocation plus one futex wake per
 * request).
 */
class ResponseSink
{
  public:
    virtual void onResponse(std::uint64_t token, Response &&resp) = 0;

  protected:
    ~ResponseSink() = default;
};

/** One queued request with its completion route. */
struct Job
{
    Request req;
    ResponseSink *sink = nullptr;
    std::uint64_t token = 0;     //!< opaque to the shard
    std::uint64_t enqueueNs = 0; //!< for the queue-wait histogram
};

class Shard
{
  public:
    Shard(int index, const ShardConfig &cfg);
    ~Shard();

    /** Spawn the worker (seeds the default DRBG as its first act). */
    void start();

    /**
     * Graceful drain: reject new jobs, serve everything already
     * queued, then join the worker. Idempotent.
     */
    void drainAndStop();

    /**
     * Hand a job to the worker.
     * @return false when the queue is full or draining (-> BUSY)
     */
    bool submit(Job &&job);

    int index() const { return index_; }
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueCapacity() const { return queue_.capacity(); }

    /** @name Registry introspection (any-thread; tests, /fleet) */
    /// @{
    /** Registry devices with live silicon (default excluded). */
    std::size_t residentDevices() const
    {
        return residentPub_.load(std::memory_order_relaxed);
    }
    std::uint64_t deviceFaults() const
    {
        return faultsPub_.load(std::memory_order_relaxed);
    }
    std::uint64_t deviceEvictions() const
    {
        return evictionsPub_.load(std::memory_order_relaxed);
    }
    /// @}

  private:
    /**
     * One simulated device. The unique_ptr quartet is the "heavy"
     * half - megabytes of lazily-materialized VariationMap rows -
     * and is what eviction destroys. Everything else is the "light"
     * half that persists across evict/refault: because chips are
     * deterministic functions of (group, serial), rebuilding the
     * quartet restores bit-identical silicon, and the persistent
     * DRBG/enrollment state makes the round trip observable only as
     * a latency blip.
     */
    struct DeviceState
    {
        std::unique_ptr<sim::DramChip> chip;
        std::unique_ptr<softmc::MemoryController> mc;
        std::unique_ptr<trng::QuacTrng> trng;
        std::unique_ptr<puf::FracPuf> puf;

        std::array<std::uint8_t, 32> drbgKey{};
        std::uint64_t drbgCounter = 0;
        std::size_t drbgSinceReseed = 0;
        bool drbgSeeded = false;
        std::vector<std::uint8_t> pool;
        std::size_t poolPos = 0;
        /** Enrolled PUF references, keyed (bank, row). */
        std::map<std::pair<std::uint32_t, std::uint32_t>, BitVector>
            enrolled;
        std::uint64_t lastUsedTick = 0; //!< LRU stamp
        std::uint64_t lastBatch = 0;    //!< eviction guard (in-batch)

        bool resident() const { return chip != nullptr; }
    };

    /** Per-batch, per-device coalesced entropy demand. */
    struct DevWork
    {
        DeviceState *dev = nullptr;
        std::size_t condBytes = 0;
        std::size_t rawBits = 0;
        std::vector<std::uint8_t> rawBytes;
        std::size_t rawPos = 0;
    };

    void run();
    void process(std::vector<Job> &batch);
    Response handlePuf(const Request &req);
    Response entropyError(const Request &req) const;
    Response capabilityError(const Request &req) const;
    void buildDevice(DeviceState &dev, sim::DramGroup group,
                     std::uint64_t serial);
    DeviceState *resolveDevice(std::uint32_t id);
    bool evictOne();
    void publishRegistry();
    void refillPool(DeviceState &dev, std::size_t need_bytes);
    void reseed(DeviceState &dev);

    const int index_;
    const ShardConfig cfg_;
    BoundedQueue<Job> queue_;
    std::thread worker_;
    bool started_ = false;
    bool stopped_ = false;

    /** @name Worker-thread-only state */
    /// @{
    /** The pre-fleet device: serves id-less requests, never evicted. */
    DeviceState default_;
    std::unordered_map<std::uint32_t, DeviceState> registry_;
    std::size_t resident_ = 0; //!< registry entries with silicon
    std::size_t enrolledTotal_ = 0; //!< references across all devices
    std::uint64_t opTick_ = 0;      //!< LRU clock
    std::uint64_t batchEpoch_ = 0;  //!< process() call counter
    /// @}

    /** @name Any-thread mirrors of registry state */
    /// @{
    std::atomic<std::size_t> residentPub_{0};
    std::atomic<std::uint64_t> faultsPub_{0};
    std::atomic<std::uint64_t> evictionsPub_{0};
    /// @}

    /** @name Telemetry (ids interned once at construction) */
    /// @{
    telemetry::GaugeId queueDepthGauge_;
    telemetry::GaugeId residentGauge_;
    telemetry::HistogramId batchJobsHist_;
    /// @}
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_SHARD_HH
