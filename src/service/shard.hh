/**
 * @file
 * One shard of the serving pool: a complete simulated device
 * (DramChip + MemoryController + QuacTrng + FracPuf) owned by a
 * single worker thread, fed through a bounded MPSC queue. No state
 * is shared between shards, and nothing but the worker thread ever
 * touches the device - the concurrency story is "share nothing,
 * communicate by queue", which keeps the whole request path
 * TSan-clean by construction.
 *
 * Entropy is served from a per-shard pool: a SHA-256 counter-mode
 * DRBG seeded (and periodically reseeded) from the shard's
 * QUAC-TRNG. Raw-mode requests bypass the pool and stream
 * conditioned QUAC output directly; the worker coalesces all raw
 * requests of one batch into a single generate() call, which is the
 * request-batching lever the daemon's throughput rests on.
 */

#ifndef FRACDRAM_SERVICE_SHARD_HH
#define FRACDRAM_SERVICE_SHARD_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "service/proto.hh"
#include "service/queue.hh"
#include "sim/vendor.hh"
#include "telemetry/metrics.hh"

namespace fracdram::sim
{
class DramChip;
}
namespace fracdram::softmc
{
class MemoryController;
}
namespace fracdram::trng
{
class QuacTrng;
}
namespace fracdram::puf
{
class FracPuf;
}

namespace fracdram::service
{

/** Tunables of one shard (shared by the whole pool). */
struct ShardConfig
{
    sim::DramGroup group = sim::DramGroup::B;
    std::uint64_t serialBase = 1000; //!< shard i gets serialBase + i
    std::uint32_t colsPerRow = 1024;
    std::size_t queueCapacity = 1024; //!< backpressure bound
    std::size_t maxBatchJobs = 64;    //!< jobs coalesced per wakeup
    std::size_t maxEntropyBytes = 65536; //!< per GET_ENTROPY request
    std::size_t reseedBytes = 4u << 20;  //!< DRBG bytes per reseed
    int numFracs = 10;                   //!< Frac ops per PUF eval
    std::size_t maxEnrollments = 4096;   //!< PUF references kept/shard

    /**
     * CPU pinning: shard i pins its worker to core
     * (pinCpuBase + i) % cores. -1 disables pinning (the default for
     * bare Shard users; Server sets it so shards land on the cores
     * after the reactors).
     */
    int pinCpuBase = -1;
};

/**
 * Where a finished job's response goes. The shard worker calls
 * onResponse() exactly once per job, from its own thread, with the
 * opaque token the submitter attached - the reactor uses it to route
 * the response back to the owning connection's ordered slot without
 * any allocation or futex on the completion path (the promise/future
 * pair this replaced cost one allocation plus one futex wake per
 * request).
 */
class ResponseSink
{
  public:
    virtual void onResponse(std::uint64_t token, Response &&resp) = 0;

  protected:
    ~ResponseSink() = default;
};

/** One queued request with its completion route. */
struct Job
{
    Request req;
    ResponseSink *sink = nullptr;
    std::uint64_t token = 0;     //!< opaque to the shard
    std::uint64_t enqueueNs = 0; //!< for the queue-wait histogram
};

class Shard
{
  public:
    Shard(int index, const ShardConfig &cfg);
    ~Shard();

    /** Spawn the worker (seeds the DRBG as its first act). */
    void start();

    /**
     * Graceful drain: reject new jobs, serve everything already
     * queued, then join the worker. Idempotent.
     */
    void drainAndStop();

    /**
     * Hand a job to the worker.
     * @return false when the queue is full or draining (-> BUSY)
     */
    bool submit(Job &&job);

    int index() const { return index_; }
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueCapacity() const { return queue_.capacity(); }

  private:
    void run();
    void process(std::vector<Job> &batch);
    Response handlePuf(const Request &req);
    Response entropyError(const Request &req) const;
    void refillPool(std::size_t need_bytes);
    void reseed();

    const int index_;
    const ShardConfig cfg_;
    BoundedQueue<Job> queue_;
    std::thread worker_;
    bool started_ = false;
    bool stopped_ = false;

    /** @name Worker-thread-only state */
    /// @{
    std::unique_ptr<sim::DramChip> chip_;
    std::unique_ptr<softmc::MemoryController> mc_;
    std::unique_ptr<trng::QuacTrng> trng_;
    std::unique_ptr<puf::FracPuf> puf_;
    std::array<std::uint8_t, 32> drbgKey_{};
    std::uint64_t drbgCounter_ = 0;
    std::size_t drbgSinceReseed_ = 0;
    std::vector<std::uint8_t> pool_;
    std::size_t poolPos_ = 0;
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
             BitVector>
        enrolled_;
    /// @}

    /** @name Telemetry (ids interned once at construction) */
    /// @{
    telemetry::GaugeId queueDepthGauge_;
    telemetry::HistogramId batchJobsHist_;
    /// @}
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_SHARD_HH
