#include "service/watchdog.hh"

#include <chrono>
#include <cstdlib>

#include "common/logging.hh"
#include "service/reactor.hh"

namespace fracdram::service
{

using telemetry::Metrics;

Watchdog::Watchdog(const WatchdogConfig &cfg) : cfg_(cfg) {}

void
Watchdog::start()
{
    if (thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void
Watchdog::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        if (cv_.wait_for(lock,
                         std::chrono::milliseconds(cfg_.intervalMs),
                         [this] { return stopping_; }))
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
Watchdog::fireIncident(const std::string &reason,
                       const std::string &detail)
{
    if (cfg_.onIncident)
        cfg_.onIncident(reason, detail);
}

void
Watchdog::checkStalls(const telemetry::MetricsSnapshot &snap)
{
    if (cfg_.stallIntervals <= 0)
        return;
    // "service.reactor<i>.heartbeat" gauges, one per live loop. The
    // first observation of a reactor is baseline-only, mirroring the
    // histogram priming: we judge progress between *our* samples.
    static const std::string kPrefix = "service.reactor";
    static const std::string kSuffix = ".heartbeat";
    for (const auto &[name, hb] : snap.gauges) {
        if (name.rfind(kPrefix, 0) != 0 ||
            name.size() <= kPrefix.size() + kSuffix.size() ||
            name.compare(name.size() - kSuffix.size(),
                         kSuffix.size(), kSuffix) != 0)
            continue;
        const int idx = std::atoi(name.c_str() + kPrefix.size());
        ReactorWatch &watch = reactorWatch_[idx];
        if (watch.lastHeartbeat < 0) {
            watch.lastHeartbeat = hb;
            continue;
        }
        if (hb != watch.lastHeartbeat) {
            watch.lastHeartbeat = hb;
            watch.frozenSamples = 0;
            if (watch.stalled) {
                watch.stalled = false;
                inform("component=watchdog reactor %d recovered: "
                       "heartbeat advancing again",
                       idx);
            }
            continue;
        }
        ++watch.frozenSamples;
        if (watch.stalled || watch.frozenSamples < cfg_.stallIntervals)
            continue;
        watch.stalled = true;
        ++stallEvents_;
        // The incident callback dumps a postmortem synchronously and
        // reads stalledReactors(); publish before firing, the full
        // recount below keeps it exact.
        ++stalled_;
        // The stuck loop cannot update its phase gauge, so this is
        // exactly the phase it entered before it hung.
        std::int64_t phase = 0;
        const auto pit = snap.gauges.find(
            strprintf("service.reactor%d.phase", idx));
        if (pit != snap.gauges.end())
            phase = pit->second;
        const std::string detail = strprintf(
            "reactor %d stalled: heartbeat frozen at %lld for %d "
            "consecutive %dms samples, stuck in phase '%s'",
            idx, static_cast<long long>(watch.lastHeartbeat),
            watch.frozenSamples, cfg_.intervalMs,
            reactorPhaseName(static_cast<int>(phase)));
        warn("component=watchdog %s", detail.c_str());
        fireIncident("reactor_stall", detail);
    }
    std::uint64_t n_stalled = 0;
    for (const auto &[idx, watch] : reactorWatch_)
        n_stalled += watch.stalled ? 1 : 0;
    stalled_ = n_stalled;
    static const auto g_stalled =
        Metrics::instance().gauge("service.watchdog.stalled_reactors");
    telemetry::setGauge(g_stalled,
                        static_cast<std::int64_t>(n_stalled));
}

void
Watchdog::sampleOnce()
{
    const auto snap = Metrics::instance().snapshot();

    checkStalls(snap);

    // Worst shard queue depth, republished for scrapers and the
    // breach log line.
    std::int64_t max_depth = 0;
    for (const auto &[name, v] : snap.gauges) {
        if (name.rfind("service.shard", 0) == 0 &&
            name.size() > 11 &&
            name.compare(name.size() - 11, 11, "queue_depth") == 0 &&
            v > max_depth) {
            max_depth = v;
        }
    }

    telemetry::HistogramSnapshot cur;
    const auto it = snap.histograms.find(cfg_.latencyHistogram);
    if (it != snap.histograms.end())
        cur = it->second;
    // The first sample only establishes the baseline: the registry
    // may hold lifetime totals from before this watchdog existed,
    // and judging those as one giant window would burn error budget
    // on traffic it never watched.
    if (!primed_) {
        prev_ = cur;
        primed_ = true;
        return;
    }
    const auto window = cur.deltaSince(prev_);
    prev_ = cur;

    const std::uint64_t p99_us = window.quantile(0.99) / 1000;
    lastP99Us_ = p99_us;

    static const auto g_p99 =
        Metrics::instance().gauge("service.watchdog.p99_us");
    static const auto g_depth =
        Metrics::instance().gauge("service.watchdog.queue_depth_max");
    static const auto g_unhealthy =
        Metrics::instance().gauge("service.watchdog.unhealthy");
    static const auto c_breached =
        Metrics::instance().counter(
            "service.watchdog.breached_windows");
    telemetry::setGauge(g_p99, static_cast<std::int64_t>(p99_us));
    telemetry::setGauge(g_depth, max_depth);

    if (cfg_.sloP99Us == 0)
        return;

    // An idle window is a good window: after a drain the p99 of zero
    // requests must not keep health red.
    const bool breach = window.count > 0 && p99_us > cfg_.sloP99Us;
    if (breach) {
        ++breached_;
        telemetry::count(c_breached);
        consecClear_ = 0;
        ++consecBreach_;
    } else {
        consecBreach_ = 0;
        ++consecClear_;
    }

    if (healthy_ && consecBreach_ >= cfg_.breachWindows) {
        healthy_ = false;
        ++flips_;
        // One WARN per breach episode - the edge, not every window.
        const std::string detail = strprintf(
            "windowed p99=%lluus > slo=%lluus over %d consecutive "
            "windows (window n=%llu, max shard queue depth %lld)",
            static_cast<unsigned long long>(p99_us),
            static_cast<unsigned long long>(cfg_.sloP99Us),
            consecBreach_,
            static_cast<unsigned long long>(window.count),
            static_cast<long long>(max_depth));
        warn("component=watchdog slo breach: %s; /healthz -> 503",
             detail.c_str());
        fireIncident("slo_breach", detail);
    } else if (!healthy_ && consecClear_ >= cfg_.clearWindows) {
        healthy_ = true;
        inform("component=watchdog slo recovered: p99=%lluus <= "
               "slo=%lluus for %d windows; /healthz -> 200",
               static_cast<unsigned long long>(p99_us),
               static_cast<unsigned long long>(cfg_.sloP99Us),
               consecClear_);
    }
    telemetry::setGauge(g_unhealthy, healthy_ ? 0 : 1);
}

} // namespace fracdram::service
