/**
 * @file
 * SLO watchdog: a sampling thread that turns the metrics registry
 * into a health verdict.
 *
 * Every interval it snapshots the request-latency histogram, takes
 * the delta against the previous snapshot (HistogramSnapshot::
 * deltaSince), and compares the windowed p99 against the configured
 * SLO. `breachWindows` consecutive bad windows flip the daemon
 * unhealthy - /healthz starts answering 503 so a load balancer stops
 * sending traffic - and `clearWindows` consecutive good windows
 * restore it. A window with no traffic counts as good: a drained
 * daemon must recover on its own, not stay red because nobody is
 * exercising it.
 *
 * Every breached window also burns one unit of error budget (the
 * `service.watchdog.breached_windows` counter), and the windowed p99
 * plus the worst shard queue depth are republished as gauges so the
 * watchdog's own view is scrapable. Logging is transition-edge only:
 * one WARN when health flips bad (with the evidence), one inform when
 * it recovers - a sustained breach never floods the log.
 *
 * The watchdog reads only the global registry, so tests drive it
 * synchronously: record synthetic latencies, call sampleOnce(), and
 * assert on healthy().
 */

#ifndef FRACDRAM_SERVICE_WATCHDOG_HH
#define FRACDRAM_SERVICE_WATCHDOG_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/metrics.hh"

namespace fracdram::service
{

struct WatchdogConfig
{
    std::uint64_t sloP99Us = 0; //!< 0 = watchdog never flips health
    int intervalMs = 1000;
    int breachWindows = 2; //!< consecutive bad windows to go red
    int clearWindows = 2;  //!< consecutive good windows to go green
    /** Latency histogram evaluated against the SLO (nanoseconds). */
    std::string latencyHistogram = "service.request_ns";

    /**
     * Reactor-stall detection: a reactor whose
     * `service.reactorN.heartbeat` gauge has not advanced for this
     * many consecutive samples is declared stalled (its loop wakes at
     * least every 100ms when healthy, so one frozen interval already
     * means >= intervalMs of no progress). 0 disables the detector.
     */
    int stallIntervals = 3;

    /**
     * Incident edge callback: fired once when health flips red
     * ("slo_breach") and once per reactor-stall onset
     * ("reactor_stall"), with a human-readable detail line. The
     * flight recorder hangs its dump off this. Runs on the watchdog
     * thread (or the sampleOnce() caller in tests).
     */
    std::function<void(const std::string &reason,
                       const std::string &detail)>
        onIncident;
};

class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &cfg);
    ~Watchdog() { stop(); }
    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Start the sampling thread (no-op when already running). */
    void start();

    /** Stop and join the sampling thread; idempotent. */
    void stop();

    /** false while the SLO error budget is burning (-> 503). */
    bool healthy() const { return healthy_; }

    /** Windowed p99 of the last evaluated window, microseconds. */
    std::uint64_t lastP99Us() const { return lastP99Us_; }

    /** Error budget burn: total breached windows so far. */
    std::uint64_t breachedWindows() const { return breached_; }

    /** Health flips (red edges) so far. */
    std::uint64_t flips() const { return flips_; }

    /** Reactors currently considered stalled. */
    std::uint64_t stalledReactors() const { return stalled_; }

    /** Stall onsets (edges) so far. */
    std::uint64_t stallEvents() const { return stallEvents_; }

    /**
     * Evaluate one window right now (the thread calls this on its
     * interval; tests call it directly for determinism).
     */
    void sampleOnce();

    const WatchdogConfig &config() const { return cfg_; }

  private:
    void loop();

    const WatchdogConfig cfg_;
    std::thread thread_;
    std::mutex mutex_; //!< wakes the loop early on stop()
    std::condition_variable cv_;
    bool stopping_ = false;

    std::atomic<bool> healthy_{true};
    std::atomic<std::uint64_t> lastP99Us_{0};
    std::atomic<std::uint64_t> breached_{0};
    std::atomic<std::uint64_t> flips_{0};

    std::atomic<std::uint64_t> stalled_{0};
    std::atomic<std::uint64_t> stallEvents_{0};

    // Sampling state, touched only from sampleOnce() callers.
    telemetry::HistogramSnapshot prev_;
    bool primed_ = false;
    int consecBreach_ = 0;
    int consecClear_ = 0;

    /** Per-reactor stall tracking, keyed by reactor index. */
    struct ReactorWatch
    {
        std::int64_t lastHeartbeat = -1;
        int frozenSamples = 0;
        bool stalled = false;
    };
    std::map<int, ReactorWatch> reactorWatch_;

    void checkStalls(const telemetry::MetricsSnapshot &snap);
    void fireIncident(const std::string &reason,
                      const std::string &detail);
};

} // namespace fracdram::service

#endif // FRACDRAM_SERVICE_WATCHDOG_HH
