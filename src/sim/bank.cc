#include "sim/bank.hh"

#include <cmath>

#include "common/logging.hh"
#include "sim/kernels.hh"
#include "telemetry/metrics.hh"

namespace fracdram::sim
{

namespace
{

// JEDEC minimum spacings (in 2.5 ns cycles at the SoftMC command
// clock) used by the timing-checker vendors (groups J-L) to reject
// too-close commands. Approximations of DDR3-1333 values.
constexpr Cycles checkerTRas = 14;
constexpr Cycles checkerTRc = 20;

/**
 * Per-kernel observability: invocation counts, cells touched, and
 * flip/engagement counts. Everything here is recorded *after* the
 * physics with values already computed, so the RNG streams and cell
 * voltages are bit-identical with telemetry on or off.
 */
struct BankCounters
{
    telemetry::CounterId fullActivate, fullActivateCells, senseFlips;
    telemetry::CounterId fracSettle, fracSettleCells, fracCells;
    telemetry::CounterId halfmClose, halfmCells, halfmEngaged;
    telemetry::CounterId decay, decayCells;
    telemetry::CounterId restoreTruncate, restoreTruncateCells;
    telemetry::CounterId refreshRows, rowCopy, glitchOpen;
    telemetry::CounterId checkerDropAct, checkerDropPre;
    telemetry::CounterId discardedActivate;

    BankCounters()
    {
        auto &m = telemetry::Metrics::instance();
        fullActivate = m.counter("sim.kernel.full_activate");
        fullActivateCells =
            m.counter("sim.kernel.full_activate.cells");
        senseFlips = m.counter("sim.kernel.sense.flips");
        fracSettle = m.counter("sim.kernel.frac_settle");
        fracSettleCells = m.counter("sim.kernel.frac_settle.cells");
        fracCells = m.counter("sim.kernel.frac_settle.fractional");
        halfmClose = m.counter("sim.kernel.halfm_close");
        halfmCells = m.counter("sim.kernel.halfm_close.cells");
        halfmEngaged = m.counter("sim.kernel.halfm_close.engaged");
        decay = m.counter("sim.kernel.decay");
        decayCells = m.counter("sim.kernel.decay.cells");
        restoreTruncate = m.counter("sim.kernel.restore_truncate");
        restoreTruncateCells =
            m.counter("sim.kernel.restore_truncate.cells");
        refreshRows = m.counter("sim.bank.refresh_rows");
        rowCopy = m.counter("sim.bank.row_copy");
        glitchOpen = m.counter("sim.bank.glitch_open");
        checkerDropAct = m.counter("sim.bank.checker_drop_act");
        checkerDropPre = m.counter("sim.bank.checker_drop_pre");
        discardedActivate =
            m.counter("sim.bank.write_resolved_activate");
    }
};

const BankCounters &
bankCounters()
{
    static const BankCounters c;
    return c;
}

} // namespace

Bank::Bank(ModuleContext &ctx, BankAddr index)
    : ctx_(ctx), index_(index), rowBuffer_(ctx.params.colsPerRow)
{
}

bool
Bank::rowIsAnti(RowAddr row) const
{
    return ctx_.profile.oddRowsAntiCells && (row & 1u);
}

void
Bank::ensureSaOffsets()
{
    if (!saOffsets_.empty())
        return;
    saOffsets_.resize(ctx_.params.colsPerRow);
    for (ColAddr c = 0; c < ctx_.params.colsPerRow; ++c) {
        saOffsets_[c] =
            static_cast<float>(ctx_.variation.saOffset(index_, c));
    }
}

Volt
Bank::saOffset(ColAddr col)
{
    ensureSaOffsets();
    return saOffsets_[col];
}

Bank::RowStore &
Bank::ensureRow(RowAddr row, bool values_dead)
{
    panic_if(row >= ctx_.params.rowsPerBank(),
             "row %u out of range (bank has %u rows)", row,
             ctx_.params.rowsPerBank());
    // Single hash probe: default-construct in place, materialize the
    // manufacturing parameters only on first touch.
    auto [it, inserted] = rows_.try_emplace(row);
    RowStore &store = it->second;
    if (!inserted)
        return store;

    const auto cols = ctx_.params.colsPerRow;
    store.volts.resize(cols);
    store.alpha.resize(cols);
    store.tau.resize(cols);
    store.coupling.resize(cols);
    store.fracOff.resize(cols);
    store.vrt.resize(cols);
    store.lastTouch = ctx_.now;
    matStartup_.resize(cols);
    matAlpha_.resize(cols);
    matTau_.resize(cols);
    matCpl_.resize(cols);
    matOff_.resize(cols);
    matVrt_.resize(cols);
    // A row whose first touch is a write-resolved activation never
    // exposes its power-up contents; skip that (independent) stream.
    ctx_.variation.materializeRow(
        index_, row, cols,
        values_dead ? nullptr : matStartup_.data(), matAlpha_.data(),
        matTau_.data(), matCpl_.data(), matOff_.data(),
        matVrt_.data());
    const float vdd = static_cast<float>(ctx_.env.vdd);
    for (ColAddr c = 0; c < cols; ++c) {
        if (!values_dead)
            store.volts[c] = matStartup_[c] ? vdd : 0.0f;
        store.alpha[c] = static_cast<float>(matAlpha_[c]);
        store.tau[c] = static_cast<float>(matTau_[c]);
        store.coupling[c] = static_cast<float>(matCpl_[c]);
        store.fracOff[c] = static_cast<float>(matOff_[c]);
        if (matVrt_[c]) {
            store.vrt[c] = 1;
            store.vrtIdx.push_back(c);
        }
    }
    return store;
}

void
Bank::applyLeakage(RowAddr row)
{
    applyLeakage(ensureRow(row));
}

const Bank::DecayEntry &
Bank::decayEntry(RowStore &store, double factor)
{
    auto &cache = store.decay;
    for (std::size_t i = 0; i < cache.size(); ++i) {
        if (cache[i].factor == factor) {
            if (i != 0)
                std::swap(cache[i], cache[0]); // move-to-front
            return cache[0];
        }
    }
    // Miss: build into a fresh slot, or recycle the coldest (back)
    // one once the cache is full. Sequences driven by the controller
    // advance ctx_.now by the same amount per executed program, so a
    // handful of distinct factors covers a whole study's inner loop.
    constexpr std::size_t cap = 4;
    if (cache.size() < cap)
        cache.emplace_back();
    DecayEntry &e = cache.back();
    e.factor = factor;
    const std::size_t cols = store.tau.size();
    e.mul.resize(cols);
    for (std::size_t c = 0; c < cols; ++c)
        e.mul[c] =
            std::exp(factor / static_cast<double>(store.tau[c]));
    const double ratio = ctx_.profile.vrtFastRatio;
    const std::size_t nvrt = store.vrtIdx.size();
    e.fastMul.resize(nvrt);
    for (std::size_t k = 0; k < nvrt; ++k) {
        const double tau =
            static_cast<double>(store.tau[store.vrtIdx[k]]) * ratio;
        e.fastMul[k] = std::exp(factor / tau);
    }
    std::swap(cache.back(), cache.front()); // new entry is hottest
    return cache[0];
}

void
Bank::applyLeakage(RowStore &store)
{
    const double dt = ctx_.now - store.lastTouch;
    if (dt <= 0.0)
        return; // just touched: nothing decayed, skip the exp() loop
    const double factor = -dt * ctx_.env.leakageScale();
    const std::size_t nvrt = store.vrtIdx.size();
    // The VRT coin flip must be drawn for every VRT cell (ascending
    // column order) to keep the trial RNG stream identical to the
    // reference model, even where the voltage is already zero.
    std::span<const std::uint8_t> coins;
    if (nvrt != 0)
        coins = rngBuf_.chance(ctx_.trialRng, nvrt, 0.5);
    const DecayEntry &entry = decayEntry(store, factor);
    if (telemetry::enabled()) {
        const auto &bc = bankCounters();
        telemetry::count(bc.decay);
        telemetry::count(bc.decayCells, store.volts.size());
    }
    // Multiplying a zero cell by the decay factor keeps value and
    // sign, so the scalar v != 0 skip needs no branch here. VRT cells
    // are patched up from their pre-decay voltage below.
    vrtOrig_.resize(nvrt);
    for (std::size_t k = 0; k < nvrt; ++k)
        vrtOrig_[k] = store.volts[store.vrtIdx[k]];
    kernels::decayMultiply(store.volts.data(), entry.mul.data(),
                           store.volts.size());
    for (std::size_t k = 0; k < nvrt; ++k) {
        if (coins[k]) {
            store.volts[store.vrtIdx[k]] = static_cast<float>(
                static_cast<double>(vrtOrig_[k]) * entry.fastMul[k]);
        }
    }
    store.lastTouch = ctx_.now;
}

void
Bank::leakageStreamOnly(RowStore &store)
{
    const double dt = ctx_.now - store.lastTouch;
    if (dt <= 0.0)
        return; // the live path draws nothing either
    const std::size_t nvrt = store.vrtIdx.size();
    for (std::size_t k = 0; k < nvrt; ++k)
        (void)ctx_.trialRng.chance(0.5);
}

void
Bank::checkCols(const BitVector &bits) const
{
    panic_if(bits.size() != ctx_.params.colsPerRow,
             "row data has %zu bits, expected %u", bits.size(),
             ctx_.params.colsPerRow);
}

bool
Bank::checkerDropsAct(Cycles cycle) const
{
    if (!ctx_.profile.ignoresOutOfSpecTiming)
        return false;
    if (phase_ != Phase::Idle)
        return true; // no (accepted) PRE since the last ACT
    return everActivated_ && cycle < lastActCycle_ + checkerTRc;
}

bool
Bank::checkerDropsPre(Cycles cycle) const
{
    if (!ctx_.profile.ignoresOutOfSpecTiming)
        return false;
    if (phase_ == Phase::Idle)
        return false; // precharging a closed bank is harmless
    return cycle < lastActCycle_ + checkerTRas;
}

void
Bank::resolve(Cycles cycle, bool for_write)
{
    if (phase_ == Phase::ActPending &&
        cycle >= actCycle_ + ctx_.params.saEnableCycles) {
        fullActivate(for_write);
        phase_ = Phase::Open;
    } else if (phase_ == Phase::ClosePending &&
               cycle > preCycle_ + ctx_.params.glitchAbortCycles) {
        interruptedClose();
        phase_ = Phase::Idle;
    }
}

void
Bank::commandAct(Cycles cycle, RowAddr row)
{
    panic_if(row >= ctx_.params.rowsPerBank(), "ACT row %u out of range",
             row);
    if (checkerDropsAct(cycle)) {
        if (telemetry::enabled())
            telemetry::count(bankCounters().checkerDropAct);
        return;
    }

    if (phase_ == Phase::Idle && preFromOpenValid_ && rowBufferValid_ &&
        cycle <= preFromOpenCycle_ + ctx_.params.glitchAbortCycles) {
        // Row copy: the sense amps are still driving the bit-lines
        // from the previous activation; the newly raised wordline(s)
        // latch that data (ComputeDRAM row copy).
        preFromOpenValid_ = false;
        auto opened = glitchOpenedRows(ctx_.profile, preFromOpenRow_,
                                       row, ctx_.params.rowsPerSubarray);
        bool has_src = false;
        for (const auto &o : opened)
            has_src |= o.row == preFromOpenRow_;
        if (!has_src)
            opened.push_back({preFromOpenRow_, RowRole::SecondAct});
        if (telemetry::enabled())
            telemetry::count(bankCounters().rowCopy);

        const bool old_anti = rowIsAnti(refRow_);
        const float vdd = static_cast<float>(ctx_.env.vdd);
        for (const auto &o : opened) {
            auto &store = ensureRow(o.row, /*values_dead=*/true);
            kernels::fillFromBits(store.volts.data(),
                                  rowBuffer_.words(), old_anti, vdd,
                                  store.volts.size());
            store.lastTouch = ctx_.now;
        }
        openRows_ = std::move(opened);
        refRow_ = row;
        actCycle_ = cycle;
        lastActCycle_ = cycle;
        wasRowCopy_ = true;
        phase_ = Phase::Open;
        if (rowIsAnti(row) != old_anti)
            rowBuffer_.invert();
        return;
    }

    if (phase_ == Phase::ClosePending &&
        cycle <= preCycle_ + ctx_.params.glitchAbortCycles) {
        // The in-flight PRECHARGE is aborted: the previously-activated
        // row stays open and the row decoder glitches (Sec. II-D).
        openRows_ = glitchOpenedRows(ctx_.profile, refRow_, row,
                                     ctx_.params.rowsPerSubarray);
        if (telemetry::enabled())
            telemetry::count(bankCounters().glitchOpen);
        refRow_ = row;
        actCycle_ = cycle;
        lastActCycle_ = cycle;
        everActivated_ = true;
        wasRowCopy_ = false;
        phase_ = Phase::ActPending;
        rowBufferValid_ = false;
        return;
    }

    resolve(cycle);
    preFromOpenValid_ = false;

    if (phase_ == Phase::ActPending) {
        // ACT-ACT back-to-back without a PRE: the second wordline
        // also rises while the first activation is still settling,
        // so both rows join the charge sharing.
        if (verbose())
            warn("ACT during pending activation on bank %u; row %u "
                 "joins",
                 index_, row);
        bool present = false;
        for (const auto &o : openRows_)
            present |= o.row == row;
        if (!present)
            openRows_.push_back({row, RowRole::SecondAct});
        refRow_ = row;
        lastActCycle_ = cycle;
        return;
    }
    if (phase_ == Phase::Open) {
        // ACT on an open bank is a JEDEC violation outside the
        // behaviours this model reproduces; treat as implicit close.
        if (verbose())
            warn("ACT on open bank %u; forcing close", index_);
        openRows_.clear();
        phase_ = Phase::Idle;
    }
    panic_if(phase_ != Phase::Idle, "ACT in unexpected phase");

    openRows_ = {{row, RowRole::FirstAct}};
    refRow_ = row;
    actCycle_ = cycle;
    lastActCycle_ = cycle;
    everActivated_ = true;
    wasRowCopy_ = false;
    phase_ = Phase::ActPending;
    rowBufferValid_ = false;
}

void
Bank::commandPre(Cycles cycle)
{
    if (checkerDropsPre(cycle)) {
        if (telemetry::enabled())
            telemetry::count(bankCounters().checkerDropPre);
        return;
    }

    if (phase_ == Phase::ClosePending) {
        // A second PRE: the first close commits now.
        interruptedClose();
        phase_ = Phase::Idle;
        return;
    }

    resolve(cycle);

    switch (phase_) {
      case Phase::Idle:
        return; // re-precharging closed bit-lines
      case Phase::ActPending:
        // PRE before the sense amp enabled: interrupt pending.
        preCycle_ = cycle;
        phase_ = Phase::ClosePending;
        return;
      case Phase::Open:
        // Restore truncation: the sense amps drive the cells back to
        // the rail over ~tRAS; closing earlier freezes a partial
        // level (refs [17,18] of the paper).
        applyRestoreTruncation(cycle);
        // The sense amps keep driving the bit-lines for a short while
        // after PRE; an immediate ACT can latch their data into a new
        // row (ComputeDRAM's row copy).
        preFromOpenCycle_ = cycle;
        preFromOpenValid_ = true;
        preFromOpenRow_ = refRow_;
        openRows_.clear();
        phase_ = Phase::Idle;
        return;
      case Phase::ClosePending:
        break;
    }
    panic("PRE in unexpected phase");
}

const BitVector &
Bank::commandRead(Cycles cycle)
{
    resolve(cycle);
    if (phase_ != Phase::Open || !rowBufferValid_) {
        if (verbose())
            warn("READ on bank %u without a completed activation",
                 index_);
        zeroBuffer_ = BitVector(ctx_.params.colsPerRow, false);
        return zeroBuffer_;
    }
    return rowBuffer_;
}

void
Bank::commandWrite(Cycles cycle, const BitVector &logic_bits)
{
    checkCols(logic_bits);
    // A pending activation completing here may discard its sensed
    // values: this WRITE overwrites every open cell and the row
    // buffer before anything can observe them.
    resolve(cycle, /*for_write=*/true);
    if (phase_ != Phase::Open) {
        if (verbose())
            warn("WRITE on bank %u without a completed activation; "
                 "dropped",
                 index_);
        return;
    }
    // Data flows buffer -> bit-lines -> every open cell. The bit-line
    // voltage for logic bit b is b XOR anti(reference row).
    const bool anti = rowIsAnti(refRow_);
    const float vdd = static_cast<float>(ctx_.env.vdd);
    for (const auto &open : openRows_) {
        auto &store = ensureRow(open.row);
        kernels::fillFromBits(store.volts.data(), logic_bits.words(),
                              anti, vdd, store.volts.size());
        store.lastTouch = ctx_.now;
    }
    rowBuffer_ = logic_bits;
    rowBufferValid_ = true;
}

void
Bank::flush(Cycles cycle)
{
    resolve(cycle);
    if (phase_ == Phase::ClosePending) {
        interruptedClose();
        phase_ = Phase::Idle;
    } else if (phase_ == Phase::ActPending) {
        fullActivate();
        phase_ = Phase::Open;
    }
}

void
Bank::gatherOpenRows()
{
    open_.clear();
    for (const auto &o : openRows_) {
        RowStore &store = ensureRow(o.row);
        applyLeakage(store);
        const double jitter = ctx_.trialRng.lognormal(
            0.0, ctx_.profile.trialJitterSigma);
        open_.push_back(
            {&store, ctx_.profile.roleWeight(o.role) * jitter});
    }
}

void
Bank::fullActivate(bool discard_values)
{
    panic_if(openRows_.empty(), "fullActivate with no open rows");
    const auto cols = ctx_.params.colsPerRow;

    if (discard_values) {
        // Advance the RNG streams exactly as the live path below
        // would - per row the leakage coins and one jitter gaussian,
        // then one sense-noise gaussian per column - without paying
        // for the physics nobody can observe.
        for (const auto &o : openRows_) {
            RowStore &store = ensureRow(o.row, /*values_dead=*/true);
            leakageStreamOnly(store);
            ctx_.trialRng.skipGaussians(1); // lognormal jitter
            store.lastTouch = ctx_.now;
        }
        ctx_.trialRng.skipGaussians(cols);
        rowBufferValid_ = true; // caller overwrites the buffer next
        if (telemetry::enabled())
            telemetry::count(bankCounters().discardedActivate);
        return;
    }

    const Volt vdd = ctx_.env.vdd;
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();

    gatherOpenRows();
    ensureSaOffsets();
    // Row-wide sense noise: same draws, same order as the scalar
    // per-column loop (nothing else draws between columns).
    const auto noise =
        rngBuf_.gaussian(ctx_.trialRng, cols, 0.0, noise_sigma);

    num_.assign(cols, cb * half);
    den_.assign(cols, cb);
    // Row-outer accumulation keeps each column's additions in the
    // same order as the scalar row-inner loop.
    for (const auto &s : open_)
        kernels::chargeAccumulate(num_.data(), den_.data(),
                                  s.store->volts.data(),
                                  s.store->coupling.data(), s.weight,
                                  cols);
    eq_.resize(cols);
    kernels::equilibrium(eq_.data(), num_.data(), den_.data(), cols);
    dec_.resize(cols);
    kernels::senseDecide(dec_.data(), eq_.data(), saOffsets_.data(),
                         noise.data(), half, cols);
    const float vddf = static_cast<float>(vdd);
    for (const auto &s : open_)
        kernels::driveRails(s.store->volts.data(), dec_.data(), vddf,
                            cols);
    kernels::packDecisions(rowBuffer_.mutableWords(), dec_.data(),
                           rowIsAnti(refRow_), cols);
    for (const auto &s : open_)
        s.store->lastTouch = ctx_.now;
    rowBufferValid_ = true;
    if (telemetry::enabled()) {
        const auto &bc = bankCounters();
        telemetry::count(bc.fullActivate);
        telemetry::count(bc.fullActivateCells,
                         static_cast<std::uint64_t>(cols) *
                             open_.size());
        // Columns where SA offset + noise flipped the decision away
        // from the ideal comparator's sign(eq - vdd/2).
        std::uint64_t flips = 0;
        for (ColAddr c = 0; c < cols; ++c)
            flips += (dec_[c] != 0) != (eq_[c] > half);
        telemetry::count(bc.senseFlips, flips);
    }
}

void
Bank::interruptedClose()
{
    panic_if(openRows_.empty(), "interruptedClose with no open rows");
    const auto cols = ctx_.params.colsPerRow;
    const Volt vdd = ctx_.env.vdd;
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const bool multi_row = openRows_.size() > 1;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();
    const double cell_noise =
        ctx_.profile.cellNoiseSigma * ctx_.env.noiseScale();

    if (halfClean_.empty() && multi_row) {
        halfClean_.resize(cols);
        for (ColAddr c = 0; c < cols; ++c)
            halfClean_[c] = ctx_.variation.halfMClean(index_, c) ? 1 : 0;
    }

    gatherOpenRows();
    ensureSaOffsets();

    if (!multi_row) {
        // Frac path: with one open row the sense amp never engages,
        // so every column draws exactly one cell-noise gaussian -
        // batch the draws and run the whole charge-share + settle
        // chain as one fused pass.
        RowStore &store = *open_[0].store;
        const auto noise =
            rngBuf_.gaussian(ctx_.trialRng, cols, 0.0, cell_noise);
        kernels::fracSettle(store.volts.data(), store.alpha.data(),
                            store.coupling.data(),
                            store.fracOff.data(), noise.data(),
                            open_[0].weight, cb * half, cb, cols);
        store.lastTouch = ctx_.now;
        openRows_.clear();
        rowBufferValid_ = false;
        if (telemetry::enabled()) {
            const auto &bc = bankCounters();
            telemetry::count(bc.fracSettle);
            telemetry::count(bc.fracSettleCells, cols);
            // Cells that landed in the fractional band (0.2..0.8 Vdd)
            // - the values the paper's capability studies harvest.
            const float lo = static_cast<float>(0.2 * vdd);
            const float hi = static_cast<float>(0.8 * vdd);
            std::uint64_t frac = 0;
            for (ColAddr c = 0; c < cols; ++c)
                frac += store.volts[c] > lo && store.volts[c] < hi;
            telemetry::count(bc.fracCells, frac);
        }
        return;
    }

    num_.assign(cols, cb * half);
    den_.assign(cols, cb);
    for (const auto &s : open_)
        kernels::chargeAccumulate(num_.data(), den_.data(),
                                  s.store->volts.data(),
                                  s.store->coupling.data(), s.weight,
                                  cols);
    eq_.resize(cols);
    kernels::equilibrium(eq_.data(), num_.data(), den_.data(), cols);

    // Half-m path: the per-column draw count depends on the engage
    // decision, so this loop stays scalar (the charge sharing above
    // is still columnar).
    const float *sa = saOffsets_.data();
    const std::uint8_t *half_clean = halfClean_.data();
    std::uint64_t engaged = 0;
    for (ColAddr c = 0; c < cols; ++c) {
        const double veq =
            eq_[c] + ctx_.trialRng.gaussian(0, cell_noise);
        // The sense amp engages when the column either lost its
        // "clean" draw or developed a large delta early (all-same
        // initial values) - see VendorProfile::halfMEngageDelta.
        const bool sa_engages =
            !half_clean[c] ||
            std::fabs(veq - half) > ctx_.profile.halfMEngageDelta;
        engaged += sa_engages;
        if (sa_engages) {
            // The final PRE of an interrupted multi-row activation
            // lands right at the sense-enable point: for most columns
            // the SA partially engages and drags the cells toward its
            // decision rail (see DESIGN.md / VendorProfile docs).
            const double delta = veq - half;
            const bool decision =
                delta > sa[c] + ctx_.trialRng.gaussian(0, noise_sigma);
            const double rail = decision ? vdd : 0.0;
            for (const auto &s : open_) {
                const double v = s.store->volts[c];
                s.store->volts[c] = static_cast<float>(
                    v + ctx_.profile.halfMSaDrive * (rail - v));
            }
        } else {
            for (const auto &s : open_) {
                const double a0 = s.store->alpha[c];
                // Multi-row interruptions give the cells roughly three
                // cycles of wordline overlap instead of one.
                const double a = 1.0 - std::pow(1.0 - a0, 3.0);
                const double v = s.store->volts[c];
                // Each cell settles toward its own equilibrium: the
                // shared bit-line level plus a per-cell offset from
                // junction/coupling asymmetries.
                const double target = veq + s.store->fracOff[c];
                s.store->volts[c] =
                    static_cast<float>(v + a * (target - v));
            }
        }
    }
    for (const auto &s : open_)
        s.store->lastTouch = ctx_.now;
    openRows_.clear();
    rowBufferValid_ = false;
    if (telemetry::enabled()) {
        const auto &bc = bankCounters();
        telemetry::count(bc.halfmClose);
        telemetry::count(bc.halfmCells,
                         static_cast<std::uint64_t>(cols) *
                             open_.size());
        telemetry::count(bc.halfmEngaged, engaged);
    }
}

void
Bank::applyRestoreTruncation(Cycles close_cycle)
{
    const Cycles full = ctx_.params.fullRestoreCycles;
    const Cycles sa = ctx_.params.saEnableCycles;
    if (close_cycle >= actCycle_ + full || full <= sa)
        return; // restore had time to complete
    if (wasRowCopy_)
        return; // copy path: cells driven directly by the latched SAs
    const double ramp =
        static_cast<double>(close_cycle - actCycle_ - sa) /
        static_cast<double>(full - sa);
    const double r = std::min(1.0, std::max(0.15, ramp));
    const Volt half = ctx_.env.vdd / 2.0;
    for (const auto &o : openRows_) {
        auto &store = ensureRow(o.row);
        kernels::restoreTruncate(store.volts.data(), half, r,
                                 store.volts.size());
        store.lastTouch = ctx_.now;
    }
    if (telemetry::enabled()) {
        const auto &bc = bankCounters();
        telemetry::count(bc.restoreTruncate);
        telemetry::count(bc.restoreTruncateCells,
                         static_cast<std::uint64_t>(
                             ctx_.params.colsPerRow) *
                             openRows_.size());
    }
}

void
Bank::refreshAllRows()
{
    panic_if(phase_ != Phase::Idle, "REFRESH on a non-idle bank");
    // Internally activate-restore each allocated row, exactly like a
    // normal single-row activation (destroys fractional values,
    // Sec. III-C).
    const Volt vdd = ctx_.env.vdd;
    const float vddf = static_cast<float>(vdd);
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();
    ensureSaOffsets();
    for (auto &[row, store] : rows_) {
        applyLeakage(store);
        const double jitter = ctx_.trialRng.lognormal(
            0.0, ctx_.profile.trialJitterSigma);
        const double role_w =
            ctx_.profile.roleWeight(RowRole::FirstAct) * jitter;
        const std::size_t cols = store.volts.size();
        const auto noise =
            rngBuf_.gaussian(ctx_.trialRng, cols, 0.0, noise_sigma);
        num_.assign(cols, cb * half);
        den_.assign(cols, cb);
        kernels::chargeAccumulate(num_.data(), den_.data(),
                                  store.volts.data(),
                                  store.coupling.data(), role_w, cols);
        eq_.resize(cols);
        kernels::equilibrium(eq_.data(), num_.data(), den_.data(),
                             cols);
        dec_.resize(cols);
        kernels::senseDecide(dec_.data(), eq_.data(),
                             saOffsets_.data(), noise.data(), half,
                             cols);
        kernels::driveRails(store.volts.data(), dec_.data(), vddf,
                            cols);
        store.lastTouch = ctx_.now;
    }
    if (telemetry::enabled())
        telemetry::count(bankCounters().refreshRows, rows_.size());
}

Volt
Bank::cellVoltage(RowAddr row, ColAddr col)
{
    panic_if(col >= ctx_.params.colsPerRow, "col %u out of range", col);
    RowStore &store = ensureRow(row);
    applyLeakage(store);
    return store.volts[col];
}

void
Bank::setCellVoltage(RowAddr row, ColAddr col, Volt v)
{
    panic_if(col >= ctx_.params.colsPerRow, "col %u out of range", col);
    RowStore &store = ensureRow(row);
    applyLeakage(store);
    store.volts[col] = static_cast<float>(v);
}

bool
Bank::rowAllocated(RowAddr row) const
{
    return rows_.count(row) != 0;
}

void
Bank::discardRow(RowAddr row)
{
    rows_.erase(row);
}

void
Bank::discardAllRows()
{
    rows_.clear();
}

} // namespace fracdram::sim
