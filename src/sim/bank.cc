#include "sim/bank.hh"

#include <cmath>

#include "common/logging.hh"

namespace fracdram::sim
{

namespace
{

// JEDEC minimum spacings (in 2.5 ns cycles at the SoftMC command
// clock) used by the timing-checker vendors (groups J-L) to reject
// too-close commands. Approximations of DDR3-1333 values.
constexpr Cycles checkerTRas = 14;
constexpr Cycles checkerTRc = 20;

} // namespace

Bank::Bank(ModuleContext &ctx, BankAddr index)
    : ctx_(ctx), index_(index), rowBuffer_(ctx.params.colsPerRow)
{
}

bool
Bank::rowIsAnti(RowAddr row) const
{
    return ctx_.profile.oddRowsAntiCells && (row & 1u);
}

void
Bank::ensureSaOffsets()
{
    if (!saOffsets_.empty())
        return;
    saOffsets_.resize(ctx_.params.colsPerRow);
    for (ColAddr c = 0; c < ctx_.params.colsPerRow; ++c) {
        saOffsets_[c] =
            static_cast<float>(ctx_.variation.saOffset(index_, c));
    }
}

Volt
Bank::saOffset(ColAddr col)
{
    ensureSaOffsets();
    return saOffsets_[col];
}

Bank::RowStore &
Bank::ensureRow(RowAddr row)
{
    panic_if(row >= ctx_.params.rowsPerBank(),
             "row %u out of range (bank has %u rows)", row,
             ctx_.params.rowsPerBank());
    // Single hash probe: default-construct in place, materialize the
    // manufacturing parameters only on first touch.
    auto [it, inserted] = rows_.try_emplace(row);
    RowStore &store = it->second;
    if (!inserted)
        return store;

    const auto cols = ctx_.params.colsPerRow;
    store.volts.resize(cols);
    store.alpha.resize(cols);
    store.tau.resize(cols);
    store.coupling.resize(cols);
    store.fracOff.resize(cols);
    store.vrt.resize(cols);
    store.lastTouch = ctx_.now;
    const auto &var = ctx_.variation;
    const float vdd = static_cast<float>(ctx_.env.vdd);
    for (ColAddr c = 0; c < cols; ++c) {
        store.volts[c] = var.startupBit(index_, row, c) ? vdd : 0.0f;
        store.alpha[c] = static_cast<float>(var.cellAlpha(index_, row, c));
        store.tau[c] = static_cast<float>(var.cellTau(index_, row, c));
        store.coupling[c] =
            static_cast<float>(var.cellCoupling(index_, row, c));
        store.fracOff[c] =
            static_cast<float>(var.cellFracOffset(index_, row, c));
        store.vrt[c] = var.cellIsVrt(index_, row, c) ? 1 : 0;
    }
    return store;
}

void
Bank::applyLeakage(RowAddr row)
{
    applyLeakage(ensureRow(row));
}

void
Bank::applyLeakage(RowStore &store)
{
    const double dt = ctx_.now - store.lastTouch;
    if (dt <= 0.0)
        return; // just touched: nothing decayed, skip the exp() loop
    const double factor = -dt * ctx_.env.leakageScale();
    const std::size_t cols = store.volts.size();
    for (std::size_t c = 0; c < cols; ++c) {
        double tau = store.tau[c];
        // The VRT coin flip must be drawn for every VRT cell to keep
        // the trial RNG stream identical to the reference model, even
        // when the voltage below is already zero.
        if (store.vrt[c] && ctx_.trialRng.chance(0.5))
            tau *= ctx_.profile.vrtFastRatio;
        const float v = store.volts[c];
        if (v != 0.0f)
            store.volts[c] =
                static_cast<float>(v * std::exp(factor / tau));
    }
    store.lastTouch = ctx_.now;
}

void
Bank::checkCols(const BitVector &bits) const
{
    panic_if(bits.size() != ctx_.params.colsPerRow,
             "row data has %zu bits, expected %u", bits.size(),
             ctx_.params.colsPerRow);
}

bool
Bank::checkerDropsAct(Cycles cycle) const
{
    if (!ctx_.profile.ignoresOutOfSpecTiming)
        return false;
    if (phase_ != Phase::Idle)
        return true; // no (accepted) PRE since the last ACT
    return everActivated_ && cycle < lastActCycle_ + checkerTRc;
}

bool
Bank::checkerDropsPre(Cycles cycle) const
{
    if (!ctx_.profile.ignoresOutOfSpecTiming)
        return false;
    if (phase_ == Phase::Idle)
        return false; // precharging a closed bank is harmless
    return cycle < lastActCycle_ + checkerTRas;
}

void
Bank::resolve(Cycles cycle)
{
    if (phase_ == Phase::ActPending &&
        cycle >= actCycle_ + ctx_.params.saEnableCycles) {
        fullActivate();
        phase_ = Phase::Open;
    } else if (phase_ == Phase::ClosePending &&
               cycle > preCycle_ + ctx_.params.glitchAbortCycles) {
        interruptedClose();
        phase_ = Phase::Idle;
    }
}

void
Bank::commandAct(Cycles cycle, RowAddr row)
{
    panic_if(row >= ctx_.params.rowsPerBank(), "ACT row %u out of range",
             row);
    if (checkerDropsAct(cycle))
        return;

    if (phase_ == Phase::Idle && preFromOpenValid_ && rowBufferValid_ &&
        cycle <= preFromOpenCycle_ + ctx_.params.glitchAbortCycles) {
        // Row copy: the sense amps are still driving the bit-lines
        // from the previous activation; the newly raised wordline(s)
        // latch that data (ComputeDRAM row copy).
        preFromOpenValid_ = false;
        auto opened = glitchOpenedRows(ctx_.profile, preFromOpenRow_,
                                       row, ctx_.params.rowsPerSubarray);
        bool has_src = false;
        for (const auto &o : opened)
            has_src |= o.row == preFromOpenRow_;
        if (!has_src)
            opened.push_back({preFromOpenRow_, RowRole::SecondAct});

        const bool old_anti = rowIsAnti(refRow_);
        const Volt vdd = ctx_.env.vdd;
        for (const auto &o : opened) {
            auto &store = ensureRow(o.row);
            for (std::size_t c = 0; c < store.volts.size(); ++c) {
                const bool high = rowBuffer_.get(c) ^ old_anti;
                store.volts[c] = high ? static_cast<float>(vdd) : 0.0f;
            }
            store.lastTouch = ctx_.now;
        }
        openRows_ = std::move(opened);
        refRow_ = row;
        actCycle_ = cycle;
        lastActCycle_ = cycle;
        wasRowCopy_ = true;
        phase_ = Phase::Open;
        if (rowIsAnti(row) != old_anti)
            rowBuffer_.invert();
        return;
    }

    if (phase_ == Phase::ClosePending &&
        cycle <= preCycle_ + ctx_.params.glitchAbortCycles) {
        // The in-flight PRECHARGE is aborted: the previously-activated
        // row stays open and the row decoder glitches (Sec. II-D).
        openRows_ = glitchOpenedRows(ctx_.profile, refRow_, row,
                                     ctx_.params.rowsPerSubarray);
        refRow_ = row;
        actCycle_ = cycle;
        lastActCycle_ = cycle;
        everActivated_ = true;
        wasRowCopy_ = false;
        phase_ = Phase::ActPending;
        rowBufferValid_ = false;
        return;
    }

    resolve(cycle);
    preFromOpenValid_ = false;

    if (phase_ == Phase::ActPending) {
        // ACT-ACT back-to-back without a PRE: the second wordline
        // also rises while the first activation is still settling,
        // so both rows join the charge sharing.
        if (verbose())
            warn("ACT during pending activation on bank %u; row %u "
                 "joins",
                 index_, row);
        bool present = false;
        for (const auto &o : openRows_)
            present |= o.row == row;
        if (!present)
            openRows_.push_back({row, RowRole::SecondAct});
        refRow_ = row;
        lastActCycle_ = cycle;
        return;
    }
    if (phase_ == Phase::Open) {
        // ACT on an open bank is a JEDEC violation outside the
        // behaviours this model reproduces; treat as implicit close.
        if (verbose())
            warn("ACT on open bank %u; forcing close", index_);
        openRows_.clear();
        phase_ = Phase::Idle;
    }
    panic_if(phase_ != Phase::Idle, "ACT in unexpected phase");

    openRows_ = {{row, RowRole::FirstAct}};
    refRow_ = row;
    actCycle_ = cycle;
    lastActCycle_ = cycle;
    everActivated_ = true;
    wasRowCopy_ = false;
    phase_ = Phase::ActPending;
    rowBufferValid_ = false;
}

void
Bank::commandPre(Cycles cycle)
{
    if (checkerDropsPre(cycle))
        return;

    if (phase_ == Phase::ClosePending) {
        // A second PRE: the first close commits now.
        interruptedClose();
        phase_ = Phase::Idle;
        return;
    }

    resolve(cycle);

    switch (phase_) {
      case Phase::Idle:
        return; // re-precharging closed bit-lines
      case Phase::ActPending:
        // PRE before the sense amp enabled: interrupt pending.
        preCycle_ = cycle;
        phase_ = Phase::ClosePending;
        return;
      case Phase::Open:
        // Restore truncation: the sense amps drive the cells back to
        // the rail over ~tRAS; closing earlier freezes a partial
        // level (refs [17,18] of the paper).
        applyRestoreTruncation(cycle);
        // The sense amps keep driving the bit-lines for a short while
        // after PRE; an immediate ACT can latch their data into a new
        // row (ComputeDRAM's row copy).
        preFromOpenCycle_ = cycle;
        preFromOpenValid_ = true;
        preFromOpenRow_ = refRow_;
        openRows_.clear();
        phase_ = Phase::Idle;
        return;
      case Phase::ClosePending:
        break;
    }
    panic("PRE in unexpected phase");
}

const BitVector &
Bank::commandRead(Cycles cycle)
{
    resolve(cycle);
    if (phase_ != Phase::Open || !rowBufferValid_) {
        if (verbose())
            warn("READ on bank %u without a completed activation",
                 index_);
        zeroBuffer_ = BitVector(ctx_.params.colsPerRow, false);
        return zeroBuffer_;
    }
    return rowBuffer_;
}

void
Bank::commandWrite(Cycles cycle, const BitVector &logic_bits)
{
    checkCols(logic_bits);
    resolve(cycle);
    if (phase_ != Phase::Open) {
        if (verbose())
            warn("WRITE on bank %u without a completed activation; "
                 "dropped",
                 index_);
        return;
    }
    // Data flows buffer -> bit-lines -> every open cell. The bit-line
    // voltage for logic bit b is b XOR anti(reference row).
    const bool anti = rowIsAnti(refRow_);
    const Volt vdd = ctx_.env.vdd;
    for (const auto &open : openRows_) {
        auto &store = ensureRow(open.row);
        for (std::size_t c = 0; c < store.volts.size(); ++c) {
            const bool high = logic_bits.get(c) ^ anti;
            store.volts[c] = high ? static_cast<float>(vdd) : 0.0f;
        }
        store.lastTouch = ctx_.now;
    }
    rowBuffer_ = logic_bits;
    rowBufferValid_ = true;
}

void
Bank::flush(Cycles cycle)
{
    resolve(cycle);
    if (phase_ == Phase::ClosePending) {
        interruptedClose();
        phase_ = Phase::Idle;
    } else if (phase_ == Phase::ActPending) {
        fullActivate();
        phase_ = Phase::Open;
    }
}

void
Bank::fullActivate()
{
    panic_if(openRows_.empty(), "fullActivate with no open rows");
    const auto cols = ctx_.params.colsPerRow;
    const Volt vdd = ctx_.env.vdd;
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();

    struct OpenState
    {
        RowStore *store;
        double weight; // role weight x per-trial jitter
    };
    std::vector<OpenState> open;
    open.reserve(openRows_.size());
    for (const auto &o : openRows_) {
        RowStore &store = ensureRow(o.row);
        applyLeakage(store);
        const double jitter = ctx_.trialRng.lognormal(
            0.0, ctx_.profile.trialJitterSigma);
        open.push_back(
            {&store, ctx_.profile.roleWeight(o.role) * jitter});
    }

    ensureSaOffsets();
    const float *sa = saOffsets_.data();
    const bool anti = rowIsAnti(refRow_);
    for (ColAddr c = 0; c < cols; ++c) {
        double num = cb * half;
        double den = cb;
        for (const auto &s : open) {
            const double w = s.weight * s.store->coupling[c];
            num += w * s.store->volts[c];
            den += w;
        }
        const double veq = num / den;
        const double delta = veq - half;
        const bool decision =
            delta > sa[c] + ctx_.trialRng.gaussian(0, noise_sigma);
        const float rail = decision ? static_cast<float>(vdd) : 0.0f;
        for (const auto &s : open)
            s.store->volts[c] = rail;
        rowBuffer_.set(c, decision ^ anti);
    }
    for (const auto &s : open)
        s.store->lastTouch = ctx_.now;
    rowBufferValid_ = true;
}

void
Bank::interruptedClose()
{
    panic_if(openRows_.empty(), "interruptedClose with no open rows");
    const auto cols = ctx_.params.colsPerRow;
    const Volt vdd = ctx_.env.vdd;
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const bool multi_row = openRows_.size() > 1;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();
    const double cell_noise =
        ctx_.profile.cellNoiseSigma * ctx_.env.noiseScale();

    if (halfClean_.empty() && multi_row) {
        halfClean_.resize(cols);
        for (ColAddr c = 0; c < cols; ++c)
            halfClean_[c] = ctx_.variation.halfMClean(index_, c) ? 1 : 0;
    }

    struct OpenState
    {
        RowStore *store;
        double weight;
    };
    std::vector<OpenState> open;
    open.reserve(openRows_.size());
    for (const auto &o : openRows_) {
        RowStore &store = ensureRow(o.row);
        applyLeakage(store);
        const double jitter = ctx_.trialRng.lognormal(
            0.0, ctx_.profile.trialJitterSigma);
        open.push_back(
            {&store, ctx_.profile.roleWeight(o.role) * jitter});
    }

    ensureSaOffsets();
    const float *sa = saOffsets_.data();
    const std::uint8_t *half_clean =
        halfClean_.empty() ? nullptr : halfClean_.data();
    for (ColAddr c = 0; c < cols; ++c) {
        double num = cb * half;
        double den = cb;
        for (const auto &s : open) {
            const double w = s.weight * s.store->coupling[c];
            num += w * s.store->volts[c];
            den += w;
        }
        const double veq =
            num / den + ctx_.trialRng.gaussian(0, cell_noise);
        // The sense amp engages when the column either lost its
        // "clean" draw or developed a large delta early (all-same
        // initial values) - see VendorProfile::halfMEngageDelta.
        const bool sa_engages =
            multi_row &&
            (!half_clean[c] ||
             std::fabs(veq - half) > ctx_.profile.halfMEngageDelta);
        if (sa_engages) {
            // The final PRE of an interrupted multi-row activation
            // lands right at the sense-enable point: for most columns
            // the SA partially engages and drags the cells toward its
            // decision rail (see DESIGN.md / VendorProfile docs).
            const double delta = veq - half;
            const bool decision =
                delta > sa[c] + ctx_.trialRng.gaussian(0, noise_sigma);
            const double rail = decision ? vdd : 0.0;
            for (const auto &s : open) {
                const double v = s.store->volts[c];
                s.store->volts[c] = static_cast<float>(
                    v + ctx_.profile.halfMSaDrive * (rail - v));
            }
        } else {
            for (const auto &s : open) {
                const double a0 = s.store->alpha[c];
                // Multi-row interruptions give the cells roughly three
                // cycles of wordline overlap instead of one.
                const double a =
                    multi_row ? 1.0 - std::pow(1.0 - a0, 3.0) : a0;
                const double v = s.store->volts[c];
                // Each cell settles toward its own equilibrium: the
                // shared bit-line level plus a per-cell offset from
                // junction/coupling asymmetries.
                const double target = veq + s.store->fracOff[c];
                s.store->volts[c] =
                    static_cast<float>(v + a * (target - v));
            }
        }
    }
    for (const auto &s : open)
        s.store->lastTouch = ctx_.now;
    openRows_.clear();
    rowBufferValid_ = false;
}

void
Bank::applyRestoreTruncation(Cycles close_cycle)
{
    const Cycles full = ctx_.params.fullRestoreCycles;
    const Cycles sa = ctx_.params.saEnableCycles;
    if (close_cycle >= actCycle_ + full || full <= sa)
        return; // restore had time to complete
    if (wasRowCopy_)
        return; // copy path: cells driven directly by the latched SAs
    const double ramp =
        static_cast<double>(close_cycle - actCycle_ - sa) /
        static_cast<double>(full - sa);
    const double r = std::min(1.0, std::max(0.15, ramp));
    const Volt half = ctx_.env.vdd / 2.0;
    for (const auto &o : openRows_) {
        auto &store = ensureRow(o.row);
        for (std::size_t c = 0; c < store.volts.size(); ++c) {
            const double v = store.volts[c];
            store.volts[c] =
                static_cast<float>(half + (v - half) * r);
        }
        store.lastTouch = ctx_.now;
    }
}

void
Bank::refreshAllRows()
{
    panic_if(phase_ != Phase::Idle, "REFRESH on a non-idle bank");
    // Internally activate-restore each allocated row, exactly like a
    // normal single-row activation (destroys fractional values,
    // Sec. III-C).
    const Volt vdd = ctx_.env.vdd;
    const Volt half = vdd / 2.0;
    const double cb = ctx_.params.bitlineCapRatio;
    const double noise_sigma =
        ctx_.profile.saNoiseSigma * ctx_.env.noiseScale();
    ensureSaOffsets();
    const float *sa = saOffsets_.data();
    for (auto &[row, store] : rows_) {
        applyLeakage(store);
        const double jitter = ctx_.trialRng.lognormal(
            0.0, ctx_.profile.trialJitterSigma);
        const double role_w =
            ctx_.profile.roleWeight(RowRole::FirstAct) * jitter;
        for (std::size_t c = 0; c < store.volts.size(); ++c) {
            const double w = role_w * store.coupling[c];
            const double veq =
                (cb * half + w * store.volts[c]) / (cb + w);
            const bool decision =
                veq - half >
                sa[c] + ctx_.trialRng.gaussian(0, noise_sigma);
            store.volts[c] = decision ? static_cast<float>(vdd) : 0.0f;
        }
        store.lastTouch = ctx_.now;
    }
}

Volt
Bank::cellVoltage(RowAddr row, ColAddr col)
{
    panic_if(col >= ctx_.params.colsPerRow, "col %u out of range", col);
    RowStore &store = ensureRow(row);
    applyLeakage(store);
    return store.volts[col];
}

void
Bank::setCellVoltage(RowAddr row, ColAddr col, Volt v)
{
    panic_if(col >= ctx_.params.colsPerRow, "col %u out of range", col);
    RowStore &store = ensureRow(row);
    applyLeakage(store);
    store.volts[col] = static_cast<float>(v);
}

bool
Bank::rowAllocated(RowAddr row) const
{
    return rows_.count(row) != 0;
}

void
Bank::discardRow(RowAddr row)
{
    rows_.erase(row);
}

void
Bank::discardAllRows()
{
    rows_.clear();
}

} // namespace fracdram::sim
