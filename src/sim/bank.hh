/**
 * @file
 * One DRAM bank: cell storage, bit-lines, sense amplifiers, and the
 * small state machine that recognizes in-spec and out-of-spec command
 * timings.
 *
 * The FSM is what turns command sequences into analog behaviour:
 *
 *  - ACT, then >= saEnableCycles idle: normal activation. Charge
 *    sharing, sense amplification, full restore, row buffer capture.
 *  - ACT, PRE back-to-back: the close is *pending*; if nothing follows
 *    within glitchAbortCycles the activation was interrupted before
 *    the sense amplifier enabled and the cells keep a fractional
 *    voltage (the Frac mechanism, paper Sec. III-A).
 *  - ACT, PRE, ACT back-to-back: the pending close is aborted, the
 *    row decoder glitches, and multiple rows open together (paper
 *    Sec. II-D). A trailing back-to-back PRE then interrupts the
 *    multi-row activation (the Half-m mechanism, Sec. III-B).
 *
 * Cell state is allocated lazily per row; every manufacturing
 * parameter is materialized from the module's VariationMap when a row
 * is first touched.
 *
 * The analog hot paths run on the columnar kernels (sim/kernels):
 * noise is drawn row-wide through the module's RngBuffer in exactly
 * the order the scalar reference loops drew it (DESIGN.md, "Columnar
 * kernels"), leakage decay factors are cached per row and exp factor,
 * and an activation that is resolved by a WRITE - whose sensed values
 * nothing can observe before the write overwrites them - advances the
 * RNG streams without paying for the physics.
 */

#ifndef FRACDRAM_SIM_BANK_HH
#define FRACDRAM_SIM_BANK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "common/rng_buffer.hh"
#include "common/simd/aligned.hh"
#include "common/types.hh"
#include "sim/environment.hh"
#include "sim/params.hh"
#include "sim/row_decoder.hh"
#include "sim/variation.hh"
#include "sim/vendor.hh"

namespace fracdram::sim
{

/**
 * Shared mutable context of a module, owned by DramChip and referenced
 * by its banks.
 */
struct ModuleContext
{
    ModuleContext(const DramParams &p, const VendorProfile &prof,
                  std::uint64_t serial)
        : params(p), profile(prof), variation(prof, serial),
          trialRng(mixSeed(serial, 0x7261746eULL))
    {
    }

    DramParams params;
    const VendorProfile &profile;
    Environment env;
    VariationMap variation;
    Rng trialRng;       //!< per-operation (non-manufacturing) noise
    Seconds now = 0.0;  //!< simulated wall-clock time
};

/**
 * A single bank with lazily allocated rows.
 */
class Bank
{
  public:
    Bank(ModuleContext &ctx, BankAddr index);

    /** @name Command interface (cycles are absolute and monotone) */
    /// @{
    void commandAct(Cycles cycle, RowAddr row);
    void commandPre(Cycles cycle);
    /** Capture of the row buffer in logic domain. */
    const BitVector &commandRead(Cycles cycle);
    /** Overwrite the open row(s) and buffer with logic data. */
    void commandWrite(Cycles cycle, const BitVector &logic_bits);
    /** Resolve any pending activation/close at sequence end. */
    void flush(Cycles cycle);
    /// @}

    /** Internally activate-restore every allocated row (REFRESH). */
    void refreshAllRows();

    /** Whether the bank is fully closed (after flush). */
    bool isIdle() const { return phase_ == Phase::Idle; }

    /** Rows currently open (valid in the Open phase). */
    const std::vector<OpenedRow> &openRows() const { return openRows_; }

    /** @name White-box access (tests, analysis harnesses) */
    /// @{
    /** Cell voltage with leakage applied up to the current time. */
    Volt cellVoltage(RowAddr row, ColAddr col);
    /** Force a cell voltage (test hook). */
    void setCellVoltage(RowAddr row, ColAddr col, Volt v);
    bool rowAllocated(RowAddr row) const;
    /** Drop a row's storage (contents become don't-care). */
    void discardRow(RowAddr row);
    void discardAllRows();
    /// @}

    /** Whether a row holds anti-cells (Vdd reads as logic 0). */
    bool rowIsAnti(RowAddr row) const;

    /** Sense-amp offset of a column (volts, delta domain). */
    Volt saOffset(ColAddr col);

  private:
    enum class Phase
    {
        Idle,         //!< all rows closed, bit-lines precharged
        ActPending,   //!< ACT issued, sense amp not yet enabled
        ClosePending, //!< PRE issued during ActPending, not resolved
        Open,         //!< activation complete, row buffer valid
    };

    /**
     * Cached per-cell decay multipliers for one leakage exp factor
     * (factor = -dt * leakageScale): mul[c] = exp(factor / tau[c]),
     * fastMul[k] = exp(factor / (tau[vrtIdx[k]] * vrtFastRatio)).
     * tau is immutable after row materialization, so entries stay
     * valid for the row's lifetime.
     */
    struct DecayEntry
    {
        double factor = 0.0;
        std::vector<double> mul;
        std::vector<double> fastMul;
    };

    struct RowStore
    {
        std::vector<float> volts;
        std::vector<float> alpha;    //!< settling fraction per cell
        std::vector<float> tau;      //!< leakage time constant (s)
        std::vector<float> coupling; //!< static coupling multiplier
        std::vector<float> fracOff;  //!< settling-equilibrium offset
        std::vector<std::uint8_t> vrt;
        std::vector<std::uint32_t> vrtIdx; //!< columns with vrt set
        std::vector<DecayEntry> decay; //!< tiny LRU, front = hottest
        Seconds lastTouch = 0.0;
    };

    /** One open row's contribution to the charge sharing. */
    struct OpenState
    {
        RowStore *store;
        double weight; //!< role weight x per-trial jitter
    };

    /**
     * Find or materialize a row's storage. With @p values_dead the
     * caller guarantees every cell voltage is overwritten before any
     * observation, so the (independent) power-up stream is skipped.
     */
    RowStore &ensureRow(RowAddr row, bool values_dead = false);
    void applyLeakage(RowAddr row);
    /** Leakage on an already-resolved store (saves the row lookup). */
    void applyLeakage(RowStore &store);
    /**
     * Consume the RNG draws of applyLeakage without touching the
     * voltages (write-resolve path: every cell is overwritten before
     * the next observation).
     */
    void leakageStreamOnly(RowStore &store);
    /** Find or build the decay-multiplier cache entry for a factor. */
    const DecayEntry &decayEntry(RowStore &store, double factor);
    /** Materialize the per-column sense-amp offset cache. */
    void ensureSaOffsets();
    void checkCols(const BitVector &bits) const;

    /**
     * Move pending state forward given the current cycle.
     * @param for_write the caller is a WRITE that will overwrite all
     *        open cells and the row buffer, so a completing
     *        activation may discard its sensed values
     */
    void resolve(Cycles cycle, bool for_write = false);

    /**
     * Complete activation: charge share, sense, restore, buffer.
     * With @p discard_values, advance the RNG streams exactly as the
     * live path would but skip the (unobservable) physics.
     */
    void fullActivate(bool discard_values = false);

    /** Commit an interrupted close: partial settle, no full sense. */
    void interruptedClose();

    /**
     * Scale the open rows' cells back toward V_dd/2 when the row is
     * closed before the restore completed (tRAS truncation).
     */
    void applyRestoreTruncation(Cycles close_cycle);

    /** Leak, jitter-weigh and collect the open rows into scratch. */
    void gatherOpenRows();

    /** True when the profile's timing checker drops this command. */
    bool checkerDropsAct(Cycles cycle) const;
    bool checkerDropsPre(Cycles cycle) const;

    ModuleContext &ctx_;
    BankAddr index_;

    Phase phase_ = Phase::Idle;
    std::vector<OpenedRow> openRows_;
    RowAddr refRow_ = 0;     //!< last explicitly activated row
    Cycles actCycle_ = 0;    //!< cycle of the pending ACT
    Cycles preCycle_ = 0;    //!< cycle of the pending PRE
    Cycles lastActCycle_ = 0;
    bool everActivated_ = false;

    /**
     * Cycle of the last PRE issued on a *fully open* bank. An ACT
     * arriving within glitchAbortCycles of it reconnects new rows to
     * bit-lines the sense amps are still driving - ComputeDRAM's
     * in-DRAM row copy.
     */
    Cycles preFromOpenCycle_ = 0;
    bool preFromOpenValid_ = false;
    RowAddr preFromOpenRow_ = 0;

    /** Whether the current open set came from the row-copy path. */
    bool wasRowCopy_ = false;

    BitVector rowBuffer_;
    BitVector zeroBuffer_; //!< returned for reads on a closed bank
    bool rowBufferValid_ = false;

    std::unordered_map<RowAddr, RowStore> rows_;
    // Kernel operands are cache-line aligned so the SIMD tiers' main
    // loops start on vector boundaries (correct either way; aligned
    // keeps loads from splitting lines).
    simd::AlignedVector<float> saOffsets_; //!< lazy per-column cache
    simd::AlignedVector<std::uint8_t> halfClean_;

    /** @name Row-wide scratch (reused across operations) */
    /// @{
    RngBuffer rngBuf_;
    std::vector<OpenState> open_;
    simd::AlignedVector<double> num_, den_, eq_;
    simd::AlignedVector<std::uint8_t> dec_;
    simd::AlignedVector<float> vrtOrig_; //!< VRT cells' pre-decay voltages
    /** Staging arrays for VariationMap::materializeRow. */
    simd::AlignedVector<double> matAlpha_, matTau_, matCpl_, matOff_;
    simd::AlignedVector<std::uint8_t> matStartup_, matVrt_;
    /// @}
};

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_BANK_HH
