#include "sim/chip.hh"

#include "common/logging.hh"

namespace fracdram::sim
{

DramChip::DramChip(DramGroup group, std::uint64_t serial,
                   const DramParams &params)
    : serial_(serial), ctx_(params, vendorProfile(group), serial)
{
    panic_if(params.numBanks == 0, "module needs at least one bank");
    panic_if(params.colsPerRow == 0, "rows need at least one column");
    panic_if(params.rowsPerSubarray == 0 || params.subarraysPerBank == 0,
             "bank needs at least one row");
    banks_.reserve(params.numBanks);
    for (BankAddr b = 0; b < params.numBanks; ++b)
        banks_.push_back(std::make_unique<Bank>(ctx_, b));
}

Bank &
DramChip::bank(BankAddr b)
{
    panic_if(b >= banks_.size(), "bank %u out of range", b);
    return *banks_[b];
}

void
DramChip::act(Cycles cycle, BankAddr b, RowAddr row)
{
    bank(b).commandAct(cycle, row);
}

void
DramChip::pre(Cycles cycle, BankAddr b)
{
    bank(b).commandPre(cycle);
}

void
DramChip::preAll(Cycles cycle)
{
    for (auto &b : banks_)
        b->commandPre(cycle);
}

const BitVector &
DramChip::read(Cycles cycle, BankAddr b)
{
    return bank(b).commandRead(cycle);
}

void
DramChip::write(Cycles cycle, BankAddr b, const BitVector &bits)
{
    bank(b).commandWrite(cycle, bits);
}

void
DramChip::refresh(Cycles cycle)
{
    for (auto &b : banks_) {
        b->flush(cycle);
        panic_if(!b->isIdle(),
                 "REFRESH requires all banks precharged");
        b->refreshAllRows();
    }
}

void
DramChip::flushAll(Cycles cycle)
{
    for (auto &b : banks_)
        b->flush(cycle);
}

void
DramChip::advanceTime(Seconds dt)
{
    panic_if(dt < 0.0, "time cannot move backwards");
    ctx_.now += dt;
}

bool
DramChip::rowIsAnti(BankAddr b, RowAddr row) const
{
    panic_if(b >= banks_.size(), "bank %u out of range", b);
    return banks_[b]->rowIsAnti(row);
}

void
DramChip::discardAllRows()
{
    for (auto &b : banks_)
        b->discardAllRows();
}

} // namespace fracdram::sim
