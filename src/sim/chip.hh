/**
 * @file
 * DramChip: one simulated DRAM module (the unit SoftMC drives).
 *
 * The chip is a passive device: it receives commands at absolute cycle
 * timestamps from the memory controller and mutates analog state. It
 * never checks JEDEC timing itself (except for the vendors that ship
 * timing-checker circuits); deliberately violating timing is exactly
 * how FracDRAM's primitives work.
 */

#ifndef FRACDRAM_SIM_CHIP_HH
#define FRACDRAM_SIM_CHIP_HH

#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/bank.hh"
#include "sim/environment.hh"
#include "sim/params.hh"
#include "sim/vendor.hh"

namespace fracdram::sim
{

/**
 * A simulated DRAM module of a given vendor group.
 */
class DramChip
{
  public:
    /**
     * @param group vendor group (Table I)
     * @param serial unique module serial; distinct serials get
     *               distinct process variation
     * @param params geometry / physics overrides
     */
    DramChip(DramGroup group, std::uint64_t serial,
             const DramParams &params = DramParams{});

    const VendorProfile &profile() const { return ctx_.profile; }
    const DramParams &dramParams() const { return ctx_.params; }
    DramGroup group() const { return ctx_.profile.group; }
    std::uint64_t serial() const { return serial_; }

    /** Mutable operating environment (voltage, temperature). */
    Environment &env() { return ctx_.env; }
    const Environment &env() const { return ctx_.env; }

    /** Process-variation map (white-box inspection). */
    const VariationMap &variation() const { return ctx_.variation; }

    /** @name Command interface (absolute, monotone cycles) */
    /// @{
    void act(Cycles cycle, BankAddr bank, RowAddr row);
    void pre(Cycles cycle, BankAddr bank);
    void preAll(Cycles cycle);
    const BitVector &read(Cycles cycle, BankAddr bank);
    void write(Cycles cycle, BankAddr bank, const BitVector &bits);
    /**
     * Refresh: internally activate-restore every allocated row of
     * every bank. All banks must be idle (flush/precharge first).
     */
    void refresh(Cycles cycle);
    /** Resolve pending activations/closes in all banks. */
    void flushAll(Cycles cycle);
    /// @}

    /** Advance simulated wall-clock time (cells leak meanwhile). */
    void advanceTime(Seconds dt);

    /** Simulated wall-clock time in seconds. */
    Seconds now() const { return ctx_.now; }

    /** Direct bank access (white-box inspection, analysis). */
    Bank &bank(BankAddr b);

    /** Whether a row stores anti-cells. */
    bool rowIsAnti(BankAddr bank, RowAddr row) const;

    /** Drop all allocated rows in all banks (contents don't-care). */
    void discardAllRows();

  private:
    std::uint64_t serial_;
    ModuleContext ctx_;
    std::vector<std::unique_ptr<Bank>> banks_;
};

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_CHIP_HH
