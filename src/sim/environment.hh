/**
 * @file
 * Operating environment of a DRAM module: supply voltage and ambient
 * temperature. Used by the PUF robustness experiments (paper Fig. 12).
 */

#ifndef FRACDRAM_SIM_ENVIRONMENT_HH
#define FRACDRAM_SIM_ENVIRONMENT_HH

#include <cmath>

#include "common/types.hh"

namespace fracdram::sim
{

/**
 * Ambient conditions under which a module operates.
 */
struct Environment
{
    /** Supply voltage (DDR3 nominal: 1.5 V). */
    Volt vdd = nominalVdd;

    /** Ambient temperature in Celsius. */
    double temperatureC = 20.0;

    /**
     * Leakage acceleration relative to 20 C. DRAM retention roughly
     * halves for every +10 C (Liu et al., ISCA'13).
     */
    double leakageScale() const
    {
        return std::exp2((temperatureC - 20.0) / 10.0);
    }

    /**
     * Thermal-noise scaling of the sense amplifier relative to 20 C.
     * A mild linear increase: the comparator itself is ratiometric
     * (the property the CODIC/Frac PUFs rely on), only its noise floor
     * moves with temperature.
     */
    double noiseScale() const
    {
        const double s = 1.0 + 0.02 * (temperatureC - 20.0);
        return s > 0.25 ? s : 0.25;
    }
};

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_ENVIRONMENT_HH
