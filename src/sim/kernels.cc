/**
 * @file
 * Public kernel entry points: one indirect call through the table
 * resolved for simd::activeIsa(). Resolution happens once behind a
 * function-local static (thread-safe under C++ magic-static rules -
 * the tsan suite exercises first-touch from multiple shard threads);
 * after that each call is a load plus an indirect jump, irrelevant at
 * row-wide granularity.
 */

#include "sim/kernels.hh"

#include "sim/kernels_dispatch.hh"

namespace fracdram::sim::kernels
{

const KernelTable *
kernelTableForIsa(simd::Isa isa)
{
    switch (isa) {
    case simd::Isa::Scalar:
        return &scalarKernelTable();
    case simd::Isa::Avx2:
#if FRACDRAM_HAVE_AVX2
        if (simd::cpuFeatures().avx2)
            return &avx2KernelTable();
#endif
        return nullptr;
    case simd::Isa::Avx512:
#if FRACDRAM_HAVE_AVX512
        if (simd::cpuFeatures().avx512)
            return &avx512KernelTable();
#endif
        return nullptr;
    }
    return nullptr;
}

const KernelTable &
activeKernelTable()
{
    static const KernelTable &table = *kernelTableForIsa(
        simd::activeIsa());
    return table;
}

void
decayMultiply(float *volts, const double *mul, std::size_t n)
{
    activeKernelTable().decayMultiply(volts, mul, n);
}

void
chargeAccumulate(double *num, double *den, const float *volts,
                 const float *coupling, double weight, std::size_t n)
{
    activeKernelTable().chargeAccumulate(num, den, volts, coupling,
                                         weight, n);
}

void
equilibrium(double *eq, const double *num, const double *den,
            std::size_t n)
{
    activeKernelTable().equilibrium(eq, num, den, n);
}

void
senseDecide(std::uint8_t *dec, const double *eq, const float *sa,
            const double *noise, double half, std::size_t n)
{
    activeKernelTable().senseDecide(dec, eq, sa, noise, half, n);
}

void
driveRails(float *volts, const std::uint8_t *dec, float vdd,
           std::size_t n)
{
    activeKernelTable().driveRails(volts, dec, vdd, n);
}

void
settleToward(float *volts, const float *alpha, const double *veq,
             const float *off, std::size_t n)
{
    activeKernelTable().settleToward(volts, alpha, veq, off, n);
}

void
fracSettle(float *volts, const float *alpha, const float *coupling,
           const float *off, const double *noise, double weight,
           double base_num, double base_den, std::size_t n)
{
    activeKernelTable().fracSettle(volts, alpha, coupling, off, noise,
                                   weight, base_num, base_den, n);
}

void
restoreTruncate(float *volts, double half, double r, std::size_t n)
{
    activeKernelTable().restoreTruncate(volts, half, r, n);
}

void
fillFromBits(float *volts, const std::uint64_t *words, bool invert,
             float vdd, std::size_t n)
{
    activeKernelTable().fillFromBits(volts, words, invert, vdd, n);
}

void
packDecisions(std::uint64_t *words, const std::uint8_t *dec,
              bool invert, std::size_t n)
{
    activeKernelTable().packDecisions(words, dec, invert, n);
}

} // namespace fracdram::sim::kernels
