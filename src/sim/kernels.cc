#include "sim/kernels.hh"

namespace fracdram::sim::kernels
{

void
decayMultiply(float *volts, const double *mul, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        volts[i] = static_cast<float>(volts[i] * mul[i]);
}

void
chargeAccumulate(double *num, double *den, const float *volts,
                 const float *coupling, double weight, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double w = weight * coupling[i];
        num[i] += w * volts[i];
        den[i] += w;
    }
}

void
equilibrium(double *eq, const double *num, const double *den,
            std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        eq[i] = num[i] / den[i];
}

void
senseDecide(std::uint8_t *dec, const double *eq, const float *sa,
            const double *noise, double half, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dec[i] = (eq[i] - half) > sa[i] + noise[i] ? 1 : 0;
}

void
driveRails(float *volts, const std::uint8_t *dec, float vdd,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        volts[i] = dec[i] ? vdd : 0.0f;
}

void
settleToward(float *volts, const float *alpha, const double *veq,
             const float *off, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double a = alpha[i];
        const double v = volts[i];
        const double target = veq[i] + off[i];
        volts[i] = static_cast<float>(v + a * (target - v));
    }
}

void
fracSettle(float *volts, const float *alpha, const float *coupling,
           const float *off, const double *noise, double weight,
           double base_num, double base_den, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double w = weight * coupling[i];
        const double num = base_num + w * volts[i];
        const double den = base_den + w;
        const double eq = num / den + noise[i];
        const double a = alpha[i];
        const double v = volts[i];
        const double target = eq + off[i];
        volts[i] = static_cast<float>(v + a * (target - v));
    }
}

void
restoreTruncate(float *volts, double half, double r, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double v = volts[i];
        volts[i] = static_cast<float>(half + (v - half) * r);
    }
}

void
fillFromBits(float *volts, const std::uint64_t *words, bool invert,
             float vdd, std::size_t n)
{
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    for (std::size_t w = 0; w * 64 < n; ++w) {
        const std::uint64_t bits = words[w] ^ flip;
        const std::size_t base = w * 64;
        const std::size_t lim = n - base < 64 ? n - base : 64;
        for (std::size_t b = 0; b < lim; ++b)
            volts[base + b] = (bits >> b) & 1 ? vdd : 0.0f;
    }
}

void
packDecisions(std::uint64_t *words, const std::uint8_t *dec,
              bool invert, std::size_t n)
{
    const std::uint64_t flipBit = invert ? 1 : 0;
    for (std::size_t w = 0; w * 64 < n; ++w) {
        const std::size_t base = w * 64;
        const std::size_t lim = n - base < 64 ? n - base : 64;
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < lim; ++b)
            word |= static_cast<std::uint64_t>(
                        (dec[base + b] ^ flipBit) & 1)
                    << b;
        words[w] = word;
    }
}

} // namespace fracdram::sim::kernels
