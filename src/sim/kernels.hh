/**
 * @file
 * Columnar kernels: the Bank hot paths, restructured as row-wide,
 * branch-light loops over RowStore's SoA float arrays.
 *
 * Every kernel performs *exactly* the arithmetic of the scalar
 * per-cell loop it replaced, in the same per-element operation order,
 * so the results are bit-identical under the default build flags (the
 * golden tests enforce this). The speedup comes from taking the RNG,
 * the hash-map lookups, and all function calls out of the per-cell
 * loop so the compiler can keep the arrays in registers/vector lanes.
 * When adding a kernel, read DESIGN.md ("Columnar kernels") first.
 *
 * All spans/pointers must reference at least @p n elements; kernels
 * never allocate.
 */

#ifndef FRACDRAM_SIM_KERNELS_HH
#define FRACDRAM_SIM_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace fracdram::sim::kernels
{

/**
 * Leakage decay: volts[i] = float(volts[i] * mul[i]).
 *
 * mul[i] caches exp(factor / tau[i]) for one exp factor (Bank keeps a
 * small per-row cache keyed by the factor). Multiplying a zero cell
 * by a positive decay factor preserves both value and sign, so the
 * scalar path's v != 0 skip needs no branch here.
 */
void decayMultiply(float *volts, const double *mul, std::size_t n);

/**
 * Charge-share accumulation for one open row:
 *   w = weight * coupling[i]; num[i] += w * volts[i]; den[i] += w.
 */
void chargeAccumulate(double *num, double *den, const float *volts,
                      const float *coupling, double weight,
                      std::size_t n);

/** Bit-line equilibrium: eq[i] = num[i] / den[i]. */
void equilibrium(double *eq, const double *num, const double *den,
                 std::size_t n);

/**
 * Sense-amp decision: dec[i] = (eq[i] - half) > sa[i] + noise[i].
 */
void senseDecide(std::uint8_t *dec, const double *eq, const float *sa,
                 const double *noise, double half, std::size_t n);

/** Full restore: volts[i] = dec[i] ? vdd : 0. */
void driveRails(float *volts, const std::uint8_t *dec, float vdd,
                std::size_t n);

/**
 * Interrupted-close settling (single-row, sense amp never engaged):
 *   target = veq[i] + off[i];
 *   volts[i] = float(volts[i] + alpha[i] * (target - volts[i])).
 * veq[i] already contains the per-cell noise term.
 */
void settleToward(float *volts, const float *alpha, const double *veq,
                  const float *off, std::size_t n);

/**
 * Fused single-open-row interrupted close (Frac path). Per column,
 * exactly the chargeAccumulate + equilibrium + noise-add +
 * settleToward chain, with the intermediate num/den/eq arrays
 * elided:
 *   w      = weight * coupling[i];
 *   eq     = (base_num + w * volts[i]) / (base_den + w) + noise[i];
 *   target = eq + off[i];
 *   volts[i] = float(volts[i] + alpha[i] * (target - volts[i])).
 * Each column's floating-point expression sequence is unchanged from
 * the unfused kernels, so results stay bit-identical.
 */
void fracSettle(float *volts, const float *alpha, const float *coupling,
                const float *off, const double *noise, double weight,
                double base_num, double base_den, std::size_t n);

/**
 * Restore truncation (tRAS cut short):
 *   volts[i] = float(half + (volts[i] - half) * r).
 */
void restoreTruncate(float *volts, double half, double r,
                     std::size_t n);

/**
 * Drive cells from packed row-buffer bits (WRITE / row-copy latch):
 *   volts[i] = (bit(i) ^ invert) ? vdd : 0.
 * @p words is little-endian bit-packed (BitVector layout).
 */
void fillFromBits(float *volts, const std::uint64_t *words,
                  bool invert, float vdd, std::size_t n);

/**
 * Pack sense decisions into row-buffer words (logic domain):
 *   bit(i) = dec[i] ^ invert.
 * Writes ceil(n / 64) whole words; tail bits are zero.
 */
void packDecisions(std::uint64_t *words, const std::uint8_t *dec,
                   bool invert, std::size_t n);

} // namespace fracdram::sim::kernels

#endif // FRACDRAM_SIM_KERNELS_HH
