/**
 * @file
 * AVX2 tier of the columnar kernels. Compiled with -mavx2 -mbmi2 and
 * -ffp-contract=off; selected at runtime only when cpuid reports
 * AVX2+BMI2 (simd.cc).
 *
 * Bit-exactness: every kernel is element-wise - no cross-lane
 * reductions anywhere in this layer - so vectorizing is purely a
 * matter of running the scalar per-element expression sequence in
 * four (double) or eight (float) lanes at once. Each lane performs
 * the same operations in the same order as the scalar reference
 * (mul/add kept separate: no FMA, matching the baseline build), and
 * tails are delegated to the scalar functions themselves, so the
 * golden digests hold on every tier. See DESIGN.md, "SIMD dispatch".
 */

#include <immintrin.h>

#include <cstring>

#include "sim/kernels_scalar.hh"

namespace fracdram::sim::kernels
{

namespace
{

void
decayMultiplyAvx2(float *volts, const double *mul, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v =
            _mm256_cvtps_pd(_mm_loadu_ps(volts + i));
        const __m256d m = _mm256_loadu_pd(mul + i);
        _mm_storeu_ps(volts + i,
                      _mm256_cvtpd_ps(_mm256_mul_pd(v, m)));
    }
    scalar::decayMultiply(volts + i, mul + i, n - i);
}

void
chargeAccumulateAvx2(double *num, double *den, const float *volts,
                     const float *coupling, double weight,
                     std::size_t n)
{
    const __m256d wt = _mm256_set1_pd(weight);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c =
            _mm256_cvtps_pd(_mm_loadu_ps(coupling + i));
        const __m256d v =
            _mm256_cvtps_pd(_mm_loadu_ps(volts + i));
        const __m256d w = _mm256_mul_pd(wt, c);
        _mm256_storeu_pd(
            num + i, _mm256_add_pd(_mm256_loadu_pd(num + i),
                                   _mm256_mul_pd(w, v)));
        _mm256_storeu_pd(
            den + i, _mm256_add_pd(_mm256_loadu_pd(den + i), w));
    }
    scalar::chargeAccumulate(num + i, den + i, volts + i,
                             coupling + i, weight, n - i);
}

void
equilibriumAvx2(double *eq, const double *num, const double *den,
                std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(eq + i,
                         _mm256_div_pd(_mm256_loadu_pd(num + i),
                                       _mm256_loadu_pd(den + i)));
    scalar::equilibrium(eq + i, num + i, den + i, n - i);
}

void
senseDecideAvx2(std::uint8_t *dec, const double *eq, const float *sa,
                const double *noise, double half, std::size_t n)
{
    const __m256d halfv = _mm256_set1_pd(half);
    std::size_t i = 0;
    // 16 decisions per iteration: four 4-lane compares merged into
    // one 16-bit mask, expanded to 0/1 bytes with pdep.
    for (; i + 16 <= n; i += 16) {
        unsigned mask = 0;
        for (std::size_t g = 0; g < 4; ++g) {
            const std::size_t j = i + 4 * g;
            const __m256d lhs =
                _mm256_sub_pd(_mm256_loadu_pd(eq + j), halfv);
            const __m256d rhs =
                _mm256_add_pd(_mm256_cvtps_pd(_mm_loadu_ps(sa + j)),
                              _mm256_loadu_pd(noise + j));
            const __m256d gt =
                _mm256_cmp_pd(lhs, rhs, _CMP_GT_OQ);
            mask |= static_cast<unsigned>(_mm256_movemask_pd(gt))
                    << (4 * g);
        }
        const std::uint64_t lo =
            _pdep_u64(mask & 0xff, 0x0101010101010101ULL);
        const std::uint64_t hi =
            _pdep_u64(mask >> 8, 0x0101010101010101ULL);
        std::memcpy(dec + i, &lo, 8);
        std::memcpy(dec + i + 8, &hi, 8);
    }
    scalar::senseDecide(dec + i, eq + i, sa + i, noise + i, half,
                        n - i);
}

/** 8 bytes of 0/nonzero decisions -> 8 float lanes of vdd/0. */
inline __m256
railsFromBytes(const std::uint8_t *dec, __m256 vddv)
{
    const __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(dec));
    const __m256i lanes = _mm256_cvtepu8_epi32(bytes);
    const __m256i is_zero =
        _mm256_cmpeq_epi32(lanes, _mm256_setzero_si256());
    return _mm256_andnot_ps(_mm256_castsi256_ps(is_zero), vddv);
}

void
driveRailsAvx2(float *volts, const std::uint8_t *dec, float vdd,
               std::size_t n)
{
    const __m256 vddv = _mm256_set1_ps(vdd);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(volts + i, railsFromBytes(dec + i, vddv));
    scalar::driveRails(volts + i, dec + i, vdd, n - i);
}

void
settleTowardAvx2(float *volts, const float *alpha, const double *veq,
                 const float *off, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d a =
            _mm256_cvtps_pd(_mm_loadu_ps(alpha + i));
        const __m256d v =
            _mm256_cvtps_pd(_mm_loadu_ps(volts + i));
        const __m256d target = _mm256_add_pd(
            _mm256_loadu_pd(veq + i),
            _mm256_cvtps_pd(_mm_loadu_ps(off + i)));
        const __m256d out = _mm256_add_pd(
            v, _mm256_mul_pd(a, _mm256_sub_pd(target, v)));
        _mm_storeu_ps(volts + i, _mm256_cvtpd_ps(out));
    }
    scalar::settleToward(volts + i, alpha + i, veq + i, off + i,
                         n - i);
}

void
fracSettleAvx2(float *volts, const float *alpha, const float *coupling,
               const float *off, const double *noise, double weight,
               double base_num, double base_den, std::size_t n)
{
    const __m256d wt = _mm256_set1_pd(weight);
    const __m256d bnum = _mm256_set1_pd(base_num);
    const __m256d bden = _mm256_set1_pd(base_den);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c =
            _mm256_cvtps_pd(_mm_loadu_ps(coupling + i));
        const __m256d v =
            _mm256_cvtps_pd(_mm_loadu_ps(volts + i));
        const __m256d w = _mm256_mul_pd(wt, c);
        const __m256d num =
            _mm256_add_pd(bnum, _mm256_mul_pd(w, v));
        const __m256d den = _mm256_add_pd(bden, w);
        const __m256d eq = _mm256_add_pd(_mm256_div_pd(num, den),
                                         _mm256_loadu_pd(noise + i));
        const __m256d a =
            _mm256_cvtps_pd(_mm_loadu_ps(alpha + i));
        const __m256d target = _mm256_add_pd(
            eq, _mm256_cvtps_pd(_mm_loadu_ps(off + i)));
        const __m256d out = _mm256_add_pd(
            v, _mm256_mul_pd(a, _mm256_sub_pd(target, v)));
        _mm_storeu_ps(volts + i, _mm256_cvtpd_ps(out));
    }
    scalar::fracSettle(volts + i, alpha + i, coupling + i, off + i,
                       noise + i, weight, base_num, base_den, n - i);
}

void
restoreTruncateAvx2(float *volts, double half, double r,
                    std::size_t n)
{
    const __m256d halfv = _mm256_set1_pd(half);
    const __m256d rv = _mm256_set1_pd(r);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v =
            _mm256_cvtps_pd(_mm_loadu_ps(volts + i));
        const __m256d out = _mm256_add_pd(
            halfv,
            _mm256_mul_pd(_mm256_sub_pd(v, halfv), rv));
        _mm_storeu_ps(volts + i, _mm256_cvtpd_ps(out));
    }
    scalar::restoreTruncate(volts + i, half, r, n - i);
}

void
fillFromBitsAvx2(float *volts, const std::uint64_t *words,
                 bool invert, float vdd, std::size_t n)
{
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    const __m256 vddv = _mm256_set1_ps(vdd);
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint64_t bits = words[w] ^ flip;
        float *out = volts + w * 64;
        for (std::size_t g = 0; g < 8; ++g) {
            // 8 bits -> 8 one-byte lanes -> 8 float rails.
            const std::uint64_t bytes = _pdep_u64(
                (bits >> (8 * g)) & 0xff, 0x0101010101010101ULL);
            const __m128i b = _mm_cvtsi64_si128(
                static_cast<long long>(bytes));
            const __m256i lanes = _mm256_cvtepu8_epi32(b);
            const __m256i is_zero = _mm256_cmpeq_epi32(
                lanes, _mm256_setzero_si256());
            _mm256_storeu_ps(
                out + 8 * g,
                _mm256_andnot_ps(_mm256_castsi256_ps(is_zero),
                                 vddv));
        }
    }
    const std::size_t done = full * 64;
    scalar::fillFromBits(volts + done, words + full, invert, vdd,
                         n - done);
}

void
packDecisionsAvx2(std::uint64_t *words, const std::uint8_t *dec,
                  bool invert, std::size_t n)
{
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint8_t *in = dec + w * 64;
        // Bit 0 of every byte -> bit 7 (slli within 16-bit lanes),
        // then movemask collects 32 decisions per vector.
        const __m256i lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in));
        const __m256i hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + 32));
        const std::uint64_t mlo = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi16(lo, 7)));
        const std::uint64_t mhi = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi16(hi, 7)));
        words[w] = (mlo | (mhi << 32)) ^ flip;
    }
    const std::size_t done = full * 64;
    scalar::packDecisions(words + full, dec + done, invert, n - done);
}

} // namespace

const KernelTable &
avx2KernelTable()
{
    static const KernelTable table = {
        decayMultiplyAvx2,   chargeAccumulateAvx2,
        equilibriumAvx2,     senseDecideAvx2,
        driveRailsAvx2,      settleTowardAvx2,
        fracSettleAvx2,      restoreTruncateAvx2,
        fillFromBitsAvx2,    packDecisionsAvx2,
    };
    return table;
}

} // namespace fracdram::sim::kernels
