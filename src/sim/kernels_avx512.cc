/**
 * @file
 * AVX-512 tier of the columnar kernels: 8-wide doubles plus the mask
 * registers (cmp_pd_mask, maskz_mov, test_epi8_mask) for the
 * decision<->bit conversions. Compiled with
 * -mavx512f/bw/dq/vl -mbmi2 -ffp-contract=off; selected only when
 * cpuid + XCR0 report full AVX-512 support (simd.cc).
 *
 * Same bit-exactness contract as kernels_avx2.cc: per-lane operations
 * in the scalar expression order, no FMA, tails delegated to the
 * scalar tier.
 */

#include <immintrin.h>

#include "sim/kernels_scalar.hh"

namespace fracdram::sim::kernels
{

namespace
{

void
decayMultiplyAvx512(float *volts, const double *mul, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d v =
            _mm512_cvtps_pd(_mm256_loadu_ps(volts + i));
        const __m512d m = _mm512_loadu_pd(mul + i);
        _mm256_storeu_ps(volts + i,
                         _mm512_cvtpd_ps(_mm512_mul_pd(v, m)));
    }
    scalar::decayMultiply(volts + i, mul + i, n - i);
}

void
chargeAccumulateAvx512(double *num, double *den, const float *volts,
                       const float *coupling, double weight,
                       std::size_t n)
{
    const __m512d wt = _mm512_set1_pd(weight);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d c =
            _mm512_cvtps_pd(_mm256_loadu_ps(coupling + i));
        const __m512d v =
            _mm512_cvtps_pd(_mm256_loadu_ps(volts + i));
        const __m512d w = _mm512_mul_pd(wt, c);
        _mm512_storeu_pd(
            num + i, _mm512_add_pd(_mm512_loadu_pd(num + i),
                                   _mm512_mul_pd(w, v)));
        _mm512_storeu_pd(
            den + i, _mm512_add_pd(_mm512_loadu_pd(den + i), w));
    }
    scalar::chargeAccumulate(num + i, den + i, volts + i,
                             coupling + i, weight, n - i);
}

void
equilibriumAvx512(double *eq, const double *num, const double *den,
                  std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(eq + i,
                         _mm512_div_pd(_mm512_loadu_pd(num + i),
                                       _mm512_loadu_pd(den + i)));
    scalar::equilibrium(eq + i, num + i, den + i, n - i);
}

void
senseDecideAvx512(std::uint8_t *dec, const double *eq,
                  const float *sa, const double *noise, double half,
                  std::size_t n)
{
    const __m512d halfv = _mm512_set1_pd(half);
    const __m128i ones = _mm_set1_epi8(1);
    std::size_t i = 0;
    // 16 decisions per iteration: two 8-lane compare masks widened
    // straight to 0/1 bytes with a zero-masked move.
    for (; i + 16 <= n; i += 16) {
        __mmask16 mask = 0;
        for (std::size_t g = 0; g < 2; ++g) {
            const std::size_t j = i + 8 * g;
            const __m512d lhs =
                _mm512_sub_pd(_mm512_loadu_pd(eq + j), halfv);
            const __m512d rhs = _mm512_add_pd(
                _mm512_cvtps_pd(_mm256_loadu_ps(sa + j)),
                _mm512_loadu_pd(noise + j));
            mask |= static_cast<__mmask16>(
                        _mm512_cmp_pd_mask(lhs, rhs, _CMP_GT_OQ))
                    << (8 * g);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dec + i),
                         _mm_maskz_mov_epi8(mask, ones));
    }
    scalar::senseDecide(dec + i, eq + i, sa + i, noise + i, half,
                        n - i);
}

void
driveRailsAvx512(float *volts, const std::uint8_t *dec, float vdd,
                 std::size_t n)
{
    const __m512 vddv = _mm512_set1_ps(vdd);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i bytes = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dec + i));
        // Nonzero decision byte -> lane mask -> vdd/0 rails.
        const __mmask16 nz = _mm_test_epi8_mask(bytes, bytes);
        _mm512_storeu_ps(volts + i, _mm512_maskz_mov_ps(nz, vddv));
    }
    scalar::driveRails(volts + i, dec + i, vdd, n - i);
}

void
settleTowardAvx512(float *volts, const float *alpha,
                   const double *veq, const float *off, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d a =
            _mm512_cvtps_pd(_mm256_loadu_ps(alpha + i));
        const __m512d v =
            _mm512_cvtps_pd(_mm256_loadu_ps(volts + i));
        const __m512d target = _mm512_add_pd(
            _mm512_loadu_pd(veq + i),
            _mm512_cvtps_pd(_mm256_loadu_ps(off + i)));
        const __m512d out = _mm512_add_pd(
            v, _mm512_mul_pd(a, _mm512_sub_pd(target, v)));
        _mm256_storeu_ps(volts + i, _mm512_cvtpd_ps(out));
    }
    scalar::settleToward(volts + i, alpha + i, veq + i, off + i,
                         n - i);
}

void
fracSettleAvx512(float *volts, const float *alpha,
                 const float *coupling, const float *off,
                 const double *noise, double weight, double base_num,
                 double base_den, std::size_t n)
{
    const __m512d wt = _mm512_set1_pd(weight);
    const __m512d bnum = _mm512_set1_pd(base_num);
    const __m512d bden = _mm512_set1_pd(base_den);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d c =
            _mm512_cvtps_pd(_mm256_loadu_ps(coupling + i));
        const __m512d v =
            _mm512_cvtps_pd(_mm256_loadu_ps(volts + i));
        const __m512d w = _mm512_mul_pd(wt, c);
        const __m512d num =
            _mm512_add_pd(bnum, _mm512_mul_pd(w, v));
        const __m512d den = _mm512_add_pd(bden, w);
        const __m512d eq =
            _mm512_add_pd(_mm512_div_pd(num, den),
                          _mm512_loadu_pd(noise + i));
        const __m512d a =
            _mm512_cvtps_pd(_mm256_loadu_ps(alpha + i));
        const __m512d target = _mm512_add_pd(
            eq, _mm512_cvtps_pd(_mm256_loadu_ps(off + i)));
        const __m512d out = _mm512_add_pd(
            v, _mm512_mul_pd(a, _mm512_sub_pd(target, v)));
        _mm256_storeu_ps(volts + i, _mm512_cvtpd_ps(out));
    }
    scalar::fracSettle(volts + i, alpha + i, coupling + i, off + i,
                       noise + i, weight, base_num, base_den, n - i);
}

void
restoreTruncateAvx512(float *volts, double half, double r,
                      std::size_t n)
{
    const __m512d halfv = _mm512_set1_pd(half);
    const __m512d rv = _mm512_set1_pd(r);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d v =
            _mm512_cvtps_pd(_mm256_loadu_ps(volts + i));
        const __m512d out = _mm512_add_pd(
            halfv, _mm512_mul_pd(_mm512_sub_pd(v, halfv), rv));
        _mm256_storeu_ps(volts + i, _mm512_cvtpd_ps(out));
    }
    scalar::restoreTruncate(volts + i, half, r, n - i);
}

void
fillFromBitsAvx512(float *volts, const std::uint64_t *words,
                   bool invert, float vdd, std::size_t n)
{
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    const __m512 vddv = _mm512_set1_ps(vdd);
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint64_t bits = words[w] ^ flip;
        float *out = volts + w * 64;
        // 16 bits feed one zero-masked vdd store; 4 stores per word.
        for (std::size_t g = 0; g < 4; ++g) {
            const __mmask16 mask =
                static_cast<__mmask16>(bits >> (16 * g));
            _mm512_storeu_ps(out + 16 * g,
                             _mm512_maskz_mov_ps(mask, vddv));
        }
    }
    const std::size_t done = full * 64;
    scalar::fillFromBits(volts + done, words + full, invert, vdd,
                         n - done);
}

void
packDecisionsAvx512(std::uint64_t *words, const std::uint8_t *dec,
                    bool invert, std::size_t n)
{
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    const __m512i ones = _mm512_set1_epi8(1);
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        // Bit 0 of all 64 decision bytes in one test-under-mask.
        const __m512i v = _mm512_loadu_si512(dec + w * 64);
        words[w] = static_cast<std::uint64_t>(
                       _mm512_test_epi8_mask(v, ones)) ^
                   flip;
    }
    const std::size_t done = full * 64;
    scalar::packDecisions(words + full, dec + done, invert, n - done);
}

} // namespace

const KernelTable &
avx512KernelTable()
{
    static const KernelTable table = {
        decayMultiplyAvx512,   chargeAccumulateAvx512,
        equilibriumAvx512,     senseDecideAvx512,
        driveRailsAvx512,      settleTowardAvx512,
        fracSettleAvx512,      restoreTruncateAvx512,
        fillFromBitsAvx512,    packDecisionsAvx512,
    };
    return table;
}

} // namespace fracdram::sim::kernels
