/**
 * @file
 * Per-kernel function-pointer table behind sim/kernels.hh.
 *
 * Each compiled tier (kernels_scalar.cc, kernels_avx2.cc,
 * kernels_avx512.cc) exposes one immutable KernelTable; kernels.cc
 * resolves the active table once (simd::activeIsa()) and forwards
 * every public kernel through it. The vector TUs implement only the
 * full-width main loops and delegate their tails to the scalar table,
 * so each element is computed by exactly one expression sequence no
 * matter which tier runs.
 *
 * This header is internal to sim/ and the ISA-equivalence tests;
 * everything else calls the plain functions in kernels.hh.
 */

#ifndef FRACDRAM_SIM_KERNELS_DISPATCH_HH
#define FRACDRAM_SIM_KERNELS_DISPATCH_HH

#include <cstddef>
#include <cstdint>

#include "common/simd/simd.hh"

namespace fracdram::sim::kernels
{

/** One tier's implementation of every columnar kernel. */
struct KernelTable
{
    void (*decayMultiply)(float *volts, const double *mul,
                          std::size_t n);
    void (*chargeAccumulate)(double *num, double *den,
                             const float *volts, const float *coupling,
                             double weight, std::size_t n);
    void (*equilibrium)(double *eq, const double *num,
                        const double *den, std::size_t n);
    void (*senseDecide)(std::uint8_t *dec, const double *eq,
                        const float *sa, const double *noise,
                        double half, std::size_t n);
    void (*driveRails)(float *volts, const std::uint8_t *dec,
                       float vdd, std::size_t n);
    void (*settleToward)(float *volts, const float *alpha,
                         const double *veq, const float *off,
                         std::size_t n);
    void (*fracSettle)(float *volts, const float *alpha,
                       const float *coupling, const float *off,
                       const double *noise, double weight,
                       double base_num, double base_den,
                       std::size_t n);
    void (*restoreTruncate)(float *volts, double half, double r,
                            std::size_t n);
    void (*fillFromBits)(float *volts, const std::uint64_t *words,
                         bool invert, float vdd, std::size_t n);
    void (*packDecisions)(std::uint64_t *words,
                          const std::uint8_t *dec, bool invert,
                          std::size_t n);
};

/** The scalar reference tier (always compiled). */
const KernelTable &scalarKernelTable();

#if FRACDRAM_HAVE_AVX2
/** AVX2 tier (kernels_avx2.cc; present when the build compiled it). */
const KernelTable &avx2KernelTable();
#endif
#if FRACDRAM_HAVE_AVX512
/** AVX-512 tier (kernels_avx512.cc). */
const KernelTable &avx512KernelTable();
#endif

/**
 * Table for a specific tier; nullptr when that tier was not compiled
 * into this binary or this machine cannot execute it. Used by the
 * ISA-equivalence property tests to compare every runnable tier
 * against the scalar reference in one process.
 */
const KernelTable *kernelTableForIsa(simd::Isa isa);

/** The table the public kernels.hh entry points dispatch to. */
const KernelTable &activeKernelTable();

} // namespace fracdram::sim::kernels

#endif // FRACDRAM_SIM_KERNELS_DISPATCH_HH
