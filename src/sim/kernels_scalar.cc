/**
 * @file
 * Scalar reference tier of the columnar kernels. This is the
 * bit-exactness anchor: every vector tier must reproduce these loops
 * element for element (the vector TUs call these very functions for
 * their tail elements). Compiled for the baseline target only - no
 * -mavx2 here - so the fallback stays runnable on any x86-64 machine.
 */

#include "sim/kernels_scalar.hh"

namespace fracdram::sim::kernels::scalar
{

void
decayMultiply(float *volts, const double *mul, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        volts[i] = static_cast<float>(volts[i] * mul[i]);
}

void
chargeAccumulate(double *num, double *den, const float *volts,
                 const float *coupling, double weight, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double w = weight * coupling[i];
        num[i] += w * volts[i];
        den[i] += w;
    }
}

void
equilibrium(double *eq, const double *num, const double *den,
            std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        eq[i] = num[i] / den[i];
}

void
senseDecide(std::uint8_t *dec, const double *eq, const float *sa,
            const double *noise, double half, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dec[i] = (eq[i] - half) > sa[i] + noise[i] ? 1 : 0;
}

void
driveRails(float *volts, const std::uint8_t *dec, float vdd,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        volts[i] = dec[i] ? vdd : 0.0f;
}

void
settleToward(float *volts, const float *alpha, const double *veq,
             const float *off, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double a = alpha[i];
        const double v = volts[i];
        const double target = veq[i] + off[i];
        volts[i] = static_cast<float>(v + a * (target - v));
    }
}

void
fracSettle(float *volts, const float *alpha, const float *coupling,
           const float *off, const double *noise, double weight,
           double base_num, double base_den, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double w = weight * coupling[i];
        const double num = base_num + w * volts[i];
        const double den = base_den + w;
        const double eq = num / den + noise[i];
        const double a = alpha[i];
        const double v = volts[i];
        const double target = eq + off[i];
        volts[i] = static_cast<float>(v + a * (target - v));
    }
}

void
restoreTruncate(float *volts, double half, double r, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double v = volts[i];
        volts[i] = static_cast<float>(half + (v - half) * r);
    }
}

void
fillFromBits(float *volts, const std::uint64_t *words, bool invert,
             float vdd, std::size_t n)
{
    // Full words run branch-free; the per-word bound check the old
    // loop paid on every word is now a single partial-word epilogue.
    const std::uint64_t flip = invert ? ~std::uint64_t{0} : 0;
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint64_t bits = words[w] ^ flip;
        float *out = volts + w * 64;
        for (std::size_t b = 0; b < 64; ++b)
            out[b] = (bits >> b) & 1 ? vdd : 0.0f;
    }
    const std::size_t rest = n - full * 64;
    if (rest > 0) {
        const std::uint64_t bits = words[full] ^ flip;
        float *out = volts + full * 64;
        for (std::size_t b = 0; b < rest; ++b)
            out[b] = (bits >> b) & 1 ? vdd : 0.0f;
    }
}

void
packDecisions(std::uint64_t *words, const std::uint8_t *dec,
              bool invert, std::size_t n)
{
    const std::uint64_t flipBit = invert ? 1 : 0;
    const std::size_t full = n / 64;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint8_t *in = dec + w * 64;
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < 64; ++b)
            word |= static_cast<std::uint64_t>((in[b] ^ flipBit) & 1)
                    << b;
        words[w] = word;
    }
    const std::size_t rest = n - full * 64;
    if (rest > 0) {
        const std::uint8_t *in = dec + full * 64;
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < rest; ++b)
            word |= static_cast<std::uint64_t>((in[b] ^ flipBit) & 1)
                    << b;
        words[full] = word;
    }
}

} // namespace fracdram::sim::kernels::scalar

namespace fracdram::sim::kernels
{

const KernelTable &
scalarKernelTable()
{
    static const KernelTable table = {
        scalar::decayMultiply,   scalar::chargeAccumulate,
        scalar::equilibrium,     scalar::senseDecide,
        scalar::driveRails,      scalar::settleToward,
        scalar::fracSettle,      scalar::restoreTruncate,
        scalar::fillFromBits,    scalar::packDecisions,
    };
    return table;
}

} // namespace fracdram::sim::kernels
