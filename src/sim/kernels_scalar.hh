/**
 * @file
 * The scalar kernel implementations, callable directly by the vector
 * tiers for their tail elements (and by the equivalence tests as the
 * reference). Signatures mirror kernels.hh exactly.
 */

#ifndef FRACDRAM_SIM_KERNELS_SCALAR_HH
#define FRACDRAM_SIM_KERNELS_SCALAR_HH

#include "sim/kernels_dispatch.hh"

namespace fracdram::sim::kernels::scalar
{

void decayMultiply(float *volts, const double *mul, std::size_t n);
void chargeAccumulate(double *num, double *den, const float *volts,
                      const float *coupling, double weight,
                      std::size_t n);
void equilibrium(double *eq, const double *num, const double *den,
                 std::size_t n);
void senseDecide(std::uint8_t *dec, const double *eq, const float *sa,
                 const double *noise, double half, std::size_t n);
void driveRails(float *volts, const std::uint8_t *dec, float vdd,
                std::size_t n);
void settleToward(float *volts, const float *alpha, const double *veq,
                  const float *off, std::size_t n);
void fracSettle(float *volts, const float *alpha,
                const float *coupling, const float *off,
                const double *noise, double weight, double base_num,
                double base_den, std::size_t n);
void restoreTruncate(float *volts, double half, double r,
                     std::size_t n);
void fillFromBits(float *volts, const std::uint64_t *words,
                  bool invert, float vdd, std::size_t n);
void packDecisions(std::uint64_t *words, const std::uint8_t *dec,
                   bool invert, std::size_t n);

} // namespace fracdram::sim::kernels::scalar

#endif // FRACDRAM_SIM_KERNELS_SCALAR_HH
