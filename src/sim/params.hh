/**
 * @file
 * Geometry and physics parameters of the behavioural DRAM model.
 *
 * The simulator replaces the paper's real DDR3 chips (the hardware the
 * reproduction cannot access). All analog behaviour is derived from the
 * quantities below; per-vendor-group overrides live in VendorProfile
 * (vendor.hh).
 */

#ifndef FRACDRAM_SIM_PARAMS_HH
#define FRACDRAM_SIM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace fracdram::sim
{

/**
 * Module geometry and shared physics constants.
 *
 * A "chip" in this simulator corresponds to one DRAM *module* of the
 * paper (the unit SoftMC drives); a row therefore spans the full module
 * width (8 KB = 65536 bits on the paper's platform; configurable here
 * so experiments can trade width for runtime).
 */
struct DramParams
{
    /** Banks per module (DDR3: 8). */
    std::uint32_t numBanks = 8;

    /** Sub-arrays per bank. */
    std::uint32_t subarraysPerBank = 2;

    /** Rows per sub-array. */
    std::uint32_t rowsPerSubarray = 64;

    /** Bits per row (module width x columns). Paper: 65536 (8 KB). */
    std::uint32_t colsPerRow = 1024;

    /**
     * Bit-line to cell capacitance ratio C_b / C_c. Sets the charge
     * injected per opened row and the per-Frac attenuation toward
     * V_dd/2. Typical DRAM: 5-8.
     */
    double bitlineCapRatio = 6.0;

    /**
     * Cycles after ACTIVATE at which the sense amplifier is enabled.
     * A PRECHARGE arriving strictly earlier interrupts the activation
     * (the Frac mechanism).
     */
    Cycles saEnableCycles = 3;

    /**
     * Cycles after an interrupting PRECHARGE during which a second
     * ACTIVATE aborts the close and triggers the row-decoder glitch
     * (multi-row activation).
     */
    Cycles glitchAbortCycles = 2;

    /** Cycles for a PRECHARGE to complete (tRP at 400 MHz). */
    Cycles prechargeCycles = 5;

    /**
     * Cycles after ACTIVATE at which the restore of the cells is
     * complete (the tRAS floor). Closing a row earlier leaves its
     * cells *partially* restored - the charge-level tradeoff the
     * restore-truncation line of work exploits (paper refs [17,18]).
     */
    Cycles fullRestoreCycles = 14;

    /** Total rows per bank. */
    std::uint32_t rowsPerBank() const
    {
        return subarraysPerBank * rowsPerSubarray;
    }

    /** Total number of cells in the module. */
    std::uint64_t totalCells() const
    {
        return std::uint64_t{numBanks} * rowsPerBank() * colsPerRow;
    }

    /**
     * Geometry of a DDR4 module (16 banks in 4 bank groups). The
     * sub-array analog model is unchanged; QUAC-TRNG showed the
     * four-row activation carries over.
     */
    static DramParams ddr4()
    {
        DramParams p;
        p.numBanks = 16;
        p.rowsPerSubarray = 64;
        p.subarraysPerBank = 2;
        p.colsPerRow = 1024;
        return p;
    }
};

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_PARAMS_HH
