#include "sim/row_decoder.hh"

#include <bit>

#include "common/logging.hh"

namespace fracdram::sim
{

std::vector<OpenedRow>
glitchOpenedRows(const VendorProfile &profile, RowAddr r1, RowAddr r2,
                 std::uint32_t rows_per_subarray)
{
    const std::vector<OpenedRow> no_glitch = {
        {r2, RowRole::FirstAct},
    };

    if (r1 == r2)
        return no_glitch;
    if (!profile.supportsThreeRow && !profile.supportsFourRow)
        return no_glitch;

    // The glitch is sub-array local.
    if (r1 / rows_per_subarray != r2 / rows_per_subarray)
        return no_glitch;

    const std::uint32_t diff = r1 ^ r2;
    const int k = std::popcount(diff);

    // Only pairs whose differing bits all fall inside the decoder's
    // glitch window open extra rows ("not all combinations of R1 and
    // R2 that have k different bits can open 2^k rows").
    const std::uint32_t local1 = r1 % rows_per_subarray;
    const std::uint32_t local2 = r2 % rows_per_subarray;
    const std::uint32_t local_diff = local1 ^ local2;
    const std::uint32_t window =
        (std::uint32_t{1} << profile.glitchWindowBits) - 1;
    if ((local_diff & ~window) != 0)
        return no_glitch;

    const RowAddr base = r1 & ~diff; // differing bits cleared

    if (k == 1) {
        // Two rows open; R1 stays open alongside R2.
        return {
            {r1, RowRole::FirstAct},
            {r2, RowRole::SecondAct},
        };
    }

    if (profile.dropsOrRowForAdjacentPairs && k == 2 &&
        (local_diff & 0x3) == local_diff) {
        // Group B, adjacent pair (differing bits 0 and 1): the OR-term
        // row fails to open -> three-row activation, e.g.
        // ACT(1)-PRE-ACT(2) opens rows {0, 1, 2}. When the AND term
        // coincides with one of the explicit rows (e.g. ACT(4)-PRE-
        // ACT(7)) only the two explicit rows open.
        std::vector<OpenedRow> out = {
            {r1, RowRole::FirstAct},
            {r2, RowRole::SecondAct},
        };
        if (base != r1 && base != r2)
            out.push_back({base, RowRole::ImplicitAnd});
        return out;
    }

    if (!profile.supportsFourRow)
        return no_glitch;

    // Enumerate all 2^k combinations of the differing bits.
    std::vector<OpenedRow> out;
    out.reserve(std::size_t{1} << k);
    // Iterate over subsets of 'diff' (standard subset-walk trick, also
    // visiting the empty subset).
    std::uint32_t sub = 0;
    do {
        const RowAddr row = base | sub;
        RowRole role;
        if (row == r1)
            role = RowRole::FirstAct;
        else if (row == r2)
            role = RowRole::SecondAct;
        else if (row == base)
            role = RowRole::ImplicitAnd;
        else
            role = RowRole::ImplicitOther;
        out.push_back({row, role});
        sub = (sub - diff) & diff;
    } while (sub != 0);

    return out;
}

} // namespace fracdram::sim
