/**
 * @file
 * Row-decoder glitch model for multi-row activation.
 *
 * ComputeDRAM (and QUAC-TRNG) observed that ACTIVATE(R1)-PRECHARGE-
 * ACTIVATE(R2) issued back-to-back leaves R1 open and implicitly opens
 * additional rows. FracDRAM Sec. VI-A1 characterizes the behaviour:
 * only 2^k rows can open where k = popcount(R1 ^ R2), the opened rows
 * enumerate all combinations of the differing address bits, and not
 * every k-bit-different pair works. Group B's decoder additionally
 * drops the OR-term row for adjacent pairs, producing the three-row
 * activation that ComputeDRAM's MAJ3 uses.
 */

#ifndef FRACDRAM_SIM_ROW_DECODER_HH
#define FRACDRAM_SIM_ROW_DECODER_HH

#include <vector>

#include "common/types.hh"
#include "sim/vendor.hh"

namespace fracdram::sim
{

/** One row opened by an activation, together with its charge role. */
struct OpenedRow
{
    RowAddr row;
    RowRole role;

    bool operator==(const OpenedRow &o) const
    {
        return row == o.row && role == o.role;
    }
};

/**
 * Compute the set of rows opened by the back-to-back sequence
 * ACT(r1)-PRE-ACT(r2) on a module with the given profile.
 *
 * Both addresses must be inside the same sub-array for the glitch to
 * fire (the paper only reports sub-array-local multi-row activation).
 * When the glitch does not fire the result is just {r2} - the second
 * activation proceeds alone.
 *
 * @param profile vendor group behaviour flags
 * @param r1 first (interrupted) row address
 * @param r2 second row address
 * @param rows_per_subarray sub-array size for the same-subarray check
 * @return opened rows with roles; never empty
 */
std::vector<OpenedRow> glitchOpenedRows(const VendorProfile &profile,
                                        RowAddr r1, RowAddr r2,
                                        std::uint32_t rows_per_subarray);

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_ROW_DECODER_HH
