#include "sim/variation.hh"

#include <cmath>

namespace fracdram::sim
{

namespace
{

// Purpose tags keep the derived streams independent of each other.
enum Purpose : std::uint64_t
{
    kAlpha = 1,
    kSlow,
    kTau,
    kVrt,
    kLeaky,
    kCoupling,
    kFracOffset,
    kSaOffset,
    kHalfClean,
    kStartup,
};

} // namespace

VariationMap::VariationMap(const VendorProfile &profile,
                           std::uint64_t serial)
    : profile_(profile), serial_(serial),
      rootSeed_(mixSeed(0xf4acd4a3ULL,
                        mixSeed(static_cast<std::uint64_t>(profile.group),
                                serial)))
{
}

Rng
VariationMap::cellStream(std::uint64_t purpose, BankAddr bank,
                         RowAddr row, ColAddr col) const
{
    std::uint64_t s = mixSeed(rootSeed_, purpose);
    s = mixSeed(s, bank);
    s = mixSeed(s, row);
    s = mixSeed(s, col);
    return Rng(s);
}

Rng
VariationMap::colStream(std::uint64_t purpose, BankAddr bank,
                        ColAddr col) const
{
    std::uint64_t s = mixSeed(rootSeed_, purpose);
    s = mixSeed(s, bank);
    s = mixSeed(s, col);
    return Rng(s);
}

bool
VariationMap::cellIsSlow(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kSlow, bank, row, col);
    return r.chance(profile_.slowCellFraction);
}

double
VariationMap::cellAlpha(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kAlpha, bank, row, col);
    if (cellIsSlow(bank, row, col)) {
        // Slow access transistor: hardly connects within one cycle.
        return profile_.slowCellAlpha * (0.5 + r.uniform());
    }
    return r.beta(profile_.settleAlphaA, profile_.settleAlphaB);
}

Seconds
VariationMap::cellTau(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kTau, bank, row, col);
    const double median_s = profile_.tauMedianHours * 3600.0;
    double tau = median_s * std::exp(profile_.tauSigma * r.gaussian());
    if (cellIsSlow(bank, row, col))
        tau *= profile_.slowCellTauBoost;
    if (cellIsLeaky(bank, row, col))
        tau *= profile_.leakyTauScale;
    return tau;
}

bool
VariationMap::cellIsLeaky(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kLeaky, bank, row, col);
    return r.chance(profile_.leakyCellFraction);
}

bool
VariationMap::cellIsVrt(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kVrt, bank, row, col);
    return r.chance(profile_.vrtFraction);
}

double
VariationMap::cellCoupling(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kCoupling, bank, row, col);
    return r.lognormal(0.0, profile_.couplingSigma);
}

Volt
VariationMap::cellFracOffset(BankAddr bank, RowAddr row,
                             ColAddr col) const
{
    Rng r = cellStream(kFracOffset, bank, row, col);
    return r.gaussian(0.0, profile_.cellFracOffsetSigma);
}

Volt
VariationMap::saOffset(BankAddr bank, ColAddr col) const
{
    Rng r = colStream(kSaOffset, bank, col);
    return r.gaussian(profile_.saOffsetMean, profile_.saOffsetSigma);
}

bool
VariationMap::halfMClean(BankAddr bank, ColAddr col) const
{
    Rng r = colStream(kHalfClean, bank, col);
    return r.chance(profile_.halfMCleanFraction);
}

bool
VariationMap::startupBit(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kStartup, bank, row, col);
    return r.chance(0.5);
}

void
VariationMap::materializeRow(BankAddr bank, RowAddr row,
                             std::size_t cols, std::uint8_t *startup,
                             double *alpha, double *tau,
                             double *coupling, double *frac_off,
                             std::uint8_t *vrt) const
{
    // Row-invariant prefixes of the per-cell seed chains; appending
    // the column below reproduces cellStream() bit for bit.
    const auto prefix = [&](std::uint64_t purpose) {
        return mixSeed(mixSeed(mixSeed(rootSeed_, purpose), bank),
                       row);
    };
    const std::uint64_t p_startup = prefix(kStartup);
    const std::uint64_t p_slow = prefix(kSlow);
    const std::uint64_t p_alpha = prefix(kAlpha);
    const std::uint64_t p_tau = prefix(kTau);
    const std::uint64_t p_leaky = prefix(kLeaky);
    const std::uint64_t p_vrt = prefix(kVrt);
    const std::uint64_t p_coupling = prefix(kCoupling);
    const std::uint64_t p_frac = prefix(kFracOffset);

    const double median_s = profile_.tauMedianHours * 3600.0;

    for (std::size_t c = 0; c < cols; ++c) {
        // One column tag hash shared by all eight seed chains. The
        // one-draw Bernoulli streams go through Rng::firstChance,
        // which produces the identical draw without the full
        // four-lane seeding.
        const std::uint64_t ct = mixTag(c);
        if (startup)
            startup[c] = Rng::firstChance(
                             mixSeedWithTag(p_startup, ct), 0.5)
                             ? 1
                             : 0;
        const bool slow = Rng::firstChance(mixSeedWithTag(p_slow, ct),
                                           profile_.slowCellFraction);
        {
            Rng r(mixSeedWithTag(p_alpha, ct));
            alpha[c] = slow ? profile_.slowCellAlpha *
                                  (0.5 + r.uniform())
                            : r.beta(profile_.settleAlphaA,
                                     profile_.settleAlphaB);
        }
        const bool leaky =
            Rng::firstChance(mixSeedWithTag(p_leaky, ct),
                             profile_.leakyCellFraction);
        {
            Rng r(mixSeedWithTag(p_tau, ct));
            double t = median_s *
                       std::exp(profile_.tauSigma *
                                r.gaussianNoSpare());
            if (slow)
                t *= profile_.slowCellTauBoost;
            if (leaky)
                t *= profile_.leakyTauScale;
            tau[c] = t;
        }
        {
            // lognormal(0, sigma) = exp(0 + sigma * N(0, 1)).
            Rng r(mixSeedWithTag(p_coupling, ct));
            coupling[c] = std::exp(
                0.0 + profile_.couplingSigma * r.gaussianNoSpare());
        }
        {
            Rng r(mixSeedWithTag(p_frac, ct));
            frac_off[c] = 0.0 + profile_.cellFracOffsetSigma *
                                    r.gaussianNoSpare();
        }
        vrt[c] = Rng::firstChance(mixSeedWithTag(p_vrt, ct),
                                  profile_.vrtFraction)
                     ? 1
                     : 0;
    }
}

} // namespace fracdram::sim
