#include "sim/variation.hh"

#include <cmath>

namespace fracdram::sim
{

namespace
{

// Purpose tags keep the derived streams independent of each other.
enum Purpose : std::uint64_t
{
    kAlpha = 1,
    kSlow,
    kTau,
    kVrt,
    kLeaky,
    kCoupling,
    kFracOffset,
    kSaOffset,
    kHalfClean,
    kStartup,
};

} // namespace

VariationMap::VariationMap(const VendorProfile &profile,
                           std::uint64_t serial)
    : profile_(profile), serial_(serial),
      rootSeed_(mixSeed(0xf4acd4a3ULL,
                        mixSeed(static_cast<std::uint64_t>(profile.group),
                                serial)))
{
}

Rng
VariationMap::cellStream(std::uint64_t purpose, BankAddr bank,
                         RowAddr row, ColAddr col) const
{
    std::uint64_t s = mixSeed(rootSeed_, purpose);
    s = mixSeed(s, bank);
    s = mixSeed(s, row);
    s = mixSeed(s, col);
    return Rng(s);
}

Rng
VariationMap::colStream(std::uint64_t purpose, BankAddr bank,
                        ColAddr col) const
{
    std::uint64_t s = mixSeed(rootSeed_, purpose);
    s = mixSeed(s, bank);
    s = mixSeed(s, col);
    return Rng(s);
}

bool
VariationMap::cellIsSlow(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kSlow, bank, row, col);
    return r.chance(profile_.slowCellFraction);
}

double
VariationMap::cellAlpha(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kAlpha, bank, row, col);
    if (cellIsSlow(bank, row, col)) {
        // Slow access transistor: hardly connects within one cycle.
        return profile_.slowCellAlpha * (0.5 + r.uniform());
    }
    return r.beta(profile_.settleAlphaA, profile_.settleAlphaB);
}

Seconds
VariationMap::cellTau(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kTau, bank, row, col);
    const double median_s = profile_.tauMedianHours * 3600.0;
    double tau = median_s * std::exp(profile_.tauSigma * r.gaussian());
    if (cellIsSlow(bank, row, col))
        tau *= profile_.slowCellTauBoost;
    if (cellIsLeaky(bank, row, col))
        tau *= profile_.leakyTauScale;
    return tau;
}

bool
VariationMap::cellIsLeaky(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kLeaky, bank, row, col);
    return r.chance(profile_.leakyCellFraction);
}

bool
VariationMap::cellIsVrt(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kVrt, bank, row, col);
    return r.chance(profile_.vrtFraction);
}

double
VariationMap::cellCoupling(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kCoupling, bank, row, col);
    return r.lognormal(0.0, profile_.couplingSigma);
}

Volt
VariationMap::cellFracOffset(BankAddr bank, RowAddr row,
                             ColAddr col) const
{
    Rng r = cellStream(kFracOffset, bank, row, col);
    return r.gaussian(0.0, profile_.cellFracOffsetSigma);
}

Volt
VariationMap::saOffset(BankAddr bank, ColAddr col) const
{
    Rng r = colStream(kSaOffset, bank, col);
    return r.gaussian(profile_.saOffsetMean, profile_.saOffsetSigma);
}

bool
VariationMap::halfMClean(BankAddr bank, ColAddr col) const
{
    Rng r = colStream(kHalfClean, bank, col);
    return r.chance(profile_.halfMCleanFraction);
}

bool
VariationMap::startupBit(BankAddr bank, RowAddr row, ColAddr col) const
{
    Rng r = cellStream(kStartup, bank, row, col);
    return r.chance(0.5);
}

} // namespace fracdram::sim
