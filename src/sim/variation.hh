/**
 * @file
 * Deterministic process-variation map.
 *
 * Every manufacturing-time parameter of a module (per-cell settling
 * speed, leakage time constant, coupling strength, per-column sense-amp
 * offset, ...) is a pure function of the module serial and the cell
 * coordinates, derived by hashing. This keeps memory usage independent
 * of the array size and guarantees that experiments touching cells in
 * any order see identical silicon.
 */

#ifndef FRACDRAM_SIM_VARIATION_HH
#define FRACDRAM_SIM_VARIATION_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/vendor.hh"

namespace fracdram::sim
{

/**
 * Per-module process variation, derived deterministically from the
 * module serial number.
 */
class VariationMap
{
  public:
    /**
     * @param profile vendor group the module belongs to
     * @param serial unique module serial (distinct silicon per value)
     */
    VariationMap(const VendorProfile &profile, std::uint64_t serial);

    /** Settling fraction toward equilibrium per interrupted cycle. */
    double cellAlpha(BankAddr bank, RowAddr row, ColAddr col) const;

    /** Whether the cell's access transistor is slow (high V_th). */
    bool cellIsSlow(BankAddr bank, RowAddr row, ColAddr col) const;

    /**
     * Leakage time constant in seconds at 20 C. Slow cells leak less
     * (same V_th controls both effects).
     */
    Seconds cellTau(BankAddr bank, RowAddr row, ColAddr col) const;

    /** Whether the cell exhibits variable retention time. */
    bool cellIsVrt(BankAddr bank, RowAddr row, ColAddr col) const;

    /** Whether the cell is pathologically leaky (seconds retention). */
    bool cellIsLeaky(BankAddr bank, RowAddr row, ColAddr col) const;

    /** Static coupling-strength multiplier of the cell (lognormal). */
    double cellCoupling(BankAddr bank, RowAddr row, ColAddr col) const;

    /**
     * Deviation of the cell's interrupted-settling equilibrium from
     * the bit-line midpoint, in volts.
     */
    Volt cellFracOffset(BankAddr bank, RowAddr row, ColAddr col) const;

    /** Sense-amplifier offset of a column, in volts (delta domain). */
    Volt saOffset(BankAddr bank, ColAddr col) const;

    /**
     * Whether the column's sense amplifier stays disengaged during an
     * interrupted multi-row activation (clean Half-m column).
     */
    bool halfMClean(BankAddr bank, ColAddr col) const;

    /** Manufacturing-time power-up content of a cell. */
    bool startupBit(BankAddr bank, RowAddr row, ColAddr col) const;

    /**
     * Materialize every per-cell parameter of one row in a single
     * pass. Produces exactly the values of the per-cell accessors
     * above (same hashed streams, same draw order), but hoists the
     * row-invariant prefix of each stream's seed chain and computes
     * the shared slow/leaky draws once per cell instead of once per
     * accessor. Every output array must hold @p cols elements.
     * @p startup may be null to skip the power-up-content stream
     * entirely (legal because the streams are independent hashes; use
     * when the row's initial voltages are known to be overwritten
     * before anything observes them).
     */
    void materializeRow(BankAddr bank, RowAddr row, std::size_t cols,
                        std::uint8_t *startup, double *alpha,
                        double *tau, double *coupling,
                        double *frac_off, std::uint8_t *vrt) const;

    /** The module serial this map was derived from. */
    std::uint64_t serial() const { return serial_; }

  private:
    Rng cellStream(std::uint64_t purpose, BankAddr bank, RowAddr row,
                   ColAddr col) const;
    Rng colStream(std::uint64_t purpose, BankAddr bank,
                  ColAddr col) const;

    const VendorProfile &profile_;
    std::uint64_t serial_;
    std::uint64_t rootSeed_;
};

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_VARIATION_HH
