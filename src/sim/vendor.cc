#include "sim/vendor.hh"

#include <cmath>
#include <unordered_map>

#include "common/logging.hh"

namespace fracdram::sim
{

const std::array<DramGroup, 12> &
allGroups()
{
    static const std::array<DramGroup, 12> groups = {
        DramGroup::A, DramGroup::B, DramGroup::C, DramGroup::D,
        DramGroup::E, DramGroup::F, DramGroup::G, DramGroup::H,
        DramGroup::I, DramGroup::J, DramGroup::K, DramGroup::L,
    };
    return groups;
}

const std::array<DramGroup, 2> &
ddr4Groups()
{
    static const std::array<DramGroup, 2> groups = {
        DramGroup::M,
        DramGroup::N,
    };
    return groups;
}

std::string
groupName(DramGroup g)
{
    static const char *names = "ABCDEFGHIJKLMN";
    return std::string(1, names[static_cast<int>(g)]);
}

bool
isDdr4(DramGroup g)
{
    return g == DramGroup::M || g == DramGroup::N;
}

double
VendorProfile::roleWeight(RowRole role) const
{
    switch (role) {
      case RowRole::FirstAct:
        return weightFirstAct;
      case RowRole::SecondAct:
        return weightSecondAct;
      case RowRole::ImplicitAnd:
        return weightImplicitAnd;
      case RowRole::ImplicitOther:
        return weightImplicitOther;
    }
    panic("unknown RowRole");
}

namespace
{

/**
 * Build the profile table. Capability flags copy Table I verbatim;
 * analog values are fitted so the benches reproduce the shapes of the
 * paper's Figs 6-12 (see DESIGN.md for the fitting rationale).
 *
 * saOffsetMean sets the group's PUF Hamming weight via
 * HW ~= Phi(-mean/sigma); the HW targets are taken from Fig 11
 * (group A: 21% is quoted in the text; the others are plausible
 * values consistent with the figure's inter-HD clusters).
 */
std::unordered_map<DramGroup, VendorProfile>
buildProfiles()
{
    std::unordered_map<DramGroup, VendorProfile> m;

    auto add = [&m](DramGroup g, const char *vendor, int freq, int chips,
                    bool frac, bool three, bool four, bool checker) {
        VendorProfile p;
        p.group = g;
        p.vendor = vendor;
        p.freqMhz = freq;
        p.numChips = chips;
        p.numModules = chips / 8;
        p.supportsFrac = frac;
        p.supportsThreeRow = three;
        p.supportsFourRow = four;
        p.ignoresOutOfSpecTiming = checker;
        m.emplace(g, p);
        return &m.at(g);
    };

    // Hamming-weight bias in units of saOffsetSigma: HW = Phi(-z).
    // HW = Phi(-z) against the *effective* decision sigma, which
    // combines the per-column SA offset with the per-cell settling
    // offset attenuated by the capacitive divider (C_b/C_c = 6 ->
    // factor 7).
    auto hwBias = [](VendorProfile *p, double z) {
        const double cell_part = p->cellFracOffsetSigma / 7.0;
        const double eff =
            std::sqrt(p->saOffsetSigma * p->saOffsetSigma +
                      cell_part * cell_part);
        p->saOffsetMean = z * eff;
    };

    //                 vendor      freq  chips frac  3row   4row  checker
    auto *a = add(DramGroup::A, "SK Hynix", 1066, 16, true, false, false,
                  false);
    hwBias(a, 0.81); // HW ~ 0.21 (quoted in the paper)

    auto *b = add(DramGroup::B, "SK Hynix", 1333, 80, true, true, true,
                  false);
    hwBias(b, 0.52); // HW ~ 0.30
    // The second-activated row is group B's "primary" row: the paper's
    // best F-MAJ configuration parks the fractional value in R2.
    b->weightFirstAct = 1.00;
    b->weightSecondAct = 1.40;
    b->weightImplicitAnd = 0.95;
    b->weightImplicitOther = 0.90;
    b->dropsOrRowForAdjacentPairs = true; // three-row activation

    auto *c = add(DramGroup::C, "SK Hynix", 1333, 160, true, false, true,
                  false);
    hwBias(c, 0.13); // HW ~ 0.45
    // First-activated row is primary; noisier silicon than group B
    // (stability 33%-85.2% always-correct in Fig 10c).
    c->weightFirstAct = 1.45;
    c->weightSecondAct = 1.00;
    c->weightImplicitAnd = 0.90;
    c->weightImplicitOther = 0.85;
    c->couplingSigma = 0.22;
    c->trialJitterSigma = 0.06;

    auto *d = add(DramGroup::D, "SK Hynix", 1600, 16, true, false, true,
                  false);
    hwBias(d, 0.05); // HW ~ 0.48
    // The last implicitly-opened row dominates; best config stores a
    // below-Vdd/2 fractional value in R4 (paper Fig 9c).
    d->weightFirstAct = 1.00;
    d->weightSecondAct = 1.05;
    d->weightImplicitAnd = 0.90;
    d->weightImplicitOther = 1.50;
    d->couplingSigma = 0.19;
    d->trialJitterSigma = 0.05;

    auto *e = add(DramGroup::E, "Samsung", 1066, 32, true, false, false,
                  false);
    hwBias(e, 0.39); // HW ~ 0.35

    auto *f = add(DramGroup::F, "Samsung", 1333, 48, true, false, false,
                  false);
    hwBias(f, -0.05); // HW ~ 0.52

    auto *g = add(DramGroup::G, "Samsung", 1600, 32, true, false, false,
                  false);
    hwBias(g, 0.08); // HW ~ 0.47
    // Group G shows the largest intra-HD in Fig 11 (0.051): noisier SA.
    g->saNoiseSigma = 0.00035;

    auto *h = add(DramGroup::H, "TimeTec", 1333, 32, true, false, false,
                  false);
    hwBias(h, -0.13); // HW ~ 0.55

    auto *i = add(DramGroup::I, "Corsair", 1333, 32, true, false, false,
                  false);
    hwBias(i, 0.0); // HW ~ 0.50

    // Groups J-L implement command-timing checkers: out-of-spec
    // sequences are silently dropped, so neither Frac nor multi-row
    // activation has any effect (paper Sec. V-A).
    add(DramGroup::J, "Micron", 1333, 16, false, false, false, true);
    add(DramGroup::K, "Elpida", 1333, 32, false, false, false, true);
    add(DramGroup::L, "Nanya", 1333, 32, false, false, false, true);

    // DDR4 extension groups (not in Table I). QUAC-TRNG demonstrated
    // four-row activation on commodity DDR4; the paper hypothesizes
    // Frac, F-MAJ and Half-m carry over (Secs. VI-A1, VII).
    auto *m4 = add(DramGroup::M, "SK Hynix DDR4", 2400, 16, true,
                   false, true, false);
    hwBias(m4, 0.20); // HW ~ 0.42
    m4->weightFirstAct = 1.35;
    m4->weightSecondAct = 1.00;
    m4->weightImplicitAnd = 0.92;
    m4->weightImplicitOther = 0.88;
    m4->couplingSigma = 0.18;
    m4->trialJitterSigma = 0.05;
    add(DramGroup::N, "Micron DDR4", 2400, 16, false, false, false,
        true);

    return m;
}

} // namespace

const VendorProfile &
vendorProfile(DramGroup g)
{
    static const auto profiles = buildProfiles();
    const auto it = profiles.find(g);
    panic_if(it == profiles.end(), "unknown DRAM group");
    return it->second;
}

std::vector<DramGroup>
fracCapableGroups()
{
    std::vector<DramGroup> out;
    for (const auto g : allGroups())
        if (vendorProfile(g).supportsFrac)
            out.push_back(g);
    return out;
}

std::vector<DramGroup>
fourRowCapableGroups()
{
    std::vector<DramGroup> out;
    for (const auto g : allGroups())
        if (vendorProfile(g).supportsFourRow)
            out.push_back(g);
    return out;
}

} // namespace fracdram::sim
