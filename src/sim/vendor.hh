/**
 * @file
 * Vendor-group profiles: the per-group behavioural parameters that
 * stand in for the 582 real DDR3 chips of the paper's Table I.
 *
 * Each group (A-L) gets a VendorProfile whose capability flags mirror
 * Table I exactly and whose analog parameters are fitted so that the
 * evaluation benches reproduce the *shapes* of Figs 6-12.
 */

#ifndef FRACDRAM_SIM_VENDOR_HH
#define FRACDRAM_SIM_VENDOR_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fracdram::sim
{

/**
 * The twelve DDR3 groups of Table I, plus two DDR4 extension groups
 * (M, N) modeled after QUAC-TRNG's finding that commodity DDR4 chips
 * open four rows with the same command sequence - the paper's
 * "potentially DDR4" direction (Secs. VI-A1, VII).
 */
enum class DramGroup
{
    A, B, C, D, E, F, G, H, I, J, K, L,
    M, //!< DDR4, four-row capable (QUAC-TRNG-style part)
    N, //!< DDR4 with command-timing checkers
};

/** The twelve groups of Table I, in table order (DDR3 only). */
const std::array<DramGroup, 12> &allGroups();

/** The DDR4 extension groups (not part of Table I). */
const std::array<DramGroup, 2> &ddr4Groups();

/** One-letter name of a group. */
std::string groupName(DramGroup g);

/** Whether a group models a DDR4 part. */
bool isDdr4(DramGroup g);

/**
 * Role a row plays in a (multi-)row activation; determines its charge
 * sharing weight. The first-activated row stays connected longest and
 * is the paper's "primary" row (Sec. VI-A2).
 */
enum class RowRole
{
    FirstAct,      //!< R1: explicitly activated first
    SecondAct,     //!< R2: explicitly activated second
    ImplicitAnd,   //!< glitch-opened row at R1 & R2 (common low bits)
    ImplicitOther, //!< any further glitch-opened row
};

/**
 * Behavioural profile of one vendor group.
 *
 * Capability flags come straight from Table I; analog parameters are
 * the model's fitted stand-ins for silicon characteristics.
 */
struct VendorProfile
{
    DramGroup group;
    std::string vendor;
    int freqMhz;
    int numChips;   //!< chips characterized in the paper
    int numModules; //!< modules we instantiate (chips / 8)

    /** @name Capabilities (Table I) */
    /// @{
    bool supportsFrac;
    bool supportsThreeRow;
    bool supportsFourRow;
    /**
     * Timing-check circuits drop commands that arrive closer than the
     * JEDEC minimum (groups J, K, L) - out-of-spec sequences have no
     * effect at all.
     */
    bool ignoresOutOfSpecTiming;
    /// @}

    /** @name Row-decoder glitch model */
    /// @{
    /**
     * The decoder glitch only fires when all differing address bits of
     * (R1, R2) fall inside this low-bit window (models "not all
     * combinations with k different bits can open 2^k rows").
     */
    int glitchWindowBits = 4;
    /**
     * When true and R1 ^ R2 == 0b11 (same aligned-4 block), the OR-term
     * row fails to open, yielding a *three*-row activation (group B's
     * ComputeDRAM behaviour). Otherwise all 2^k combinations open.
     */
    bool dropsOrRowForAdjacentPairs = false;
    /// @}

    /** @name Charge-sharing weights */
    /// @{
    double weightFirstAct = 1.0;
    double weightSecondAct = 1.0;
    double weightImplicitAnd = 1.0;
    double weightImplicitOther = 1.0;
    /** Lognormal sigma of the per-cell coupling multiplier. */
    double couplingSigma = 0.14;
    /**
     * Lognormal sigma of the per-trial, per-row coupling jitter
     * (wordline-overlap timing varies between executions). Source of
     * the flaky columns behind the paper's 9.1% MAJ3 error rate.
     */
    double trialJitterSigma = 0.036;
    /// @}

    /** @name Sense amplifier */
    /// @{
    /**
     * Per-column offset mean in volts (bit-line delta domain). Sets the
     * group's PUF Hamming weight: HW ~= Phi(-mean / sigma).
     */
    double saOffsetMean = 0.0;
    /** Per-column offset sigma in volts. */
    double saOffsetSigma = 0.001;
    /**
     * Per-cell deviation of the interrupted-settling equilibrium from
     * the bit-line midpoint, in volts (junction and coupling
     * asymmetries). Seen by the sense amp divided by (C_b+C_c)/C_c,
     * it dominates the per-column offset - which is what makes
     * different rows of the same bank give *independent* PUF
     * responses (the paper's large challenge space and NIST row).
     */
    double cellFracOffsetSigma = 0.020;
    /** Per-operation thermal noise sigma in volts (at 20 C). */
    double saNoiseSigma = 0.00015;
    /**
     * Per-cell thermal noise of one charge-sharing event in volts.
     * Sets the residual jitter of repeated Frac operations and thereby
     * the PUF's (small, nonzero) intra-HD.
     */
    double cellNoiseSigma = 0.0008;
    /// @}

    /** @name Interrupted-activation settling */
    /// @{
    /**
     * Beta distribution of per-cell settling fraction alpha. Mean
     * ~0.65: two Fracs reliably park any cell near V_dd/2 (Fig. 7
     * shows the proof combination becoming the only result at two
     * Fracs), while one Frac leaves a column-dependent mix.
     */
    double settleAlphaA = 8.0;
    double settleAlphaB = 3.5;
    /**
     * Small fraction of cells whose wordline rises too slowly for the
     * 1-cycle window; adds realistic tails without contradicting the
     * paper's "fractional values can be stored in almost every bit".
     */
    double slowCellFraction = 0.01;
    /** Settling fraction of slow cells. */
    double slowCellAlpha = 0.05;
    /**
     * In an interrupted *multi*-row activation (Half-m) the final
     * PRECHARGE lands right at the sense-amplifier enable point; for
     * most columns the SA partially engages and drags the cells toward
     * its decision rail instead of leaving them at the equilibrium
     * voltage. This is the fraction of columns whose SA stays out
     * (clean Half value; the paper's 16% "distinguishable" bits).
     */
    double halfMCleanFraction = 0.04;
    /** How far (0..1) the partially-engaged SA drives cells to rail. */
    double halfMSaDrive = 0.9;
    /**
     * Bit-line delta (volts) above which the SA engages regardless of
     * the column's halfMCleanFraction draw: strongly driven columns
     * (all-same initial values) cross the sense threshold early, so
     * "weak" ones/zeros get restored toward the rail - which is why
     * they behave like normal values in the paper's Fig. 8.
     */
    double halfMEngageDelta = 0.12;
    /// @}

    /** @name Leakage */
    /// @{
    /**
     * Lognormal median of the cell leakage time constant, in hours.
     * Deliberately heavy: Fig. 6's ~44% "long retention" category are
     * cells that keep a >12h retention even after five Fracs, which
     * requires tau in the several-hundred-hour range once the cell
     * sits a few tens of mV above its sense threshold.
     */
    double tauMedianHours = 800.0;
    /** Lognormal sigma (natural log domain). */
    double tauSigma = 1.8;
    /**
     * Fraction of pathologically leaky cells (retention down to
     * seconds; the paper cites <1e-4 of cells). These are what
     * retention-failure DRAM PUFs key on.
     */
    double leakyCellFraction = 3e-4;
    /** Tau multiplier of leaky cells (seconds-scale retention). */
    double leakyTauScale = 1e-4;
    /** Fraction of variable-retention-time cells. */
    double vrtFraction = 5e-3;
    /** VRT fast-state tau as a fraction of the cell's nominal tau. */
    double vrtFastRatio = 0.02;
    /**
     * Slow cells (high access-transistor V_th) also leak less - the
     * same V_th controls both the wordline response and subthreshold
     * leakage. Multiplier on their tau median.
     */
    double slowCellTauBoost = 20.0;
    /// @}

    /** @name Cell polarity layout */
    /// @{
    /** Odd rows hold anti-cells when true (see paper Sec. II-C). */
    bool oddRowsAntiCells = true;
    /// @}

    /** Charge-sharing weight for a role. */
    double roleWeight(RowRole role) const;
};

/** Profile for one group; data mirrors Table I. */
const VendorProfile &vendorProfile(DramGroup g);

/** Groups that support Frac (A-I). */
std::vector<DramGroup> fracCapableGroups();

/** Groups that support four-row activation (B, C, D). */
std::vector<DramGroup> fourRowCapableGroups();

} // namespace fracdram::sim

#endif // FRACDRAM_SIM_VENDOR_HH
