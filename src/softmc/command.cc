#include "softmc/command.hh"

#include "common/logging.hh"

namespace fracdram::softmc
{

std::string
commandKindName(CommandKind kind)
{
    switch (kind) {
      case CommandKind::Act:
        return "ACT";
      case CommandKind::Pre:
        return "PRE";
      case CommandKind::PreAll:
        return "PREA";
      case CommandKind::Read:
        return "RD";
      case CommandKind::Write:
        return "WR";
      case CommandKind::Refresh:
        return "REF";
      case CommandKind::Nop:
        return "NOP";
    }
    panic("unknown CommandKind");
}

CommandSequence &
CommandSequence::push(Command cmd)
{
    cmds_.push_back({cursor_, cmd});
    ++cursor_;
    return *this;
}

CommandSequence &
CommandSequence::act(BankAddr bank, RowAddr row)
{
    return push({CommandKind::Act, bank, row, -1});
}

CommandSequence &
CommandSequence::pre(BankAddr bank)
{
    return push({CommandKind::Pre, bank, 0, -1});
}

CommandSequence &
CommandSequence::preAll()
{
    return push({CommandKind::PreAll, 0, 0, -1});
}

CommandSequence &
CommandSequence::read(BankAddr bank)
{
    return push({CommandKind::Read, bank, 0, -1});
}

CommandSequence &
CommandSequence::write(BankAddr bank, BitVector data)
{
    payloads_.push_back(std::move(data));
    return push({CommandKind::Write, bank, 0,
                 static_cast<int>(payloads_.size()) - 1});
}

CommandSequence &
CommandSequence::refresh()
{
    return push({CommandKind::Refresh, 0, 0, -1});
}

CommandSequence &
CommandSequence::idle(Cycles cycles)
{
    cursor_ += cycles;
    return *this;
}

const BitVector &
CommandSequence::payload(int index) const
{
    panic_if(index < 0 ||
                 static_cast<std::size_t>(index) >= payloads_.size(),
             "bad payload index %d", index);
    return payloads_[static_cast<std::size_t>(index)];
}

std::string
CommandSequence::toString() const
{
    std::string out;
    for (const auto &tc : cmds_) {
        out += strprintf("@%llu %s",
                         static_cast<unsigned long long>(tc.cycle),
                         commandKindName(tc.cmd.kind).c_str());
        if (tc.cmd.kind == CommandKind::Act) {
            out += strprintf("(b%u,r%u)", tc.cmd.bank, tc.cmd.row);
        } else if (tc.cmd.kind == CommandKind::Pre ||
                   tc.cmd.kind == CommandKind::Read ||
                   tc.cmd.kind == CommandKind::Write) {
            out += strprintf("(b%u)", tc.cmd.bank);
        }
        out += "\n";
    }
    return out;
}

} // namespace fracdram::softmc
