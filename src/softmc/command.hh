/**
 * @file
 * DRAM command encoding and timed command sequences.
 *
 * SoftMC exposes the raw DDR command bus to software: a program is a
 * list of commands with explicit cycle offsets, which is exactly how
 * FracDRAM's primitives are expressed. CommandSequence is a small
 * builder over that representation.
 */

#ifndef FRACDRAM_SOFTMC_COMMAND_HH
#define FRACDRAM_SOFTMC_COMMAND_HH

#include <string>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"

namespace fracdram::softmc
{

/** DDR3 command kinds used by this controller. */
enum class CommandKind
{
    Act,     //!< ACTIVATE(bank, row)
    Pre,     //!< PRECHARGE(bank)
    PreAll,  //!< PRECHARGE all banks
    Read,    //!< READ burst (whole row in this model)
    Write,   //!< WRITE burst (whole row in this model)
    Refresh, //!< REFRESH (all banks)
    Nop,     //!< explicit idle marker (timing only)
};

/** Printable name of a command kind. */
std::string commandKindName(CommandKind kind);

/**
 * One command with its operands. Write data is stored by index into
 * the owning sequence's payload table to keep Command cheap to copy.
 */
struct Command
{
    CommandKind kind = CommandKind::Nop;
    BankAddr bank = 0;
    RowAddr row = 0;
    int payload = -1; //!< index into CommandSequence write payloads
};

/** A command scheduled at an absolute cycle within a sequence. */
struct TimedCommand
{
    Cycles cycle = 0;
    Command cmd;
};

/**
 * Builder for timed command sequences.
 *
 * Commands are appended at the current cursor, which advances by one
 * cycle per command (back-to-back issue, the FracDRAM default);
 * idle() inserts extra dead cycles.
 */
class CommandSequence
{
  public:
    CommandSequence() = default;

    /** @name Builder interface (each returns *this for chaining) */
    /// @{
    CommandSequence &act(BankAddr bank, RowAddr row);
    CommandSequence &pre(BankAddr bank);
    CommandSequence &preAll();
    CommandSequence &read(BankAddr bank);
    CommandSequence &write(BankAddr bank, BitVector data);
    CommandSequence &refresh();
    /** Insert @p cycles idle cycles before the next command. */
    CommandSequence &idle(Cycles cycles);
    /// @}

    /** Scheduled commands, in issue order. */
    const std::vector<TimedCommand> &commands() const { return cmds_; }

    /** Write payload for a command's payload index. */
    const BitVector &payload(int index) const;

    /** Cycle at which the next command would be issued. */
    Cycles cursor() const { return cursor_; }

    /** End-to-end length of the sequence in cycles. */
    Cycles lengthCycles() const { return cursor_; }

    /** Number of scheduled commands. */
    std::size_t size() const { return cmds_.size(); }

    /** Whether the sequence holds no commands. */
    bool empty() const { return cmds_.empty(); }

    /** Render as a compact textual trace (for logs and tests). */
    std::string toString() const;

  private:
    CommandSequence &push(Command cmd);

    std::vector<TimedCommand> cmds_;
    std::vector<BitVector> payloads_;
    Cycles cursor_ = 0;
};

} // namespace fracdram::softmc

#endif // FRACDRAM_SOFTMC_COMMAND_HH
