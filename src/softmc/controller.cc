#include "softmc/controller.hh"

#include <atomic>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace fracdram::softmc
{

namespace
{

/** Per-opcode command counters (see CommandKind). */
struct CommandCounters
{
    telemetry::CounterId act, pre, preAll, read, write, refresh, nop;
    telemetry::CounterId sequences, cycles, violations;
    telemetry::HistogramId seqLen;

    CommandCounters()
    {
        auto &m = telemetry::Metrics::instance();
        act = m.counter("softmc.cmd.act");
        pre = m.counter("softmc.cmd.pre");
        preAll = m.counter("softmc.cmd.pre_all");
        read = m.counter("softmc.cmd.read");
        write = m.counter("softmc.cmd.write");
        refresh = m.counter("softmc.cmd.refresh");
        nop = m.counter("softmc.cmd.nop");
        sequences = m.counter("softmc.sequences");
        cycles = m.counter("softmc.cycles");
        violations = m.counter("softmc.timing_violations");
        seqLen = m.histogram("softmc.seq.len_cycles");
    }
};

const CommandCounters &
commandCounters()
{
    static const CommandCounters c;
    return c;
}

const char *
commandName(CommandKind kind)
{
    switch (kind) {
      case CommandKind::Act: return "ACT";
      case CommandKind::Pre: return "PRE";
      case CommandKind::PreAll: return "PREA";
      case CommandKind::Read: return "READ";
      case CommandKind::Write: return "WRITE";
      case CommandKind::Refresh: return "REF";
      case CommandKind::Nop: return "NOP";
    }
    return "?";
}

/** Distinct trace lane per controller instance. */
std::atomic<std::uint32_t> nextLane{1};

} // namespace

void
CycleAccountant::add(const std::string &label, Cycles cycles)
{
    cycles_[label] += cycles;
    counts_[label] += 1;
}

Cycles
CycleAccountant::of(const std::string &label) const
{
    const auto it = cycles_.find(label);
    return it == cycles_.end() ? 0 : it->second;
}

std::size_t
CycleAccountant::countOf(const std::string &label) const
{
    const auto it = counts_.find(label);
    return it == counts_.end() ? 0 : it->second;
}

Cycles
CycleAccountant::total() const
{
    Cycles t = 0;
    for (const auto &[label, c] : cycles_)
        t += c;
    return t;
}

void
CycleAccountant::clear()
{
    cycles_.clear();
    counts_.clear();
}

MemoryController::MemoryController(sim::DramChip &chip, bool enforce_spec)
    : chip_(chip), spec_(TimingSpec::ddr3()), enforceSpec_(enforce_spec),
      telemetryLane_(nextLane.fetch_add(1, std::memory_order_relaxed))
{
}

MemoryController::ExecResult
MemoryController::execute(const CommandSequence &seq,
                          const std::string &label)
{
    if (enforceSpec_) {
        const auto violations =
            spec_.check(seq, chip_.dramParams().numBanks);
        if (!violations.empty()) {
            fatal("sequence '%s' violates JEDEC timing: @%llu %s "
                  "(+%zu more)",
                  label.c_str(),
                  static_cast<unsigned long long>(violations[0].cycle),
                  violations[0].what.c_str(), violations.size() - 1);
        }
    }

    const bool telem = telemetry::enabled();
    std::size_t tally[7] = {};
    if (telem) {
        const auto &tc = commandCounters();
        telemetry::count(tc.sequences);
        // Out-of-spec sequences are the platform's whole point; when
        // observing, document exactly how many constraints each one
        // deliberately violates (enforcing mode already fataled).
        if (!enforceSpec_) {
            const auto violations =
                spec_.check(seq, chip_.dramParams().numBanks);
            if (!violations.empty()) {
                telemetry::count(tc.violations, violations.size());
                telemetry::traceInstant("timing violation");
            }
        }
    }

    ExecResult result;
    for (const auto &tc : seq.commands()) {
        const Cycles cycle = clock_ + tc.cycle;
        const auto &cmd = tc.cmd;
        if (telem) {
            ++tally[static_cast<std::size_t>(cmd.kind)];
            telemetry::traceCommand(commandName(cmd.kind), cycle, 1,
                                    telemetryLane_);
        }
        switch (cmd.kind) {
          case CommandKind::Act:
            chip_.act(cycle, cmd.bank, cmd.row);
            break;
          case CommandKind::Pre:
            chip_.pre(cycle, cmd.bank);
            break;
          case CommandKind::PreAll:
            chip_.preAll(cycle);
            break;
          case CommandKind::Read:
            result.reads.push_back(chip_.read(cycle, cmd.bank));
            break;
          case CommandKind::Write:
            chip_.write(cycle, cmd.bank, seq.payload(cmd.payload));
            break;
          case CommandKind::Refresh:
            chip_.refresh(cycle);
            break;
          case CommandKind::Nop:
            break;
        }
    }

    const Cycles len = seq.lengthCycles();
    // The bus goes quiet after the sequence: give the module enough
    // cycles for any pending activation or close to resolve.
    const Cycles margin = chip_.dramParams().saEnableCycles +
                          chip_.dramParams().glitchAbortCycles + 2;
    chip_.flushAll(clock_ + len + margin);
    if (telem) {
        const auto &tc = commandCounters();
        const telemetry::CounterId by_kind[7] = {
            tc.act, tc.pre, tc.preAll, tc.read,
            tc.write, tc.refresh, tc.nop};
        for (std::size_t k = 0; k < 7; ++k)
            if (tally[k] != 0)
                telemetry::count(by_kind[k], tally[k]);
        telemetry::count(tc.cycles, len);
        telemetry::observe(tc.seqLen, len);
        // The accountant's labels double as metric names, so the
        // per-operation cycle budget shows up in every run report.
        telemetry::countNamed("softmc.cycles." + label, len);
        telemetry::traceCommand(telemetry::internName(label), clock_,
                                len, telemetryLane_);
    }
    clock_ += len + margin;
    chip_.advanceTime(static_cast<Seconds>(len + margin) * memCycleNs *
                      1e-9);
    accountant_.add(label, len);
    result.cycles = len;
    return result;
}

namespace
{

void
idleUntil(CommandSequence &seq, Cycles target)
{
    panic_if(target < seq.cursor(),
             "idleUntil target %llu before cursor %llu",
             static_cast<unsigned long long>(target),
             static_cast<unsigned long long>(seq.cursor()));
    seq.idle(target - seq.cursor());
}

} // namespace

Cycles
MemoryController::readRowCycles() const
{
    // One x64 BL8 burst moves 512 bits.
    const std::uint32_t cols = chip_.dramParams().colsPerRow;
    const Cycles bursts = (cols + 511) / 512;
    return bursts * cyclesPerBurst_;
}

void
MemoryController::writeRow(BankAddr bank, RowAddr row,
                           const BitVector &bits)
{
    CommandSequence seq;
    seq.act(bank, row);
    idleUntil(seq, spec_.tRcd);
    seq.write(bank, bits);
    const Cycles write_done = seq.cursor() + readRowCycles();
    const Cycles pre_at =
        std::max(write_done + spec_.tWr, spec_.tRas);
    idleUntil(seq, pre_at);
    seq.pre(bank);
    idleUntil(seq, pre_at + spec_.tRp);
    execute(seq, "writeRow");
}

BitVector
MemoryController::readRow(BankAddr bank, RowAddr row)
{
    CommandSequence seq;
    seq.act(bank, row);
    idleUntil(seq, spec_.tRcd);
    seq.read(bank);
    const Cycles read_done = seq.cursor() + readRowCycles();
    const Cycles pre_at =
        std::max(read_done + spec_.tRtp, spec_.tRas);
    idleUntil(seq, pre_at);
    seq.pre(bank);
    idleUntil(seq, pre_at + spec_.tRp);
    auto result = execute(seq, "readRow");
    panic_if(result.reads.size() != 1, "readRow expected one read");
    return std::move(result.reads[0]);
}

BitVector
MemoryController::toVoltageDomain(BankAddr bank, RowAddr row,
                                  const BitVector &logic) const
{
    if (!chip_.rowIsAnti(bank, row))
        return logic;
    BitVector mask(logic.size(), true);
    return logic ^ mask;
}

void
MemoryController::writeRowVoltage(BankAddr bank, RowAddr row,
                                  const BitVector &high_bits)
{
    // Anti-cell rows get complemented logic data so every cell holds
    // the requested physical level (paper Sec. II-C).
    writeRow(bank, row, toVoltageDomain(bank, row, high_bits));
}

BitVector
MemoryController::readRowVoltage(BankAddr bank, RowAddr row)
{
    return toVoltageDomain(bank, row, readRow(bank, row));
}

void
MemoryController::fillRowVoltage(BankAddr bank, RowAddr row, bool high)
{
    writeRowVoltage(
        bank, row, BitVector(chip_.dramParams().colsPerRow, high));
}

void
MemoryController::refreshAll()
{
    CommandSequence seq;
    seq.preAll();
    idleUntil(seq, spec_.tRp);
    seq.refresh();
    idleUntil(seq, spec_.tRp + spec_.tRfc);
    execute(seq, "refresh");
}

void
MemoryController::prechargeAllBanks()
{
    CommandSequence seq;
    // Leave tRAS room in case a bank was (re)opened recently.
    seq.idle(spec_.tRas);
    seq.preAll();
    idleUntil(seq, spec_.tRas + 1 + spec_.tRp);
    execute(seq, "prechargeAll");
}

void
MemoryController::waitSeconds(Seconds s)
{
    chip_.advanceTime(s);
}

} // namespace fracdram::softmc
