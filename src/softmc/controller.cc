#include "softmc/controller.hh"

#include "common/logging.hh"

namespace fracdram::softmc
{

void
CycleAccountant::add(const std::string &label, Cycles cycles)
{
    cycles_[label] += cycles;
    counts_[label] += 1;
}

Cycles
CycleAccountant::of(const std::string &label) const
{
    const auto it = cycles_.find(label);
    return it == cycles_.end() ? 0 : it->second;
}

std::size_t
CycleAccountant::countOf(const std::string &label) const
{
    const auto it = counts_.find(label);
    return it == counts_.end() ? 0 : it->second;
}

Cycles
CycleAccountant::total() const
{
    Cycles t = 0;
    for (const auto &[label, c] : cycles_)
        t += c;
    return t;
}

void
CycleAccountant::clear()
{
    cycles_.clear();
    counts_.clear();
}

MemoryController::MemoryController(sim::DramChip &chip, bool enforce_spec)
    : chip_(chip), spec_(TimingSpec::ddr3()), enforceSpec_(enforce_spec)
{
}

MemoryController::ExecResult
MemoryController::execute(const CommandSequence &seq,
                          const std::string &label)
{
    if (enforceSpec_) {
        const auto violations =
            spec_.check(seq, chip_.dramParams().numBanks);
        if (!violations.empty()) {
            fatal("sequence '%s' violates JEDEC timing: @%llu %s "
                  "(+%zu more)",
                  label.c_str(),
                  static_cast<unsigned long long>(violations[0].cycle),
                  violations[0].what.c_str(), violations.size() - 1);
        }
    }

    ExecResult result;
    for (const auto &tc : seq.commands()) {
        const Cycles cycle = clock_ + tc.cycle;
        const auto &cmd = tc.cmd;
        switch (cmd.kind) {
          case CommandKind::Act:
            chip_.act(cycle, cmd.bank, cmd.row);
            break;
          case CommandKind::Pre:
            chip_.pre(cycle, cmd.bank);
            break;
          case CommandKind::PreAll:
            chip_.preAll(cycle);
            break;
          case CommandKind::Read:
            result.reads.push_back(chip_.read(cycle, cmd.bank));
            break;
          case CommandKind::Write:
            chip_.write(cycle, cmd.bank, seq.payload(cmd.payload));
            break;
          case CommandKind::Refresh:
            chip_.refresh(cycle);
            break;
          case CommandKind::Nop:
            break;
        }
    }

    const Cycles len = seq.lengthCycles();
    // The bus goes quiet after the sequence: give the module enough
    // cycles for any pending activation or close to resolve.
    const Cycles margin = chip_.dramParams().saEnableCycles +
                          chip_.dramParams().glitchAbortCycles + 2;
    chip_.flushAll(clock_ + len + margin);
    clock_ += len + margin;
    chip_.advanceTime(static_cast<Seconds>(len + margin) * memCycleNs *
                      1e-9);
    accountant_.add(label, len);
    result.cycles = len;
    return result;
}

namespace
{

void
idleUntil(CommandSequence &seq, Cycles target)
{
    panic_if(target < seq.cursor(),
             "idleUntil target %llu before cursor %llu",
             static_cast<unsigned long long>(target),
             static_cast<unsigned long long>(seq.cursor()));
    seq.idle(target - seq.cursor());
}

} // namespace

Cycles
MemoryController::readRowCycles() const
{
    // One x64 BL8 burst moves 512 bits.
    const std::uint32_t cols = chip_.dramParams().colsPerRow;
    const Cycles bursts = (cols + 511) / 512;
    return bursts * cyclesPerBurst_;
}

void
MemoryController::writeRow(BankAddr bank, RowAddr row,
                           const BitVector &bits)
{
    CommandSequence seq;
    seq.act(bank, row);
    idleUntil(seq, spec_.tRcd);
    seq.write(bank, bits);
    const Cycles write_done = seq.cursor() + readRowCycles();
    const Cycles pre_at =
        std::max(write_done + spec_.tWr, spec_.tRas);
    idleUntil(seq, pre_at);
    seq.pre(bank);
    idleUntil(seq, pre_at + spec_.tRp);
    execute(seq, "writeRow");
}

BitVector
MemoryController::readRow(BankAddr bank, RowAddr row)
{
    CommandSequence seq;
    seq.act(bank, row);
    idleUntil(seq, spec_.tRcd);
    seq.read(bank);
    const Cycles read_done = seq.cursor() + readRowCycles();
    const Cycles pre_at =
        std::max(read_done + spec_.tRtp, spec_.tRas);
    idleUntil(seq, pre_at);
    seq.pre(bank);
    idleUntil(seq, pre_at + spec_.tRp);
    auto result = execute(seq, "readRow");
    panic_if(result.reads.size() != 1, "readRow expected one read");
    return std::move(result.reads[0]);
}

BitVector
MemoryController::toVoltageDomain(BankAddr bank, RowAddr row,
                                  const BitVector &logic) const
{
    if (!chip_.rowIsAnti(bank, row))
        return logic;
    BitVector mask(logic.size(), true);
    return logic ^ mask;
}

void
MemoryController::writeRowVoltage(BankAddr bank, RowAddr row,
                                  const BitVector &high_bits)
{
    // Anti-cell rows get complemented logic data so every cell holds
    // the requested physical level (paper Sec. II-C).
    writeRow(bank, row, toVoltageDomain(bank, row, high_bits));
}

BitVector
MemoryController::readRowVoltage(BankAddr bank, RowAddr row)
{
    return toVoltageDomain(bank, row, readRow(bank, row));
}

void
MemoryController::fillRowVoltage(BankAddr bank, RowAddr row, bool high)
{
    writeRowVoltage(
        bank, row, BitVector(chip_.dramParams().colsPerRow, high));
}

void
MemoryController::refreshAll()
{
    CommandSequence seq;
    seq.preAll();
    idleUntil(seq, spec_.tRp);
    seq.refresh();
    idleUntil(seq, spec_.tRp + spec_.tRfc);
    execute(seq, "refresh");
}

void
MemoryController::prechargeAllBanks()
{
    CommandSequence seq;
    // Leave tRAS room in case a bank was (re)opened recently.
    seq.idle(spec_.tRas);
    seq.preAll();
    idleUntil(seq, spec_.tRas + 1 + spec_.tRp);
    execute(seq, "prechargeAll");
}

void
MemoryController::waitSeconds(Seconds s)
{
    chip_.advanceTime(s);
}

} // namespace fracdram::softmc
